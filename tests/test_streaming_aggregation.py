"""Streaming aggregation: accumulators, sketches, and equivalence with the
materialised reduction across every registry protocol.

The contract under test (the seam the scenario layer rides):

* moments (count/mean/variance/min/max) reduced *streamingly* — trial by
  trial, in any order, across checkpoint/restore boundaries — are **exactly
  equal** to the same reduction over the materialised trace list;
* the quantile sketch is exact while the sample fits its capacity and
  within tolerance beyond it;
* a resumed sweep continues its checkpointed aggregation without re-reading
  stored traces, and lands on the same numbers as an uninterrupted run.
"""

import json
import random

import numpy as np
import pytest

from repro.analysis.streaming import AccumulatorSet, MetricAccumulator, QuantileSketch
from repro.experiments.protocols import PROTOCOL_FACTORIES, ProtocolSpec
from repro.experiments.runner import build_repetition_plan, repeat_job
from repro.graphs.builders import GraphSpec
from repro.scenarios import SweepCell, run_cell
from repro.store import ResultStore


class TestMetricAccumulator:
    def test_moments_match_numpy(self):
        rng = np.random.default_rng(3)
        values = rng.normal(5.0, 2.0, size=300).tolist()
        acc = MetricAccumulator()
        acc.add_many(values)
        summary = acc.summary()
        assert summary.count == 300
        assert summary.mean == pytest.approx(np.mean(values), rel=1e-13)
        assert summary.std == pytest.approx(np.std(values, ddof=1), rel=1e-10)
        assert summary.minimum == min(values)
        assert summary.maximum == max(values)

    def test_moments_are_order_independent_bitwise(self):
        rng = np.random.default_rng(11)
        values = (rng.uniform(-1000, 1000, size=500) * rng.normal(size=500)).tolist()
        shuffled = values[:]
        random.Random(5).shuffle(shuffled)
        a, b = MetricAccumulator(), MetricAccumulator()
        a.add_many(values)
        b.add_many(shuffled)
        assert a.mean == b.mean
        assert a.variance() == b.variance()
        assert a.minimum == b.minimum and a.maximum == b.maximum

    def test_state_roundtrip_through_json_is_exact(self):
        rng = np.random.default_rng(7)
        values = rng.normal(size=100).tolist()
        acc = MetricAccumulator()
        acc.add_many(values[:60])
        restored = MetricAccumulator.from_state(
            json.loads(json.dumps(acc.state_dict()))
        )
        restored.add_many(values[60:])
        oneshot = MetricAccumulator()
        oneshot.add_many(values)
        assert restored.mean == oneshot.mean
        assert restored.variance() == oneshot.variance()
        assert restored.sketch.median() == oneshot.sketch.median()

    def test_merge_is_exact_for_moments(self):
        rng = np.random.default_rng(13)
        values = rng.normal(size=200).tolist()
        left, right, whole = (
            MetricAccumulator(),
            MetricAccumulator(),
            MetricAccumulator(),
        )
        left.add_many(values[:90])
        right.add_many(values[90:])
        whole.add_many(values)
        left.merge(right)
        assert left.count == whole.count
        assert left.mean == whole.mean
        assert left.variance() == whole.variance()

    def test_rejects_non_finite(self):
        acc = MetricAccumulator()
        with pytest.raises(ValueError):
            acc.add(float("nan"))
        with pytest.raises(ValueError):
            acc.add(float("inf"))

    def test_empty_summary(self):
        acc = MetricAccumulator()
        with pytest.raises(ValueError):
            acc.summary()
        assert acc.summary_or_none() is None


class TestQuantileSketch:
    def test_exact_below_capacity(self):
        rng = np.random.default_rng(2)
        values = rng.normal(size=50).tolist()
        sketch = QuantileSketch(capacity=64)
        for v in values:
            sketch.add(v)
        assert sketch.is_exact
        assert sketch.median() == float(np.median(values))
        for q in (0.0, 0.1, 0.25, 0.9, 1.0):
            assert sketch.quantile(q) == float(np.quantile(values, q))

    def test_bounded_memory_and_tolerance_above_capacity(self):
        rng = np.random.default_rng(4)
        values = rng.normal(size=20_000)
        sketch = QuantileSketch(capacity=256)
        for v in values:
            sketch.add(float(v))
        assert len(sketch) <= 256
        assert not sketch.is_exact
        for q in (0.1, 0.5, 0.9):
            assert sketch.quantile(q) == pytest.approx(
                float(np.quantile(values, q)), abs=0.08
            )

    def test_state_roundtrip(self):
        sketch = QuantileSketch(capacity=8)
        for v in range(30):
            sketch.add(float(v))
        back = QuantileSketch.from_state(json.loads(json.dumps(sketch.state_dict())))
        assert back.quantile(0.5) == sketch.quantile(0.5)
        assert len(back) == len(sketch)


class TestAccumulatorSet:
    def test_observe_skips_none_and_expands_lists(self):
        acc = AccumulatorSet(["a", "b"])
        acc.observe({"a": 1.0, "b": None})
        acc.observe({"a": [2.0, 3.0], "b": 4.0})
        assert acc.trials == 2
        assert acc["a"].count == 3
        assert acc["b"].count == 1
        assert acc.mean("b") == 4.0
        assert acc.mean("missing") is None


class TestVectorisedIngest:
    """Chunked ingest (``add_many`` / ``extend`` / ``observe_many``) must be
    bit-identical to the per-value path — the contract that lets the scenario
    runtime buffer samples without changing a single reduced digit."""

    def test_add_many_bitwise_equals_sequential_add(self):
        rng = np.random.default_rng(21)
        values = (rng.uniform(-1e6, 1e6, size=2000) * rng.normal(size=2000)).tolist()
        chunked, sequential = MetricAccumulator(), MetricAccumulator()
        chunked.add_many(values[:700])
        chunked.add_many(values[700:701])  # single-element chunk
        chunked.add_many([])  # empty chunk is a no-op
        chunked.add_many(values[701:])
        for v in values:
            sequential.add(v)
        assert chunked.state_dict() == sequential.state_dict()

    def test_add_many_accepts_generators_and_arrays(self):
        values = [1.5, -2.25, 3.125]
        a, b, c = MetricAccumulator(), MetricAccumulator(), MetricAccumulator()
        a.add_many(iter(values))
        b.add_many(np.array(values))
        for v in values:
            c.add(v)
        assert a.state_dict() == b.state_dict() == c.state_dict()

    def test_add_many_rejects_non_finite_atomically(self):
        acc = MetricAccumulator()
        acc.add_many([1.0, 2.0])
        before = acc.state_dict()
        with pytest.raises(ValueError):
            acc.add_many([3.0, float("nan"), 4.0])
        # All-or-nothing: the partial chunk must not have been folded in.
        assert acc.state_dict() == before

    def test_add_many_weighted_totals(self):
        acc = MetricAccumulator()
        acc.add_many([2.0, 4.0], weights=[3.0, 1.0])
        assert acc.count == 4.0
        assert acc.total == 10.0
        assert acc.mean == 2.5
        assert acc.minimum == 2.0 and acc.maximum == 4.0
        with pytest.raises(ValueError):
            acc.add_many([1.0], weights=[0.0])
        with pytest.raises(ValueError):
            acc.add_many([1.0, 2.0], weights=[1.0])

    def test_sketch_extend_bitwise_exact_below_capacity(self):
        rng = np.random.default_rng(31)
        # 10k draws over 200 distinct values: heavy duplication, lossless.
        values = rng.choice(np.linspace(-5, 5, 200), size=10_000)
        chunked, sequential = QuantileSketch(capacity=256), QuantileSketch(
            capacity=256
        )
        for start in range(0, values.size, 137):
            chunked.extend(values[start : start + 137])
        for v in values:
            sequential.add(float(v))
        assert chunked.state_dict() == sequential.state_dict()

    def test_sketch_extend_bitwise_in_lossy_regime(self):
        rng = np.random.default_rng(33)
        values = rng.normal(size=500)  # continuous: overflows capacity 64
        chunked, sequential = QuantileSketch(capacity=64), QuantileSketch(
            capacity=64
        )
        chunked.extend(values)
        for v in values:
            sequential.add(float(v))
        assert not chunked.is_exact
        assert chunked.state_dict() == sequential.state_dict()

    def test_observe_many_bitwise_equals_observe_loop(self):
        rng = np.random.default_rng(41)
        samples = []
        for t in range(300):
            samples.append(
                {
                    "a": float(rng.normal()),
                    "b": None if t % 7 == 0 else [float(rng.normal())] * 2,
                }
            )
        chunked, sequential = AccumulatorSet(["a", "b"]), AccumulatorSet(["a", "b"])
        chunked.observe_many(samples[:100])
        chunked.observe_many(samples[100:])
        for sample in samples:
            sequential.observe(sample)
        assert chunked.trials == sequential.trials == 300
        assert chunked.state_dict() == sequential.state_dict()


# --------------------------------------------------------------------------- #
# Streaming == materialised, across every registry protocol (exact mode).
# --------------------------------------------------------------------------- #
#: One workable (protocol params, graph params, job options) per registry
#: protocol.  A test pins this table's coverage to the registry, so a new
#: protocol cannot land without a streaming-equivalence case.
PROTOCOL_SWEEPS = {
    "algorithm1": ({"p": 0.15}, {"n": 64, "p": 0.15}, {"run_to_quiescence": True}),
    "algorithm2": ({"p": 0.2}, {"n": 40, "p": 0.2}, {}),
    "algorithm3": ({"diameter": 3}, {"n": 64, "p": 0.18}, {}),
    "tradeoff": ({"diameter": 3, "lam": 4.0}, {"n": 64, "p": 0.18}, {}),
    "time_invariant": (
        {"distribution": {"kind": "fixed", "q": 0.06}},
        {"n": 64, "p": 0.18},
        {},
    ),
    "decay": ({}, {"n": 64, "p": 0.18}, {}),
    "elsasser_gasieniec": ({"p": 0.18}, {"n": 64, "p": 0.18}, {}),
    "czumaj_rytter_known_d": ({"diameter": 3}, {"n": 64, "p": 0.18}, {}),
    "uniform_selection": ({"diameter": 3}, {"n": 64, "p": 0.18}, {}),
    "deterministic_flood": ({}, {"n": 48, "p": 0.2}, {}),
    "bernoulli_flood": ({"q": 0.2}, {"n": 48, "p": 0.2}, {}),
    "uniform_gossip": ({}, {"n": 24, "p": 0.3}, {}),
    "sequential_gossip": ({}, {"n": 20, "p": 0.3}, {}),
}

METRICS = (
    "success",
    "completion_round",
    "total_tx",
    "max_tx_per_node",
    "mean_tx_per_node",
)


def test_sweep_table_covers_every_registry_protocol():
    assert PROTOCOL_SWEEPS.keys() == PROTOCOL_FACTORIES.keys()


@pytest.mark.parametrize("name", sorted(PROTOCOL_SWEEPS))
def test_streaming_equals_materialised_exact_mode(name):
    """Exact-mode streaming reduction == materialised reduction, bit for bit
    on the moments, exactly on the (under-capacity) quantiles."""
    params, graph_params, options = PROTOCOL_SWEEPS[name]
    graph = GraphSpec("gnp", graph_params)
    protocol = ProtocolSpec(name, params)

    # Materialised path: hold every trace, reduce at the end.
    traces = repeat_job(
        graph,
        protocol,
        repetitions=5,
        seed=23,
        batch_mode="exact",
        store=False,
        **options,
    )
    materialised = AccumulatorSet(METRICS)
    for trace in traces:
        materialised.observe(
            {
                "success": float(trace.completed),
                "completion_round": (
                    float(trace.completion_round) if trace.completed else None
                ),
                "total_tx": float(trace.energy.total_transmissions),
                "max_tx_per_node": float(trace.energy.max_per_node),
                "mean_tx_per_node": float(trace.energy.mean_per_node),
            }
        )

    # Streaming path: the scenario cell, traces dropped as they are reduced.
    cell = SweepCell(
        coords={"protocol": name},
        graph=graph,
        protocol=protocol,
        repetitions=5,
        job_options=options,
    )
    streamed = run_cell(
        cell, seed=23, metrics=METRICS, batch_mode="exact", store=False
    )

    assert streamed.trials == materialised.trials
    for metric in METRICS:
        lhs = streamed.accumulators[metric]
        rhs = materialised[metric]
        assert lhs.count == rhs.count, metric
        if lhs.count == 0:
            continue
        assert lhs.mean == rhs.mean, metric
        assert lhs.variance() == rhs.variance(), metric
        assert lhs.minimum == rhs.minimum and lhs.maximum == rhs.maximum, metric
        assert lhs.sketch.median() == rhs.sketch.median(), metric


def test_streaming_consumes_every_trial_exactly_once(tmp_path):
    cell = SweepCell(
        coords={},
        graph=GraphSpec("gnp", {"n": 48, "p": 0.15}),
        protocol=ProtocolSpec("algorithm1", {"p": 0.15}),
        repetitions=7,
    )
    result = run_cell(
        cell, seed=5, metrics=("success",), batch_mode="exact", store=False
    )
    assert result.trials == 7
    assert result.counts == {"total": 7, "skipped": 0, "served": 0, "executed": 7}


class TestResumeContinuation:
    """Mid-sweep interruption: the checkpointed aggregation continues."""

    def _cell(self, repetitions):
        return SweepCell(
            coords={"n": 64},
            graph=GraphSpec("gnp", {"n": 64, "p": 0.12}),
            protocol=ProtocolSpec("algorithm1", {"p": 0.12}),
            repetitions=repetitions,
            job_options={"run_to_quiescence": True},
        )

    def test_resumed_aggregation_matches_uninterrupted(self, tmp_path):
        metrics = ("success", "completion_round", "total_tx")
        reference = run_cell(
            self._cell(6), seed=0, metrics=metrics, batch_mode="exact", store=False
        )

        store = ResultStore(tmp_path / "cache")
        # "Interrupted" run: the first 3 trials complete and checkpoint
        # (prefix-stable seed spawning makes them the same trials).
        run_cell(
            self._cell(3), seed=0, metrics=metrics, batch_mode="exact", store=store
        )
        resumed = run_cell(
            self._cell(6), seed=0, metrics=metrics, batch_mode="exact", store=store
        )
        assert resumed.counts["served"] == 3 and resumed.counts["executed"] == 3
        for metric in metrics:
            lhs = resumed.accumulators[metric]
            rhs = reference.accumulators[metric]
            assert lhs.count == rhs.count
            if lhs.count:
                assert lhs.mean == rhs.mean
                assert lhs.variance() == rhs.variance()

    def test_warm_rerun_skips_and_never_reads_traces(self, tmp_path):
        metrics = ("success", "total_tx")
        store = ResultStore(tmp_path / "cache")
        first = run_cell(
            self._cell(5), seed=1, metrics=metrics, batch_mode="exact", store=store
        )
        store.reset_counters()
        warm = run_cell(
            self._cell(5), seed=1, metrics=metrics, batch_mode="exact", store=store
        )
        assert warm.counts == {"total": 5, "skipped": 5, "served": 0, "executed": 0}
        # The whole point: continuation state makes trace re-reads unnecessary.
        assert store.hits == 0 and store.misses == 0
        assert warm.accumulators["total_tx"].mean == (
            first.accumulators["total_tx"].mean
        )

    def test_fast_mode_partial_checkpoint_is_discarded(self, tmp_path):
        metrics = ("success", "total_tx")
        store = ResultStore(tmp_path / "cache")
        # Fast-mode cohorts are keyed whole: a 3-trial run cannot seed a
        # 6-trial resume (different cohort), so the 6-trial run recomputes.
        run_cell(self._cell(3), seed=0, metrics=metrics, batch_mode="fast", store=store)
        full = run_cell(
            self._cell(6), seed=0, metrics=metrics, batch_mode="fast", store=store
        )
        assert full.counts["executed"] == 6
        reference = run_cell(
            self._cell(6), seed=0, metrics=metrics, batch_mode="fast", store=False
        )
        assert full.accumulators["total_tx"].mean == (
            reference.accumulators["total_tx"].mean
        )


class TestExecutionPlanStreaming:
    def test_fast_mode_partial_skip_rejected_even_without_store(self):
        plan = build_repetition_plan(
            GraphSpec("gnp", {"n": 48, "p": 0.15}),
            ProtocolSpec("algorithm1", {"p": 0.15}),
            repetitions=4,
            seed=1,
            batch_mode="fast",
            store=False,
        )
        with pytest.raises(ValueError, match="cohort-wide"):
            plan.execute_streaming(lambda i, t: None, skip_indices=[0])

    def test_resume_with_larger_sketch_capacity_recomputes(self, tmp_path):
        cell = SweepCell(
            coords={},
            graph=GraphSpec("gnp", {"n": 48, "p": 0.15}),
            protocol=ProtocolSpec("algorithm1", {"p": 0.15}),
            repetitions=4,
        )
        store = ResultStore(tmp_path)
        coarse = run_cell(
            cell, seed=3, metrics=("total_tx",), batch_mode="exact",
            store=store, sketch_capacity=4,
        )
        # A different sketch capacity is a different reduction fidelity:
        # the coarse checkpoint must not be resumed into the fine request.
        fine = run_cell(
            cell, seed=3, metrics=("total_tx",), batch_mode="exact",
            store=store, sketch_capacity=1024,
        )
        assert fine.aggregation_key != coarse.aggregation_key
        assert fine.counts["skipped"] == 0 and fine.counts["served"] == 4
        assert fine.accumulators["total_tx"].sketch.capacity == 1024

    def test_skip_indices_are_not_executed(self):
        plan = build_repetition_plan(
            GraphSpec("gnp", {"n": 48, "p": 0.15}),
            ProtocolSpec("algorithm1", {"p": 0.15}),
            repetitions=5,
            seed=9,
            batch_mode="exact",
            store=False,
        )
        seen = []
        counts = plan.execute_streaming(
            lambda index, trace: seen.append(index), skip_indices=[0, 3]
        )
        assert sorted(seen) == [1, 2, 4]
        assert counts == {"total": 5, "skipped": 2, "served": 0, "executed": 3}

    def test_streaming_traces_match_execute(self):
        plan = build_repetition_plan(
            GraphSpec("gnp", {"n": 48, "p": 0.15}),
            ProtocolSpec("algorithm1", {"p": 0.15}),
            repetitions=4,
            seed=2,
            batch_mode="exact",
            store=False,
        )
        streamed = {}
        plan.execute_streaming(lambda i, t: streamed.__setitem__(i, t))
        executed = plan.execute()
        assert sorted(streamed) == [0, 1, 2, 3]
        for index, trace in enumerate(executed):
            assert streamed[index].completion_round == trace.completion_round
            assert (
                streamed[index].energy.total_transmissions
                == trace.energy.total_transmissions
            )
