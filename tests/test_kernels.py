"""Compiled-kernel layer: registry resolution, exactness and approximation.

Three contracts are pinned here:

1. **Registry.**  ``resolve_collision_kernel`` maps every selectable name to
   the implementation that will run — ``auto``/``compiled`` degrade to the
   bit-identical numpy path without numba, unknown names and the illegal
   ``edge_sampled`` x exact-mode combination fail loudly, and the whole
   package keeps importing (and running) when numba cannot be imported at
   all (subprocess test).
2. **Exactness.**  The fused kernel's outputs are bit-identical to the numpy
   collision rule, and engine-level sweeps under ``kernel="compiled"`` are
   bit-identical to ``kernel="numpy"`` in exact mode for every registered
   protocol — with and without a faulty-world environment.  Exact kernels
   also share one store-digest space (flipping between them can never
   invalidate a result cache), pinned against a hard-coded digest.
3. **Approximation is loud.**  ``edge_sampled`` is rejected at plan build
   and engine level under exact mode, stamps its provenance into every
   trace it produces, and its outcome object refuses to serve the
   sender-side fields it does not track.
"""

import os
import subprocess
import sys
from pathlib import Path

import numpy as np
import pytest

from repro.experiments.protocols import ProtocolSpec
from repro.experiments.runner import (
    ExecutionPlan,
    build_repetition_plan,
    configure_execution,
    repeat_job,
)
from repro.graphs.builders import GraphSpec
from repro.graphs.random_digraph import random_digraph
from repro.radio import kernels
from repro.radio.batch import BatchEngine, NetworkBatch
from repro.radio.collision import (
    BatchStandardCollisionModel,
    _EdgeSampledOutcome,
)
from repro.baselines.flooding import BatchBernoulliFlood

from test_batch_engine import _assert_traces_identical
from test_batch_engine import TestExactEquivalence as _Exact

_REGISTRY_CASES = _Exact._REGISTRY_CASES
_REGISTRY_IDS = [
    f"{case[0]}{'-q' if case[3] else ''}"
    f"{'-capped' if 'max_phases_active' in case[1] or 'active_window' in case[1] else ''}"
    for case in _REGISTRY_CASES
]


class TestRegistry:
    def test_kernel_names(self):
        assert kernels.COLLISION_KERNELS == (
            "auto",
            "numpy",
            "compiled",
            "edge_sampled",
        )
        assert kernels.DEFAULT_KERNEL == "auto"

    def test_numpy_resolves_to_itself(self):
        assert kernels.resolve_collision_kernel("numpy") == "numpy"
        assert kernels.resolve_collision_kernel("numpy", exact_mode=True) == "numpy"

    def test_auto_and_compiled_follow_numba_availability(self):
        expected = "compiled" if kernels.compiled_available() else "numpy"
        assert kernels.resolve_collision_kernel("auto") == expected
        assert kernels.resolve_collision_kernel("compiled") == expected
        assert kernels.resolve_collision_kernel("auto", exact_mode=True) == expected

    def test_unknown_kernel_rejected(self):
        with pytest.raises(ValueError, match="unknown collision kernel"):
            kernels.resolve_collision_kernel("bogus")

    def test_edge_sampled_rejected_under_exact_mode(self):
        with pytest.raises(ValueError, match="approximation"):
            kernels.resolve_collision_kernel("edge_sampled", exact_mode=True)
        assert kernels.resolve_collision_kernel("edge_sampled") == "edge_sampled"

    def test_engine_validates_kernel_name(self):
        with pytest.raises(ValueError, match="unknown collision kernel"):
            BatchEngine(kernel="bogus")

    def test_plan_rejects_edge_sampled_exact(self):
        with pytest.raises(ValueError, match="approximation"):
            build_repetition_plan(
                GraphSpec("gnp", {"n": 16, "p": 0.4}),
                ProtocolSpec("decay", {}),
                repetitions=2,
                seed=1,
                kernel="edge_sampled",
                batch_mode="exact",
            )

    def test_engine_rejects_edge_sampled_exact_rngs(self):
        nets = [random_digraph(16, 0.4, rng=5) for _ in range(2)]
        engine = BatchEngine(kernel="edge_sampled")
        with pytest.raises(ValueError, match="approximation"):
            engine.run(
                nets,
                BatchBernoulliFlood(0.1),
                rngs=[np.random.default_rng(s) for s in (1, 2)],
            )

    def test_configure_execution_validates_kernel(self):
        with pytest.raises(ValueError, match="unknown collision kernel"):
            configure_execution(kernel="bogus")

    def test_configure_execution_sets_default(self):
        try:
            configure_execution(kernel="numpy")
            plan = build_repetition_plan(
                GraphSpec("gnp", {"n": 16, "p": 0.4}),
                ProtocolSpec("decay", {}),
                repetitions=2,
                seed=1,
            )
            assert plan.kernel == "numpy"
        finally:
            configure_execution(kernel="auto")


class TestFusedKernel:
    """The fused single-pass kernel against the numpy collision rule."""

    def _random_case(self, seed, n=48, p=0.2, trials=5):
        rng = np.random.default_rng(seed)
        nets = [random_digraph(n, p, rng=1000 + seed + t) for t in range(trials)]
        batch = NetworkBatch(nets)
        tx_mask = rng.random(batch.total_nodes) < 0.3
        return batch, np.flatnonzero(tx_mask)

    @pytest.mark.parametrize("seed", [0, 1, 2, 3])
    def test_fused_matches_numpy_rule_without_filter(self, seed):
        batch, tx_flat = self._random_case(seed)
        model = BatchStandardCollisionModel()
        reference = model._batch_exactly_one_rule(batch, tx_flat)
        fused = model._fused_rule(batch, tx_flat, None)
        assert np.array_equal(fused.receiver_flat, reference.receiver_flat)
        assert np.array_equal(fused.receiver_counts, reference.receiver_counts)
        assert np.array_equal(fused.sender_flat, reference.sender_flat)
        assert np.array_equal(fused.hear_counts, reference.hear_counts)
        assert np.array_equal(fused.collision_flags, reference.collision_flags)

    @pytest.mark.parametrize("seed", [4, 5])
    def test_fused_matches_numpy_rule_with_filter(self, seed):
        batch, tx_flat = self._random_case(seed)
        rng = np.random.default_rng(100 + seed)
        interest = rng.random(batch.total_nodes) < 0.5
        model = BatchStandardCollisionModel()
        reference = model._batch_exactly_one_rule(
            batch, tx_flat, listener_filter=interest
        )
        fused = model._fused_rule(batch, tx_flat, interest)
        # Filtered paths may order receivers differently (the dense numpy
        # path sorts); the delivered *set* and all counts must agree.
        assert np.array_equal(
            np.sort(fused.receiver_flat), np.sort(reference.receiver_flat)
        )
        assert np.array_equal(fused.receiver_counts, reference.receiver_counts)
        assert np.array_equal(fused.hear_counts, reference.hear_counts)

    def test_fused_empty_transmitter_set(self):
        batch, _ = self._random_case(7, trials=2)
        model = BatchStandardCollisionModel()
        fused = model._fused_rule(batch, np.empty(0, dtype=np.int64), None)
        assert fused.receiver_flat.size == 0
        assert fused.sender_flat.size == 0

    def test_reference_impl_is_pure_python(self):
        # The undecorated reference stays callable without numba — it is the
        # oracle the compiled build is checked against.
        indptr = np.array([0, 2, 3, 3], dtype=np.int64)
        indices = np.array([1, 2, 2], dtype=np.int32)
        tx = np.array([0, 1], dtype=np.int64)
        out = kernels.exactly_one_fused_reference(
            indptr, indices, tx, 3, np.empty(0, dtype=np.bool_)
        )
        listeners, edge_ends, delivered, counts, receivers = out
        assert listeners.tolist() == [1, 2, 2]
        assert edge_ends.tolist() == [2, 3]
        # Node 2 hears both transmitters -> collision; node 1 hears exactly one.
        assert delivered.tolist() == [True, False, False]
        assert counts.tolist() == [0, 1, 2]
        assert receivers.tolist() == [1]


class TestEngineEquivalence:
    """kernel="compiled" must be bit-identical to kernel="numpy" in exact mode.

    Without numba both requests resolve to the numpy path, making the
    assertions trivially true — the point of running them anyway is that the
    numba CI leg executes the same parametrisation with the real compiled
    kernels and must produce the same bits.
    """

    @pytest.mark.parametrize(
        "name,params,graph_params,options", _REGISTRY_CASES, ids=_REGISTRY_IDS
    )
    def test_registry_protocols_bit_identical(
        self, name, params, graph_params, options
    ):
        common = dict(repetitions=4, seed=17, batch_mode="exact", **options)
        graph = GraphSpec("gnp", graph_params)
        protocol = ProtocolSpec(name, params)
        via_numpy = repeat_job(graph, protocol, kernel="numpy", **common)
        via_compiled = repeat_job(graph, protocol, kernel="compiled", **common)
        _assert_traces_identical(via_numpy, via_compiled, check_arrays=True)

    @pytest.mark.parametrize(
        "environment",
        [
            {"name": "iid_loss", "params": {"rx_loss": 0.15}},
            {
                "name": "churn",
                "params": {"events": [{"round": 4, "crash_fraction": 0.2}]},
            },
        ],
        ids=["lossy", "churny"],
    )
    def test_environment_runs_bit_identical(self, environment):
        common = dict(
            repetitions=4,
            seed=23,
            batch_mode="exact",
            environment=environment,
        )
        graph = GraphSpec("gnp", {"n": 48, "p": 0.25})
        protocol = ProtocolSpec("decay", {})
        via_numpy = repeat_job(graph, protocol, kernel="numpy", **common)
        via_compiled = repeat_job(graph, protocol, kernel="compiled", **common)
        _assert_traces_identical(via_numpy, via_compiled, check_arrays=True)

    def test_fast_mode_numpy_and_compiled_identical(self):
        # Fast mode consumes the shared stream identically under both exact
        # kernels (the kernel changes how deliveries are computed, not which
        # draws are made), so even fast-mode runs agree bit for bit.
        graph = GraphSpec("gnp", {"n": 48, "p": 0.25})
        protocol = ProtocolSpec("decay", {})
        a = repeat_job(graph, protocol, repetitions=6, seed=3, kernel="numpy")
        b = repeat_job(graph, protocol, repetitions=6, seed=3, kernel="compiled")
        _assert_traces_identical(a, b, check_arrays=True)


class TestEdgeSampled:
    GRAPH = GraphSpec("gnp", {"n": 64, "p": 0.3})
    PROTOCOL = ProtocolSpec("decay", {})

    def test_provenance_stamped(self):
        results = repeat_job(
            self.GRAPH, self.PROTOCOL, repetitions=4, seed=9, kernel="edge_sampled"
        )
        assert len(results) == 4
        for trace in results:
            assert trace.metadata["collision_kernel"] == "edge_sampled"

    def test_exact_kernels_not_stamped(self):
        results = repeat_job(
            self.GRAPH, self.PROTOCOL, repetitions=2, seed=9, kernel="auto"
        )
        for trace in results:
            assert "collision_kernel" not in trace.metadata

    def test_store_digests_differ_from_exact_kernels(self):
        plan_exact = build_repetition_plan(
            self.GRAPH, self.PROTOCOL, repetitions=3, seed=2, kernel="auto"
        )
        plan_approx = build_repetition_plan(
            self.GRAPH, self.PROTOCOL, repetitions=3, seed=2, kernel="edge_sampled"
        )
        assert plan_exact.job_keys() != plan_approx.job_keys()
        assert plan_approx.cache_context()["kernel"] == "edge_sampled"

    def test_outcome_refuses_sender_side_fields(self):
        outcome = _EdgeSampledOutcome(
            receiver_flat=np.array([3, 17], dtype=np.int64), trials=2, n=16
        )
        assert outcome.tracks_senders is False
        with pytest.raises(RuntimeError, match="does not track"):
            outcome.sender_flat
        with pytest.raises(RuntimeError, match="does not track"):
            outcome.hear_counts
        with pytest.raises(RuntimeError, match="does not track"):
            outcome.collision_flags
        # Receiver-side fields still work.
        assert outcome.receiver_counts.sum() == 2

    def test_statistically_close_to_exact_kernel(self):
        # The mean-field approximation must complete broadcast on a
        # well-connected G(n, p) in a comparable number of rounds.
        exact = repeat_job(
            self.GRAPH, self.PROTOCOL, repetitions=16, seed=41, kernel="numpy"
        )
        approx = repeat_job(
            self.GRAPH, self.PROTOCOL, repetitions=16, seed=41, kernel="edge_sampled"
        )
        assert all(t.completed for t in exact)
        assert sum(t.completed for t in approx) >= 14
        mean_exact = np.mean([t.completion_round for t in exact])
        mean_approx = np.mean(
            [t.completion_round for t in approx if t.completed]
        )
        assert 0.4 * mean_exact < mean_approx < 2.5 * mean_exact

    def test_runs_under_lossy_environment(self):
        # Environments shrink the delivery set without sender surgery on
        # approximation outcomes (tracks_senders=False).
        results = repeat_job(
            self.GRAPH,
            self.PROTOCOL,
            repetitions=4,
            seed=11,
            kernel="edge_sampled",
            environment={"name": "iid_loss", "params": {"rx_loss": 0.2}},
        )
        assert len(results) == 4
        for trace in results:
            assert trace.metadata["collision_kernel"] == "edge_sampled"
            assert "environment" in trace.metadata


class TestDigestStability:
    """Exact kernels share the legacy digest space (satellite: a store built
    before the kernel layer existed keeps hitting)."""

    GRAPH = GraphSpec("gnp", {"n": 32, "p": 0.25})
    PROTOCOL = ProtocolSpec("decay", {})

    def _keys(self, **plan_kwargs):
        return build_repetition_plan(
            self.GRAPH, self.PROTOCOL, repetitions=2, seed=5, **plan_kwargs
        ).job_keys()

    @pytest.mark.parametrize("batch_mode", ["fast", "exact"])
    def test_exact_kernels_share_digests(self, batch_mode):
        baseline = self._keys(batch_mode=batch_mode)
        for kernel in ("auto", "numpy", "compiled"):
            assert self._keys(kernel=kernel, batch_mode=batch_mode) == baseline

    def test_kernel_key_absent_for_exact_kernels(self):
        for kernel in ("auto", "numpy", "compiled"):
            plan = build_repetition_plan(
                self.GRAPH, self.PROTOCOL, repetitions=2, seed=5, kernel=kernel
            )
            assert "kernel" not in plan.cache_context()

    def test_pinned_digest(self):
        # Hard regression pin: this digest was computed before the kernel
        # field existed.  If it moves, every result store in the wild is
        # silently invalidated — bump ENGINE_VERSION instead of accepting a
        # new value here.
        keys = self._keys(batch_mode="exact")
        assert keys[0] == (
            "d884c5e90af1ae70ab5bd025b7378e68"
            "02af16b2369e53a14be3fc7fee3817b8"
        )


class TestSharedBatchReuse:
    """Shard-level stacked-CSR reuse for shared-topology sweeps."""

    GRAPH = GraphSpec("path", {"n": 24})
    PROTOCOL = ProtocolSpec("decay", {})

    def test_in_process_shards_share_one_batch(self):
        plan = build_repetition_plan(
            self.GRAPH, self.PROTOCOL, repetitions=8, seed=2, shards=4
        )
        shards = plan.shards()
        assert len(shards) == 4
        batches = {id(shard.shared_batch) for shard in shards}
        assert None not in {shard.shared_batch for shard in shards}
        assert len(batches) == 1

    def test_fanout_shards_carry_no_batch(self):
        plan = build_repetition_plan(
            self.GRAPH, self.PROTOCOL, repetitions=8, seed=2, processes=2
        )
        assert all(shard.shared_batch is None for shard in plan.shards())
        assert all(shard.shared_network is not None for shard in plan.shards())

    def test_random_family_has_no_shared_batch(self):
        plan = build_repetition_plan(
            GraphSpec("gnp", {"n": 24, "p": 0.3}),
            self.PROTOCOL,
            repetitions=8,
            seed=2,
            shards=4,
        )
        assert all(shard.shared_batch is None for shard in plan.shards())

    def test_shared_batch_results_bit_identical(self):
        sharded = repeat_job(
            self.GRAPH,
            self.PROTOCOL,
            repetitions=8,
            seed=2,
            shards=4,
            batch_mode="exact",
        )
        serial = repeat_job(
            self.GRAPH, self.PROTOCOL, repetitions=8, seed=2, batch=False
        )
        _assert_traces_identical(serial, sharded, check_arrays=True)

    def test_shared_tiling_matches_general_construction(self):
        net = random_digraph(40, 0.2, rng=3)
        tiled = NetworkBatch.shared(net, 6)
        looped = NetworkBatch([random_digraph(40, 0.2, rng=3) for _ in range(6)])
        assert np.array_equal(tiled.out_indptr, looped.out_indptr)
        assert np.array_equal(tiled.out_indices, looped.out_indices)
        assert np.array_equal(tiled.in_degrees, looped.in_degrees)


class TestStreamingBypass:
    """In-process collect=False execution streams traces one trial at a time."""

    def test_execute_streaming_matches_execute(self):
        plan = build_repetition_plan(
            GraphSpec("path", {"n": 24}),
            ProtocolSpec("decay", {}),
            repetitions=8,
            seed=2,
            shards=4,
            batch_mode="exact",
        )
        collected = plan.execute()
        seen = {}
        counts = plan.execute_streaming(
            lambda index, trace: seen.__setitem__(index, trace)
        )
        assert counts["executed"] == 8
        assert sorted(seen) == list(range(8))
        _assert_traces_identical(
            collected, [seen[i] for i in range(8)], check_arrays=True
        )
        for trace in seen.values():
            assert "job" in trace.metadata


class TestNoNumbaFallback:
    def test_package_runs_with_numba_blocked(self):
        """The package must import and sweep with numba unimportable.

        A meta-path blocker makes ``import numba`` raise inside a fresh
        interpreter — on the numba CI leg this exercises the real fallback;
        locally (no numba) it simply re-checks the default environment.
        """
        code = "\n".join(
            [
                "import sys",
                "class _Block:",
                "    def find_spec(self, name, path=None, target=None):",
                "        if name.split('.')[0] == 'numba':",
                "            raise ImportError('numba blocked for test')",
                "sys.meta_path.insert(0, _Block())",
                "from repro.radio.kernels import (",
                "    compiled_available, resolve_collision_kernel, warm_kernels,",
                ")",
                "assert compiled_available() is False",
                "assert resolve_collision_kernel('compiled') == 'numpy'",
                "assert resolve_collision_kernel('auto') == 'numpy'",
                "warm_kernels()  # no-op without numba",
                "from repro.experiments.protocols import ProtocolSpec",
                "from repro.experiments.runner import repeat_job",
                "from repro.graphs.builders import GraphSpec",
                "results = repeat_job(",
                "    GraphSpec('gnp', {'n': 16, 'p': 0.4}),",
                "    ProtocolSpec('decay', {}),",
                "    repetitions=2, seed=1, kernel='compiled',",
                ")",
                "assert len(results) == 2",
                "print('fallback-ok')",
            ]
        )
        src_dir = str(Path(__file__).resolve().parents[1] / "src")
        env = dict(os.environ)
        env["PYTHONPATH"] = os.pathsep.join(
            [src_dir] + ([env["PYTHONPATH"]] if env.get("PYTHONPATH") else [])
        )
        proc = subprocess.run(
            [sys.executable, "-c", code],
            env=env,
            capture_output=True,
            text=True,
            timeout=180,
        )
        assert proc.returncode == 0, proc.stderr
        assert "fallback-ok" in proc.stdout
