"""Tests for collision semantics (the heart of the radio model)."""

import numpy as np
import pytest

from repro.radio.collision import (
    ErasureCollisionModel,
    StandardCollisionModel,
    WithCollisionDetectionModel,
)
from repro.radio.network import RadioNetwork


def mask(n, *transmitters):
    m = np.zeros(n, dtype=bool)
    for t in transmitters:
        m[t] = True
    return m


class TestStandardCollisionModel:
    def test_single_transmitter_delivers(self, tiny_network):
        out = StandardCollisionModel().resolve(tiny_network, mask(5, 0))
        assert sorted(out.receivers.tolist()) == [1, 2]
        assert all(s == 0 for s in out.senders)

    def test_collision_blocks_delivery(self, tiny_network):
        # Nodes 1 and 2 both reach node 3 -> collision, nobody receives.
        out = StandardCollisionModel().resolve(tiny_network, mask(5, 1, 2))
        assert out.receivers.size == 0
        assert out.hear_counts[3] == 2

    def test_no_transmitters(self, tiny_network):
        out = StandardCollisionModel().resolve(tiny_network, mask(5))
        assert out.receivers.size == 0
        assert out.hear_counts.sum() == 0

    def test_transmitter_with_no_listeners(self, tiny_network):
        out = StandardCollisionModel().resolve(tiny_network, mask(5, 4))
        assert out.receivers.size == 0

    def test_senders_align_with_receivers(self, tiny_network):
        out = StandardCollisionModel().resolve(tiny_network, mask(5, 3))
        assert out.receivers.tolist() == [4]
        assert out.senders.tolist() == [3]

    def test_no_collision_detection_flags(self, tiny_network):
        out = StandardCollisionModel().resolve(tiny_network, mask(5, 1, 2))
        assert not out.collision_flags.any()

    def test_transmitter_can_also_receive(self):
        # 0 -> 1 and 1 -> 0: if both transmit, each hears exactly the other.
        net = RadioNetwork(2, [(0, 1), (1, 0)])
        out = StandardCollisionModel().resolve(net, mask(2, 0, 1))
        assert sorted(out.receivers.tolist()) == [0, 1]

    def test_wrong_mask_shape_rejected(self, tiny_network):
        with pytest.raises(ValueError):
            StandardCollisionModel().resolve(tiny_network, np.zeros(3, dtype=bool))

    def test_star_collision_structure(self, small_star):
        # All leaves transmit: the centre hears them all colliding.
        m = np.ones(small_star.n, dtype=bool)
        m[0] = False
        out = StandardCollisionModel().resolve(small_star, m)
        assert out.hear_counts[0] == small_star.n - 1
        assert 0 not in out.receivers.tolist()


class TestWithCollisionDetectionModel:
    def test_flags_set_on_collision(self, tiny_network):
        out = WithCollisionDetectionModel().resolve(tiny_network, mask(5, 1, 2))
        assert out.collision_flags[3]
        assert out.receivers.size == 0

    def test_no_flag_on_single(self, tiny_network):
        out = WithCollisionDetectionModel().resolve(tiny_network, mask(5, 0))
        assert not out.collision_flags.any()

    def test_detects_collisions_attr(self):
        assert WithCollisionDetectionModel().detects_collisions
        assert not StandardCollisionModel().detects_collisions


class TestErasureCollisionModel:
    def test_requires_rng(self, tiny_network):
        with pytest.raises(ValueError):
            ErasureCollisionModel(0.5).resolve(tiny_network, mask(5, 0))

    def test_zero_erasure_matches_standard(self, tiny_network, rng):
        out = ErasureCollisionModel(0.0).resolve(tiny_network, mask(5, 0), rng)
        std = StandardCollisionModel().resolve(tiny_network, mask(5, 0))
        assert sorted(out.receivers.tolist()) == sorted(std.receivers.tolist())

    def test_full_erasure_drops_everything(self, tiny_network, rng):
        out = ErasureCollisionModel(1.0).resolve(tiny_network, mask(5, 0), rng)
        assert out.receivers.size == 0
        # hear_counts still reflect the channel activity.
        assert out.hear_counts[1] == 1

    def test_invalid_probability(self):
        with pytest.raises(ValueError):
            ErasureCollisionModel(1.5)

    def test_partial_erasure_statistics(self, rng):
        net = RadioNetwork(101, [(0, v) for v in range(1, 101)])
        model = ErasureCollisionModel(0.3)
        received = 0
        for _ in range(50):
            out = model.resolve(net, mask(101, 0), rng)
            received += out.receivers.size
        # Expect about 70% of 100 listeners per round.
        assert 2800 < received < 4200


class TestRepr:
    def test_reprs(self):
        assert "Standard" in repr(StandardCollisionModel())
        assert "0.25" in repr(ErasureCollisionModel(0.25))
        assert "Detection" in repr(WithCollisionDetectionModel())
