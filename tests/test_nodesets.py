"""The pluggable node-set state layer (`repro.radio.nodesets`).

Three groups of guarantees:

1. **Primitive correctness** — bit packing round-trips, popcounts match, and
   each backend of every state kind (membership set, knowledge tensor, quota
   and budget frontiers) behaves identically to the dense reference under
   randomised op sequences.
2. **Cross-backend bit-exactness** — for *every* protocol in
   ``BATCH_PROTOCOL_FACTORIES``, an exact-mode batched run is bit-identical
   under ``dense``, ``bitset`` and ``sparse`` state backends (the case table
   is pinned to the registry so a new protocol cannot dodge the property).
3. **Plumbing** — the ``state_backend`` knob flows through
   ``ExecutionPlan`` / ``configure_execution`` / the CLI, and the plan-level
   topology cache hands shards a shared network for deterministic families.
"""

import numpy as np
import pytest

from repro.cli import build_parser
from repro.experiments.protocols import (
    BATCH_PROTOCOL_FACTORIES,
    ProtocolSpec,
)
from repro.experiments.runner import (
    ExecutionPlan,
    Job,
    configure_execution,
    repeat_job,
)
from repro.graphs.builders import GraphSpec, spec_is_deterministic
from repro.radio.batch import BatchEngine
from repro.radio.nodesets import (
    BitsetKnowledge,
    BitsetNodeSet,
    DenseBudgetFrontier,
    DenseKnowledge,
    DenseNodeSet,
    DenseQuotaFrontier,
    NodeSetKernel,
    SparseBudgetFrontier,
    SparseQuotaFrontier,
    pack_bool_rows,
    popcount,
    resolve_kernel,
    select_backend,
    unpack_bool_rows,
    words_for,
)


class TestPackingPrimitives:
    @pytest.mark.parametrize("n", [1, 7, 63, 64, 65, 200, 513])
    def test_pack_unpack_roundtrip(self, n):
        rng = np.random.default_rng(n)
        mask = rng.random((5, n)) < 0.3
        words = pack_bool_rows(mask)
        assert words.shape == (5, words_for(n))
        assert words.dtype == np.uint64
        assert np.array_equal(unpack_bool_rows(words, n), mask)

    def test_padding_bits_stay_zero(self):
        mask = np.ones((3, 70), dtype=bool)
        words = pack_bool_rows(mask)
        # Bits 70..127 of the second word must be zero.
        assert int(words[0, 1]) == (1 << (70 - 64)) - 1

    def test_popcount_matches_dense_sum(self):
        rng = np.random.default_rng(9)
        mask = rng.random((4, 300)) < 0.5
        words = pack_bool_rows(mask)
        counts = popcount(words).sum(axis=-1, dtype=np.int64)
        assert np.array_equal(counts, mask.sum(axis=1))


class TestNodeSetBackends:
    def test_bitset_matches_dense_under_random_adds(self):
        trials, n = 3, 150
        rng = np.random.default_rng(4)
        dense, packed = DenseNodeSet(trials, n), BitsetNodeSet(trials, n)
        for _ in range(20):
            ids = rng.integers(0, trials * n, size=rng.integers(0, 12))
            ids = np.unique(ids)[rng.permutation(np.unique(ids).size)]
            newly_dense = dense.add_flat(ids)
            newly_packed = packed.add_flat(ids)
            assert np.array_equal(newly_dense, newly_packed)
            assert np.array_equal(dense.counts(), packed.counts())
            assert np.array_equal(dense.mask(), packed.mask())
            assert np.array_equal(
                dense.complement_flat(), packed.complement_flat()
            )

    def test_add_returns_new_members_in_input_order(self):
        for cls in (DenseNodeSet, BitsetNodeSet):
            state = cls(1, 10)
            state.add_flat(np.array([4]))
            newly = state.add_flat(np.array([7, 4, 2]))
            assert list(newly) == [7, 2], cls.__name__

    def test_same_word_adds_all_land(self):
        """Multiple new members in one uint64 word must all be recorded."""
        state = BitsetNodeSet(1, 64)
        newly = state.add_flat(np.array([3, 5, 17, 63]))
        assert newly.size == 4
        assert state.counts()[0] == 4
        assert sorted(np.flatnonzero(state.mask()[0])) == [3, 5, 17, 63]


class TestKnowledgeBackends:
    def test_bitset_matches_dense_under_random_merges(self):
        trials, n = 2, 70
        rng = np.random.default_rng(11)
        dense, packed = DenseKnowledge(trials, n), BitsetKnowledge(trials, n)
        assert np.array_equal(dense.as_dense(), packed.as_dense())
        for _ in range(15):
            k = int(rng.integers(1, 8))
            receivers = rng.choice(trials * n, size=k, replace=False)
            senders = rng.integers(0, trials * n, size=k)
            # Keep sender/receiver in the same trial, as the engine does.
            senders = (receivers // n) * n + senders % n
            dense.merge_flat(senders, receivers)
            packed.merge_flat(senders, receivers)
            assert np.array_equal(dense.per_node_counts(), packed.per_node_counts())
            assert np.array_equal(dense.complete(), packed.complete())
            assert np.array_equal(dense.as_dense(), packed.as_dense())
            r = int(rng.integers(0, n))
            assert np.array_equal(dense.column(r), packed.column(r))

    def test_complete_after_full_merge(self):
        n = 65  # crosses a word boundary
        dense, packed = DenseKnowledge(1, n), BitsetKnowledge(1, n)
        for state in (dense, packed):
            # Chain: node 0 learns everything by merging every row into row 0,
            # then every node merges row 0.
            for v in range(1, n):
                state.merge_flat(np.array([v]), np.array([0]))
            for v in range(1, n):
                state.merge_flat(np.array([0]), np.array([v]))
        assert dense.complete()[0] and packed.complete()[0]
        assert np.array_equal(dense.min_counts(), packed.min_counts())

    def test_incremental_counts_match_full_rescan(self):
        # The bitset backend maintains counts/completion from merge deltas;
        # pin them against a from-scratch popcount of the packed words.
        trials, n = 3, 130  # three words per row, ragged tail
        rng = np.random.default_rng(23)
        packed = BitsetKnowledge(trials, n)
        for _ in range(40):
            k = int(rng.integers(1, 12))
            receivers = rng.choice(trials * n, size=k, replace=False)
            senders = (receivers // n) * n + rng.integers(0, n, size=k)
            packed.merge_flat(senders, receivers)
            rescan = popcount(packed._words).sum(axis=2, dtype=np.int64)
            assert np.array_equal(packed.per_node_counts(), rescan)
            assert np.array_equal(packed.complete(), (rescan == n).all(axis=1))

    def test_single_node_trials_start_complete(self):
        packed = BitsetKnowledge(4, 1)
        assert packed.complete().all()
        assert np.array_equal(packed.min_counts(), np.ones(4, dtype=np.int64))


class TestFrontierBackends:
    def test_quota_frontiers_agree(self):
        trials, n = 3, 40
        rng = np.random.default_rng(21)
        dense, sparse = DenseQuotaFrontier(trials, n), SparseQuotaFrontier(trials, n)
        for _ in range(4):  # phases
            participating = rng.random((trials, n)) < 0.4
            values = rng.integers(1, 8, size=int(participating.sum()))
            dense.begin_phase(participating, values)
            sparse.begin_phase(participating, values)
            for within in range(8):
                running = rng.random(trials) < 0.8
                if not running.any():
                    running[0] = True
                a = dense.transmitters(within, running)
                b = sparse.transmitters(within, running)
                assert np.array_equal(a, b), within

    def test_budget_frontiers_agree(self):
        trials, n = 2, 30
        rng = np.random.default_rng(33)
        dense, sparse = DenseBudgetFrontier(trials, n), SparseBudgetFrontier(trials, n)
        admitted = set()
        for step in range(12):
            fresh = [
                int(i)
                for i in rng.integers(0, trials * n, size=3)
                if int(i) not in admitted
            ]
            admitted.update(fresh)
            ids = np.array(sorted(fresh), dtype=np.int64)
            dense.admit(ids, 3)
            sparse.admit(ids, 3)
            running = rng.random(trials) < 0.7
            if not running.any():
                running[0] = True
            a = dense.transmitters(running)
            b = sparse.transmitters(running)
            assert np.array_equal(a, b), step

    def test_budget_eviction_caps_transmissions(self):
        sparse = SparseBudgetFrontier(1, 5)
        sparse.admit(np.array([2]), 2)
        running = np.ones(1, dtype=bool)
        assert list(sparse.transmitters(running)) == [2]
        assert list(sparse.transmitters(running)) == [2]
        assert list(sparse.transmitters(running)) == []


class TestKernelSelection:
    def test_knowledge_profile_scales_to_bitset(self):
        assert select_backend(16, 512, profile="knowledge") == "dense"
        assert select_backend(8, 4096, profile="knowledge") == "bitset"

    def test_frontier_profile_scales_to_sparse(self):
        assert select_backend(4, 64, profile="frontier") == "dense"
        assert select_backend(16, 16384, profile="frontier") == "sparse"

    def test_frontier_density_raises_the_bar(self):
        trials, n = 2, 40000  # trials * n just above the floor
        assert select_backend(trials, n, profile="frontier", density=0.01) == "sparse"
        assert select_backend(trials, n, profile="frontier", density=0.5) == "dense"

    def test_plain_profile_stays_dense(self):
        assert select_backend(1024, 65536, profile="plain") == "dense"

    def test_resolve_rejects_unknown_backend(self):
        with pytest.raises(ValueError, match="state backend"):
            resolve_kernel("packed", 4, 16)
        with pytest.raises(ValueError):
            NodeSetKernel(backend="auto")  # must be resolved first

    def test_kernel_backend_mapping(self):
        dense = NodeSetKernel("dense")
        bitset = NodeSetKernel("bitset")
        sparse = NodeSetKernel("sparse")
        assert isinstance(dense.knowledge(1, 8), DenseKnowledge)
        assert isinstance(bitset.knowledge(1, 8), BitsetKnowledge)
        assert isinstance(sparse.knowledge(1, 8), BitsetKnowledge)
        assert isinstance(bitset.node_set(1, 8), BitsetNodeSet)
        assert isinstance(sparse.node_set(1, 8), DenseNodeSet)
        assert isinstance(sparse.quota_frontier(1, 8), SparseQuotaFrontier)
        assert isinstance(bitset.quota_frontier(1, 8), DenseQuotaFrontier)
        assert isinstance(sparse.budget_frontier(1, 8), SparseBudgetFrontier)

    def test_engine_rejects_unknown_backend(self):
        with pytest.raises(ValueError, match="state backend"):
            BatchEngine(state_backend="packed")


def _assert_traces_identical(reference, other):
    assert len(reference) == len(other)
    for a, b in zip(reference, other):
        assert a.protocol_name == b.protocol_name
        assert a.completed == b.completed
        assert a.completion_round == b.completion_round
        assert a.rounds_executed == b.rounds_executed
        assert a.energy == b.energy
        assert a.informed_count == b.informed_count


class TestCrossBackendBitExactness:
    """dense <-> bitset <-> sparse bit-exact equivalence, whole registry.

    Exact rng mode fixes the randomness per trial, so any divergence between
    backends is a state-layer bug.  The case table is pinned against
    ``BATCH_PROTOCOL_FACTORIES`` — adding a protocol without adding a case
    here fails the pin test.
    """

    _CASES = {
        "algorithm1": ({"p": 0.18}, {"n": 64, "p": 0.18}, {"run_to_quiescence": True}),
        "algorithm2": ({"p": 0.2}, {"n": 48, "p": 0.2}, {}),
        "algorithm3": ({"diameter": 3}, {"n": 64, "p": 0.18}, {}),
        "tradeoff": ({"diameter": 3, "lam": 4.0}, {"n": 64, "p": 0.18}, {}),
        "time_invariant": (
            {"distribution": {"kind": "fixed", "q": 0.06}},
            {"n": 64, "p": 0.18},
            {},
        ),
        "decay": (
            {"max_phases_active": 3},
            {"n": 64, "p": 0.18},
            {"run_to_quiescence": True},
        ),
        "elsasser_gasieniec": (
            {"p": 0.18},
            {"n": 64, "p": 0.18},
            {"run_to_quiescence": True},
        ),
        "czumaj_rytter_known_d": ({"diameter": 3}, {"n": 64, "p": 0.18}, {}),
        "uniform_selection": ({"diameter": 3}, {"n": 64, "p": 0.18}, {}),
        "deterministic_flood": (
            {"max_transmissions_per_node": 6},
            {"n": 64, "p": 0.18},
            {},
        ),
        "bernoulli_flood": ({"q": 0.05}, {"n": 64, "p": 0.18}, {}),
        "uniform_gossip": ({}, {"n": 32, "p": 0.25}, {}),
        "sequential_gossip": ({}, {"n": 24, "p": 0.3}, {}),
    }

    def test_case_table_pins_registry(self):
        assert self._CASES.keys() == BATCH_PROTOCOL_FACTORIES.keys()

    @pytest.mark.parametrize("name", sorted(_CASES))
    def test_backends_bit_identical_in_exact_mode(self, name):
        params, graph_params, options = self._CASES[name]
        graph = GraphSpec("gnp", graph_params)
        protocol = ProtocolSpec(name, params)
        runs = {
            backend: repeat_job(
                graph,
                protocol,
                repetitions=3,
                seed=23,
                batch_mode="exact",
                state_backend=backend,
                **options,
            )
            for backend in ("dense", "bitset", "sparse")
        }
        _assert_traces_identical(runs["dense"], runs["bitset"])
        _assert_traces_identical(runs["dense"], runs["sparse"])


class TestExecutionPlumbing:
    def test_plan_rejects_unknown_state_backend(self):
        job = Job(
            graph=GraphSpec("gnp", {"n": 16, "p": 0.2}),
            protocol=ProtocolSpec("algorithm1", {"p": 0.2}),
            seed=1,
        )
        with pytest.raises(ValueError, match="state_backend"):
            ExecutionPlan(jobs=(job,), state_backend="packed")

    def test_shards_carry_the_backend(self):
        job = Job(
            graph=GraphSpec("gnp", {"n": 16, "p": 0.2}),
            protocol=ProtocolSpec("algorithm1", {"p": 0.2}),
            seed=1,
        )
        plan = ExecutionPlan(jobs=(job, job), processes=2, state_backend="bitset")
        assert all(s.state_backend == "bitset" for s in plan.shards())

    def test_configure_execution_default_flows_through(self):
        configure_execution(state_backend="sparse")
        try:
            runs = repeat_job(
                GraphSpec("gnp", {"n": 48, "p": 0.2}),
                ProtocolSpec("decay", {}),
                repetitions=2,
                seed=3,
            )
            assert len(runs) == 2 and all(r.completed for r in runs)
        finally:
            configure_execution(state_backend="auto")

    def test_cli_parses_state_backend(self):
        parser = build_parser()
        args = parser.parse_args(["run", "E1", "--state-backend", "bitset"])
        assert args.state_backend == "bitset"
        args = parser.parse_args(["run", "E1"])
        assert args.state_backend == "auto"


class TestTopologyCache:
    def test_deterministic_spec_detection(self):
        assert spec_is_deterministic(GraphSpec("path", {"n": 8}))
        assert spec_is_deterministic(GraphSpec("grid", {"rows": 3, "cols": 3}))
        assert not spec_is_deterministic(GraphSpec("gnp", {"n": 8, "p": 0.5}))
        assert not spec_is_deterministic(GraphSpec("nope", {}))

    def test_plan_builds_deterministic_topology_once(self, monkeypatch):
        import repro.experiments.runner as runner_module

        calls = []
        real_build = runner_module.build_network

        def counting_build(spec, *, rng=None):
            calls.append(spec.family)
            return real_build(spec, rng=rng)

        monkeypatch.setattr(runner_module, "build_network", counting_build)
        runs = repeat_job(
            GraphSpec("path", {"n": 24}),
            ProtocolSpec("decay", {}),
            repetitions=6,
            seed=5,
        )
        assert len(runs) == 6
        # One plan-level build; no per-job rebuilds.
        assert calls == ["path"]

    def test_random_specs_keep_per_trial_samples(self):
        job_template = GraphSpec("gnp", {"n": 32, "p": 0.2})
        plan = ExecutionPlan(
            jobs=tuple(
                Job(graph=job_template, protocol=ProtocolSpec("decay", {}), seed=s)
                for s in range(3)
            )
        )
        assert plan.shared_topology() is None

    def test_cached_topology_matches_serial_results(self):
        graph = GraphSpec("path", {"n": 32})
        protocol = ProtocolSpec("decay", {})
        serial = repeat_job(graph, protocol, repetitions=4, seed=7, batch=False)
        batched = repeat_job(
            graph, protocol, repetitions=4, seed=7, batch=True, batch_mode="exact"
        )
        _assert_traces_identical(serial, batched)
        sharded = repeat_job(
            graph,
            protocol,
            repetitions=4,
            seed=7,
            batch=True,
            batch_mode="exact",
            processes=2,
        )
        _assert_traces_identical(serial, sharded)
