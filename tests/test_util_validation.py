"""Tests for repro._util.validation."""

import numpy as np
import pytest

from repro._util.validation import (
    check_in_range,
    check_node_index,
    check_positive,
    check_positive_int,
    check_probability,
)


class TestCheckPositive:
    def test_accepts_positive(self):
        assert check_positive(2.5, "x") == 2.5

    @pytest.mark.parametrize("bad", [0.0, -1.0, float("nan"), float("inf")])
    def test_rejects_bad(self, bad):
        with pytest.raises(ValueError):
            check_positive(bad, "x")


class TestCheckPositiveInt:
    def test_accepts_int(self):
        assert check_positive_int(3, "n") == 3

    def test_accepts_numpy_int(self):
        assert check_positive_int(np.int64(4), "n") == 4

    def test_respects_minimum(self):
        assert check_positive_int(0, "n", minimum=0) == 0
        with pytest.raises(ValueError):
            check_positive_int(0, "n")

    def test_rejects_bool(self):
        with pytest.raises(TypeError):
            check_positive_int(True, "n")

    def test_rejects_float(self):
        with pytest.raises(TypeError):
            check_positive_int(2.0, "n")


class TestCheckProbability:
    @pytest.mark.parametrize("ok", [0.0, 0.5, 1.0])
    def test_accepts_valid(self, ok):
        assert check_probability(ok, "p") == ok

    @pytest.mark.parametrize("bad", [-0.1, 1.1, float("nan")])
    def test_rejects_invalid(self, bad):
        with pytest.raises(ValueError):
            check_probability(bad, "p")

    def test_zero_rejected_when_disallowed(self):
        with pytest.raises(ValueError):
            check_probability(0.0, "p", allow_zero=False)


class TestCheckInRange:
    def test_inclusive_bounds(self):
        assert check_in_range(1.0, "x", low=1.0, high=2.0) == 1.0

    def test_exclusive_bounds(self):
        with pytest.raises(ValueError):
            check_in_range(1.0, "x", low=1.0, inclusive=False)

    def test_upper_bound(self):
        with pytest.raises(ValueError):
            check_in_range(3.0, "x", high=2.0)


class TestCheckNodeIndex:
    def test_valid(self):
        assert check_node_index(3, 5) == 3

    def test_out_of_range(self):
        with pytest.raises(ValueError):
            check_node_index(5, 5)
        with pytest.raises(ValueError):
            check_node_index(-1, 5)

    def test_type(self):
        with pytest.raises(TypeError):
            check_node_index(1.5, 5)
