"""Tests for deterministic structured topologies."""

import pytest

from repro.graphs.properties import diameter_estimate, is_strongly_connected, source_eccentricity
from repro.graphs.structured import (
    complete_network,
    cycle_network,
    grid_network,
    layered_caterpillar,
    path_network,
    path_of_cliques,
    star_network,
)


class TestPath:
    def test_structure(self):
        net = path_network(5)
        assert net.n == 5
        assert net.num_edges == 8
        assert net.is_symmetric()

    def test_diameter(self):
        assert source_eccentricity(path_network(10), 0) == 9

    def test_single_node(self):
        assert path_network(1).num_edges == 0


class TestCycle:
    def test_structure(self):
        net = cycle_network(6)
        assert net.num_edges == 12
        assert is_strongly_connected(net)

    def test_diameter(self):
        assert diameter_estimate(cycle_network(8)) == 4

    def test_minimum_size(self):
        with pytest.raises(ValueError):
            cycle_network(2)


class TestStar:
    def test_structure(self):
        net = star_network(7)
        assert list(net.out_degrees())[0] == 6
        assert net.is_symmetric()

    def test_custom_center(self):
        net = star_network(5, center=2)
        assert net.out_degrees()[2] == 4

    def test_invalid_center(self):
        with pytest.raises(ValueError):
            star_network(5, center=5)

    def test_diameter_two(self):
        assert diameter_estimate(star_network(9)) == 2


class TestComplete:
    def test_edge_count(self):
        assert complete_network(6).num_edges == 30

    def test_diameter_one(self):
        assert diameter_estimate(complete_network(5)) == 1

    def test_single_node(self):
        assert complete_network(1).num_edges == 0


class TestGrid:
    def test_square_grid(self):
        net = grid_network(4)
        assert net.n == 16
        assert is_strongly_connected(net)

    def test_rectangular_grid(self):
        net = grid_network(2, 5)
        assert net.n == 10
        assert source_eccentricity(net, 0) == 5  # (2-1) + (5-1)

    def test_degenerate(self):
        assert grid_network(1, 1).num_edges == 0


class TestPathOfCliques:
    def test_counts(self):
        net = path_of_cliques(4, 5)
        assert net.n == 20
        # 4 cliques of 5*4 directed edges plus 3 bidirectional bridges.
        assert net.num_edges == 4 * 20 + 3 * 2

    def test_connected_and_diameter(self):
        net = path_of_cliques(6, 4)
        assert is_strongly_connected(net)
        # Diameter grows linearly with the number of cliques.
        assert 2 * 6 - 2 <= diameter_estimate(net) <= 3 * 6

    def test_single_clique(self):
        net = path_of_cliques(1, 4)
        assert net.num_edges == 12


class TestCaterpillar:
    def test_counts(self):
        net = layered_caterpillar(5, 3)
        assert net.n == 5 + 15
        assert is_strongly_connected(net)

    def test_no_leaves(self):
        net = layered_caterpillar(4, 0)
        assert net.n == 4
        assert net.num_edges == 6

    def test_diameter(self):
        # leaf -> spine 0 -> ... -> spine end -> leaf
        assert diameter_estimate(layered_caterpillar(4, 2)) == 5
