"""Tests for energy accounting."""

import numpy as np
import pytest

from repro.radio.energy import EnergyAccountant


class TestEnergyAccountant:
    def test_initial_state(self):
        acc = EnergyAccountant(4)
        assert acc.total() == 0
        assert acc.rounds_recorded == 0

    def test_record_round_counts(self):
        acc = EnergyAccountant(4)
        count = acc.record_round(np.array([True, False, True, False]))
        assert count == 2
        assert acc.total() == 2
        assert list(acc.per_node()) == [1, 0, 1, 0]

    def test_accumulation(self):
        acc = EnergyAccountant(3)
        acc.record_round(np.array([True, True, False]))
        acc.record_round(np.array([True, False, False]))
        assert list(acc.per_node()) == [2, 1, 0]
        assert acc.rounds_recorded == 2

    def test_report_fields(self):
        acc = EnergyAccountant(4)
        acc.record_round(np.array([True, True, True, False]))
        acc.record_round(np.array([True, False, False, False]))
        report = acc.report()
        assert report.total_transmissions == 4
        assert report.max_per_node == 2
        assert report.mean_per_node == pytest.approx(1.0)
        assert report.transmitting_nodes == 3
        assert report.n == 4

    def test_report_as_dict(self):
        acc = EnergyAccountant(2)
        acc.record_round(np.array([True, False]))
        d = acc.report().as_dict()
        assert d["total_transmissions"] == 1
        assert set(d) >= {"max_per_node", "mean_per_node", "median_per_node"}

    def test_reset(self):
        acc = EnergyAccountant(2)
        acc.record_round(np.array([True, True]))
        acc.reset()
        assert acc.total() == 0
        assert acc.rounds_recorded == 0

    def test_wrong_shape_rejected(self):
        acc = EnergyAccountant(3)
        with pytest.raises(ValueError):
            acc.record_round(np.array([True, False]))

    def test_invalid_n(self):
        with pytest.raises(ValueError):
            EnergyAccountant(0)

    def test_per_node_is_copy(self):
        acc = EnergyAccountant(2)
        acc.record_round(np.array([True, False]))
        snapshot = acc.per_node()
        snapshot[0] = 99
        assert acc.per_node()[0] == 1

    def test_repr(self):
        acc = EnergyAccountant(2)
        assert "EnergyAccountant" in repr(acc)
