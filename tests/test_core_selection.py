"""Tests for selection sequences (shared public randomness)."""

import numpy as np
import pytest

from repro.core.distributions import ScaleDistribution, UniformScaleDistribution
from repro.core.selection import SelectionSequence


class TestSelectionSequence:
    def test_probability_matches_scale(self):
        seq = SelectionSequence(UniformScaleDistribution(256), rng=1)
        for r in range(20):
            assert seq.probability_at(r) == pytest.approx(2.0 ** -seq.scale_at(r))

    def test_deterministic_given_seed(self):
        a = SelectionSequence(UniformScaleDistribution(256), rng=7)
        b = SelectionSequence(UniformScaleDistribution(256), rng=7)
        assert a.prefix(50).tolist() == b.prefix(50).tolist()

    def test_lazy_extension(self):
        seq = SelectionSequence(UniformScaleDistribution(64), rng=3, block_size=8)
        # Ask far beyond one block.
        assert seq.scale_at(100) >= 0
        assert seq.prefix(101).size == 101

    def test_values_stable_once_materialised(self):
        seq = SelectionSequence(UniformScaleDistribution(64), rng=3)
        first = seq.scale_at(5)
        _ = seq.scale_at(500)
        assert seq.scale_at(5) == first

    def test_negative_round_rejected(self):
        seq = SelectionSequence(UniformScaleDistribution(64), rng=3)
        with pytest.raises(ValueError):
            seq.scale_at(-1)
        with pytest.raises(ValueError):
            seq.probability_at(-2)

    def test_prefix_zero(self):
        seq = SelectionSequence(UniformScaleDistribution(64), rng=3)
        assert seq.prefix(0).size == 0

    def test_degenerate_distribution(self):
        seq = SelectionSequence(ScaleDistribution([0.0, 0.0, 1.0]), rng=1)
        assert all(seq.scale_at(r) == 2 for r in range(10))
        assert seq.probability_at(0) == 0.25

    def test_repr(self):
        seq = SelectionSequence(UniformScaleDistribution(64), rng=3)
        assert "SelectionSequence" in repr(seq)
