"""Tests for graph property helpers (BFS, diameter, degrees)."""

import numpy as np
import pytest

from repro.graphs.properties import (
    bfs_distances,
    bfs_layers,
    degree_statistics,
    diameter_estimate,
    is_strongly_connected,
    reachable_from,
    source_eccentricity,
)
from repro.graphs.structured import cycle_network, path_network, star_network
from repro.radio.network import RadioNetwork


class TestBfs:
    def test_distances_on_path(self, small_path):
        dist = bfs_distances(small_path, 0)
        assert list(dist) == list(range(small_path.n))

    def test_unreachable_marked(self, tiny_network):
        dist = bfs_distances(tiny_network, 4)  # node 4 has no out-edges
        assert dist[4] == 0
        assert (dist[:4] == -1).all()

    def test_layers(self, tiny_network):
        layers = bfs_layers(tiny_network, 0)
        assert [sorted(l.tolist()) for l in layers] == [[0], [1, 2], [3], [4]]

    def test_invalid_source(self, tiny_network):
        with pytest.raises(ValueError):
            bfs_distances(tiny_network, 7)


class TestEccentricityAndDiameter:
    def test_source_eccentricity_path(self, small_path):
        assert source_eccentricity(small_path, 0) == small_path.n - 1
        assert source_eccentricity(small_path, small_path.n // 2) >= (small_path.n - 1) // 2

    def test_unreachable_raises(self, tiny_network):
        with pytest.raises(ValueError):
            source_eccentricity(tiny_network, 1)

    def test_diameter_small_exact(self):
        assert diameter_estimate(cycle_network(10)) == 5
        assert diameter_estimate(star_network(6)) == 2

    def test_diameter_single_node(self):
        assert diameter_estimate(RadioNetwork(1, [])) == 0

    def test_diameter_sampled_path(self):
        # Force the sampled branch with a low exact_threshold.
        net = path_network(50)
        est = diameter_estimate(net, exact_threshold=10, samples=8, rng=1)
        assert est >= 25  # sampled estimate is a lower bound, usually exact from endpoints


class TestReachabilityAndConnectivity:
    def test_reachable_from(self, tiny_network):
        assert reachable_from(tiny_network, 0).all()
        assert reachable_from(tiny_network, 3).sum() == 2

    def test_strongly_connected(self, small_path):
        assert is_strongly_connected(small_path)

    def test_not_strongly_connected(self, tiny_network):
        assert not is_strongly_connected(tiny_network)

    def test_single_node_connected(self):
        assert is_strongly_connected(RadioNetwork(1, []))


class TestDegreeStatistics:
    def test_values(self, tiny_network):
        stats = degree_statistics(tiny_network)
        assert stats.mean_out == pytest.approx(1.0)
        assert stats.max_out == 2
        assert stats.min_in == 0
        assert stats.max_in == 2

    def test_as_dict(self, small_star):
        d = degree_statistics(small_star).as_dict()
        assert d["max_out"] == small_star.n - 1
        assert set(d) >= {"mean_out", "mean_in", "std_out", "std_in"}
