"""Tests for the baseline protocols (flooding, Decay, EG, CR, phone call, gossip)."""

import math

import numpy as np
import pytest

from repro.baselines.czumaj_rytter import KnownDiameterCR, UniformSelectionBroadcast
from repro.baselines.decay import DecayBroadcast
from repro.baselines.elsasser_gasieniec import ElsasserGasieniecBroadcast
from repro.baselines.flooding import BernoulliFlood, DeterministicFlood
from repro.baselines.gossip_uniform import UniformScaleGossip
from repro.baselines.phone_call import run_push_broadcast, run_push_gossip
from repro.core.broadcast_general import KnownDiameterBroadcast
from repro.graphs.properties import source_eccentricity
from repro.graphs.random_digraph import connectivity_threshold_probability, random_digraph
from repro.graphs.structured import path_network, path_of_cliques, star_network
from repro.radio.engine import run_protocol


@pytest.fixture(scope="module")
def gnp_baseline():
    n = 256
    p = connectivity_threshold_probability(n, delta=4.0)
    return random_digraph(n, p, rng=42), p


class TestFlooding:
    def test_deterministic_flood_on_path(self, small_path):
        result = run_protocol(small_path, DeterministicFlood(), rng=1)
        assert result.completed
        assert result.completion_round == small_path.n - 1

    def test_deterministic_flood_collides_on_dense(self, gnp_baseline):
        network, _ = gnp_baseline
        result = run_protocol(network, DeterministicFlood(), rng=1, max_rounds=200)
        # Collisions freeze the frontier almost immediately.
        assert not result.completed

    def test_flood_transmission_cap(self, small_path):
        protocol = DeterministicFlood(max_transmissions_per_node=3)
        result = run_protocol(
            small_path, protocol, rng=1, keep_arrays=True, max_rounds=100
        )
        assert result.per_node_transmissions.max() <= 3

    def test_bernoulli_flood_completes_on_dense(self, gnp_baseline):
        network, p = gnp_baseline
        result = run_protocol(
            network, BernoulliFlood(1.0 / (network.n * p)), rng=2
        )
        assert result.completed

    def test_bernoulli_flood_invalid_q(self):
        with pytest.raises(ValueError):
            BernoulliFlood(0.0)


class TestDecay:
    def test_completes_on_random_network(self, gnp_baseline):
        network, _ = gnp_baseline
        result = run_protocol(network, DecayBroadcast(), rng=3)
        assert result.completed

    def test_completes_on_path_of_cliques(self):
        network = path_of_cliques(6, 6)
        result = run_protocol(network, DecayBroadcast(), rng=4)
        assert result.completed

    def test_phase_length(self, gnp_baseline):
        network, _ = gnp_baseline
        protocol = DecayBroadcast()
        protocol.bind(network, 1)
        assert protocol.phase_length == math.ceil(2 * math.log2(network.n))

    def test_max_phases_active_limits_energy(self):
        network = path_of_cliques(4, 6)
        unlimited = run_protocol(
            network, DecayBroadcast(), rng=5, keep_arrays=True
        )
        limited = run_protocol(
            network,
            DecayBroadcast(max_phases_active=2),
            rng=5,
            keep_arrays=True,
            max_rounds=unlimited.rounds_executed,
        )
        assert (
            limited.energy.total_transmissions
            <= unlimited.energy.total_transmissions
        )

    def test_energy_grows_with_time(self, gnp_baseline):
        """Decay has no retirement: nodes keep transmitting every phase."""
        network, _ = gnp_baseline
        result = run_protocol(network, DecayBroadcast(), rng=6, keep_arrays=True)
        # The source participates in every phase, so it transmits more than once.
        assert result.per_node_transmissions[0] >= 2


class TestElsasserGasieniec:
    def test_completes(self, gnp_baseline):
        network, p = gnp_baseline
        result = run_protocol(network, ElsasserGasieniecBroadcast(p), rng=7)
        assert result.completed

    def test_multiple_transmissions_per_node_allowed(self, gnp_baseline):
        network, p = gnp_baseline
        protocol = ElsasserGasieniecBroadcast(p)
        result = run_protocol(network, protocol, rng=8, keep_arrays=True)
        # Phase 1 lasts D-1 rounds with probability-1 transmissions, so nodes
        # informed early transmit more than once whenever D >= 2... but at most D-1+
        # (1 phase-2) + phase-3 transmissions.
        assert result.per_node_transmissions.max() >= 1
        assert result.per_node_transmissions.max() <= protocol.D + protocol.phase3_rounds

    def test_parameterisation(self, gnp_baseline):
        network, p = gnp_baseline
        protocol = ElsasserGasieniecBroadcast(p)
        protocol.bind(network, 1)
        assert protocol.D >= 1
        assert 0 < protocol.phase2_probability <= 1
        assert protocol.phase3_probability == pytest.approx(
            min(1.0, 1.0 / protocol.d)
        )

    def test_phase_labels(self, gnp_baseline):
        network, p = gnp_baseline
        protocol = ElsasserGasieniecBroadcast(p)
        protocol.bind(network, 1)
        if protocol.D >= 2:
            assert protocol.phase_of_round(0) == "phase1"
        assert protocol.phase_of_round(protocol.D - 1) == "phase2"
        assert protocol.phase_of_round(protocol.D) == "phase3"


class TestCzumajRytterBaselines:
    def test_cr_uses_alpha_prime_and_longer_window(self):
        network = path_of_cliques(6, 6)
        diameter = source_eccentricity(network, 0)
        cr = KnownDiameterCR(diameter)
        alg3 = KnownDiameterBroadcast(diameter)
        cr.bind(network, 1)
        alg3.bind(network, 1)
        assert "alpha_prime" in cr.distribution.name
        assert cr.active_window > alg3.active_window

    def test_cr_completes(self):
        network = path_of_cliques(6, 6)
        diameter = source_eccentricity(network, 0)
        result = run_protocol(network, KnownDiameterCR(diameter), rng=2)
        assert result.completed

    def test_cr_spends_more_energy_than_alg3(self):
        network = path_of_cliques(8, 8)
        diameter = source_eccentricity(network, 0)
        cr = run_protocol(
            network, KnownDiameterCR(diameter), rng=3, run_to_quiescence=True
        )
        alg3 = run_protocol(
            network, KnownDiameterBroadcast(diameter), rng=3, run_to_quiescence=True
        )
        assert cr.completed and alg3.completed
        assert cr.energy.mean_per_node > alg3.energy.mean_per_node

    def test_uniform_selection_completes(self):
        network = path_of_cliques(6, 6)
        diameter = source_eccentricity(network, 0)
        result = run_protocol(network, UniformSelectionBroadcast(diameter), rng=4)
        assert result.completed

    def test_uniform_selection_distribution(self):
        network = path_of_cliques(4, 4)
        protocol = UniformSelectionBroadcast(7)
        protocol.bind(network, 1)
        assert "uniform" in protocol.distribution.name


class TestPhoneCall:
    def test_push_broadcast_completes(self, gnp_baseline):
        network, _ = gnp_baseline
        result = run_push_broadcast(network, rng=1)
        assert result.completed
        assert result.completion_round <= 10 * math.log2(network.n)
        assert result.total_transmissions > 0

    def test_push_broadcast_on_star(self):
        result = run_push_broadcast(star_network(20), source=0, rng=2)
        assert result.completed

    def test_push_broadcast_horizon(self, small_path):
        result = run_push_broadcast(small_path, rng=3, max_rounds=2)
        assert not result.completed
        assert result.completion_round == 2

    def test_push_gossip_completes(self, gnp_baseline):
        network, _ = gnp_baseline
        result = run_push_gossip(network, rng=4)
        assert result.completed
        assert result.max_per_node == result.completion_round  # everyone calls every round

    def test_push_broadcast_invalid_source(self, small_path):
        with pytest.raises(ValueError):
            run_push_broadcast(small_path, source=99, rng=1)

    def test_result_as_dict(self, small_path):
        payload = run_push_broadcast(small_path, rng=5).as_dict()
        assert {"completed", "completion_round", "total_transmissions"} <= set(payload)


class TestUniformScaleGossip:
    def test_completes_on_small_network(self):
        network = path_of_cliques(3, 5)
        result = run_protocol(network, UniformScaleGossip(), rng=1)
        assert result.completed

    def test_budget_quiescence(self):
        network = path_network(6)
        protocol = UniformScaleGossip(rounds_constant=0.5)
        protocol.bind(network, 1)
        assert protocol.is_quiescent(protocol.round_budget)
        assert not protocol.transmit_mask(protocol.round_budget + 1).any()

    def test_invalid_constant(self):
        with pytest.raises(ValueError):
            UniformScaleGossip(rounds_constant=0)
