"""Theorem-level integration tests.

Each test runs a full protocol stack (graph generator → protocol → engine →
analysis) and checks the *shape* of the corresponding theorem at a small but
meaningful size.  These are the same checks the experiment harness performs
at larger scale; keeping them in the test suite guards the end-to-end
pipeline against regressions.
"""

import math

import numpy as np
import pytest

from repro._util.rng import spawn_generators
from repro.analysis.scaling import fit_model
from repro.baselines.czumaj_rytter import KnownDiameterCR
from repro.core.broadcast_general import KnownDiameterBroadcast
from repro.core.broadcast_random import EnergyEfficientBroadcast
from repro.core.gossip_random import RandomNetworkGossip
from repro.core.tradeoff import TradeoffBroadcast, admissible_lambda_range
from repro.graphs.lowerbound import observation43_network
from repro.graphs.properties import source_eccentricity
from repro.graphs.random_digraph import connectivity_threshold_probability, random_digraph
from repro.graphs.structured import path_of_cliques
from repro.radio.engine import run_protocol
from repro.core.oblivious import TimeInvariantBroadcast


class TestTheorem21:
    """Algorithm 1: O(log n) time, <= 1 transmission per node, O(log n / p) total."""

    def test_full_claim_at_single_size(self):
        n = 1024
        p = connectivity_threshold_probability(n, delta=4.0)
        gens = spawn_generators(2024, 10)
        completions, totals = [], []
        for i in range(5):
            network = random_digraph(n, p, rng=gens[i])
            result = run_protocol(
                network,
                EnergyEfficientBroadcast(p),
                rng=gens[5 + i],
                keep_arrays=True,
                run_to_quiescence=True,
            )
            assert result.completed
            assert result.per_node_transmissions.max() <= 1
            completions.append(result.completion_round)
            totals.append(result.energy.total_transmissions)
        log_n = math.log2(n)
        assert np.mean(completions) <= 16 * log_n
        assert np.mean(totals) <= 6 * log_n / p

    def test_time_scales_like_log_n(self):
        # Start at 512: at n=256 the w.h.p. guarantee is still weak (A_0(v) is
        # only ~10, so a run occasionally strands a node — see EXPERIMENTS.md).
        sizes = [512, 1024, 2048, 4096]
        times = []
        for n in sizes:
            p = connectivity_threshold_probability(n, delta=5.0)
            network = random_digraph(n, p, rng=n)
            result = run_protocol(network, EnergyEfficientBroadcast(p), rng=n + 1)
            assert result.completed
            times.append(result.completion_round)
        fit = fit_model(sizes, times, lambda n: np.log2(n), name="log n")
        # The ratio time / log n must stay within a constant band (no n-growth).
        assert fit.ratio_spread < 3.0


class TestTheorem32:
    """Algorithm 2: O(d log n) gossip time, O(log n) transmissions per node."""

    def test_full_claim(self):
        n = 128
        p = 4 * math.log2(n) / n
        network = random_digraph(n, p, rng=9)
        result = run_protocol(network, RandomNetworkGossip(p), rng=10)
        assert result.completed
        d = n * p
        assert result.completion_round <= 8 * d * math.log2(n)
        assert result.energy.max_per_node <= 12 * math.log2(n)


class TestTheorem41:
    """Algorithm 3 vs Czumaj-Rytter: same time bound, log(n/D) energy gap."""

    def test_energy_gap(self):
        network = path_of_cliques(10, 10)
        diameter = source_eccentricity(network, 0)
        n = network.n
        lam = math.log2(n / diameter)
        gens = spawn_generators(7, 6)
        alg3_energy, cr_energy = [], []
        for i in range(3):
            a = run_protocol(
                network, KnownDiameterBroadcast(diameter), rng=gens[i], run_to_quiescence=True
            )
            c = run_protocol(
                network, KnownDiameterCR(diameter), rng=gens[3 + i], run_to_quiescence=True
            )
            assert a.completed and c.completed
            alg3_energy.append(a.energy.mean_per_node)
            cr_energy.append(c.energy.mean_per_node)
        ratio = np.mean(cr_energy) / np.mean(alg3_energy)
        # CR pays more; the gap should be at least ~half the predicted log(n/D).
        assert ratio > max(1.5, 0.5 * lam)

    def test_time_within_bound(self):
        network = path_of_cliques(10, 10)
        diameter = source_eccentricity(network, 0)
        n = network.n
        lam = max(1.0, math.log2(n / diameter))
        bound = diameter * lam + math.log2(n) ** 2
        result = run_protocol(network, KnownDiameterBroadcast(diameter), rng=4)
        assert result.completed
        assert result.completion_round <= 6 * bound


class TestTheorem42:
    """Tradeoff: larger lambda => no more energy, (weakly) more time."""

    def test_endpoints(self):
        network = path_of_cliques(10, 10)
        diameter = source_eccentricity(network, 0)
        lam_low, lam_high = admissible_lambda_range(network.n, diameter)
        gens = spawn_generators(11, 8)
        fast_energy, cheap_energy = [], []
        for i in range(4):
            fast = run_protocol(
                network,
                TradeoffBroadcast(diameter, lam=lam_low),
                rng=gens[i],
                run_to_quiescence=True,
            )
            cheap = run_protocol(
                network,
                TradeoffBroadcast(diameter, lam=lam_high),
                rng=gens[4 + i],
                run_to_quiescence=True,
            )
            assert fast.completed and cheap.completed
            fast_energy.append(fast.energy.mean_per_node)
            cheap_energy.append(cheap.energy.mean_per_node)
        assert np.mean(cheap_energy) <= np.mean(fast_energy) * 1.1


class TestObservation43:
    """No per-round probability beats the n log n / 2 total-transmission bound."""

    @pytest.mark.parametrize("q", [0.5, 0.2, 0.05])
    def test_lower_bound_respected(self, q):
        n = 32
        network, structure = observation43_network(n, return_structure=True)
        log_n = math.log2(n)
        gens = spawn_generators(int(q * 1000), 4)
        relay_totals = []
        for i in range(3):
            result = run_protocol(
                network,
                TimeInvariantBroadcast(q, source=structure.source),
                rng=gens[i],
                max_rounds=int(300 * log_n / (q * (1 - q) + 1e-9)),
                keep_arrays=True,
            )
            assert result.completed
            relay_totals.append(
                result.per_node_transmissions[structure.relays].sum()
            )
        assert np.mean(relay_totals) >= 0.5 * (n * log_n / 2)
