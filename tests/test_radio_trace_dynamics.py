"""Tests for run traces and the topology-dynamics models."""

import numpy as np
import pytest

from repro.radio.dynamics import EdgeChurnModel, WaypointDriftModel
from repro.radio.energy import EnergyReport
from repro.radio.trace import RoundRecord, RunResultTrace


def _dummy_energy(n=4):
    return EnergyReport(
        total_transmissions=6,
        max_per_node=3,
        mean_per_node=1.5,
        median_per_node=1.0,
        p95_per_node=3.0,
        transmitting_nodes=3,
        n=n,
    )


class TestRunResultTrace:
    def test_as_dict_roundtrippable(self):
        trace = RunResultTrace(
            protocol_name="p",
            network_name="net",
            n=4,
            completed=True,
            completion_round=7,
            rounds_executed=7,
            energy=_dummy_energy(),
            informed_count=4,
            rounds=[RoundRecord(0, 1, 2, 2, 3)],
            metadata={"k": 1},
        )
        payload = trace.as_dict()
        assert payload["completed"] is True
        assert payload["energy"]["total_transmissions"] == 6
        assert payload["rounds"][0]["informed_after"] == 3

    def test_curves_require_rounds(self):
        trace = RunResultTrace(
            protocol_name="p",
            network_name="net",
            n=4,
            completed=False,
            completion_round=0,
            rounds_executed=0,
            energy=_dummy_energy(),
        )
        with pytest.raises(ValueError):
            trace.informed_curve()
        with pytest.raises(ValueError):
            trace.transmitter_curve()

    def test_repr_mentions_status(self):
        trace = RunResultTrace(
            protocol_name="p",
            network_name="net",
            n=4,
            completed=True,
            completion_round=3,
            rounds_executed=3,
            energy=_dummy_energy(),
        )
        assert "completed" in repr(trace)


class TestEdgeChurn:
    def test_preserves_node_count_and_roughly_edge_count(self, small_gnp, rng):
        churned = EdgeChurnModel(0.1).evolve(small_gnp, rng=rng)
        assert churned.n == small_gnp.n
        assert abs(churned.num_edges - small_gnp.num_edges) < 0.2 * small_gnp.num_edges

    def test_zero_drop_is_identity(self, small_gnp, rng):
        churned = EdgeChurnModel(0.0).evolve(small_gnp, rng=rng)
        assert churned is small_gnp

    def test_snapshots_yield_requested_epochs(self, small_gnp, rng):
        snaps = list(EdgeChurnModel(0.05).snapshots(small_gnp, 3, rng=rng))
        assert len(snaps) == 3
        assert snaps[0] is small_gnp

    def test_invalid_probability(self):
        with pytest.raises(ValueError):
            EdgeChurnModel(1.5)


class TestWaypointDrift:
    def test_positions_in_unit_square(self, rng):
        model = WaypointDriftModel(step_std=0.05, radius=0.2)
        pos = model.initial_positions(50, rng=rng)
        assert pos.shape == (50, 2)
        drifted = model.drift(pos, rng=rng)
        assert (drifted >= 0).all() and (drifted <= 1).all()

    def test_network_from_positions(self, rng):
        model = WaypointDriftModel(step_std=0.05, radius=0.3)
        pos = model.initial_positions(40, rng=rng)
        net = model.network_from_positions(pos)
        assert net.n == 40
        assert net.is_symmetric()

    def test_snapshots(self, rng):
        model = WaypointDriftModel(step_std=0.05, radius=0.3)
        snaps = list(model.snapshots(30, 4, rng=rng))
        assert len(snaps) == 4
        assert all(s.n == 30 for s in snaps)

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            WaypointDriftModel(step_std=0.0)
