"""Faulty-world environment layer: validation, null-cost identity, and the
scalar <-> batch bit-equality contract.

The environment seam wraps transmission masks before collision resolution
and deliveries after it, so every batched protocol inherits every fault
family untouched.  What this suite pins:

* parameter validation fails fast with named, actionable messages;
* a null environment is bit-identical to no environment for **every**
  registered batch protocol in exact mode;
* every fault family (and their composition) is bit-identical between
  :class:`~repro.radio.environment.Environment` under the serial engine and
  :class:`~repro.radio.environment.BatchEnvironment` under the batch engine
  in exact mode — including the fault counters in trace metadata;
* the environment rides the execution pipeline as one more content-addressed
  sweep axis: job digests, scenario grids, streamed ``recovery_rounds``
  aggregation, and mid-sweep resume all work unchanged.
"""

import numpy as np
import pytest

import repro.experiments.runner as runner_module
from repro.experiments.protocols import (
    BATCH_PROTOCOL_FACTORIES,
    PROTOCOL_FACTORIES,
    ProtocolSpec,
)
from repro.experiments.runner import Job, repeat_job
from repro.graphs.builders import GraphSpec
from repro.graphs.random_digraph import random_digraph
from repro.radio.batch import BatchEngine
from repro.radio.engine import SimulationEngine
from repro.radio.environment import (
    BurstLossEnvironment,
    ChurnEnvironment,
    IidLossEnvironment,
    JamEnvironment,
    WakeupEnvironment,
    build_batch_environment,
    build_environment,
    parse_environment_option,
    validate_environment_spec,
)
from repro.scenarios import ScenarioSpec, SweepCell, SweepGrid, run_scenario
from repro.store import ResultStore

#: Minimal valid parameters per registered protocol (kept in sync with the
#: equivalence suite in test_batch_engine.py).
PROTOCOL_PARAMS = {
    "algorithm1": {"p": 0.1},
    "algorithm2": {"p": 0.1},
    "algorithm3": {"diameter": 3},
    "tradeoff": {"diameter": 3, "lam": 3.0},
    "time_invariant": {"distribution": 0.1},
    "decay": {},
    "elsasser_gasieniec": {"p": 0.1},
    "czumaj_rytter_known_d": {"diameter": 3},
    "uniform_selection": {"diameter": 3},
    "deterministic_flood": {},
    "bernoulli_flood": {"q": 0.1},
    "uniform_gossip": {},
    "sequential_gossip": {},
}

FAULT_SPECS = {
    "iid_loss": {"name": "iid_loss", "params": {"tx_loss": 0.1, "rx_loss": 0.15}},
    "burst_loss": {"name": "burst_loss", "params": {"p_bad": 0.15, "p_good": 0.4}},
    "churn": {
        "name": "churn",
        "params": {
            "events": [
                {"round": 3, "crash_fraction": 0.25},
                {"round": 12, "recover_all": True},
            ]
        },
    },
    "jam": {"name": "jam", "params": {"k": 3}},
    "wakeup": {"name": "wakeup", "params": {"max_delay": 8}},
    "compose": {
        "name": "compose",
        "params": {
            "layers": [
                {"name": "iid_loss", "params": {"tx_loss": 0.05, "rx_loss": 0.05}},
                {"name": "jam", "params": {"k": 2, "start": 2, "stop": 30}},
            ]
        },
    },
}


def _assert_traces_identical(serial, batched):
    assert len(serial) == len(batched)
    for s, b in zip(serial, batched):
        assert s.completed == b.completed
        assert s.completion_round == b.completion_round
        assert s.rounds_executed == b.rounds_executed
        assert s.energy == b.energy
        assert s.informed_count == b.informed_count
        assert s.metadata.get("environment") == b.metadata.get("environment")


@pytest.fixture(scope="module")
def net96():
    return random_digraph(96, 0.08, rng=11)


# --------------------------------------------------------------------------- #
# Parameter validation
# --------------------------------------------------------------------------- #
class TestValidation:
    def test_loss_probability_out_of_range(self):
        with pytest.raises(ValueError, match=r"rx_loss must lie in \[0, 1\]"):
            IidLossEnvironment(rx_loss=1.5)
        with pytest.raises(ValueError, match=r"tx_loss must lie in \[0, 1\]"):
            IidLossEnvironment(tx_loss=-0.1)
        with pytest.raises(ValueError, match=r"p_bad must lie in \[0, 1\]"):
            BurstLossEnvironment(p_bad=2.0)

    def test_churn_schedule_must_be_sorted(self):
        with pytest.raises(ValueError, match="non-decreasing"):
            ChurnEnvironment(
                [
                    {"round": 10, "crash_fraction": 0.5},
                    {"round": 3, "recover_all": True},
                ]
            )

    def test_churn_event_needs_round_and_action(self):
        with pytest.raises(ValueError, match="needs a 'round'"):
            ChurnEnvironment([{"crash_fraction": 0.5}])
        with pytest.raises(ValueError, match="at least one action"):
            ChurnEnvironment([{"round": 3}])
        with pytest.raises(ValueError, match="unknown churn event key"):
            ChurnEnvironment([{"round": 3, "explode": True}])

    def test_jam_budget_exceeding_channels(self, net96):
        env = JamEnvironment(k=200)
        with pytest.raises(ValueError, match=r"jam budget k=200 exceeds"):
            env.reset(net96)
        batch_env = build_batch_environment({"name": "jam", "params": {"k": 200}})
        engine = BatchEngine(environment=batch_env)
        proto = BATCH_PROTOCOL_FACTORIES["deterministic_flood"]()
        with pytest.raises(ValueError, match="exceeds the number of channels"):
            engine.run(net96, proto, trials=2, rng=0, max_rounds=4)

    def test_jam_takes_k_or_targets_not_both(self):
        with pytest.raises(ValueError, match="not both"):
            JamEnvironment(k=2, targets=[1, 2])
        with pytest.raises(ValueError, match="stop must be > start"):
            JamEnvironment(k=2, start=5, stop=5)

    def test_wakeup_delay_list_must_match_n(self, net96):
        env = WakeupEnvironment(delays=[0, 1, 2])
        with pytest.raises(ValueError, match="one delay per node"):
            env.reset(net96)

    def test_unknown_family_and_params(self):
        with pytest.raises(ValueError, match="unknown environment family"):
            build_environment({"name": "meteor_strike", "params": {}})
        with pytest.raises(ValueError, match="unknown parameter"):
            build_environment({"name": "iid_loss", "params": {"loss": 0.1}})

    def test_cli_option_parsing(self):
        assert parse_environment_option(None) is None
        assert parse_environment_option("off") is None
        spec = parse_environment_option("loss=0.1,churn=0.2@5:40,jam=2")
        assert spec["name"] == "compose"
        names = [layer["name"] for layer in spec["params"]["layers"]]
        assert names == ["iid_loss", "churn", "jam"]
        single = parse_environment_option("wake=6")
        assert single == {"name": "wakeup", "params": {"max_delay": 6}}
        with pytest.raises(ValueError, match="unknown --env key"):
            parse_environment_option("loss=0.1,warp=9")
        with pytest.raises(ValueError, match="expected key=value"):
            parse_environment_option("chaos")

    def test_spec_normalisation_is_canonical(self):
        # Two spellings of the same environment normalise to one spec, so
        # they share one store digest.
        a = validate_environment_spec({"name": "iid_loss", "params": {"rx_loss": 0.1}})
        b = parse_environment_option("loss=0.1")
        assert a == b


# --------------------------------------------------------------------------- #
# Null environment == no environment (every protocol, exact mode)
# --------------------------------------------------------------------------- #
class TestNullEnvironment:
    NULL_SPECS = [
        {"name": "null", "params": {}},
        {"name": "iid_loss", "params": {"tx_loss": 0.0, "rx_loss": 0.0}},
        {"name": "churn", "params": {"events": []}},
        {"name": "jam", "params": {"k": 0}},
    ]

    @pytest.mark.parametrize("protocol_name", sorted(BATCH_PROTOCOL_FACTORIES))
    def test_null_env_is_bit_identical_for_every_protocol(
        self, net96, protocol_name
    ):
        assert PROTOCOL_PARAMS.keys() == BATCH_PROTOCOL_FACTORIES.keys()
        params = PROTOCOL_PARAMS[protocol_name]
        trials = 4
        rngs = lambda: [np.random.default_rng(500 + t) for t in range(trials)]
        bare = BatchEngine().run(
            net96,
            BATCH_PROTOCOL_FACTORIES[protocol_name](**params),
            trials=trials,
            rngs=rngs(),
            max_rounds=300,
        )
        for spec in self.NULL_SPECS:
            env = build_batch_environment(spec)
            assert env.is_null
            wrapped = BatchEngine(environment=env).run(
                net96,
                BATCH_PROTOCOL_FACTORIES[protocol_name](**params),
                trials=trials,
                rngs=rngs(),
                max_rounds=300,
            )
            _assert_traces_identical(bare, wrapped)

    def test_empty_spec_builds_no_environment(self):
        assert build_environment(None) is None
        assert build_environment({}) is None
        assert validate_environment_spec(None) is None


# --------------------------------------------------------------------------- #
# Scalar <-> batch bit-equality per fault family
# --------------------------------------------------------------------------- #
class TestScalarBatchEquality:
    @pytest.mark.parametrize("family", sorted(FAULT_SPECS))
    @pytest.mark.parametrize("protocol_name", ["algorithm1", "bernoulli_flood"])
    def test_fault_family_exact_equivalence(self, net96, family, protocol_name):
        spec = FAULT_SPECS[family]
        params = PROTOCOL_PARAMS[protocol_name]
        trials = 5
        serial = []
        for t in range(trials):
            engine = SimulationEngine(environment=build_environment(spec))
            serial.append(
                engine.run(
                    net96,
                    PROTOCOL_FACTORIES[protocol_name](**params),
                    rng=np.random.default_rng(1000 + t),
                    max_rounds=250,
                )
            )
        batched = BatchEngine(environment=build_batch_environment(spec)).run(
            net96,
            BATCH_PROTOCOL_FACTORIES[protocol_name](**params),
            trials=trials,
            rngs=[np.random.default_rng(1000 + t) for t in range(trials)],
            max_rounds=250,
        )
        _assert_traces_identical(serial, batched)

    def test_faults_actually_fire(self, net96):
        # Guard against the suite passing vacuously: the lossy worlds must
        # record losses on this workload.
        for family in ("iid_loss", "burst_loss", "churn"):
            engine = SimulationEngine(
                environment=build_environment(FAULT_SPECS[family])
            )
            trace = engine.run(
                net96,
                PROTOCOL_FACTORIES["bernoulli_flood"](q=0.1),
                rng=np.random.default_rng(7),
                max_rounds=250,
            )
            report = trace.metadata["environment"]
            assert report["fault_events"] > 0, family
            assert report["last_fault_round"] > 0, family

    def test_crashed_transmissions_are_not_charged(self, net96):
        # Crash everyone but the source forever: after the crash round the
        # flood's transmissions are gated, so energy must stay below the
        # unfaulted run's.
        spec = {
            "name": "churn",
            "params": {"events": [{"round": 2, "crash_fraction": 0.9}]},
        }
        rng = lambda: np.random.default_rng(3)
        bare = SimulationEngine().run(
            net96, PROTOCOL_FACTORIES["deterministic_flood"](), rng=rng(),
            max_rounds=40,
        )
        faulted = SimulationEngine(environment=build_environment(spec)).run(
            net96, PROTOCOL_FACTORIES["deterministic_flood"](), rng=rng(),
            max_rounds=40,
        )
        report = faulted.metadata["environment"]
        assert report["suppressed_transmissions"] > 0
        assert (
            faulted.energy.total_transmissions
            < bare.energy.total_transmissions
        )


# --------------------------------------------------------------------------- #
# Pipeline threading: jobs, digests, sweeps, resume
# --------------------------------------------------------------------------- #
GRAPH = GraphSpec("gnp", {"n": 64, "p": 0.15})
PROTOCOL = ProtocolSpec("algorithm1", {"p": 0.15})
ENV = {"name": "iid_loss", "params": {"tx_loss": 0.0, "rx_loss": 0.2}}


class TestPipelineThreading:
    def test_job_digest_unchanged_without_environment(self):
        # Legacy digests must survive the new axis: a job without an
        # environment serialises exactly as before.
        job = Job(graph=GRAPH, protocol=PROTOCOL, seed=1)
        assert "environment" not in job.as_dict()
        assert "environment" in Job(
            graph=GRAPH, protocol=PROTOCOL, seed=1, environment=ENV
        ).as_dict()

    def test_repeat_job_serial_vs_batch_exact(self):
        kwargs = dict(
            repetitions=4, seed=0, batch_mode="exact", environment=ENV,
            max_rounds=300,
        )
        serial = repeat_job(GRAPH, PROTOCOL, batch=False, **kwargs)
        batched = repeat_job(GRAPH, PROTOCOL, batch=True, **kwargs)
        for s, b in zip(serial, batched):
            assert s.completed == b.completed
            assert s.completion_round == b.completion_round
            assert s.energy == b.energy
            assert s.metadata["environment"] == b.metadata["environment"]
            assert s.metadata["environment"]["lost_deliveries"] > 0

    def test_environment_report_survives_the_store(self, tmp_path):
        store = ResultStore(tmp_path)
        kwargs = dict(
            repetitions=3, seed=0, batch_mode="exact", environment=ENV,
            max_rounds=300,
        )
        cold = repeat_job(GRAPH, PROTOCOL, store=store, **kwargs)
        warm = repeat_job(GRAPH, PROTOCOL, store=store, **kwargs)
        assert store.hits >= 3
        for a, b in zip(cold, warm):
            assert a.metadata["environment"] == b.metadata["environment"]

    def _grid_spec(self):
        cells = tuple(
            SweepCell(
                coords={"world": world},
                graph=GRAPH,
                protocol=PROTOCOL,
                repetitions=3,
                job_options=(
                    {"max_rounds": 300}
                    if env is None
                    else {"max_rounds": 300, "environment": env}
                ),
            )
            for world, env in [
                ("reliable", None),
                ("lossy", ENV),
                ("churny", {
                    "name": "churn",
                    "params": {"events": [
                        {"round": 2, "crash_fraction": 0.25},
                        {"round": 10, "recover_all": True},
                    ]},
                }),
                ("jammed", {"name": "jam", "params": {"k": 2}}),
            ]
        )
        return ScenarioSpec(
            scenario_id="env-axis",
            grid=SweepGrid(cells=cells),
            metrics=("success", "completion_round", "recovery_rounds",
                     "work_wasted"),
            seed=0,
        )

    def test_environment_is_a_sweep_axis_with_streamed_metrics(self, tmp_path):
        store = ResultStore(tmp_path)
        results = run_scenario(self._grid_spec(), store=store)
        by_world = {r.cell.coords["world"]: r for r in results}
        assert by_world["reliable"].mean("work_wasted") == 0.0
        # Three fault families ran end-to-end and streamed their metrics.
        for world in ("lossy", "churny", "jammed"):
            assert by_world[world].mean("work_wasted") > 0.0
            assert by_world[world].accumulators["recovery_rounds"] is not None
        # The per-cell aggregations were checkpointed by digest.
        assert store.stats()["aggregate_checkpoints"] == len(results)

    def test_resume_mid_sweep_with_environment_axis(self, tmp_path, monkeypatch):
        baseline = run_scenario(self._grid_spec(), store=False)

        store = ResultStore(tmp_path)
        real = runner_module._execute_batch_shard
        calls = {"n": 0}

        def dies_on_third_shard(shard, result_sink=None):
            calls["n"] += 1
            if calls["n"] == 3:
                raise KeyboardInterrupt("simulated crash mid-sweep")
            return real(shard, result_sink)

        monkeypatch.setattr(
            runner_module, "_execute_batch_shard", dies_on_third_shard
        )
        with pytest.raises(KeyboardInterrupt):
            run_scenario(self._grid_spec(), store=store)
        crashed_after = calls["n"]

        # Some cells completed (checkpointed by digest) before the crash.
        assert 0 < store.stats()["entries"] < 4 * 3
        resume_calls = {"n": 0}

        def counting(shard, result_sink=None):
            resume_calls["n"] += 1
            return real(shard, result_sink)

        monkeypatch.setattr(runner_module, "_execute_batch_shard", counting)
        resumed = run_scenario(self._grid_spec(), store=store)
        # Completed cells resume straight from their aggregate checkpoints:
        # only the crashed cell (and beyond) re-executes shards.
        assert 0 < resume_calls["n"] <= 4 - (crashed_after - 1)
        for a, b in zip(baseline, resumed):
            assert a.cell.coords == b.cell.coords
            for metric in ("success", "completion_round", "recovery_rounds",
                           "work_wasted"):
                assert a.mean(metric) == b.mean(metric), metric
