"""Batched-vs-serial equivalence suite for the batch simulation subsystem.

The batch engine promises two things:

1. In the **exact** rng mode (one child generator per trial) a batched run is
   *bit-identical* to running the serial engine trial by trial with the same
   generators — asserted here field by field for broadcast, gossip, flooding
   and the erasure collision model.
2. In the **fast** rng mode (one shared generator, vectorised draws) the
   per-trial topologies and seeds are spawned identically to the serial
   path, so aggregates are statistically interchangeable — asserted within
   tolerance on completion-round and energy statistics.
"""

import numpy as np
import pytest

from repro.baselines.flooding import (
    BatchBernoulliFlood,
    BatchDeterministicFlood,
    BernoulliFlood,
    DeterministicFlood,
)
from repro.baselines.gossip_uniform import BatchUniformScaleGossip, UniformScaleGossip
from repro.core.broadcast_random import (
    BatchEnergyEfficientBroadcast,
    EnergyEfficientBroadcast,
)
from repro.experiments.protocols import (
    BATCH_PROTOCOL_FACTORIES,
    PROTOCOL_FACTORIES,
    ProtocolSpec,
)
from repro.experiments.runner import (
    ExecutionPlan,
    Job,
    aggregate_runs,
    repeat_job,
)
from repro.graphs.builders import GraphSpec
from repro.graphs.random_digraph import (
    connectivity_threshold_probability,
    random_digraph,
)
from repro.radio.batch import BatchEngine, NetworkBatch, run_protocol_batch
from repro.radio.collision import (
    BatchStandardCollisionModel,
    ErasureCollisionModel,
    StandardCollisionModel,
)
from repro.radio.engine import SimulationEngine


def _serial_runs(networks, make_protocol, seeds, **engine_options):
    engine = SimulationEngine(engine_options.pop("collision_model", None), **engine_options)
    return [
        engine.run(net, make_protocol(), rng=np.random.default_rng(seed))
        for net, seed in zip(networks, seeds)
    ]


def _assert_traces_identical(serial, batched, *, check_arrays=False):
    assert len(serial) == len(batched)
    for s, b in zip(serial, batched):
        assert s.protocol_name == b.protocol_name
        assert s.n == b.n
        assert s.completed == b.completed
        assert s.completion_round == b.completion_round
        assert s.rounds_executed == b.rounds_executed
        assert s.energy == b.energy
        assert s.informed_count == b.informed_count
        if check_arrays:
            assert np.array_equal(s.per_node_transmissions, b.per_node_transmissions)
            if s.informed_round is not None:
                assert np.array_equal(s.informed_round, b.informed_round)


@pytest.fixture(scope="module")
def gnp_batch():
    """Eight distinct G(n, p) samples, as a repetition sweep would draw."""
    n = 192
    p = connectivity_threshold_probability(n, delta=4.0)
    return [random_digraph(n, p, rng=300 + t) for t in range(8)], p


class TestExactEquivalence:
    def test_algorithm1_bit_identical(self, gnp_batch):
        networks, p = gnp_batch
        seeds = list(range(50, 58))
        serial = _serial_runs(
            networks,
            lambda: EnergyEfficientBroadcast(p),
            seeds,
            run_to_quiescence=True,
            keep_arrays=True,
        )
        engine = BatchEngine(run_to_quiescence=True, keep_arrays=True)
        batched = engine.run(
            networks,
            BatchEnergyEfficientBroadcast(p),
            rngs=[np.random.default_rng(s) for s in seeds],
        )
        _assert_traces_identical(serial, batched, check_arrays=True)
        # Schedule metadata and the per-trial |U_t| history also agree.
        for s, b in zip(serial, batched):
            assert s.metadata["T"] == b.metadata["T"]
            assert s.metadata["active_history"] == b.metadata["active_history"]

    def test_gossip_bit_identical(self):
        n = 40
        p = 0.25
        networks = [random_digraph(n, p, rng=400 + t) for t in range(4)]
        seeds = [90, 91, 92, 93]
        serial = _serial_runs(networks, UniformScaleGossip, seeds)
        batched = BatchEngine().run(
            networks,
            BatchUniformScaleGossip(),
            rngs=[np.random.default_rng(s) for s in seeds],
        )
        _assert_traces_identical(serial, batched)

    def test_erasure_model_bit_identical(self, gnp_batch):
        networks, p = gnp_batch
        seeds = list(range(60, 68))
        serial = _serial_runs(
            networks,
            lambda: EnergyEfficientBroadcast(p),
            seeds,
            collision_model=ErasureCollisionModel(0.25),
            run_to_quiescence=True,
        )
        batched = BatchEngine(
            ErasureCollisionModel(0.25), run_to_quiescence=True
        ).run(
            networks,
            BatchEnergyEfficientBroadcast(p),
            rngs=[np.random.default_rng(s) for s in seeds],
        )
        _assert_traces_identical(serial, batched)

    def test_flooding_bit_identical(self, gnp_batch):
        networks, _ = gnp_batch
        seeds = list(range(70, 78))
        serial = _serial_runs(networks, lambda: BernoulliFlood(0.05), seeds)
        batched = BatchEngine().run(
            networks,
            BatchBernoulliFlood(0.05),
            rngs=[np.random.default_rng(s) for s in seeds],
        )
        _assert_traces_identical(serial, batched)

        serial = _serial_runs(
            networks, lambda: DeterministicFlood(max_transmissions_per_node=6), seeds
        )
        batched = BatchEngine().run(
            networks,
            BatchDeterministicFlood(max_transmissions_per_node=6),
            rngs=[np.random.default_rng(s) for s in seeds],
        )
        _assert_traces_identical(serial, batched)

    def test_record_rounds_bit_identical(self, gnp_batch):
        networks, p = gnp_batch
        seeds = list(range(80, 84))
        serial = _serial_runs(
            networks[:4],
            lambda: EnergyEfficientBroadcast(p),
            seeds,
            record_rounds=True,
        )
        batched = BatchEngine(record_rounds=True).run(
            networks[:4],
            BatchEnergyEfficientBroadcast(p),
            rngs=[np.random.default_rng(s) for s in seeds],
        )
        for s, b in zip(serial, batched):
            assert [r.as_dict() for r in s.rounds] == [r.as_dict() for r in b.rounds]

    def test_repeat_job_exact_mode_matches_serial(self):
        graph = GraphSpec("gnp", {"n": 128, "p": 0.08})
        protocol = ProtocolSpec("algorithm1", {"p": 0.08})
        serial = repeat_job(
            graph, protocol, repetitions=6, seed=11, batch=False, run_to_quiescence=True
        )
        batched = repeat_job(
            graph,
            protocol,
            repetitions=6,
            seed=11,
            batch=True,
            batch_mode="exact",
            run_to_quiescence=True,
        )
        _assert_traces_identical(serial, batched)
        # The topology samples are the same networks in both paths.
        assert [r.network_name for r in serial] == [r.network_name for r in batched]

    # Every registered protocol, exercised through the registry factories the
    # experiment layer uses.  Exact mode must be bit-identical to serial.
    _REGISTRY_CASES = [
        ("algorithm2", {"p": 0.2}, {"n": 48, "p": 0.2}, {}),
        ("algorithm3", {"diameter": 3}, {"n": 64, "p": 0.18}, {}),
        (
            "algorithm3",
            {"diameter": 3},
            {"n": 64, "p": 0.18},
            {"run_to_quiescence": True},
        ),
        ("tradeoff", {"diameter": 3, "lam": 4.0}, {"n": 64, "p": 0.18}, {}),
        ("decay", {}, {"n": 64, "p": 0.18}, {}),
        (
            "decay",
            {"max_phases_active": 3},
            {"n": 64, "p": 0.18},
            {"run_to_quiescence": True},
        ),
        (
            "time_invariant",
            {"distribution": {"kind": "fixed", "q": 0.06}},
            {"n": 64, "p": 0.18},
            {},
        ),
        (
            "time_invariant",
            {
                "distribution": {"kind": "alpha", "n": 64, "diameter": 3},
                "active_window": 60,
            },
            {"n": 64, "p": 0.18},
            {"run_to_quiescence": True},
        ),
        ("czumaj_rytter_known_d", {"diameter": 3}, {"n": 64, "p": 0.18}, {}),
        ("uniform_selection", {"diameter": 3}, {"n": 64, "p": 0.18}, {}),
        (
            "elsasser_gasieniec",
            {"p": 0.18},
            {"n": 64, "p": 0.18},
            {"run_to_quiescence": True},
        ),
        ("sequential_gossip", {}, {"n": 24, "p": 0.3}, {}),
    ]

    @pytest.mark.parametrize(
        "name,params,graph_params,options",
        _REGISTRY_CASES,
        ids=[
            f"{case[0]}{'-q' if case[3] else ''}{'-capped' if 'max_phases_active' in case[1] or 'active_window' in case[1] else ''}"
            for case in _REGISTRY_CASES
        ],
    )
    def test_registry_protocols_bit_identical(
        self, name, params, graph_params, options
    ):
        graph = GraphSpec("gnp", graph_params)
        protocol = ProtocolSpec(name, params)
        serial = repeat_job(
            graph, protocol, repetitions=4, seed=17, batch=False, **options
        )
        batched = repeat_job(
            graph,
            protocol,
            repetitions=4,
            seed=17,
            batch=True,
            batch_mode="exact",
            **options,
        )
        _assert_traces_identical(serial, batched)


class TestInvariants:
    def test_at_most_one_transmission_per_trial(self, gnp_batch):
        """Theorem 2.1's invariant holds in every trial of the batch path."""
        networks, p = gnp_batch
        results = run_protocol_batch(
            networks,
            BatchEnergyEfficientBroadcast(p),
            rng=5,
            run_to_quiescence=True,
            keep_arrays=True,
        )
        for result in results:
            assert result.energy.max_per_node <= 1
            assert result.per_node_transmissions.max() <= 1

    def test_stopped_trials_accrue_nothing(self, gnp_batch):
        """A trial that completes early neither transmits nor gains rounds."""
        networks, p = gnp_batch
        results = run_protocol_batch(
            networks, BatchEnergyEfficientBroadcast(p), rng=7
        )
        rounds = [r.rounds_executed for r in results]
        assert min(rounds) < max(rounds)  # trials genuinely stop at different times
        for result in results:
            if result.completed:
                assert result.rounds_executed == result.completion_round

    def test_shared_topology_batch(self, gnp_batch):
        networks, p = gnp_batch
        results = run_protocol_batch(
            networks[0], BatchEnergyEfficientBroadcast(p), trials=5, rng=3
        )
        assert len(results) == 5
        assert all(r.network_name == networks[0].name for r in results)


class TestBatchCollision:
    def test_batch_resolution_matches_per_trial_serial(self, gnp_batch):
        """One batched resolve == R serial resolves, trial by trial."""
        networks, _ = gnp_batch
        batch = NetworkBatch(networks)
        rng = np.random.default_rng(17)
        masks = rng.random((batch.trials, batch.n)) < 0.1
        outcome = BatchStandardCollisionModel().resolve(batch, masks)
        serial_model = StandardCollisionModel()
        for t, net in enumerate(networks):
            expected = serial_model.resolve(net, masks[t])
            assert np.array_equal(outcome.receivers_of(t), expected.receivers)
            assert np.array_equal(outcome.senders_of(t), expected.senders)
            assert np.array_equal(outcome.hear_counts[t], expected.hear_counts)
        assert int(outcome.receiver_counts.sum()) == outcome.receiver_flat.size

    def test_network_batch_rejects_mixed_sizes(self):
        a = random_digraph(16, 0.2, rng=1)
        b = random_digraph(17, 0.2, rng=1)
        with pytest.raises(ValueError):
            NetworkBatch([a, b])


class TestFastSeedingAggregates:
    def test_completion_aggregates_match_within_tolerance(self):
        """Fast-mode batching is statistically interchangeable with serial."""
        graph = GraphSpec("gnp", {"n": 256, "p": 0.06})
        protocol = ProtocolSpec("algorithm1", {"p": 0.06})
        serial = aggregate_runs(
            repeat_job(
                graph,
                protocol,
                repetitions=24,
                seed=5,
                batch=False,
                run_to_quiescence=True,
            )
        )
        batched = aggregate_runs(
            repeat_job(
                graph,
                protocol,
                repetitions=24,
                seed=5,
                batch=True,
                run_to_quiescence=True,
            )
        )
        assert batched["runs"] == serial["runs"]
        assert abs(batched["success_rate"] - serial["success_rate"]) <= 0.25
        s_rounds = serial["completion_rounds"].mean
        b_rounds = batched["completion_rounds"].mean
        assert b_rounds == pytest.approx(s_rounds, rel=0.35)
        s_tx = serial["total_transmissions"].mean
        b_tx = batched["total_transmissions"].mean
        assert b_tx == pytest.approx(s_tx, rel=0.35)

    def test_fast_mode_erasure_on_dense_rounds(self):
        """Erasure + listener filter + dense collision rounds compose.

        Regression: the erasure model filters receiver_flat before the lazy
        sender_flat is materialised; on rounds with enough gathered edges to
        take the dense-scan path this used to rebuild the senders from the
        already-filtered receivers and crash on a size mismatch.
        """
        runs = repeat_job(
            GraphSpec("gnp", {"n": 2048, "p": 0.02}),
            ProtocolSpec("algorithm1", {"p": 0.02}),
            repetitions=4,
            seed=0,
            erasure_probability=0.2,
            run_to_quiescence=True,
        )
        assert len(runs) == 4
        assert all(r.energy.max_per_node <= 1 for r in runs)

    def test_non_batchable_protocol_falls_back(self, monkeypatch):
        """With a registry entry removed, batch=True silently runs serial."""
        monkeypatch.delitem(BATCH_PROTOCOL_FACTORIES, "decay")
        graph = GraphSpec("gnp", {"n": 96, "p": 0.1})
        protocol = ProtocolSpec("decay", {})
        batched = repeat_job(graph, protocol, repetitions=3, seed=4, batch=True)
        serial = repeat_job(graph, protocol, repetitions=3, seed=4, batch=False)
        assert [r.completion_round for r in batched] == [
            r.completion_round for r in serial
        ]

    def test_batch_require_raises_when_not_batchable(self, monkeypatch):
        """batch='require' surfaces the silent fallback as an error."""
        monkeypatch.delitem(BATCH_PROTOCOL_FACTORIES, "decay")
        with pytest.raises(ValueError, match="not batchable"):
            repeat_job(
                GraphSpec("gnp", {"n": 32, "p": 0.2}),
                ProtocolSpec("decay", {}),
                repetitions=2,
                batch="require",
            )

    def test_batch_require_runs_when_batchable(self):
        runs = repeat_job(
            GraphSpec("gnp", {"n": 48, "p": 0.2}),
            ProtocolSpec("algorithm1", {"p": 0.2}),
            repetitions=3,
            seed=2,
            batch="require",
        )
        assert len(runs) == 3

    def test_invalid_batch_mode_rejected(self):
        with pytest.raises(ValueError):
            repeat_job(
                GraphSpec("gnp", {"n": 32, "p": 0.2}),
                ProtocolSpec("algorithm1", {"p": 0.2}),
                repetitions=2,
                batch_mode="approximate",
            )

    def test_job_metadata_attached(self):
        runs = repeat_job(
            GraphSpec("gnp", {"n": 64, "p": 0.15}),
            ProtocolSpec("algorithm1", {"p": 0.15}),
            repetitions=2,
            seed=9,
            label="batched-sweep",
        )
        for run in runs:
            assert run.metadata["job"]["protocol"]["name"] == "algorithm1"
            assert run.metadata["label"] == "batched-sweep"


class TestRegistryCoverage:
    def test_every_protocol_has_a_batched_implementation(self):
        """The unified pipeline covers the full protocol registry."""
        assert BATCH_PROTOCOL_FACTORIES.keys() == PROTOCOL_FACTORIES.keys()

    def test_batched_names_match_serial_names(self):
        """Batched runs drop into existing experiment tables unchanged."""
        cases = {
            "algorithm1": {"p": 0.1},
            "algorithm2": {"p": 0.1},
            "algorithm3": {"diameter": 3},
            "tradeoff": {"diameter": 3, "lam": 3.0},
            "time_invariant": {"distribution": 0.1},
            "decay": {},
            "elsasser_gasieniec": {"p": 0.1},
            "czumaj_rytter_known_d": {"diameter": 3},
            "uniform_selection": {"diameter": 3},
            "deterministic_flood": {},
            "bernoulli_flood": {"q": 0.1},
            "uniform_gossip": {},
            "sequential_gossip": {},
        }
        assert cases.keys() == PROTOCOL_FACTORIES.keys()
        for name, params in cases.items():
            serial = PROTOCOL_FACTORIES[name](**params)
            batched = BATCH_PROTOCOL_FACTORIES[name](**params)
            assert serial.name == batched.name, name


class TestShardedFanOut:
    def test_plan_shards_are_contiguous_and_cover_all_jobs(self):
        graph = GraphSpec("gnp", {"n": 32, "p": 0.2})
        protocol = ProtocolSpec("algorithm1", {"p": 0.2})
        jobs = tuple(
            Job(graph=graph, protocol=protocol, seed=s) for s in range(7)
        )
        plan = ExecutionPlan(jobs=jobs, processes=3)
        shards = plan.shards()
        assert len(shards) == 3
        sizes = [len(s.jobs) for s in shards]
        assert sum(sizes) == 7 and max(sizes) - min(sizes) <= 1
        flat = [job for shard in shards for job in shard.jobs]
        assert list(flat) == list(jobs)

    def test_sharded_exact_mode_is_bit_identical_to_serial(self):
        """processes=K + batch=True runs K sharded batches, not serial jobs."""
        graph = GraphSpec("gnp", {"n": 96, "p": 0.1})
        protocol = ProtocolSpec("algorithm1", {"p": 0.1})
        serial = repeat_job(
            graph, protocol, repetitions=6, seed=3, batch=False,
            run_to_quiescence=True,
        )
        sharded = repeat_job(
            graph,
            protocol,
            repetitions=6,
            seed=3,
            processes=2,
            batch=True,
            batch_mode="exact",
            run_to_quiescence=True,
        )
        _assert_traces_identical(serial, sharded)

    def test_sharded_fast_mode_uses_same_topologies(self):
        graph = GraphSpec("gnp", {"n": 64, "p": 0.15})
        protocol = ProtocolSpec("algorithm2", {"p": 0.15})
        unsharded = repeat_job(graph, protocol, repetitions=4, seed=6)
        sharded = repeat_job(graph, protocol, repetitions=4, seed=6, processes=2)
        assert [r.network_name for r in unsharded] == [
            r.network_name for r in sharded
        ]
        assert all(r.completed for r in sharded)


class TestScheduledResolution:
    def test_mega_gather_matches_per_round_resolution(self, gnp_batch):
        """Fast-mode Phase-3 mega-gather is bit-identical to per-round resolves.

        Fast mode fixes all of Phase 3's randomness the moment the pool is
        (geometric pre-sampling), so resolving the remaining rounds up front
        must change nothing observable.
        """
        networks, p = gnp_batch
        for quiescence in (False, True):
            mega = BatchEngine(
                run_to_quiescence=quiescence, scheduled_resolution=True
            ).run(networks, BatchEnergyEfficientBroadcast(p), rng=13)
            per_round = BatchEngine(
                run_to_quiescence=quiescence, scheduled_resolution=False
            ).run(networks, BatchEnergyEfficientBroadcast(p), rng=13)
            _assert_traces_identical(per_round, mega)

    @pytest.mark.parametrize("max_chunk_edges", [1, 50, 1 << 22])
    def test_chunked_resolver_matches_per_round_resolution(
        self, gnp_batch, max_chunk_edges
    ):
        """Chunk boundaries never change the resolved deliveries."""
        from repro.radio.batch import (
            ScheduledTransmissions,
            resolve_scheduled_rounds,
        )

        networks, _ = gnp_batch
        batch = NetworkBatch(networks)
        rng = np.random.default_rng(23)
        rounds = 5
        buckets = [
            np.flatnonzero(rng.random(batch.total_nodes) < 0.01)
            for _ in range(rounds)
        ]
        buckets[2] = buckets[2][:0]  # an empty round inside the schedule
        offsets = np.concatenate(
            [[0], np.cumsum([b.size for b in buckets])]
        )
        schedule = ScheduledTransmissions(
            tx_flat=np.concatenate(buckets),
            offsets=offsets,
            first_round=4,
        )
        resolved = resolve_scheduled_rounds(
            batch, schedule, max_chunk_edges=max_chunk_edges
        )
        model = BatchStandardCollisionModel()
        for r, bucket in enumerate(buckets):
            expected = model.resolve(batch, bucket.astype(np.int64))
            assert np.array_equal(
                np.sort(resolved[4 + r]), np.sort(expected.receiver_flat)
            ), f"round {r}"

    def test_schedule_slicing(self):
        import numpy as np

        from repro.radio.batch import ScheduledTransmissions

        tx = np.array([0, 5, 9, 12, 30], dtype=np.int64)
        offsets = np.array([0, 2, 2, 3, 5], dtype=np.int64)
        schedule = ScheduledTransmissions(
            tx_flat=tx, offsets=offsets, first_round=10
        )
        assert schedule.num_rounds == 4
        part = schedule.slice(1, 3)
        assert part.first_round == 11
        assert part.num_rounds == 2
        assert list(part.tx_flat) == [9]
        assert list(part.offsets) == [0, 0, 1]
