"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.graphs.random_digraph import random_digraph
from repro.graphs.structured import path_network, path_of_cliques, star_network
from repro.radio.network import RadioNetwork


@pytest.fixture
def rng():
    """A deterministic generator for tests."""
    return np.random.default_rng(12345)


@pytest.fixture
def tiny_network():
    """A hand-built 5-node directed network with known structure.

    Edges (u -> v means v can hear u)::

        0 -> 1, 0 -> 2, 1 -> 3, 2 -> 3, 3 -> 4
    """
    return RadioNetwork(
        5, [(0, 1), (0, 2), (1, 3), (2, 3), (3, 4)], name="tiny"
    )


@pytest.fixture
def small_gnp():
    """A connected directed G(n, p) used by protocol integration tests."""
    return random_digraph(200, 0.08, rng=7, name="gnp-small")


@pytest.fixture
def small_path():
    """A 12-node bidirectional path."""
    return path_network(12)


@pytest.fixture
def small_star():
    """A 10-node star centred at node 0."""
    return star_network(10, center=0)


@pytest.fixture
def small_cliques():
    """A small path of cliques (bounded diameter, local contention)."""
    return path_of_cliques(6, 6)
