"""Tests for repro.analysis.statistics."""

import math

import numpy as np
import pytest

from repro.analysis.statistics import (
    success_probability,
    summarize,
    wilson_interval,
)


class TestSummarize:
    def test_basic_values(self):
        stats = summarize([1.0, 2.0, 3.0, 4.0])
        assert stats.count == 4
        assert stats.mean == pytest.approx(2.5)
        assert stats.median == pytest.approx(2.5)
        assert stats.minimum == 1.0 and stats.maximum == 4.0

    def test_single_value(self):
        stats = summarize([5.0])
        assert stats.std == 0.0
        assert stats.ci_low == stats.ci_high == 5.0

    def test_confidence_interval_contains_mean(self):
        rng = np.random.default_rng(1)
        sample = rng.normal(10.0, 2.0, size=200)
        stats = summarize(sample)
        assert stats.ci_low < 10.2 and stats.ci_high > 9.8
        assert stats.ci_low <= stats.mean <= stats.ci_high

    def test_interval_narrows_with_sample_size(self):
        rng = np.random.default_rng(2)
        small = summarize(rng.normal(0, 1, 20))
        large = summarize(rng.normal(0, 1, 2000))
        assert (large.ci_high - large.ci_low) < (small.ci_high - small.ci_low)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            summarize([])

    def test_non_finite_rejected(self):
        with pytest.raises(ValueError):
            summarize([1.0, float("nan")])

    def test_invalid_confidence(self):
        with pytest.raises(ValueError):
            summarize([1.0, 2.0], confidence=1.5)

    def test_as_dict(self):
        d = summarize([1.0, 2.0]).as_dict()
        assert {"count", "mean", "std", "median"} <= set(d)

    def test_str(self):
        assert "n=2" in str(summarize([1.0, 2.0]))


class TestSuccessProbability:
    def test_basic(self):
        assert success_probability(3, 4) == 0.75

    def test_invalid(self):
        with pytest.raises(ValueError):
            success_probability(5, 4)
        with pytest.raises(ValueError):
            success_probability(1, 0)
        with pytest.raises(ValueError):
            success_probability(-1, 4)


class TestWilsonInterval:
    def test_contains_rate(self):
        low, high = wilson_interval(90, 100)
        assert low <= 0.9 <= high
        assert 0.0 <= low and high <= 1.0

    def test_perfect_success_interval_not_degenerate(self):
        low, high = wilson_interval(20, 20)
        assert high == 1.0
        assert low < 1.0  # Wilson keeps a sensible lower bound below 1

    def test_zero_successes(self):
        low, high = wilson_interval(0, 20)
        assert low == 0.0
        assert high > 0.0

    def test_narrows_with_trials(self):
        low_small, high_small = wilson_interval(8, 10)
        low_big, high_big = wilson_interval(800, 1000)
        assert (high_big - low_big) < (high_small - low_small)

    def test_invalid_confidence(self):
        with pytest.raises(ValueError):
            wilson_interval(1, 2, confidence=0.0)
