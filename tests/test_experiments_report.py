"""Tests for the Markdown report generator and the `repro report` command."""

import json

import pytest

from repro.cli import main
from repro.experiments.report import generate_report, result_to_markdown
from repro.experiments.results import ExperimentResult


def _toy_result():
    return ExperimentResult(
        experiment_id="EX",
        title="toy",
        claim="a claim",
        columns=["a", "b"],
        rows=[[1, 2.34567], [True, None]],
        notes=["first note"],
        parameters={"scale": "quick"},
    )


class TestResultToMarkdown:
    def test_contains_header_claim_and_table(self):
        text = result_to_markdown(_toy_result())
        assert text.startswith("## EX — toy")
        assert "**Claim.** a claim" in text
        assert "| a | b |" in text
        assert "| 1 | 2.346 |" in text
        assert "| yes | - |" in text
        assert "* first note" in text
        assert "_Parameters: scale=quick_" in text

    def test_no_notes_no_bullets(self):
        result = _toy_result()
        result.notes = []
        result.parameters = {}
        text = result_to_markdown(result)
        assert not any(line.startswith("* ") for line in text.splitlines())
        assert "_Parameters" not in text


class TestGenerateReport:
    def test_writes_report_and_json(self, tmp_path):
        paths = generate_report(
            tmp_path / "out", experiment_ids=["E9"], scale="quick", seed=0
        )
        assert paths.report.exists()
        content = paths.report.read_text()
        assert "E9" in content
        assert "alpha" in content
        assert len(paths.json_files) == 1
        payload = json.loads(paths.json_files[0].read_text())
        assert payload["experiment_id"] == "E9"

    def test_default_includes_all_ids(self, tmp_path, monkeypatch):
        # Avoid running every experiment: patch run_experiment to a stub.
        import repro.experiments.report as report_mod

        calls = []

        def fake_run(experiment_id, scale="quick", seed=0, processes=None):
            calls.append(experiment_id)
            result = _toy_result()
            result.experiment_id = experiment_id
            return result

        monkeypatch.setattr(report_mod, "run_experiment", fake_run)
        paths = generate_report(tmp_path / "all", scale="quick", seed=0)
        from repro.experiments.registry import all_experiments

        expected = len(all_experiments())
        assert len(calls) == expected
        assert len(paths.json_files) == expected


class TestCliReport:
    def test_report_subcommand(self, tmp_path, capsys):
        code = main(
            ["report", "--output", str(tmp_path / "rep"), "--experiments", "E9"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "report.md" in out
        assert (tmp_path / "rep" / "report.md").exists()
        assert (tmp_path / "rep" / "E9.json").exists()
