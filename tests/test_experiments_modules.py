"""Smoke/shape tests of the experiment modules themselves.

The cheap deterministic experiments are run for real; the stochastic sweeps
are exercised at ``quick`` scale but with a reduced footprint where the
module allows it.  The full ``quick``-scale outputs are produced by the
benchmark suite (one bench per experiment) and recorded in EXPERIMENTS.md.
"""

import pytest

from repro.experiments import run_experiment
from repro.experiments.results import ExperimentResult


@pytest.mark.parametrize("experiment_id", ["E7", "E9"])
def test_cheap_experiments_run_and_have_rows(experiment_id):
    result = run_experiment(experiment_id, scale="quick", seed=0)
    assert isinstance(result, ExperimentResult)
    assert result.rows
    assert result.columns
    assert all(len(row) == len(result.columns) for row in result.rows)


def test_e9_fig1_properties_hold():
    result = run_experiment("E9", scale="quick", seed=0)
    by_dist = {}
    for row in result.rows:
        by_dist.setdefault(row[3], []).append(row)
    # Alpha rows: floor column (min_k Pr * 2 log n) is Θ(1); ratio column >= 1/2.
    for row in by_dist["alpha"]:
        assert row[4] >= 0.5
        assert row[6] >= 0.5
    # Alpha' rows exist for every (n, D) pair.
    assert len(by_dist["alpha_prime"]) == len(by_dist["alpha"])


def test_e7_lower_bound_holds_for_every_q():
    result = run_experiment("E7", scale="quick", seed=0)
    # Column 5 is "relay tx / (n log2 n / 2)": the lower bound says this must
    # not drop below a constant; we check a conservative 0.5 for successful rows.
    for row in result.rows:
        success_rate, normalised = row[2], row[5]
        if success_rate >= 0.8 and normalised == normalised:  # not NaN
            assert normalised >= 0.5


def test_e6_tradeoff_shape():
    result = run_experiment("E6", scale="quick", seed=0)
    energies = [row[4] for row in result.rows if row[4] is not None]
    lambdas = [row[0] for row in result.rows]
    assert lambdas == sorted(lambdas)
    # Energy at the largest lambda should not exceed energy at the smallest.
    assert energies[-1] <= energies[0] * 1.15


def test_e5_energy_advantage_direction():
    result = run_experiment("E5", scale="quick", seed=0)
    # Group rows by workload; within each, algorithm3 must use fewer mean
    # transmissions per node than czumaj_rytter.
    by_workload = {}
    for row in result.rows:
        by_workload.setdefault(row[0], {})[row[4]] = row
    for workload, protocols in by_workload.items():
        alg3 = protocols["algorithm3"]
        cr = protocols["czumaj_rytter"]
        assert alg3[8] < cr[8], f"Algorithm 3 should be cheaper on {workload}"


def test_results_are_json_serialisable():
    result = run_experiment("E9", scale="quick", seed=0)
    text = result.to_json()
    back = ExperimentResult.from_json(text)
    assert back.experiment_id == "E9"
