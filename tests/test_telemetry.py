"""The telemetry spine: spans, metrics, relay, progress, and digest safety.

Contracts pinned here:

1. **Disabled is free and inert.**  With no pipeline installed every entry
   point returns immediately (``span`` hands back one shared no-op
   singleton) and nothing is recorded anywhere.
2. **Hierarchy survives execution.**  A grid run produces the
   ``sweep → cell → shard → round-phase`` tree with exact trial counts at
   every layer — in process and across a real worker pool, however the
   shards interleave (the cross-process relay re-parents worker records
   under the right cell and tags them with their shard label).
3. **Queue liveness events.**  A killed worker emits one
   ``queue.worker_death`` followed by a ``queue.retry`` per affected task
   (label, attempt, backoff), in that order.
4. **Telemetry never touches a digest.**  Store keys are bit-identical
   with telemetry on or off, pinned against the same hard-coded digest the
   kernel layer pins.
"""

import io
import json
import os

import pytest

from repro import telemetry
from repro.experiments.common import execution_provenance
from repro.experiments.protocols import ProtocolSpec
from repro.experiments.runner import build_repetition_plan
from repro.graphs.builders import GraphSpec
from repro.jobs.queue import JobQueue, ProcessPoolBackend
from repro.scenarios import SweepCell, SweepGrid, run_grid
from repro.scenarios.runtime import (
    DEFAULT_SHARD_TRIALS,
    MAX_SHARD_TRIALS,
    _shard_trials_for,
)
from repro.telemetry import (
    FileSink,
    MemorySink,
    MetricsRegistry,
    ProgressReporter,
    configure_telemetry,
    fold_trace,
    render_summary,
    summarize_trace,
    telemetry_shutdown,
)
from repro.telemetry.spans import _NOOP_SPAN


@pytest.fixture(autouse=True)
def _clean_pipeline():
    """Every test starts and ends with telemetry disabled (process-global)."""
    telemetry_shutdown()
    yield
    telemetry_shutdown()


def _memory_pipeline():
    sink = MemorySink()
    configure_telemetry(sink=sink)
    return sink


def _decay_cell(n=32, repetitions=4, p=0.2):
    return SweepCell(
        coords={"n": n},
        graph=GraphSpec("gnp", {"n": n, "p": p}),
        protocol=ProtocolSpec("decay", {}),
        repetitions=repetitions,
        metrics=("success",),
    )


# --------------------------------------------------------------------------- #
# Disabled fast path
# --------------------------------------------------------------------------- #
class TestDisabled:
    def test_disabled_by_default(self):
        assert not telemetry.enabled()
        assert telemetry.get_pipeline() is None

    def test_span_returns_shared_noop_singleton(self):
        assert telemetry.span("cell", "a") is _NOOP_SPAN
        assert telemetry.span("shard", "b") is _NOOP_SPAN
        with telemetry.span("sweep", "c") as s:
            s.annotate(anything=1)  # must not raise

    def test_events_and_metrics_are_inert(self):
        telemetry.event("nothing", x=1)
        telemetry.counter_inc("nothing")
        telemetry.gauge_set("nothing", 1.0)
        telemetry.histogram_observe("nothing", 1.0)
        telemetry.aggregate_span("round-phase", "transmit", 0.1)
        telemetry.ingest({"records": [], "metrics": {}})
        assert telemetry.current_registry() is None

    def test_provenance_reports_disabled(self):
        assert telemetry.telemetry_provenance() == {"enabled": False}
        assert execution_provenance()["telemetry"] == {"enabled": False}


# --------------------------------------------------------------------------- #
# Core pipeline
# --------------------------------------------------------------------------- #
class TestPipeline:
    def test_span_nesting_and_record_order(self):
        sink = _memory_pipeline()
        with telemetry.span("sweep", "outer", cells=1) as outer:
            with telemetry.span("cell", "inner", trials=3):
                telemetry.event("tick", k=1)
            outer.annotate(done=True)
        kinds = [r["type"] for r in sink.records]
        assert kinds == [
            "config", "span_begin", "span_begin", "event",
            "span_end", "span_end",
        ]
        begin_outer, begin_inner = sink.records[1], sink.records[2]
        assert begin_outer["parent"] is None
        assert begin_inner["parent"] == begin_outer["span"]
        assert sink.records[3]["parent"] == begin_inner["span"]
        # seq is a single total order; end attrs carry annotations.
        assert [r["seq"] for r in sink.records] == list(range(6))
        assert sink.records[5]["attrs"] == {"done": True}
        assert sink.records[5]["seconds"] >= 0

    def test_exception_annotates_and_unwinds(self):
        sink = _memory_pipeline()
        with pytest.raises(ValueError):
            with telemetry.span("cell", "boom"):
                raise ValueError("no")
        end = [r for r in sink.records if r["type"] == "span_end"][0]
        assert end["attrs"]["error"] == "ValueError"
        assert telemetry.get_pipeline().current_span() is None

    def test_metrics_snapshot_emitted_on_shutdown(self):
        sink = _memory_pipeline()
        telemetry.counter_inc("a", 2)
        telemetry.counter_inc("a")
        telemetry.gauge_set("g", 7.5)
        telemetry.histogram_observe("h", 1.0)
        telemetry.histogram_observe("h", 3.0)
        telemetry_shutdown()
        metrics = [r for r in sink.records if r["type"] == "metrics"][0]["metrics"]
        assert metrics["counters"]["a"] == 3
        assert metrics["gauges"]["g"] == 7.5
        assert metrics["histograms"]["h"]["count"] == 2
        assert metrics["histograms"]["h"]["mean"] == 2.0

    def test_configure_replaces_and_closes_previous(self):
        first = _memory_pipeline()
        second = MemorySink()
        configure_telemetry(sink=second)
        # The first pipeline was closed: its metrics record is in place and
        # new emissions land only on the second sink.
        assert first.records[-1]["type"] == "metrics"
        telemetry.event("later")
        assert not any(r["type"] == "event" for r in first.records)
        assert any(r["type"] == "event" for r in second.records)

    def test_provenance_reports_sinks(self):
        _memory_pipeline()
        stamp = execution_provenance()["telemetry"]
        assert stamp == {"enabled": True, "sinks": ["memory"]}


class TestRegistry:
    def test_merge_combines_counters_and_histograms(self):
        a = MetricsRegistry()
        a.counter_inc("c", 2)
        a.histogram_observe("h", 1.0)
        b = MetricsRegistry()
        b.counter_inc("c", 3)
        b.gauge_set("g", 1.0)
        b.histogram_observe("h", 5.0)
        a.merge(b.snapshot())
        snap = a.snapshot()
        assert snap["counters"]["c"] == 5
        assert snap["gauges"]["g"] == 1.0
        assert snap["histograms"]["h"]["count"] == 2
        assert snap["histograms"]["h"]["max"] == 5.0


class TestRelay:
    def test_capture_ingest_reparents_and_tags(self):
        sink = _memory_pipeline()
        with telemetry.span("cell", "parent-cell") as cell_span:
            with telemetry.capture("w1") as captured:
                with telemetry.span("shard", "inner"):
                    telemetry.counter_inc("engine.trials", 5)
            telemetry.ingest(captured.payload(), shard="w1")
        begins = [r for r in sink.records if r["type"] == "span_begin"]
        shard_begin = [r for r in begins if r["layer"] == "shard"][0]
        assert shard_begin["parent"] == cell_span.id
        assert shard_begin["span"].startswith("w1/")
        assert shard_begin["attrs"]["shard"] == "w1"
        assert "worker_t" in shard_begin
        assert telemetry.current_registry().counter("engine.trials") == 5

    def test_capture_restores_parent_pipeline(self):
        _memory_pipeline()
        parent = telemetry.get_pipeline()
        with telemetry.capture("w"):
            assert telemetry.get_pipeline() is not parent
        assert telemetry.get_pipeline() is parent


# --------------------------------------------------------------------------- #
# Execution layers
# --------------------------------------------------------------------------- #
class TestGridSpans:
    def _fold(self, sink):
        return fold_trace(sink.records)

    def test_in_process_grid_produces_full_tree(self):
        sink = _memory_pipeline()
        grid = SweepGrid(cells=(_decay_cell(n=24), _decay_cell(n=32)))
        run_grid(grid, seed=3, store=False)
        summary = self._fold(sink)
        layers = summary["layers"]
        assert layers["sweep"]["spans"] == 1
        assert layers["cell"]["spans"] == 2
        assert layers["sweep"]["trials"] == 8
        assert layers["cell"]["trials"] == 8
        assert layers["shard"]["trials"] == 8
        assert layers["round-phase"]["spans"] >= 3
        # One root (the sweep), cells under it, shards under cells.
        assert len(summary["roots"]) == 1
        sweep_info = summary["spans"][summary["roots"][0]]
        assert sweep_info["layer"] == "sweep"
        cell_ids = sweep_info["children"]
        assert {summary["spans"][c]["layer"] for c in cell_ids} == {"cell"}
        for cell_id in cell_ids:
            for shard_id in summary["spans"][cell_id]["children"]:
                assert summary["spans"][shard_id]["layer"] == "shard"
        counters = telemetry.current_registry().snapshot()["counters"]
        assert counters["engine.trials"] == 8
        assert counters["kernels.resolved.numpy"] >= 2
        assert counters["nodesets.backend.dense"] >= 2

    def test_process_pool_shards_attribute_to_their_cell(self):
        sink = _memory_pipeline()
        grid = SweepGrid(
            cells=(_decay_cell(n=24, repetitions=8),
                   _decay_cell(n=32, repetitions=8))
        )
        run_grid(grid, seed=3, store=False, processes=2, shards=2)
        summary = self._fold(sink)
        assert summary["layers"]["shard"]["spans"] == 4
        assert summary["layers"]["shard"]["trials"] == 16
        # However the pool interleaved completions, every shard span hangs
        # under the cell that spawned it and is tagged with its own label.
        for cell_id in summary["spans"][summary["roots"][0]]["children"]:
            cell_info = summary["spans"][cell_id]
            assert len(cell_info["children"]) == 2
            assert sum(
                summary["spans"][s]["attrs"]["trials"]
                for s in cell_info["children"]
            ) == 8
            for shard_id in cell_info["children"]:
                shard_info = summary["spans"][shard_id]
                tag = shard_info["attrs"]["shard"]
                assert shard_info["name"] == tag
                # Relayed ids carry the worker prefix -> no collisions.
                assert shard_id.startswith(f"{tag}/")
        # Worker registries merged additively into the parent's.
        counters = telemetry.current_registry().snapshot()["counters"]
        assert counters["engine.trials"] == 16

    def test_cell_span_annotated_with_counts(self):
        sink = _memory_pipeline()
        run_grid(SweepGrid(cells=(_decay_cell(),)), seed=1, store=False)
        cell_end = [
            r for r in sink.records
            if r["type"] == "span_end" and r["layer"] == "cell"
        ][0]
        assert cell_end["attrs"]["executed"] == 4


class TestShardSizeEvents:
    def test_floor_clamp_emits_selection_event(self):
        sink = _memory_pipeline()
        assert _shard_trials_for(8192) == DEFAULT_SHARD_TRIALS
        events = [r for r in sink.records if r["type"] == "event"]
        assert len(events) == 1
        attrs = events[0]["attrs"]
        assert events[0]["name"] == "scenario.shard_size"
        assert attrs["reason"] == "floor"
        assert attrs["chosen"] == DEFAULT_SHARD_TRIALS
        assert attrs["budget_trials"] == 8

    def test_ceiling_clamp_emits_selection_event(self):
        sink = _memory_pipeline()
        assert _shard_trials_for(4) == MAX_SHARD_TRIALS
        attrs = [r for r in sink.records if r["type"] == "event"][0]["attrs"]
        assert attrs["reason"] == "ceiling"
        assert attrs["chosen"] == MAX_SHARD_TRIALS

    def test_unclamped_size_is_silent(self):
        sink = _memory_pipeline()
        assert _shard_trials_for(64) == 1024  # budget == chosen
        assert not any(r["type"] == "event" for r in sink.records)


# --------------------------------------------------------------------------- #
# Queue events
# --------------------------------------------------------------------------- #
def _die_unless_marker(task):
    marker, value = task
    if not os.path.exists(marker):
        with open(marker, "w") as handle:
            handle.write("seen")
        os._exit(13)
    return value


def _die_outside_parent(task):
    parent_pid, value = task
    if os.getpid() != parent_pid:
        os._exit(13)
    return value


class TestQueueEvents:
    def test_worker_death_then_per_task_retry_events(self, tmp_path):
        sink = _memory_pipeline()
        backend = ProcessPoolBackend(2, max_retries=2, retry_backoff=0.01)
        tasks = [(str(tmp_path / f"marker-{i}"), i) for i in range(3)]
        labels = [f"cell-{i:04x}" for i in range(3)]
        results = JobQueue(backend).run(
            _die_unless_marker, tasks, task_labels=labels
        )
        assert results == [0, 1, 2]
        events = [r for r in sink.records if r["type"] == "event"]
        deaths = [e for e in events if e["name"] == "queue.worker_death"]
        retries = [e for e in events if e["name"] == "queue.retry"]
        assert deaths and retries
        # Ordering: the death event precedes its retry fan-out.
        assert events.index(deaths[0]) < events.index(retries[0])
        first = retries[0]["attrs"]
        assert first["task"] in labels
        assert first["attempt"] == 1
        assert first["backoff_seconds"] == pytest.approx(0.01)
        assert first["on_pool"] is True
        registry = telemetry.current_registry().snapshot()["counters"]
        assert registry["queue.worker_deaths"] == len(deaths)
        assert registry["queue.retried_tasks"] == len(retries)

    def test_exhausted_retries_emit_fallback_event(self):
        sink = _memory_pipeline()
        backend = ProcessPoolBackend(2, max_retries=0, retry_backoff=0.0)
        tasks = [(os.getpid(), i) for i in range(2)]
        results = JobQueue(backend).run(
            _die_outside_parent, tasks, task_labels=["cell-a", "cell-b"]
        )
        assert results == [0, 1]
        events = [r for r in sink.records if r["type"] == "event"]
        fallback = [e for e in events if e["name"] == "queue.fallback"][0]
        assert fallback["attrs"]["tasks"] == ["cell-a", "cell-b"]
        counters = telemetry.current_registry().snapshot()["counters"]
        assert counters["queue.in_process_fallbacks"] == 2


# --------------------------------------------------------------------------- #
# Digest safety
# --------------------------------------------------------------------------- #
class TestDigestSafety:
    GRAPH = GraphSpec("gnp", {"n": 32, "p": 0.25})
    PROTOCOL = ProtocolSpec("decay", {})
    PINNED = (
        "d884c5e90af1ae70ab5bd025b7378e68"
        "02af16b2369e53a14be3fc7fee3817b8"
    )

    def _keys(self):
        return build_repetition_plan(
            self.GRAPH, self.PROTOCOL, repetitions=2, seed=5,
            batch_mode="exact",
        ).job_keys()

    def test_digests_identical_with_telemetry_on_or_off(self):
        off = self._keys()
        _memory_pipeline()
        on = self._keys()
        assert on == off
        # Same hard pin the kernel layer holds: telemetry must never move it.
        assert on[0] == self.PINNED

    def test_cache_context_has_no_telemetry_key(self):
        _memory_pipeline()
        plan = build_repetition_plan(
            self.GRAPH, self.PROTOCOL, repetitions=2, seed=5
        )
        assert "telemetry" not in plan.cache_context()


# --------------------------------------------------------------------------- #
# Summarize + progress + CLI
# --------------------------------------------------------------------------- #
class TestSummarize:
    def test_file_trace_roundtrip_with_torn_tail(self, tmp_path):
        trace = tmp_path / "trace.jsonl"
        configure_telemetry(sink=FileSink(trace))
        with telemetry.span("sweep", "s", trials=2):
            with telemetry.span("cell", "c", trials=2):
                telemetry.event("progress", completed=2, total=2)
        telemetry_shutdown()
        with open(trace, "a") as fh:
            fh.write('{"type": "event", "name": "torn')  # no newline, no close
        summary = summarize_trace(trace)
        assert summary["layers"]["sweep"]["trials"] == 2
        assert summary["events"] == {"progress": 1}
        rendered = render_summary(summary)
        assert "sweep" in rendered and "span tree:" in rendered

    def test_end_without_begin_counts_as_root(self):
        summary = fold_trace([
            {"type": "span_end", "span": "x", "layer": "cell",
             "name": "late", "seconds": 1.5, "attrs": {}},
        ])
        assert summary["roots"] == ["x"]
        assert summary["layers"]["cell"]["seconds"] == 1.5

    def test_render_includes_gauges_section(self):
        summary = fold_trace([
            {"type": "metrics",
             "metrics": {"counters": {"engine.compactions": 2},
                         "gauges": {"engine.occupancy": 0.75}}},
        ])
        rendered = render_summary(summary)
        assert "gauges:" in rendered
        assert "engine.occupancy: 0.75" in rendered
        assert "engine.compactions: 2" in rendered


class TestProgressReporter:
    def _records(self):
        return [
            {"type": "span_begin", "span": "s1", "layer": "sweep",
             "name": "demo", "attrs": {"cells": 1, "trials": 10}},
            {"type": "span_begin", "span": "s2", "layer": "cell",
             "name": "[n=8]", "attrs": {"trials": 10}},
            {"type": "event", "name": "progress",
             "attrs": {"completed": 5, "total": 10, "cache_hit_ratio": 0.4,
                       "metric": "success", "mean": 1.0, "ci_width": 0.2}},
            {"type": "span_end", "span": "s2", "layer": "cell",
             "name": "[n=8]", "seconds": 0.5,
             "attrs": {"executed": 6, "served": 4}},
            {"type": "span_end", "span": "s1", "layer": "sweep",
             "name": "demo", "seconds": 0.5, "attrs": {}},
        ]

    def test_plain_stream_gets_per_cell_lines(self):
        out = io.StringIO()
        reporter = ProgressReporter(out, live=False)
        for record in self._records():
            reporter.emit(record)
        reporter.close()
        text = out.getvalue()
        assert "5/10 trials" in text
        assert "cache 40%" in text
        assert "success=1" in text
        assert "cell [n=8] done" in text and "executed=6, cached=4" in text
        assert "sweep done: 1 cell(s)" in text

    def test_live_stream_rewrites_one_line(self):
        out = io.StringIO()
        reporter = ProgressReporter(out, live=True)
        for record in self._records():
            reporter.emit(record)
        reporter.close()
        assert "\r\x1b[2K" in out.getvalue()

    def test_sweep_emits_progress_events(self):
        """The runtime's progress cadence, exercised end to end by shrinking
        the interval (real sweeps emit every few hundred trials)."""
        from repro.scenarios import runtime

        sink = _memory_pipeline()
        old = runtime._PROGRESS_EVERY
        runtime._PROGRESS_EVERY = 2
        try:
            run_grid(SweepGrid(cells=(_decay_cell(),)), seed=1, store=False)
        finally:
            runtime._PROGRESS_EVERY = old
        progress = [
            r for r in sink.records
            if r["type"] == "event" and r["name"] == "progress"
        ]
        assert progress
        attrs = progress[-1]["attrs"]
        assert attrs["total"] == 4
        assert 0 < attrs["completed"] <= 4


class TestCli:
    def test_sweep_trace_and_summarize_roundtrip(self, tmp_path, capsys):
        from repro.cli import main

        from repro.scenarios import ScenarioSpec

        spec = ScenarioSpec(
            scenario_id="cli-smoke",
            grid=SweepGrid(cells=(_decay_cell(n=24, repetitions=2),)),
            metrics=("success",),
            seed=1,
        )
        grid_file = tmp_path / "grid.json"
        grid_file.write_text(json.dumps(spec.as_dict()))
        trace = tmp_path / "trace.jsonl"
        code = main([
            "sweep", "--grid", str(grid_file),
            "--cache-dir", str(tmp_path / "cache"),
            "--telemetry", str(trace), "--no-progress",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "[cache]" in out and "2 missed, 2 stored" in out
        assert f"[telemetry] trace written to {trace}" in out
        assert not telemetry.enabled()  # CLI shut its pipeline down

        code = main(["telemetry", "summarize", str(trace)])
        assert code == 0
        report = capsys.readouterr().out
        assert "sweep" in report and "cell" in report and "shard" in report
        assert "trials=2" in report
        assert "store.puts: 2" in report

    def test_summarize_json_and_missing_file(self, tmp_path, capsys):
        from repro.cli import main

        assert main(
            ["telemetry", "summarize", str(tmp_path / "absent.jsonl")]
        ) == 1
        capsys.readouterr()

        trace = tmp_path / "t.jsonl"
        configure_telemetry(sink=FileSink(trace))
        telemetry.event("x")
        telemetry_shutdown()
        assert main(["telemetry", "summarize", str(trace), "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["events"] == {"x": 1}
