"""Tests for Algorithm 3 (KnownDiameterBroadcast) and the tradeoff family."""

import math

import pytest

from repro.core.broadcast_general import KnownDiameterBroadcast
from repro.core.distributions import CzumajRytterDistribution, UniformScaleDistribution
from repro.core.tradeoff import TradeoffBroadcast, admissible_lambda_range
from repro.graphs.properties import source_eccentricity
from repro.graphs.structured import grid_network, path_of_cliques
from repro.radio.engine import run_protocol


@pytest.fixture(scope="module")
def clique_path():
    net = path_of_cliques(8, 8)
    return net, source_eccentricity(net, 0)


class TestSetup:
    def test_window_and_budget(self, clique_path):
        network, diameter = clique_path
        protocol = KnownDiameterBroadcast(diameter, beta=2.0)
        protocol.bind(network, 1)
        log_n = math.log2(network.n)
        assert protocol.active_window == math.ceil(2.0 * log_n**2)
        assert protocol.round_budget > protocol.active_window
        assert protocol.distribution.name.startswith("alpha")

    def test_distribution_override(self, clique_path):
        network, diameter = clique_path
        protocol = KnownDiameterBroadcast(
            diameter, distribution=UniformScaleDistribution(network.n)
        )
        protocol.bind(network, 1)
        assert "uniform" in protocol.distribution.name

    def test_window_factor(self, clique_path):
        network, diameter = clique_path
        base = KnownDiameterBroadcast(diameter)
        wide = KnownDiameterBroadcast(diameter, window_factor=3.0)
        base.bind(network, 1)
        wide.bind(network, 1)
        assert wide.active_window == pytest.approx(3 * base.active_window, rel=0.01)

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            KnownDiameterBroadcast(0)
        with pytest.raises(ValueError):
            KnownDiameterBroadcast(4, beta=0)

    def test_metadata(self, clique_path):
        network, diameter = clique_path
        protocol = KnownDiameterBroadcast(diameter)
        protocol.bind(network, 1)
        meta = protocol.run_metadata
        assert meta["diameter"] == diameter
        assert meta["active_window"] == protocol.active_window


class TestBehaviour:
    def test_completes_on_path_of_cliques(self, clique_path):
        network, diameter = clique_path
        completed = 0
        for seed in range(4):
            result = run_protocol(network, KnownDiameterBroadcast(diameter), rng=seed)
            completed += result.completed
        assert completed >= 3

    def test_completes_on_grid(self):
        network = grid_network(10, 10)
        diameter = 18
        result = run_protocol(network, KnownDiameterBroadcast(diameter), rng=3)
        assert result.completed

    def test_energy_bounded_by_window(self, clique_path):
        network, diameter = clique_path
        protocol = KnownDiameterBroadcast(diameter)
        result = run_protocol(
            network, protocol, rng=5, keep_arrays=True, run_to_quiescence=True
        )
        # A node transmits at most once per active round.
        assert result.per_node_transmissions.max() <= protocol.active_window

    def test_expected_energy_shape(self, clique_path):
        """Mean tx/node should be around window * mean transmit probability."""
        network, diameter = clique_path
        protocol = KnownDiameterBroadcast(diameter)
        result = run_protocol(
            network, protocol, rng=7, run_to_quiescence=True
        )
        assert result.completed
        expected = protocol.active_window * protocol.distribution.mean_transmission_probability()
        assert result.energy.mean_per_node <= 2.5 * expected

    def test_quiescence_after_windows_expire(self, clique_path):
        network, diameter = clique_path
        protocol = KnownDiameterBroadcast(diameter)
        result = run_protocol(network, protocol, rng=9, run_to_quiescence=True)
        assert protocol.is_quiescent(result.rounds_executed)

    def test_source_stops_after_window(self, clique_path):
        network, diameter = clique_path
        protocol = KnownDiameterBroadcast(diameter, beta=0.5)
        protocol.bind(network, 1)
        beyond_window = protocol.active_window + 1
        mask = protocol.transmit_mask(beyond_window)
        assert not mask[protocol.source]


class TestTradeoff:
    def test_admissible_range(self):
        low, high = admissible_lambda_range(1024, 32)
        assert low == pytest.approx(5.0)
        assert high == pytest.approx(10.0)

    def test_lambda_clamped(self, clique_path):
        network, diameter = clique_path
        protocol = TradeoffBroadcast(diameter, lam=1000.0)
        protocol.bind(network, 1)
        low, high = admissible_lambda_range(network.n, diameter)
        assert protocol.lam == pytest.approx(high)

    def test_energy_decreases_with_lambda(self, clique_path):
        """The Theorem 4.2 direction: larger λ, cheaper per-round energy."""
        network, diameter = clique_path
        low, high = admissible_lambda_range(network.n, diameter)
        cheap = TradeoffBroadcast(diameter, lam=high)
        fast = TradeoffBroadcast(diameter, lam=low)
        cheap.bind(network, 1)
        fast.bind(network, 1)
        assert (
            cheap.distribution.mean_transmission_probability()
            < fast.distribution.mean_transmission_probability()
        )

    def test_tradeoff_completes(self, clique_path):
        network, diameter = clique_path
        result = run_protocol(network, TradeoffBroadcast(diameter, lam=6.0), rng=2)
        assert result.completed

    def test_invalid_lambda(self):
        with pytest.raises(ValueError):
            TradeoffBroadcast(4, lam=0.0)
