"""Tests for the experiment registry and the CLI."""

import json

import pytest

from repro.cli import build_parser, main
from repro.experiments.registry import all_experiments, get_experiment, run_experiment


class TestRegistry:
    def test_all_experiments_listed(self):
        ids = [m.EXPERIMENT_ID for m in all_experiments()]
        assert ids == [f"E{i}" for i in range(1, 18)]

    def test_every_module_has_metadata(self):
        for module in all_experiments():
            assert isinstance(module.TITLE, str) and module.TITLE
            assert isinstance(module.CLAIM, str) and module.CLAIM
            assert callable(module.run)

    def test_get_experiment_case_insensitive(self):
        assert get_experiment("e3") is get_experiment("E3")

    def test_unknown_experiment(self):
        with pytest.raises(ValueError, match="unknown experiment"):
            get_experiment("E99")

    def test_run_experiment_deterministic_table(self):
        # E9 is deterministic and cheap: same seed -> same rows.
        a = run_experiment("E9", scale="quick", seed=0)
        b = run_experiment("E9", scale="quick", seed=0)
        assert a.rows == b.rows
        assert a.experiment_id == "E9"

    def test_invalid_scale_propagates(self):
        with pytest.raises(ValueError):
            run_experiment("E9", scale="huge")


class TestCli:
    def test_parser_subcommands(self):
        parser = build_parser()
        args = parser.parse_args(["run", "E9", "--scale", "quick"])
        assert args.command == "run" and args.experiment == "E9"

    def test_list_command(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "E1" in out and "E14" in out

    def test_run_command_prints_table(self, capsys):
        assert main(["run", "E9"]) == 0
        out = capsys.readouterr().out
        assert "Fig. 1" in out
        assert "alpha" in out

    def test_run_command_writes_outputs(self, tmp_path, capsys):
        json_path = tmp_path / "result.json"
        csv_path = tmp_path / "result.csv"
        code = main(["run", "E9", "--json", str(json_path), "--csv", str(csv_path)])
        assert code == 0
        payload = json.loads(json_path.read_text())
        assert payload["experiment_id"] == "E9"
        assert csv_path.read_text().startswith("n,")

    def test_chart_command(self, capsys):
        assert main(["chart", "E9"]) == 0
        out = capsys.readouterr().out
        assert "alpha probabilities" in out

    def test_requires_command(self):
        with pytest.raises(SystemExit):
            main([])


class TestGridCli:
    """``repro sweep --grid`` and ``repro report --accumulators``."""

    def _write_grid(self, tmp_path):
        from repro.experiments.protocols import ProtocolSpec
        from repro.graphs.builders import GraphSpec
        from repro.scenarios import ScenarioSpec, SweepCell, SweepGrid

        spec = ScenarioSpec(
            scenario_id="cli-demo",
            grid=SweepGrid(
                cells=(
                    SweepCell(
                        coords={"n": 32},
                        graph=GraphSpec("gnp", {"n": 32, "p": 0.2}),
                        protocol=ProtocolSpec("algorithm1", {"p": 0.2}),
                        repetitions=3,
                    ),
                )
            ),
            metrics=("success", "total_tx"),
            seed=1,
        )
        path = tmp_path / "grid.json"
        path.write_text(json.dumps(spec.as_dict()))
        return path

    def test_sweep_grid_runs_and_prints_summary(self, tmp_path, capsys):
        grid = self._write_grid(tmp_path)
        cache = tmp_path / "cache"
        code = main(
            ["sweep", "--grid", str(grid), "--cache-dir", str(cache)]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "scenario cli-demo" in out
        assert "total_tx" in out
        assert "3 trials executed" in out

    def test_sweep_grid_warm_rerun_skips_aggregated_trials(self, tmp_path, capsys):
        grid = self._write_grid(tmp_path)
        cache = tmp_path / "cache"
        assert main(["sweep", "--grid", str(grid), "--cache-dir", str(cache)]) == 0
        capsys.readouterr()
        assert main(["sweep", "--grid", str(grid), "--cache-dir", str(cache)]) == 0
        out = capsys.readouterr().out
        assert "3 already aggregated" in out

    def test_sweep_without_experiment_or_grid_errors(self):
        with pytest.raises(SystemExit):
            main(["sweep"])

    def test_report_accumulators(self, tmp_path, capsys):
        grid = self._write_grid(tmp_path)
        cache = tmp_path / "cache"
        assert main(["sweep", "--grid", str(grid), "--cache-dir", str(cache)]) == 0
        capsys.readouterr()
        code = main(["report", "--accumulators", "--cache-dir", str(cache)])
        assert code == 0
        out = capsys.readouterr().out
        assert "aggregation checkpoint" in out
        assert "total_tx" in out

    def test_report_accumulators_empty_store(self, tmp_path, capsys):
        code = main(
            ["report", "--accumulators", "--cache-dir", str(tmp_path / "empty")]
        )
        assert code == 0
        assert "no aggregation checkpoints" in capsys.readouterr().out

    def test_cache_stats_reports_checkpoints(self, tmp_path, capsys):
        grid = self._write_grid(tmp_path)
        cache = tmp_path / "cache"
        assert main(["sweep", "--grid", str(grid), "--cache-dir", str(cache)]) == 0
        capsys.readouterr()
        assert main(["cache", "stats", "--cache-dir", str(cache)]) == 0
        out = capsys.readouterr().out
        assert "1 checkpoint(s)" in out
