"""The declarative scenario layer: specs, grids, probes, and the ports of
all seventeen experiment modules onto them."""

import json

import pytest

from repro.experiments.protocols import ProtocolSpec
from repro.experiments.registry import all_experiments
from repro.graphs.builders import GraphSpec
from repro.scenarios import (
    ScenarioSpec,
    SweepCell,
    SweepGrid,
    metric_names,
    probe_names,
    register_metric,
    register_probe,
    run_cell,
    run_scenario,
)
from repro.scenarios.runtime import results_table
from repro.store import AggregateStore, ResultStore


def _jobs_cell(n=48, repetitions=3, **kwargs):
    return SweepCell(
        coords={"n": n},
        graph=GraphSpec("gnp", {"n": n, "p": 0.15}),
        protocol=ProtocolSpec("algorithm1", {"p": 0.15}),
        repetitions=repetitions,
        **kwargs,
    )


class TestSweepCell:
    def test_jobs_cell_requires_specs(self):
        with pytest.raises(ValueError, match="graph and a protocol"):
            SweepCell(kind="jobs")

    def test_probe_cell_requires_name(self):
        with pytest.raises(ValueError, match="probe name"):
            SweepCell(kind="probe")

    def test_unknown_kind(self):
        with pytest.raises(ValueError, match="kind"):
            SweepCell(kind="mystery")

    def test_unknown_job_option_rejected(self):
        with pytest.raises(ValueError, match="unknown job options"):
            _jobs_cell(job_options={"turbo": True})

    def test_roundtrip(self):
        cell = _jobs_cell(job_options={"run_to_quiescence": True}, seed=4)
        back = SweepCell.from_dict(json.loads(json.dumps(cell.as_dict())))
        assert back == cell

    def test_probe_roundtrip(self):
        cell = SweepCell(
            coords={"q": 0.1},
            kind="probe",
            probe="e7.relay_transmissions",
            params={"n": 32, "q": 0.1},
            repetitions=2,
            metrics=("success", "relay_tx"),
        )
        back = SweepCell.from_dict(json.loads(json.dumps(cell.as_dict())))
        assert back == cell


class TestSweepGrid:
    def test_from_axes_expands_product_in_order(self):
        grid = SweepGrid.from_axes(
            {"a": [1, 2], "b": ["x", "y"]},
            lambda coords: _jobs_cell().__class__(
                coords=coords,
                graph=GraphSpec("gnp", {"n": 32, "p": 0.2}),
                protocol=ProtocolSpec("decay", {}),
            ),
        )
        assert [cell.coords for cell in grid] == [
            {"a": 1, "b": "x"},
            {"a": 1, "b": "y"},
            {"a": 2, "b": "x"},
            {"a": 2, "b": "y"},
        ]

    def test_from_axes_skips_none(self):
        grid = SweepGrid.from_axes(
            {"a": [1, 2, 3]},
            lambda coords: None if coords["a"] == 2 else _jobs_cell(),
        )
        assert len(grid) == 2

    def test_empty_grid_rejected(self):
        with pytest.raises(ValueError):
            SweepGrid(cells=())

    def test_digest_stable_and_content_sensitive(self):
        grid_a = SweepGrid(cells=(_jobs_cell(),))
        grid_b = SweepGrid.from_dict(json.loads(json.dumps(grid_a.as_dict())))
        assert grid_a.digest() == grid_b.digest()
        grid_c = SweepGrid(cells=(_jobs_cell(repetitions=4),))
        assert grid_a.digest() != grid_c.digest()


class TestScenarioSpec:
    def _spec(self, **overrides):
        base = dict(
            scenario_id="demo",
            grid=SweepGrid(cells=(_jobs_cell(),)),
            metrics=("success", "total_tx"),
            seed=3,
            title="a title",
            claim="a claim",
            parameters={"scale": "quick"},
        )
        base.update(overrides)
        return ScenarioSpec(**base)

    def test_roundtrip_preserves_digest(self):
        spec = self._spec()
        back = ScenarioSpec.from_dict(json.loads(json.dumps(spec.as_dict())))
        assert back == spec
        assert back.digest() == spec.digest()

    def test_digest_ignores_display_metadata(self):
        assert self._spec().digest() == self._spec(
            title="renamed", parameters={"scale": "full"}
        ).digest()

    def test_digest_tracks_functional_fields(self):
        spec = self._spec()
        assert spec.digest() != self._spec(seed=4).digest()
        assert spec.digest() != self._spec(metrics=("success",)).digest()


class TestRegistries:
    def test_builtin_metrics_present(self):
        assert {
            "success",
            "completion_round",
            "total_tx",
            "max_tx_per_node",
            "mean_tx_per_node",
            "informed_fraction",
        } <= set(metric_names())

    def test_metric_collision_rejected(self):
        with pytest.raises(ValueError, match="already registered"):
            register_metric("success", lambda trace, cell: 1.0)

    def test_probe_collision_rejected(self):
        name = "test.collision_probe"

        @register_probe(name)
        def probe(params, seed, repetitions):
            yield {}

        with pytest.raises(ValueError, match="already registered"):
            register_probe(name, lambda params, seed, repetitions: iter(()))

    def test_experiment_probes_registered_by_discovery(self):
        all_experiments()  # imports every module (registers its probes)
        assert {
            "e2.phase_growth",
            "e3.eccentricity",
            "e7.relay_transmissions",
            "e8.time_invariant_frontier",
            "e10.linear_budget",
            "e13.geometric_comparison",
            "e14.phone_call_push_broadcast",
            "e16.phone_call_push_gossip",
        } <= set(probe_names())


class TestRegistryAutoDiscovery:
    def test_discovered_id_set_is_pinned(self):
        """Module-scan discovery must find exactly E1..E16, in order."""
        ids = [module.EXPERIMENT_ID for module in all_experiments()]
        assert ids == [f"E{i}" for i in range(1, 18)]

    def test_every_module_exposes_a_scenario(self):
        for module in all_experiments():
            assert callable(getattr(module, "scenario", None)), module.__name__

    def test_every_scenario_spec_serialises_with_stable_digest(self):
        for module in all_experiments():
            spec = module.scenario(scale="quick", seed=0)
            assert spec.scenario_id == module.EXPERIMENT_ID
            back = ScenarioSpec.from_dict(json.loads(json.dumps(spec.as_dict())))
            assert back.digest() == spec.digest(), module.__name__
            assert spec.grid.total_trials >= 1


class TestRunScenario:
    def test_probe_cell_streams_samples(self):
        name = "test.counting_probe"

        @register_probe(name)
        def probe(params, seed, repetitions):
            for rep in range(repetitions):
                yield {"value": float(params["base"] + rep + seed)}

        cell = SweepCell(
            kind="probe", probe=name, params={"base": 10}, repetitions=4
        )
        result = run_cell(cell, seed=2, metrics=("value",))
        assert result.trials == 4
        assert result.accumulators["value"].count == 4
        assert result.mean("value") == (12 + 13 + 14 + 15) / 4

    def test_unknown_metric_fails_fast(self):
        with pytest.raises(ValueError, match="unknown metric"):
            run_cell(_jobs_cell(), metrics=("no_such_metric",), store=False)

    def test_empty_metric_set_rejected(self):
        with pytest.raises(ValueError, match="empty metric set"):
            run_cell(_jobs_cell(), metrics=(), store=False)

    def test_results_table_shape(self):
        spec = ScenarioSpec(
            scenario_id="demo",
            grid=SweepGrid(cells=(_jobs_cell(repetitions=2),)),
            metrics=("success", "total_tx"),
            seed=0,
        )
        results = run_scenario(spec, store=False)
        columns, rows = results_table(results)
        assert len(rows) == 2  # one per metric
        assert all(len(row) == len(columns) for row in rows)


class TestStoreOffsetIndex:
    """Satellite: the shard index holds offsets, not payloads."""

    def test_index_is_payload_free(self, tmp_path):
        store = ResultStore(tmp_path)
        store.put("ab" + "0" * 62, {"big": list(range(50))})
        store.put("ab" + "1" * 62, {"big": list(range(50))})
        index = store._shards["ab"]
        assert all(isinstance(offset, int) for offset in index.values())

    def test_contains_does_not_load_payloads(self, tmp_path):
        store = ResultStore(tmp_path)
        key = "cd" + "0" * 62
        store.put(key, {"x": 1})
        fresh = ResultStore(tmp_path)
        assert key in fresh
        assert fresh.hits == 0 and fresh.misses == 0
        assert fresh.get(key) == {"x": 1}
        assert fresh.hits == 1

    def test_lazy_load_after_reopen(self, tmp_path):
        store = ResultStore(tmp_path)
        keys = [f"ef{i:062d}" for i in range(5)]
        for i, key in enumerate(keys):
            store.put(key, {"i": i})
        fresh = ResultStore(tmp_path)
        assert fresh.get(keys[3]) == {"i": 3}
        assert fresh.get("ef" + "9" * 62) is None

    def test_stale_offset_triggers_rescan(self, tmp_path):
        store = ResultStore(tmp_path)
        key = "aa" + "0" * 62
        store.put(key, {"v": 1})
        # An external writer rewrites the shard (e.g. a prune by another
        # process): the cached offset goes stale and get() must recover.
        path = store._shard_path(key)
        line = path.read_text()
        path.write_text("\n\n" + line)
        assert store.get(key) == {"v": 1}


class TestAggregateStore:
    def test_save_load_roundtrip(self, tmp_path):
        store = AggregateStore(tmp_path / "agg")
        key = "ab" + "0" * 62
        store.save(key, {"trials_total": 3, "done_mask": "7"})
        state = store.load(key)
        assert state["trials_total"] == 3
        assert key in store.keys()

    def test_rejects_non_hex_keys(self, tmp_path):
        store = AggregateStore(tmp_path)
        with pytest.raises(ValueError):
            store.save("../escape", {})

    def test_version_mismatch_reads_as_missing(self, tmp_path):
        store = AggregateStore(tmp_path)
        key = "cd" + "0" * 62
        store.save(key, {"x": 1})
        path = store._path(key)
        state = json.loads(path.read_text())
        state["engine_version"] = "0.0"
        path.write_text(json.dumps(state))
        assert store.load(key) is None

    def test_corrupt_file_reads_as_missing(self, tmp_path):
        store = AggregateStore(tmp_path)
        key = "ef" + "0" * 62
        store.save(key, {"x": 1})
        store._path(key).write_text("{not json")
        assert store.load(key) is None

    def test_clear_and_delete(self, tmp_path):
        store = AggregateStore(tmp_path)
        key = "0a" + "0" * 62
        store.save(key, {})
        assert store.delete(key) is True
        assert store.delete(key) is False
        store.save(key, {})
        assert store.clear() == 1
        assert store.keys() == []

    def test_result_store_clear_drops_checkpoints(self, tmp_path):
        store = ResultStore(tmp_path)
        store.put("ab" + "0" * 62, {"x": 1})
        store.aggregates.save("ab" + "1" * 62, {"y": 2})
        assert store.stats()["aggregate_checkpoints"] == 1
        store.clear()
        assert store.aggregates.keys() == []
