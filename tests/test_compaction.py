"""Continuous batching: bit-identity, resume, and state repack.

Contracts pinned here:

1. **Compaction is an execution detail.**  For every protocol in the batch
   registry, an exact-mode :meth:`BatchEngine.run_continuous` sweep — with
   refills and compactions forced by a small capacity — produces traces
   bit-identical to the non-compacting :meth:`BatchEngine.run`, with and
   without a stochastic environment (``iid_loss``, ``churn``).
2. **Resume crosses compaction boundaries.**  A continuous sweep killed
   mid-run keeps its per-trial checkpoints; the resumed sweep serves them
   from the store and completes bit-identically to an uninterrupted run.
3. **Backend repacks are lossless.**  Every node-set / frontier state
   backend (dense, bitset, sparse) survives ``select_rows`` with surviving
   rows' state intact — both unit-level and through the engine with the
   backend forced.
4. **The continuous engine is observable.**  A traced run emits occupancy
   gauges plus compaction / refill / dead-retirement counters.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import telemetry
from repro.experiments.protocols import BATCH_PROTOCOL_FACTORIES, ProtocolSpec
from repro.radio.environment import build_batch_environment
from repro.experiments.runner import repeat_job
from repro.graphs.builders import GraphSpec
from repro.graphs.random_digraph import random_digraph
from repro.radio.batch import BatchEngine, PendingTrial
from repro.radio.nodesets import (
    BitsetNodeSet,
    DenseBudgetFrontier,
    DenseNodeSet,
    DenseQuotaFrontier,
    SparseBudgetFrontier,
    SparseQuotaFrontier,
)
from repro.store import ResultStore
from repro.telemetry import MemorySink, configure_telemetry, telemetry_shutdown

PROTOCOL_PARAMS = {
    "algorithm1": {"p": 0.1},
    "algorithm2": {"p": 0.1},
    "algorithm3": {"diameter": 3},
    "tradeoff": {"diameter": 3, "lam": 3.0},
    "time_invariant": {"distribution": 0.1},
    "decay": {},
    "elsasser_gasieniec": {"p": 0.1},
    "czumaj_rytter_known_d": {"diameter": 3},
    "uniform_selection": {"diameter": 3},
    "deterministic_flood": {},
    "bernoulli_flood": {"q": 0.1},
    "uniform_gossip": {},
    "sequential_gossip": {},
}

ENV_SPECS = {
    "iid_loss": {"name": "iid_loss", "params": {"tx_loss": 0.1, "rx_loss": 0.15}},
    "churn": {
        "name": "churn",
        "params": {
            "events": [
                {"round": 3, "crash_fraction": 0.25},
                {"round": 12, "recover_all": True},
            ]
        },
    },
}

TRIALS = 7
#: Deliberately < TRIALS so the continuous run must retire, compact, and
#: refill several times; watermark=1.0 makes every retirement trigger the
#: refill check (maximum compaction churn).
CAPACITY = 3
MAX_ROUNDS = 300


@pytest.fixture(scope="module")
def net96():
    return random_digraph(96, 0.08, rng=11)


def _trial_rngs(seed0=500, trials=TRIALS):
    return [np.random.default_rng(seed0 + t) for t in range(trials)]


def _engine(env_name=None, state_backend="auto"):
    environment = (
        build_batch_environment(ENV_SPECS[env_name]) if env_name else None
    )
    return BatchEngine(environment=environment, state_backend=state_backend)


def _run_sharded(net, protocol_name, env_name=None, state_backend="auto"):
    factory = BATCH_PROTOCOL_FACTORIES[protocol_name]
    return _engine(env_name, state_backend).run(
        net,
        factory(**PROTOCOL_PARAMS[protocol_name]),
        trials=TRIALS,
        rngs=_trial_rngs(),
        max_rounds=MAX_ROUNDS,
    )


def _run_continuous(net, protocol_name, env_name=None, state_backend="auto"):
    factory = BATCH_PROTOCOL_FACTORIES[protocol_name]
    params = PROTOCOL_PARAMS[protocol_name]
    cohorts = {"built": 0}

    def make_protocol():
        cohorts["built"] += 1
        return factory(**params)

    pending = (
        PendingTrial(net, rng=rng, tag=t)
        for t, rng in enumerate(_trial_rngs())
    )
    traces = _engine(env_name, state_backend).run_continuous(
        pending,
        make_protocol,
        capacity=CAPACITY,
        watermark=1.0,
        max_rounds=MAX_ROUNDS,
    )
    return traces, cohorts["built"]


def _assert_traces_identical(sharded, continuous):
    assert len(sharded) == len(continuous)
    for s, c in zip(sharded, continuous):
        assert s.completed == c.completed
        assert s.completion_round == c.completion_round
        assert s.rounds_executed == c.rounds_executed
        assert s.energy == c.energy
        assert s.informed_count == c.informed_count
        assert s.metadata.get("active_history") == c.metadata.get(
            "active_history"
        )
        assert s.metadata.get("environment") == c.metadata.get("environment")


# --------------------------------------------------------------------------- #
# Exact-mode bit-identity, every registry protocol
# --------------------------------------------------------------------------- #
class TestContinuousBitIdentity:
    @pytest.mark.parametrize("protocol_name", sorted(BATCH_PROTOCOL_FACTORIES))
    def test_matches_run_for_every_protocol(self, net96, protocol_name):
        assert PROTOCOL_PARAMS.keys() == BATCH_PROTOCOL_FACTORIES.keys()
        sharded = _run_sharded(net96, protocol_name)
        continuous, cohorts = _run_continuous(net96, protocol_name)
        # capacity < trials forces at least one refill wave, so the sweep
        # actually crossed an admission (and hence compaction) boundary.
        assert cohorts > 1
        _assert_traces_identical(sharded, continuous)

    @pytest.mark.parametrize("env_name", sorted(ENV_SPECS))
    @pytest.mark.parametrize("protocol_name", sorted(BATCH_PROTOCOL_FACTORIES))
    def test_matches_run_under_faults(self, net96, protocol_name, env_name):
        sharded = _run_sharded(net96, protocol_name, env_name)
        continuous, cohorts = _run_continuous(net96, protocol_name, env_name)
        assert cohorts > 1
        _assert_traces_identical(sharded, continuous)


# --------------------------------------------------------------------------- #
# Forced state backends survive the repack in situ
# --------------------------------------------------------------------------- #
class TestBackendRepackInEngine:
    @pytest.mark.parametrize("state_backend", ["dense", "bitset", "sparse"])
    @pytest.mark.parametrize(
        "protocol_name", ["algorithm1", "decay", "deterministic_flood"]
    )
    def test_forced_backend_matches_run(
        self, net96, protocol_name, state_backend
    ):
        sharded = _run_sharded(net96, protocol_name, state_backend=state_backend)
        continuous, cohorts = _run_continuous(
            net96, protocol_name, state_backend=state_backend
        )
        assert cohorts > 1
        _assert_traces_identical(sharded, continuous)


# --------------------------------------------------------------------------- #
# Unit-level repack round-trips
# --------------------------------------------------------------------------- #
class TestBackendRepackUnit:
    KEEP = np.array([True, False, True, True, False], dtype=bool)

    @pytest.mark.parametrize("cls", [DenseNodeSet, BitsetNodeSet])
    def test_nodeset_roundtrip(self, cls):
        rng = np.random.default_rng(42)
        state = cls(5, 17)
        members = rng.choice(5 * 17, size=30, replace=False)
        state.add_flat(members)
        before_mask = state.mask().copy()
        before_counts = state.counts().copy()
        state.select_rows(self.KEEP)
        assert state.trials == 3
        np.testing.assert_array_equal(state.mask(), before_mask[self.KEEP])
        np.testing.assert_array_equal(
            state.counts(), before_counts[self.KEEP]
        )
        # The repacked state keeps working: re-adding members is a no-op,
        # new members land in the right rows.
        still_member = np.flatnonzero(state.mask().reshape(-1))[:1]
        assert state.add_flat(still_member).size == 0
        fresh = np.flatnonzero(~state.mask().reshape(-1))[:1]
        np.testing.assert_array_equal(state.add_flat(fresh), fresh)

    def test_quota_frontier_roundtrip(self):
        rng = np.random.default_rng(7)
        n = 13
        participating = rng.random((5, n)) < 0.4
        values = rng.integers(1, 6, size=int(participating.sum()))
        dense = DenseQuotaFrontier(5, n)
        sparse = SparseQuotaFrontier(5, n)
        dense.begin_phase(participating, values)
        sparse.begin_phase(participating, values)
        dense.select_rows(self.KEEP)
        sparse.select_rows(self.KEEP)
        running = np.ones(3, dtype=bool)
        for within in range(6):
            np.testing.assert_array_equal(
                sparse.transmitters(within, running),
                dense.transmitters(within, running),
            )

    def test_budget_frontier_roundtrip(self):
        rng = np.random.default_rng(9)
        n = 13
        ids = np.sort(rng.choice(5 * n, size=24, replace=False))
        dense = DenseBudgetFrontier(5, n)
        sparse = SparseBudgetFrontier(5, n)
        dense.admit(ids, 2)
        sparse.admit(ids, 2)
        dense.select_rows(self.KEEP)
        sparse.select_rows(self.KEEP)
        np.testing.assert_array_equal(sparse.counts(), dense.counts())
        running = np.ones(3, dtype=bool)
        while dense.counts().any() or sparse.counts().any():
            np.testing.assert_array_equal(
                sparse.transmitters(running), dense.transmitters(running)
            )
            np.testing.assert_array_equal(sparse.counts(), dense.counts())


# --------------------------------------------------------------------------- #
# Resume across a compaction boundary
# --------------------------------------------------------------------------- #
GRAPH = GraphSpec("gnp", {"n": 64, "p": 0.15})
PROTOCOL = ProtocolSpec("algorithm1", {"p": 0.15})
SWEEP = dict(
    repetitions=6, seed=0, batch_mode="exact", max_rounds=300, shards=3
)


class TestResumeAcrossCompaction:
    def test_interrupted_continuous_sweep_resumes(self, tmp_path, monkeypatch):
        baseline = repeat_job(GRAPH, PROTOCOL, **SWEEP, store=False)
        # Trials finish at different rounds, so with capacity 2 (6 reps in
        # 3 shards) the engine compacts and refills between checkpoints.
        assert len({t.completion_round for t in baseline}) > 1

        store = ResultStore(tmp_path)
        real_put = ResultStore.put
        puts = {"n": 0}

        def dies_mid_stream(self, key, payload):
            puts["n"] += 1
            if puts["n"] == 3:
                raise KeyboardInterrupt("simulated death mid-continuous-run")
            return real_put(self, key, payload)

        monkeypatch.setattr(ResultStore, "put", dies_mid_stream)
        with pytest.raises(KeyboardInterrupt):
            repeat_job(GRAPH, PROTOCOL, **SWEEP, store=store)
        monkeypatch.setattr(ResultStore, "put", real_put)

        # The first two streamed trials survived the crash as per-trial
        # checkpoints (finer granularity than the sharded engine's
        # per-shard sink).
        assert store.stats()["entries"] == 2
        store.reset_counters()
        resumed = repeat_job(GRAPH, PROTOCOL, **SWEEP, store=store)
        assert store.hits == 2 and store.misses == 4
        assert len(resumed) == len(baseline)
        _assert_traces_identical(baseline, resumed)


# --------------------------------------------------------------------------- #
# Telemetry: occupancy + compaction counters
# --------------------------------------------------------------------------- #
class TestContinuousTelemetry:
    def test_traced_run_reports_occupancy_and_compactions(self, net96):
        telemetry_shutdown()
        sink = MemorySink()
        configure_telemetry(sink=sink)
        try:
            _run_continuous(net96, "decay")
            registry = telemetry.current_registry()
            snapshot = registry.snapshot()
        finally:
            telemetry_shutdown()
        counters = snapshot["counters"]
        gauges = snapshot["gauges"]
        assert counters.get("engine.compactions", 0) >= 1
        assert counters.get("engine.refills", 0) >= 1
        assert counters.get("engine.trials") == TRIALS
        assert "engine.occupancy" in gauges
        assert 0.0 < gauges["engine.occupancy"] <= 1.0
        names = [r.get("name") for r in sink.records]
        assert "engine.compaction" in names
        assert "engine.refill" in names
