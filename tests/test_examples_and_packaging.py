"""Smoke tests: the example scripts run, and the package metadata is sane.

The examples are part of the public deliverable; running them (with small
arguments) in a subprocess guards against bit-rot in the public API they
exercise.
"""

import subprocess
import sys
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parents[1]
EXAMPLES = REPO_ROOT / "examples"


def _run(script: str, *args: str, timeout: int = 240) -> subprocess.CompletedProcess:
    return subprocess.run(
        [sys.executable, str(EXAMPLES / script), *args],
        capture_output=True,
        text=True,
        timeout=timeout,
        cwd=str(REPO_ROOT),
    )


class TestExamples:
    def test_quickstart_runs(self):
        proc = _run("quickstart.py", "512", "3")
        assert proc.returncode == 0, proc.stderr
        assert "Algorithm 1" in proc.stdout
        assert "max tx/node" in proc.stdout

    def test_sensor_field_runs(self):
        proc = _run("sensor_field_broadcast.py", "200", "5")
        assert proc.returncode == 0, proc.stderr
        assert "Decay" in proc.stdout
        assert "mean tx/sensor" in proc.stdout

    def test_tradeoff_runs(self):
        proc = _run("energy_time_tradeoff.py", "8", "8", "2")
        assert proc.returncode == 0, proc.stderr
        assert "lambda" in proc.stdout
        assert "tx/node" in proc.stdout

    def test_dynamic_gossip_runs(self):
        proc = _run("dynamic_gossip.py", "64", "4")
        assert proc.returncode == 0, proc.stderr
        assert "rumour coverage" in proc.stdout

    def test_broadcast_under_churn_runs(self):
        proc = _run("broadcast_under_churn.py", "96", "4")
        assert proc.returncode == 0, proc.stderr
        assert "work wasted" in proc.stdout
        assert "churn 25%" in proc.stdout


class TestPackaging:
    def test_version_exposed(self):
        import repro

        assert repro.__version__
        parts = repro.__version__.split(".")
        assert len(parts) >= 2

    def test_module_entry_point(self):
        proc = subprocess.run(
            [sys.executable, "-m", "repro", "list"],
            capture_output=True,
            text=True,
            timeout=120,
        )
        assert proc.returncode == 0, proc.stderr
        assert "E1" in proc.stdout

    def test_public_packages_importable(self):
        import repro.analysis
        import repro.baselines
        import repro.core
        import repro.experiments
        import repro.graphs
        import repro.radio

        assert repro.radio.RadioNetwork is not None
        assert repro.core.EnergyEfficientBroadcast is not None

    def test_quickstart_docstring_example(self):
        """The doctest-style snippet in repro.__init__ must stay true."""
        from repro.core import EnergyEfficientBroadcast
        from repro.graphs import random_digraph
        from repro.radio import run_protocol

        net = random_digraph(512, 0.05, rng=1)
        result = run_protocol(net, EnergyEfficientBroadcast(p=0.05), rng=2)
        assert result.completed and result.energy.max_per_node <= 1
