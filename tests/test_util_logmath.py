"""Tests for repro._util.logmath (the paper's parameter arithmetic)."""

import math

import pytest

from repro._util.logmath import (
    ceil_log_ratio,
    expected_degree,
    floor_log_ratio,
    ilog2,
    lambda_of,
    log2_safe,
    phase1_round_count,
)


class TestLog2Safe:
    def test_basic(self):
        assert log2_safe(8) == 3.0

    def test_clamps_below_minimum(self):
        assert log2_safe(0.5) == 0.0
        assert log2_safe(0.0) == 0.0

    def test_nan_rejected(self):
        with pytest.raises(ValueError):
            log2_safe(float("nan"))


class TestIlog2:
    @pytest.mark.parametrize("n,expected", [(1, 0), (2, 1), (3, 1), (1024, 10), (1025, 10)])
    def test_values(self, n, expected):
        assert ilog2(n) == expected

    def test_rejects_zero(self):
        with pytest.raises(ValueError):
            ilog2(0)


class TestFloorCeilLogRatio:
    def test_floor_matches_paper_definition(self):
        # T = floor(log n / log d)
        assert floor_log_ratio(1024, 32) == 2
        assert floor_log_ratio(1024, 1024) == 1

    def test_ceil(self):
        assert ceil_log_ratio(1024, 32) == 2
        assert ceil_log_ratio(1024, 33) == 2
        assert ceil_log_ratio(1024, 31) == 3 or ceil_log_ratio(1024, 31) == 2

    def test_degenerate_degree(self):
        # d <= 1: falls back to log n.
        assert floor_log_ratio(1024, 1.0) == 10
        assert ceil_log_ratio(1024, 0.5) == 10

    def test_small_n(self):
        assert floor_log_ratio(1, 10) == 0
        assert ceil_log_ratio(1, 10) == 0


class TestPhase1RoundCount:
    def test_matches_manual(self):
        n, p = 1024, 0.03125  # d = 32
        assert phase1_round_count(n, p) == 2

    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            phase1_round_count(0, 0.5)
        with pytest.raises(ValueError):
            phase1_round_count(10, 0.0)
        with pytest.raises(ValueError):
            phase1_round_count(10, 1.5)


class TestLambdaOf:
    def test_basic(self):
        assert lambda_of(1024, 32) == pytest.approx(5.0)

    def test_clamped_to_one(self):
        assert lambda_of(16, 16) == 1.0

    def test_invalid(self):
        with pytest.raises(ValueError):
            lambda_of(1, 1)
        with pytest.raises(ValueError):
            lambda_of(16, 0)


class TestExpectedDegree:
    def test_value(self):
        assert expected_degree(100, 0.1) == pytest.approx(10.0)

    def test_invalid(self):
        with pytest.raises(ValueError):
            expected_degree(0, 0.1)
        with pytest.raises(ValueError):
            expected_degree(10, 1.5)
