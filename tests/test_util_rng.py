"""Tests for repro._util.rng."""

import numpy as np
import pytest

from repro._util.rng import RngFactory, as_generator, integer_seeds, spawn_generators


class TestAsGenerator:
    def test_none_gives_generator(self):
        assert isinstance(as_generator(None), np.random.Generator)

    def test_int_seed_is_deterministic(self):
        a = as_generator(42).integers(0, 1000, 10)
        b = as_generator(42).integers(0, 1000, 10)
        assert np.array_equal(a, b)

    def test_different_seeds_differ(self):
        a = as_generator(1).integers(0, 2**31, 16)
        b = as_generator(2).integers(0, 2**31, 16)
        assert not np.array_equal(a, b)

    def test_generator_passthrough(self):
        gen = np.random.default_rng(5)
        assert as_generator(gen) is gen

    def test_seed_sequence_accepted(self):
        seq = np.random.SeedSequence(9)
        assert isinstance(as_generator(seq), np.random.Generator)

    def test_negative_seed_rejected(self):
        with pytest.raises(ValueError):
            as_generator(-1)

    def test_wrong_type_rejected(self):
        with pytest.raises(TypeError):
            as_generator("not-a-seed")


class TestSpawnGenerators:
    def test_count_matches(self):
        gens = spawn_generators(0, 5)
        assert len(gens) == 5

    def test_streams_are_independent_and_reproducible(self):
        first = [g.integers(0, 2**31, 4) for g in spawn_generators(7, 3)]
        second = [g.integers(0, 2**31, 4) for g in spawn_generators(7, 3)]
        for a, b in zip(first, second):
            assert np.array_equal(a, b)
        # Streams differ from each other.
        assert not np.array_equal(first[0], first[1])

    def test_zero_count(self):
        assert spawn_generators(3, 0) == []

    def test_negative_count_rejected(self):
        with pytest.raises(ValueError):
            spawn_generators(3, -1)

    def test_from_generator(self):
        gens = spawn_generators(np.random.default_rng(1), 4)
        assert len(gens) == 4


class TestRngFactory:
    def test_indexing_is_deterministic(self):
        a = RngFactory(1234)[0].integers(0, 100, 5)
        b = RngFactory(1234)[0].integers(0, 100, 5)
        assert np.array_equal(a, b)

    def test_indices_differ(self):
        factory = RngFactory(99)
        a = factory[0].integers(0, 2**31, 8)
        b = factory[1].integers(0, 2**31, 8)
        assert not np.array_equal(a, b)

    def test_negative_index_rejected(self):
        with pytest.raises(IndexError):
            RngFactory(0)[-1]

    def test_generators_helper(self):
        gens = RngFactory(5).generators(3)
        assert len(gens) == 3

    def test_repr(self):
        assert "RngFactory" in repr(RngFactory(5))


class TestIntegerSeeds:
    def test_reproducible(self):
        assert integer_seeds(11, 6) == integer_seeds(11, 6)

    def test_all_non_negative(self):
        assert all(s >= 0 for s in integer_seeds(2, 10))
