"""Tests for scaling fits and growth-model selection."""

import math

import numpy as np
import pytest

from repro.analysis.scaling import candidate_models, fit_model, fit_scaling, ratio_spread


class TestFitModel:
    def test_recovers_constant_exactly(self):
        ns = np.array([256, 512, 1024, 2048], dtype=float)
        ys = 3.0 * np.log2(ns)
        fit = fit_model(ns, ys, lambda n: np.log2(n), name="log n")
        assert fit.constant == pytest.approx(3.0)
        assert fit.r_squared == pytest.approx(1.0)
        assert fit.ratio_spread == pytest.approx(1.0)

    def test_noisy_fit_still_close(self):
        rng = np.random.default_rng(3)
        ns = np.array([128, 256, 512, 1024, 2048, 4096], dtype=float)
        ys = 2.0 * np.log2(ns) * rng.uniform(0.9, 1.1, ns.size)
        fit = fit_model(ns, ys, lambda n: np.log2(n))
        assert 1.6 < fit.constant < 2.4
        assert fit.r_squared > 0.8

    def test_wrong_model_has_poor_ratio_spread(self):
        ns = np.array([64, 256, 1024, 4096], dtype=float)
        ys = ns.copy()  # linear growth
        good = fit_model(ns, ys, lambda n: n, name="n")
        bad = fit_model(ns, ys, lambda n: np.log2(n), name="log n")
        assert good.ratio_spread < bad.ratio_spread

    def test_mismatched_lengths(self):
        with pytest.raises(ValueError):
            fit_model([1, 2], [1.0], lambda n: np.asarray(n))

    def test_empty_series(self):
        with pytest.raises(ValueError):
            fit_model([], [], lambda n: np.asarray(n))

    def test_nonpositive_model_rejected(self):
        with pytest.raises(ValueError):
            fit_model([1, 2], [1.0, 2.0], lambda n: np.asarray(n) - 2)

    def test_as_dict(self):
        fit = fit_model([1, 2, 4], [2, 4, 8], lambda n: np.asarray(n, dtype=float))
        assert fit.as_dict()["model"] == "model"

    def test_constant_target_r_squared(self):
        fit = fit_model([1, 2, 3], [5.0, 5.0, 5.0], lambda n: np.ones_like(np.asarray(n, dtype=float)))
        assert fit.r_squared == 1.0


class TestCandidateModels:
    def test_default_models_present(self):
        models = candidate_models()
        assert {"log n", "log^2 n", "n", "n log n", "sqrt n", "const"} <= set(models)

    def test_p_dependent_model(self):
        p_map = {256.0: 0.1, 1024.0: 0.05}
        models = candidate_models(p=p_map)
        values = models["log n / p"]([256.0, 1024.0])
        assert values[0] == pytest.approx(math.log2(256) / 0.1)
        assert values[1] == pytest.approx(math.log2(1024) / 0.05)


class TestFitScaling:
    def test_selects_correct_growth(self):
        ns = np.array([128, 256, 512, 1024, 2048], dtype=float)
        ys = 5.0 * np.log2(ns) ** 2
        fits = fit_scaling(ns, ys, candidate_models())
        best = min(fits.values(), key=lambda f: f.ratio_spread)
        assert best.model_name == "log^2 n"

    def test_empty_models_rejected(self):
        with pytest.raises(ValueError):
            fit_scaling([1], [1.0], {})

    def test_ratio_spread_helper(self):
        assert ratio_spread([1, 2, 4], [3, 6, 12], lambda n: np.asarray(n, dtype=float)) == pytest.approx(1.0)
