"""Tests for Algorithm 1 (EnergyEfficientBroadcast)."""

import math

import numpy as np
import pytest

from repro._util.rng import spawn_generators
from repro.core.broadcast_random import EnergyEfficientBroadcast
from repro.graphs.random_digraph import connectivity_threshold_probability, random_digraph
from repro.radio.engine import SimulationEngine, run_protocol


@pytest.fixture(scope="module")
def gnp_medium():
    n = 512
    p = connectivity_threshold_probability(n, delta=4.0)
    return random_digraph(n, p, rng=101), p


class TestParameterisation:
    def test_phase_schedule_sparse(self):
        n, p = 1024, 0.02  # d = 20.48, sparse regime
        protocol = EnergyEfficientBroadcast(p)
        protocol.bind(random_digraph(n, p, rng=1), 2)
        assert protocol.T >= 1
        assert protocol.phase2_round == protocol.T
        assert protocol.phase3_start == protocol.T + 1
        assert protocol.phase3_probability == pytest.approx(1.0 / protocol.d)

    def test_phase_schedule_dense(self):
        n, p = 1024, 0.3  # n p^2 = 92 >> log n -> dense branch, no Phase 2
        protocol = EnergyEfficientBroadcast(p)
        protocol.bind(random_digraph(n, p, rng=1), 2)
        assert protocol.phase2_round is None
        assert protocol.phase3_probability == pytest.approx(
            min(1.0, 1.0 / (protocol.d * p))
        )

    def test_paper_gate_recovered_when_factor_zero(self):
        n, p = 256, 0.125  # p > n^-0.4 but n p^2 = 4 << log n
        refined = EnergyEfficientBroadcast(p)
        refined.bind(random_digraph(n, p, rng=1), 2)
        literal = EnergyEfficientBroadcast(p, dense_min_degree_factor=0.0)
        literal.bind(random_digraph(n, p, rng=1), 2)
        assert refined.phase2_round is not None  # refined gate -> sparse branch
        assert literal.phase2_round is None  # paper's literal gate -> dense branch

    def test_phase1_overshoot_shortens_T(self):
        n = 2048
        p = 4 * math.log2(n) / n  # d = 44, d^2 ~ 0.95 n
        literal = EnergyEfficientBroadcast(p, phase1_overshoot_factor=0.0)
        literal.bind(random_digraph(n, p, rng=1), 2)
        refined = EnergyEfficientBroadcast(p)
        refined.bind(random_digraph(n, p, rng=1), 2)
        assert literal.T == 2
        assert refined.T == 1

    def test_phase_of_round_labels(self):
        n, p = 512, 0.02
        protocol = EnergyEfficientBroadcast(p)
        protocol.bind(random_digraph(n, p, rng=1), 2)
        assert protocol.phase_of_round(0) == "phase1"
        assert protocol.phase_of_round(protocol.phase2_round) == "phase2"
        assert protocol.phase_of_round(protocol.phase3_start) == "phase3"
        assert (
            protocol.phase_of_round(protocol.phase3_start + protocol.phase3_rounds)
            == "done"
        )

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            EnergyEfficientBroadcast(0.0)
        with pytest.raises(ValueError):
            EnergyEfficientBroadcast(0.1, beta=0)
        with pytest.raises(ValueError):
            EnergyEfficientBroadcast(0.1, dense_min_degree_factor=-1)
        with pytest.raises(ValueError):
            EnergyEfficientBroadcast(0.1, phase1_overshoot_factor=-2)

    def test_run_metadata_populated(self, gnp_medium):
        network, p = gnp_medium
        protocol = EnergyEfficientBroadcast(p)
        protocol.bind(network, 3)
        meta = protocol.run_metadata
        assert meta["T"] == protocol.T
        assert meta["phase3_rounds"] == protocol.phase3_rounds
        assert isinstance(meta["sparse_regime"], bool)


class TestInvariants:
    def test_at_most_one_transmission_per_node(self, gnp_medium):
        """The headline Theorem 2.1 invariant, across several seeds."""
        network, p = gnp_medium
        for seed in range(5):
            result = run_protocol(
                network,
                EnergyEfficientBroadcast(p),
                rng=seed,
                keep_arrays=True,
                run_to_quiescence=True,
            )
            assert result.energy.max_per_node <= 1
            assert result.per_node_transmissions.max() <= 1

    def test_broadcast_completes_whp(self, gnp_medium):
        network, p = gnp_medium
        completed = 0
        # Seed block chosen after the active-only transmit_mask draw change
        # (which shifted the RNG stream): these seeds give >= 5/6 successes.
        for seed in range(5, 11):
            result = run_protocol(network, EnergyEfficientBroadcast(p), rng=seed)
            completed += result.completed
        assert completed >= 5

    def test_completion_time_logarithmic_shape(self, gnp_medium):
        network, p = gnp_medium
        result = run_protocol(network, EnergyEfficientBroadcast(p), rng=2)
        assert result.completed
        # O(log n) with the beta=8 schedule: comfortably under 20 log n.
        assert result.completion_round <= 20 * math.log2(network.n)

    def test_total_transmissions_bounded(self, gnp_medium):
        network, p = gnp_medium
        result = run_protocol(
            network, EnergyEfficientBroadcast(p), rng=3, run_to_quiescence=True
        )
        # Theorem 2.1: O(log n / p); allow a generous constant.
        assert result.energy.total_transmissions <= 8 * math.log2(network.n) / p

    def test_active_history_recorded(self, gnp_medium):
        network, p = gnp_medium
        protocol = EnergyEfficientBroadcast(p)
        engine = SimulationEngine()
        engine.run(network, protocol, rng=4)
        history = protocol.active_history
        assert history[0] == 1  # only the source is active in round 1
        assert len(history) >= protocol.T

    def test_phase3_recruits_stay_passive(self):
        # On a path, nodes informed during Phase 3 must never transmit.
        from repro.graphs.structured import path_network

        network = path_network(6)
        protocol = EnergyEfficientBroadcast(0.3)
        result = run_protocol(
            network, protocol, rng=1, keep_arrays=True, run_to_quiescence=True
        )
        # Regardless of completion, no node ever transmits twice.
        assert result.per_node_transmissions.max() <= 1

    def test_quiescence_bounded_by_schedule(self, gnp_medium):
        network, p = gnp_medium
        protocol = EnergyEfficientBroadcast(p)
        result = run_protocol(
            network, protocol, rng=5, run_to_quiescence=True
        )
        assert result.rounds_executed <= protocol.suggested_max_rounds()


class TestAblationSwitches:
    def test_disable_phase2_reduces_informed_set_in_sparse_regime(self):
        n = 1024
        p = connectivity_threshold_probability(n, delta=4.0)
        gens = spawn_generators(77, 8)
        fractions = {True: [], False: []}
        for enable in (True, False):
            for i in range(4):
                network = random_digraph(n, p, rng=gens[i])
                result = run_protocol(
                    network,
                    EnergyEfficientBroadcast(p, enable_phase2=enable),
                    rng=gens[4 + i],
                )
                fractions[enable].append((result.informed_count or 0) / n)
        assert np.mean(fractions[True]) >= np.mean(fractions[False])

    def test_beta_lengthens_phase3(self):
        p = 0.05
        short = EnergyEfficientBroadcast(p, beta=2.0)
        long = EnergyEfficientBroadcast(p, beta=16.0)
        net = random_digraph(256, p, rng=1)
        short.bind(net, 1)
        long.bind(net, 1)
        assert long.phase3_rounds > short.phase3_rounds
