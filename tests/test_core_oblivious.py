"""Tests for the time-invariant oblivious protocol (lower-bound model)."""

import numpy as np
import pytest

from repro.core.distributions import FixedProbabilityOblivious, UniformScaleDistribution
from repro.core.oblivious import TimeInvariantBroadcast
from repro.graphs.lowerbound import observation43_network
from repro.graphs.structured import path_network
from repro.radio.engine import run_protocol


class TestConstruction:
    def test_float_becomes_fixed_distribution(self):
        protocol = TimeInvariantBroadcast(0.25)
        assert isinstance(protocol.distribution, FixedProbabilityOblivious)
        assert protocol.distribution.per_round_probability() == 0.25

    def test_distribution_object_accepted(self):
        protocol = TimeInvariantBroadcast(UniformScaleDistribution(64))
        assert "uniform" in protocol.distribution.name

    def test_invalid_distribution(self):
        with pytest.raises(TypeError):
            TimeInvariantBroadcast("0.5")
        with pytest.raises(ValueError):
            TimeInvariantBroadcast(0.0)

    def test_invalid_window(self):
        with pytest.raises(ValueError):
            TimeInvariantBroadcast(0.5, active_window=0)


class TestBehaviour:
    def test_completes_on_observation43_network(self):
        network, structure = observation43_network(16, return_structure=True)
        result = run_protocol(
            network,
            TimeInvariantBroadcast(0.25, source=structure.source),
            rng=3,
            max_rounds=5000,
        )
        assert result.completed

    def test_fixed_probability_one_on_path(self):
        # q close to 1 behaves like flooding: works on a path.
        network = path_network(8)
        result = run_protocol(TimeInvariantBroadcast(0.9).network if False else network,
                              TimeInvariantBroadcast(0.9), rng=1, max_rounds=500)
        assert result.completed

    def test_window_limits_transmissions(self):
        network, structure = observation43_network(8, return_structure=True)
        protocol = TimeInvariantBroadcast(
            0.5, active_window=4, source=structure.source
        )
        result = run_protocol(
            network, protocol, rng=2, keep_arrays=True, run_to_quiescence=True
        )
        assert result.per_node_transmissions.max() <= 4
        assert protocol.is_quiescent(result.rounds_executed)

    def test_unbounded_window_quiescence_is_completion(self):
        network = path_network(5)
        protocol = TimeInvariantBroadcast(0.9)
        protocol.bind(network, 1)
        assert protocol.is_quiescent(0) == protocol.is_complete()

    def test_metadata(self):
        network = path_network(5)
        protocol = TimeInvariantBroadcast(0.3, active_window=7)
        protocol.bind(network, 1)
        assert protocol.run_metadata["active_window"] == 7
        assert protocol.run_metadata["mean_transmission_probability"] == 0.3

    def test_shared_probability_is_scalar_per_round(self):
        network = path_network(6)
        protocol = TimeInvariantBroadcast(UniformScaleDistribution(64))
        protocol.bind(network, 1)
        mask = protocol.transmit_mask(0)
        assert mask.shape == (6,)

    def test_lower_bound_effect_on_relay_network(self):
        """Destinations need many relay rounds: the Observation 4.3 mechanism."""
        network, structure = observation43_network(32, return_structure=True)
        result = run_protocol(
            network,
            TimeInvariantBroadcast(0.5, source=structure.source),
            rng=5,
            max_rounds=10_000,
            keep_arrays=True,
        )
        assert result.completed
        relay_tx = result.per_node_transmissions[structure.relays].sum()
        # The proof's bound is n log n / 2 = 80; the measured value (at the
        # completion of the *last* destination) must respect it.
        assert relay_tx >= 32 * np.log2(32) / 2
