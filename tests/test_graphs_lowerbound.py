"""Tests for the lower-bound network constructions (Observation 4.3, Theorem 4.4)."""

import numpy as np
import pytest

from repro.graphs.lowerbound import (
    observation43_network,
    theorem44_layer_sizes,
    theorem44_network,
)
from repro.graphs.properties import bfs_distances, source_eccentricity


class TestObservation43:
    def test_node_count(self):
        net = observation43_network(16)
        assert net.n == 3 * 16 + 1

    def test_structure_roles(self):
        net, s = observation43_network(8, return_structure=True)
        assert s.source == 0
        assert s.relays.size == 16
        assert s.destinations.size == 8

    def test_source_reaches_all_relays_directly(self):
        net, s = observation43_network(8, return_structure=True)
        assert set(net.out_neighbors(s.source).tolist()) == set(s.relays.tolist())

    def test_each_destination_hears_exactly_two_relays(self):
        net, s = observation43_network(10, return_structure=True)
        for i, dest in enumerate(s.destinations):
            in_nb = set(net.in_neighbors(int(dest)).tolist())
            assert in_nb == set(s.relay_pair_for(i))
            assert len(in_nb) == 2

    def test_relay_pair_bounds(self):
        _, s = observation43_network(4, return_structure=True)
        with pytest.raises(ValueError):
            s.relay_pair_for(4)

    def test_distances(self):
        net, s = observation43_network(6, return_structure=True)
        dist = bfs_distances(net, s.source)
        assert all(dist[r] == 1 for r in s.relays)
        assert all(dist[d] == 2 for d in s.destinations)


class TestTheorem44:
    def test_layer_sizes(self):
        assert theorem44_layer_sizes(64) == [2, 4, 8, 16, 32, 64]
        assert theorem44_layer_sizes(100) == [2, 4, 8, 16, 32, 64]

    def test_node_count_bound(self):
        n, D = 64, 40
        net = theorem44_network(n, D)
        assert net.n <= 2 * n + D + 2

    def test_structure(self):
        net, s = theorem44_network(32, 30, return_structure=True)
        assert s.num_stars == 5
        assert len(s.star_leaves) == 5
        assert [leaves.size for leaves in s.star_leaves] == [2, 4, 8, 16, 32]
        assert s.source == int(s.star_centers[0])

    def test_diameter_matches_parameter(self):
        net, s = theorem44_network(64, 40, return_structure=True)
        assert source_eccentricity(net, s.source) == 40

    def test_star_center_feeds_its_leaves(self):
        net, s = theorem44_network(16, 20, return_structure=True)
        for center, leaves in zip(s.star_centers, s.star_leaves):
            out = set(net.out_neighbors(int(center)).tolist())
            assert set(leaves.tolist()) <= out

    def test_leaves_feed_next_center(self):
        net, s = theorem44_network(16, 20, return_structure=True)
        for i in range(s.num_stars - 1):
            next_center = int(s.star_centers[i + 1])
            for leaf in s.star_leaves[i]:
                assert net.has_edge(int(leaf), next_center)

    def test_last_star_feeds_path(self):
        net, s = theorem44_network(16, 20, return_structure=True)
        first_path_node = int(s.path_nodes[0])
        for leaf in s.star_leaves[-1]:
            assert net.has_edge(int(leaf), first_path_node)

    def test_path_is_a_chain(self):
        net, s = theorem44_network(16, 20, return_structure=True)
        for a, b in zip(s.path_nodes[:-1], s.path_nodes[1:]):
            assert net.has_edge(int(a), int(b))
        assert s.final_node == int(s.path_nodes[-1])

    def test_diameter_too_small_rejected(self):
        with pytest.raises(ValueError):
            theorem44_network(64, 10)

    def test_invalid_n(self):
        with pytest.raises(ValueError):
            theorem44_network(2, 100)
