"""Tests for repro.radio.network.RadioNetwork."""

import numpy as np
import pytest

from repro.radio.network import RadioNetwork


class TestConstruction:
    def test_basic_edges(self, tiny_network):
        assert tiny_network.n == 5
        assert tiny_network.num_edges == 5

    def test_edge_pair_arrays(self):
        net = RadioNetwork(4, (np.array([0, 1, 2]), np.array([1, 2, 3])))
        assert net.num_edges == 3
        assert net.has_edge(0, 1)

    def test_duplicate_edges_collapsed(self):
        net = RadioNetwork(3, [(0, 1), (0, 1), (1, 2)])
        assert net.num_edges == 2

    def test_self_loop_rejected(self):
        with pytest.raises(ValueError):
            RadioNetwork(3, [(0, 0)])

    def test_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            RadioNetwork(3, [(0, 3)])
        with pytest.raises(ValueError):
            RadioNetwork(3, [(-1, 2)])

    def test_empty_network(self):
        net = RadioNetwork(4, np.empty((0, 2), dtype=np.int64))
        assert net.num_edges == 0
        assert net.out_degrees().sum() == 0

    def test_mismatched_arrays_rejected(self):
        with pytest.raises(ValueError):
            RadioNetwork(4, (np.array([0, 1]), np.array([1])))

    def test_bad_shape_rejected(self):
        with pytest.raises(ValueError):
            RadioNetwork(4, np.array([0, 1, 2]))

    def test_n_must_be_positive(self):
        with pytest.raises(ValueError):
            RadioNetwork(0, [])


class TestDegreesAndNeighbours:
    def test_out_degrees(self, tiny_network):
        assert list(tiny_network.out_degrees()) == [2, 1, 1, 1, 0]

    def test_in_degrees(self, tiny_network):
        assert list(tiny_network.in_degrees()) == [0, 1, 1, 2, 1]

    def test_out_neighbors_sorted(self, tiny_network):
        assert list(tiny_network.out_neighbors(0)) == [1, 2]

    def test_in_neighbors(self, tiny_network):
        assert list(tiny_network.in_neighbors(3)) == [1, 2]

    def test_has_edge(self, tiny_network):
        assert tiny_network.has_edge(0, 1)
        assert not tiny_network.has_edge(1, 0)

    def test_invalid_node_index(self, tiny_network):
        with pytest.raises(ValueError):
            tiny_network.out_neighbors(9)

    def test_edge_list_roundtrip(self, tiny_network):
        edges = tiny_network.edge_list()
        rebuilt = RadioNetwork(tiny_network.n, edges)
        assert rebuilt == tiny_network


class TestTransforms:
    def test_reverse(self, tiny_network):
        rev = tiny_network.reverse()
        assert rev.has_edge(1, 0)
        assert not rev.has_edge(0, 1)
        assert rev.num_edges == tiny_network.num_edges

    def test_symmetrized(self, tiny_network):
        sym = tiny_network.symmetrized()
        assert sym.is_symmetric()
        assert sym.has_edge(0, 1) and sym.has_edge(1, 0)

    def test_is_symmetric_detects_asymmetry(self, tiny_network):
        assert not tiny_network.is_symmetric()

    def test_with_name(self, tiny_network):
        renamed = tiny_network.with_name("other")
        assert renamed.name == "other"
        assert renamed == tiny_network  # topology equality ignores name

    def test_empty_symmetric(self):
        assert RadioNetwork(3, []).is_symmetric()


class TestInterop:
    def test_networkx_roundtrip(self, tiny_network):
        nx_graph = tiny_network.to_networkx()
        assert nx_graph.number_of_nodes() == 5
        back = RadioNetwork.from_networkx(nx_graph)
        assert back == tiny_network

    def test_from_undirected_networkx(self):
        import networkx as nx

        g = nx.path_graph(4)
        net = RadioNetwork.from_networkx(g)
        assert net.has_edge(0, 1) and net.has_edge(1, 0)
        assert net.is_symmetric()

    def test_from_networkx_relabels(self):
        import networkx as nx

        g = nx.DiGraph()
        g.add_edge("a", "b")
        net = RadioNetwork.from_networkx(g)
        assert net.n == 2
        assert net.num_edges == 1


class TestDunder:
    def test_equality(self, tiny_network):
        other = RadioNetwork(5, [(0, 1), (0, 2), (1, 3), (2, 3), (3, 4)])
        assert tiny_network == other

    def test_inequality(self, tiny_network):
        other = RadioNetwork(5, [(0, 1)])
        assert tiny_network != other
        assert tiny_network != "not a network"

    def test_repr(self, tiny_network):
        text = repr(tiny_network)
        assert "n=5" in text and "m=5" in text

    def test_indices_read_only(self, tiny_network):
        with pytest.raises(ValueError):
            tiny_network.out_indices[0] = 3
