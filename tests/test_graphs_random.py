"""Tests for the random-digraph generators."""

import math

import numpy as np
import pytest

from repro.graphs.properties import is_strongly_connected
from repro.graphs.random_digraph import (
    connectivity_threshold_probability,
    random_digraph,
    random_undirected_radio_network,
)


class TestRandomDigraph:
    def test_basic_shape(self):
        net = random_digraph(100, 0.05, rng=1)
        assert net.n == 100
        assert net.num_edges > 0

    def test_reproducibility(self):
        a = random_digraph(200, 0.05, rng=3)
        b = random_digraph(200, 0.05, rng=3)
        assert a == b

    def test_different_seeds_differ(self):
        a = random_digraph(200, 0.05, rng=3)
        b = random_digraph(200, 0.05, rng=4)
        assert a != b

    def test_expected_degree_close(self):
        n, p = 600, 0.05
        net = random_digraph(n, p, rng=5)
        mean_out = net.out_degrees().mean()
        assert abs(mean_out - (n - 1) * p) < 3.0

    def test_no_self_loops(self):
        net = random_digraph(80, 0.2, rng=6)
        edges = net.edge_list()
        assert not np.any(edges[:, 0] == edges[:, 1])

    def test_p_zero(self):
        assert random_digraph(10, 0.0, rng=1).num_edges == 0

    def test_p_one_is_complete(self):
        net = random_digraph(12, 1.0, rng=1)
        assert net.num_edges == 12 * 11

    def test_single_node(self):
        assert random_digraph(1, 0.5, rng=1).num_edges == 0

    def test_default_name(self):
        assert "gnp" in random_digraph(10, 0.1, rng=1).name

    def test_custom_name(self):
        assert random_digraph(10, 0.1, rng=1, name="abc").name == "abc"

    def test_invalid_p(self):
        with pytest.raises(ValueError):
            random_digraph(10, 1.2, rng=1)

    def test_connected_in_threshold_regime(self):
        n = 400
        p = connectivity_threshold_probability(n, delta=4.0)
        net = random_digraph(n, p, rng=11)
        assert is_strongly_connected(net)


class TestRandomUndirected:
    def test_symmetric(self):
        net = random_undirected_radio_network(100, 0.08, rng=2)
        assert net.is_symmetric()

    def test_edge_count_close_to_expectation(self):
        n, p = 300, 0.05
        net = random_undirected_radio_network(n, p, rng=4)
        expected_directed = n * (n - 1) * p  # each undirected pair -> 2 edges
        assert abs(net.num_edges - expected_directed) < 0.2 * expected_directed

    def test_p_zero(self):
        assert random_undirected_radio_network(10, 0.0, rng=1).num_edges == 0

    def test_p_one(self):
        net = random_undirected_radio_network(8, 1.0, rng=1)
        assert net.num_edges == 8 * 7

    def test_reproducible(self):
        a = random_undirected_radio_network(60, 0.1, rng=9)
        b = random_undirected_radio_network(60, 0.1, rng=9)
        assert a == b


class TestConnectivityThreshold:
    def test_formula(self):
        n = 1024
        assert connectivity_threshold_probability(n, delta=4.0) == pytest.approx(
            4 * math.log2(n) / n
        )

    def test_clamped_to_one(self):
        assert connectivity_threshold_probability(2, delta=100.0) == 1.0

    def test_invalid(self):
        with pytest.raises(ValueError):
            connectivity_threshold_probability(1)
        with pytest.raises(ValueError):
            connectivity_threshold_probability(10, delta=0)
