"""Tests for the sequential broadcast-composition gossip baseline."""

import math

import pytest

from repro.baselines.sequential_gossip import SequentialBroadcastGossip
from repro.graphs.random_digraph import connectivity_threshold_probability, random_digraph
from repro.graphs.structured import path_of_cliques
from repro.radio.engine import run_protocol


class TestParameterisation:
    def test_epoch_length_and_budget(self):
        network = random_digraph(64, 0.2, rng=1)
        protocol = SequentialBroadcastGossip(epoch_length_factor=2.0)
        protocol.bind(network, 1)
        log_n = math.log2(64)
        assert protocol.epoch_length == math.ceil(2.0 * log_n**2)
        assert protocol.round_budget == protocol.epoch_length * 64

    def test_passes_extend_budget(self):
        network = random_digraph(32, 0.3, rng=1)
        one = SequentialBroadcastGossip(passes=1)
        two = SequentialBroadcastGossip(passes=2)
        one.bind(network, 1)
        two.bind(network, 1)
        assert two.round_budget == 2 * one.round_budget

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            SequentialBroadcastGossip(epoch_length_factor=0)
        with pytest.raises(ValueError):
            SequentialBroadcastGossip(passes=0)

    def test_rumour_schedule_cycles(self):
        network = random_digraph(16, 0.4, rng=1)
        protocol = SequentialBroadcastGossip()
        protocol.bind(network, 1)
        assert protocol._rumour_for_epoch(0) == 0
        assert protocol._rumour_for_epoch(16) == 0
        assert protocol._rumour_for_epoch(17) == 1


class TestBehaviour:
    def test_completes_on_random_network(self):
        n = 64
        p = connectivity_threshold_probability(n, delta=4.0)
        network = random_digraph(n, p, rng=3)
        result = run_protocol(network, SequentialBroadcastGossip(), rng=4)
        assert result.completed
        assert result.informed_count == n

    def test_completes_on_path_of_cliques(self):
        network = path_of_cliques(4, 5)
        result = run_protocol(network, SequentialBroadcastGossip(), rng=5)
        assert result.completed

    def test_only_rumour_knowers_transmit(self):
        network = random_digraph(20, 0.3, rng=6)
        protocol = SequentialBroadcastGossip()
        protocol.bind(network, 7)
        # In epoch 0 only node 0 knows rumour 0 initially.
        mask = protocol.transmit_mask(0)
        assert set(mask.nonzero()[0].tolist()) <= {0}

    def test_quiescent_after_budget(self):
        network = random_digraph(16, 0.4, rng=8)
        protocol = SequentialBroadcastGossip(epoch_length_factor=0.5)
        protocol.bind(network, 9)
        assert protocol.is_quiescent(protocol.round_budget)
        assert not protocol.transmit_mask(protocol.round_budget + 1).any()

    def test_more_energy_than_algorithm2(self):
        """The E16 direction at unit-test size: Algorithm 2 is cheaper per node."""
        from repro.core.gossip_random import RandomNetworkGossip

        n = 64
        p = connectivity_threshold_probability(n, delta=4.0)
        network = random_digraph(n, p, rng=10)
        seq = run_protocol(network, SequentialBroadcastGossip(), rng=11)
        alg2 = run_protocol(network, RandomNetworkGossip(p), rng=11)
        assert seq.completed and alg2.completed
        assert seq.energy.mean_per_node > alg2.energy.mean_per_node
