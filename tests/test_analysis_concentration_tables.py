"""Tests for concentration checks and table formatting."""

import numpy as np
import pytest

from repro.analysis.concentration import check_phase1_growth
from repro.analysis.tables import format_table, format_value


class TestCheckPhase1Growth:
    def test_ideal_geometric_growth(self):
        d = 8.0
        history = [1, 8, 64, 512]
        check = check_phase1_growth(history, T=3, d=d)
        assert np.allclose(check.growth_factors, d)
        assert np.allclose(check.normalized_growth, 1.0)
        assert check.final_phase1_active == 512
        assert check.phase1_ratio == pytest.approx(1.0)

    def test_partial_history(self):
        check = check_phase1_growth([1, 6], T=3, d=8.0)
        assert check.growth_factors.tolist() == [6.0]
        assert check.final_phase1_active == 6

    def test_zero_entries_ignored(self):
        check = check_phase1_growth([1, 0, 0], T=2, d=4.0)
        assert np.isfinite(check.growth_factors).all()

    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            check_phase1_growth([], T=1, d=2.0)
        with pytest.raises(ValueError):
            check_phase1_growth([1, 2], T=0, d=2.0)
        with pytest.raises(ValueError):
            check_phase1_growth([1, 2], T=1, d=0.0)

    def test_as_dict(self):
        payload = check_phase1_growth([1, 4, 16], T=2, d=4.0).as_dict()
        assert payload["final_phase1_active"] == 16
        assert isinstance(payload["growth_factors"], list)


class TestFormatValue:
    def test_none(self):
        assert format_value(None) == "-"

    def test_bool(self):
        assert format_value(True) == "yes"
        assert format_value(False) == "no"

    def test_float_compact(self):
        assert format_value(3.14159) == "3.142"

    def test_string_passthrough(self):
        assert format_value("abc") == "abc"


class TestFormatTable:
    def test_alignment_and_header(self):
        text = format_table(["a", "bbbb"], [[1, 2.5], [10, None]])
        lines = text.splitlines()
        assert lines[0].startswith("a")
        assert set(lines[1]) == {"-"}
        assert "2.5" in text and "-" in text

    def test_title(self):
        text = format_table(["x"], [[1]], title="My table")
        assert text.splitlines()[0] == "My table"

    def test_row_length_mismatch(self):
        with pytest.raises(ValueError):
            format_table(["a", "b"], [[1]])

    def test_empty_rows(self):
        text = format_table(["col"], [])
        assert "col" in text
