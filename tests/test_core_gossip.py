"""Tests for Algorithm 2 (RandomNetworkGossip)."""

import math

import pytest

from repro.core.gossip_random import RandomNetworkGossip
from repro.graphs.random_digraph import connectivity_threshold_probability, random_digraph
from repro.radio.engine import run_protocol


@pytest.fixture(scope="module")
def gossip_network():
    n = 128
    p = connectivity_threshold_probability(n, delta=4.0)
    return random_digraph(n, p, rng=55), p


class TestParameterisation:
    def test_round_budget(self, gossip_network):
        network, p = gossip_network
        protocol = RandomNetworkGossip(p, rounds_constant=8.0)
        protocol.bind(network, 1)
        n = network.n
        assert protocol.round_budget == math.ceil(8.0 * n * p * math.log2(n))
        assert protocol.transmit_probability == pytest.approx(1.0 / (n * p))

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            RandomNetworkGossip(0.0)
        with pytest.raises(ValueError):
            RandomNetworkGossip(0.1, rounds_constant=0)

    def test_transmit_probability_capped(self):
        protocol = RandomNetworkGossip(0.001)
        protocol.bind(random_digraph(50, 0.2, rng=1), 1)
        assert protocol.transmit_probability <= 1.0


class TestBehaviour:
    def test_gossip_completes(self, gossip_network):
        network, p = gossip_network
        result = run_protocol(network, RandomNetworkGossip(p), rng=3)
        assert result.completed
        assert result.informed_count == network.n  # min rumours known

    def test_completion_time_scales_with_d_log_n(self, gossip_network):
        network, p = gossip_network
        n = network.n
        result = run_protocol(network, RandomNetworkGossip(p), rng=4)
        assert result.completed
        assert result.completion_round <= 8 * (n * p) * math.log2(n)

    def test_per_node_transmissions_logarithmic(self, gossip_network):
        network, p = gossip_network
        result = run_protocol(network, RandomNetworkGossip(p), rng=5)
        # O(log n) transmissions per node at completion (Theorem 3.2 shape).
        assert result.energy.max_per_node <= 12 * math.log2(network.n)

    def test_no_transmissions_after_budget(self, gossip_network):
        network, p = gossip_network
        protocol = RandomNetworkGossip(p, rounds_constant=0.1)
        protocol.bind(network, 1)
        beyond = protocol.transmit_mask(protocol.round_budget + 1)
        assert not beyond.any()
        assert protocol.is_quiescent(protocol.round_budget)

    def test_knowledge_matrix_monotone(self, gossip_network):
        network, p = gossip_network
        protocol = RandomNetworkGossip(p)
        from repro.radio.engine import SimulationEngine

        engine = SimulationEngine(record_rounds=True)
        result = engine.run(network, protocol, rng=6)
        curve = result.informed_curve()  # min rumours known per round
        assert (curve[1:] >= curve[:-1] - 0).all()
        assert curve[-1] == network.n
