"""Tests for the Protocol base classes."""

import numpy as np
import pytest

from repro.radio.collision import StandardCollisionModel
from repro.radio.network import RadioNetwork
from repro.radio.protocol import BroadcastProtocol, GossipProtocol, Protocol


class AlwaysTransmitBroadcast(BroadcastProtocol):
    """Minimal concrete broadcast protocol: informed nodes always transmit."""

    name = "test-always"

    def transmit_mask(self, round_index):
        return self.informed.copy()


class SilentGossip(GossipProtocol):
    """Gossip protocol that never transmits (for state-machine tests)."""

    name = "test-silent-gossip"

    def transmit_mask(self, round_index):
        return np.zeros(self.n, dtype=bool)


class TestProtocolLifecycle:
    def test_unbound_access_raises(self):
        protocol = AlwaysTransmitBroadcast()
        with pytest.raises(RuntimeError):
            _ = protocol.network
        with pytest.raises(RuntimeError):
            _ = protocol.rng
        with pytest.raises(RuntimeError):
            _ = protocol.informed

    def test_bind_initialises_state(self, tiny_network):
        protocol = AlwaysTransmitBroadcast(source=0)
        protocol.bind(tiny_network, 1)
        assert protocol.n == 5
        assert protocol.informed_count() == 1
        assert protocol.informed[0]
        assert protocol.informed_round[0] == 0

    def test_invalid_source_rejected_at_bind(self, tiny_network):
        protocol = AlwaysTransmitBroadcast(source=99)
        with pytest.raises(ValueError):
            protocol.bind(tiny_network, 1)

    def test_default_quiescence_tracks_completion(self, tiny_network):
        protocol = AlwaysTransmitBroadcast()
        protocol.bind(tiny_network, 1)
        assert protocol.is_quiescent(0) == protocol.is_complete()

    def test_suggested_max_rounds_positive(self, tiny_network):
        protocol = AlwaysTransmitBroadcast()
        protocol.bind(tiny_network, 1)
        assert protocol.suggested_max_rounds() > 0

    def test_repr(self, tiny_network):
        assert "AlwaysTransmitBroadcast" in repr(AlwaysTransmitBroadcast())


class TestBroadcastBookkeeping:
    def test_mark_informed_returns_only_new(self, tiny_network):
        protocol = AlwaysTransmitBroadcast()
        protocol.bind(tiny_network, 1)
        newly = protocol.mark_informed(np.array([0, 1, 2]), round_index=0)
        assert sorted(newly.tolist()) == [1, 2]
        # Marking again returns nothing new.
        assert protocol.mark_informed(np.array([1, 2]), round_index=1).size == 0

    def test_informed_round_recorded(self, tiny_network):
        protocol = AlwaysTransmitBroadcast()
        protocol.bind(tiny_network, 1)
        protocol.mark_informed(np.array([3]), round_index=4)
        assert protocol.informed_round[3] == 5

    def test_observe_marks_receivers(self, tiny_network):
        protocol = AlwaysTransmitBroadcast()
        protocol.bind(tiny_network, 1)
        outcome = StandardCollisionModel().resolve(
            tiny_network, protocol.transmit_mask(0)
        )
        protocol.observe(0, protocol.transmit_mask(0), outcome)
        assert protocol.informed_count() == 3  # source + its two listeners

    def test_completion(self, tiny_network):
        protocol = AlwaysTransmitBroadcast()
        protocol.bind(tiny_network, 1)
        assert not protocol.is_complete()
        protocol.mark_informed(np.arange(5), round_index=0)
        assert protocol.is_complete()

    def test_rebind_resets(self, tiny_network):
        protocol = AlwaysTransmitBroadcast()
        protocol.bind(tiny_network, 1)
        protocol.mark_informed(np.arange(5), round_index=0)
        protocol.bind(tiny_network, 2)
        assert protocol.informed_count() == 1


class TestGossipBookkeeping:
    def test_initial_knowledge_is_identity(self, tiny_network):
        protocol = SilentGossip()
        protocol.bind(tiny_network, 1)
        assert protocol.knowledge.sum() == 5
        assert list(protocol.rumours_known()) == [1] * 5

    def test_merge_deliveries_joins_rumours(self, tiny_network):
        protocol = SilentGossip()
        protocol.bind(tiny_network, 1)
        # Simulate node 0 delivering to node 1.
        outcome = StandardCollisionModel().resolve(
            tiny_network, np.array([True, False, False, False, False])
        )
        protocol.merge_deliveries(outcome)
        assert protocol.knowledge[1, 0]
        assert protocol.knowledge[2, 0]
        assert not protocol.knowledge[0, 1]

    def test_merge_uses_round_start_snapshot(self):
        # Chain 0 -> 1 -> 2: if 0 and 1 both deliver in the same round, node 2
        # must receive only node 1's round-start knowledge (not rumour 0).
        net = RadioNetwork(3, [(0, 1), (1, 2)])
        protocol = SilentGossip()
        protocol.bind(net, 1)
        outcome = StandardCollisionModel().resolve(net, np.array([True, True, False]))
        protocol.merge_deliveries(outcome)
        assert protocol.knowledge[1, 0]
        assert protocol.knowledge[2, 1]
        assert not protocol.knowledge[2, 0]

    def test_completion(self, tiny_network):
        protocol = SilentGossip()
        protocol.bind(tiny_network, 1)
        assert not protocol.is_complete()
        protocol.knowledge[:] = True
        assert protocol.is_complete()

    def test_empty_delivery_is_noop(self, tiny_network):
        protocol = SilentGossip()
        protocol.bind(tiny_network, 1)
        outcome = StandardCollisionModel().resolve(
            tiny_network, np.zeros(5, dtype=bool)
        )
        protocol.merge_deliveries(outcome)
        assert protocol.knowledge.sum() == 5
