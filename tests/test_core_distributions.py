"""Tests for the Fig. 1 scale distributions."""

import math

import numpy as np
import pytest

from repro.core.distributions import (
    AlphaDistribution,
    CzumajRytterDistribution,
    FixedProbabilityOblivious,
    ScaleDistribution,
    UniformScaleDistribution,
)


class TestScaleDistribution:
    def test_normalisation(self):
        dist = ScaleDistribution([1.0, 2.0, 1.0])
        assert dist.probabilities.sum() == pytest.approx(1.0)
        assert dist.probability_of_scale(1) == pytest.approx(0.5)

    def test_mean_transmission_probability(self):
        # Scales 0 and 1 equally likely: E[2^-I] = (1 + 0.5)/2.
        dist = ScaleDistribution([1.0, 1.0])
        assert dist.mean_transmission_probability() == pytest.approx(0.75)

    def test_sampling_respects_support(self, rng):
        dist = ScaleDistribution([0.0, 1.0, 1.0])
        scales = dist.sample_scales(500, rng=rng)
        assert set(np.unique(scales)) <= {1, 2}

    def test_sample_probabilities_are_powers_of_two(self, rng):
        dist = ScaleDistribution([0.0, 1.0, 1.0, 1.0])
        probs = dist.sample_probabilities(100, rng=rng)
        assert set(np.unique(probs)) <= {0.5, 0.25, 0.125}

    def test_zero_count_sampling(self, rng):
        assert ScaleDistribution([1.0]).sample_scales(0, rng=rng).size == 0

    def test_invalid_weights(self):
        with pytest.raises(ValueError):
            ScaleDistribution([])
        with pytest.raises(ValueError):
            ScaleDistribution([-1.0, 2.0])
        with pytest.raises(ValueError):
            ScaleDistribution([0.0, 0.0])

    def test_probability_of_scale_bounds(self):
        dist = ScaleDistribution([1.0, 1.0])
        with pytest.raises(ValueError):
            dist.probability_of_scale(5)

    def test_min_scale_probability_ignores_zero_weight_scales(self):
        dist = ScaleDistribution([0.0, 3.0, 1.0])
        assert dist.min_scale_probability() == pytest.approx(0.25)

    def test_probabilities_read_only(self):
        dist = ScaleDistribution([1.0, 1.0])
        with pytest.raises(ValueError):
            dist.probabilities[0] = 0.9


class TestAlphaDistribution:
    @pytest.mark.parametrize("n,diameter", [(1024, 8), (1024, 64), (4096, 64), (256, 16)])
    def test_floor_property(self, n, diameter):
        """Every scale has probability Ω(1/log n) — the Theorem 4.1 driver."""
        alpha = AlphaDistribution(n, diameter)
        log_n = math.log2(n)
        assert alpha.min_scale_probability() >= 1.0 / (4.0 * log_n)

    @pytest.mark.parametrize("n,diameter", [(1024, 8), (1024, 64), (4096, 64)])
    def test_energy_property(self, n, diameter):
        """The mean transmission probability is Θ(1/λ)."""
        alpha = AlphaDistribution(n, diameter)
        lam = alpha.lam
        mean = alpha.mean_transmission_probability()
        assert 0.2 / lam <= mean <= 4.0 / lam

    def test_dominates_alpha_prime(self):
        """α_k ≥ α'_k / 2 scale-wise (up to normalisation constants)."""
        n, diameter = 4096, 64
        alpha = AlphaDistribution(n, diameter)
        alpha_prime = CzumajRytterDistribution(n, diameter)
        a = alpha.probabilities[1:]
        ap = alpha_prime.probabilities[1:]
        assert np.all(a >= ap / 2.0 - 1e-12)

    def test_lambda_override(self):
        alpha_small = AlphaDistribution(1024, 32)
        alpha_big = AlphaDistribution(1024, 32, lam=10.0)
        assert alpha_big.lam > alpha_small.lam
        assert (
            alpha_big.mean_transmission_probability()
            < alpha_small.mean_transmission_probability()
        )

    def test_scale_zero_never_played(self):
        alpha = AlphaDistribution(1024, 16)
        assert alpha.probability_of_scale(0) == 0.0

    def test_num_scales(self):
        assert AlphaDistribution(1024, 16).max_scale == 10

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            AlphaDistribution(1, 1)
        with pytest.raises(ValueError):
            AlphaDistribution(16, 0)


class TestCzumajRytterDistribution:
    def test_geometric_tail(self):
        dist = CzumajRytterDistribution(4096, 16)
        probs = dist.probabilities
        lam = int(dist.lam)
        # Beyond λ the mass halves each scale.
        for k in range(lam + 1, dist.max_scale):
            assert probs[k + 1] == pytest.approx(probs[k] / 2, rel=1e-9)

    def test_no_floor_compared_to_alpha(self):
        n, diameter = 65536, 256
        alpha = AlphaDistribution(n, diameter)
        prime = CzumajRytterDistribution(n, diameter)
        # The largest scale carries much less mass under alpha'.
        assert prime.probabilities[-1] < alpha.probabilities[-1] / 4

    def test_mean_is_theta_one_over_lambda(self):
        dist = CzumajRytterDistribution(4096, 64)
        assert 0.2 / dist.lam <= dist.mean_transmission_probability() <= 4.0 / dist.lam


class TestUniformScaleDistribution:
    def test_uniform_over_positive_scales(self):
        dist = UniformScaleDistribution(1024)
        probs = dist.probabilities
        assert probs[0] == 0.0
        assert np.allclose(probs[1:], probs[1])

    def test_mean(self):
        dist = UniformScaleDistribution(1024)
        expected = np.mean([2.0**-k for k in range(1, 11)])
        assert dist.mean_transmission_probability() == pytest.approx(expected)


class TestFixedProbabilityOblivious:
    def test_constant_probability(self, rng):
        dist = FixedProbabilityOblivious(0.3)
        assert dist.per_round_probability() == 0.3
        assert dist.mean_transmission_probability() == 0.3
        assert np.all(dist.sample_probabilities(10, rng=rng) == 0.3)

    def test_invalid(self):
        with pytest.raises(ValueError):
            FixedProbabilityOblivious(0.0)
        with pytest.raises(ValueError):
            FixedProbabilityOblivious(1.5)
