"""Tests for GraphSpec / build_network."""

import pytest

from repro.graphs.builders import FAMILIES, GraphSpec, build_network


class TestGraphSpec:
    def test_describe(self):
        spec = GraphSpec("gnp", {"n": 10, "p": 0.5})
        assert "gnp" in spec.describe() and "n=10" in spec.describe()

    def test_dict_roundtrip(self):
        spec = GraphSpec("grid", {"rows": 3, "cols": 4})
        assert GraphSpec.from_dict(spec.as_dict()) == spec

    def test_frozen(self):
        spec = GraphSpec("path", {"n": 4})
        with pytest.raises(Exception):
            spec.family = "other"


class TestBuildNetwork:
    @pytest.mark.parametrize(
        "spec,expected_n",
        [
            (GraphSpec("gnp", {"n": 50, "p": 0.1}), 50),
            (GraphSpec("gnp_undirected", {"n": 30, "p": 0.2}), 30),
            (GraphSpec("geometric", {"n": 40, "radius": 0.3}), 40),
            (GraphSpec("geometric_hetero", {"n": 25, "radius_low": 0.1, "radius_high": 0.3}), 25),
            (GraphSpec("path", {"n": 9}), 9),
            (GraphSpec("cycle", {"n": 7}), 7),
            (GraphSpec("star", {"n": 8}), 8),
            (GraphSpec("complete", {"n": 6}), 6),
            (GraphSpec("grid", {"rows": 3, "cols": 3}), 9),
            (GraphSpec("path_of_cliques", {"num_cliques": 3, "clique_size": 4}), 12),
            (GraphSpec("caterpillar", {"spine_length": 4, "leaves_per_node": 2}), 12),
            (GraphSpec("observation43", {"n": 5}), 16),
        ],
    )
    def test_every_family_builds(self, spec, expected_n):
        net = build_network(spec, rng=1)
        assert net.n == expected_n

    def test_theorem44_family(self):
        net = build_network(GraphSpec("theorem44", {"n": 16, "diameter": 20}))
        assert net.n > 16

    def test_random_families_respect_seed(self):
        spec = GraphSpec("gnp", {"n": 60, "p": 0.1})
        assert build_network(spec, rng=5) == build_network(spec, rng=5)
        assert build_network(spec, rng=5) != build_network(spec, rng=6)

    def test_deterministic_families_ignore_seed(self):
        spec = GraphSpec("grid", {"rows": 4})
        assert build_network(spec, rng=1) == build_network(spec, rng=2)

    def test_unknown_family(self):
        with pytest.raises(ValueError, match="unknown graph family"):
            build_network(GraphSpec("nope", {}))

    def test_registry_covers_all_names(self):
        assert {"gnp", "geometric", "theorem44", "observation43"} <= set(FAMILIES)
