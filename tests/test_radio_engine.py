"""Tests for the synchronous round engine."""

import numpy as np
import pytest

from repro.baselines.flooding import DeterministicFlood
from repro.core.broadcast_general import KnownDiameterBroadcast
from repro.radio.engine import SimulationEngine, run_protocol
from repro.radio.network import RadioNetwork
from repro.radio.protocol import BroadcastProtocol


class CountdownBroadcast(BroadcastProtocol):
    """Informs everything via flooding on a path; used to test traces."""

    name = "test-countdown"

    def transmit_mask(self, round_index):
        return self.informed.copy()


class TestEngineBasics:
    def test_flood_completes_on_path(self, small_path):
        result = run_protocol(small_path, CountdownBroadcast(source=0), rng=1)
        assert result.completed
        # On a path, flooding needs exactly n-1 rounds from an endpoint.
        assert result.completion_round == small_path.n - 1
        assert result.informed_count == small_path.n

    def test_flood_stalls_on_star_like_collisions(self, tiny_network):
        # Nodes 1 and 2 both feed 3: deterministic flooding collides forever.
        result = run_protocol(
            tiny_network, CountdownBroadcast(source=0), rng=1, max_rounds=30
        )
        assert not result.completed
        assert result.informed_count == 3

    def test_max_rounds_respected(self, small_path):
        result = run_protocol(
            small_path, CountdownBroadcast(source=0), rng=1, max_rounds=3
        )
        assert not result.completed
        assert result.rounds_executed == 3
        assert result.completion_round == 3

    def test_record_rounds(self, small_path):
        result = run_protocol(
            small_path, CountdownBroadcast(source=0), rng=1, record_rounds=True
        )
        assert len(result.rounds) == result.rounds_executed
        curve = result.informed_curve()
        assert curve[-1] == small_path.n
        assert (np.diff(curve) >= 0).all()
        assert result.transmitter_curve()[0] == 1

    def test_keep_arrays(self, small_path):
        result = run_protocol(
            small_path, CountdownBroadcast(source=0), rng=1, keep_arrays=True
        )
        assert result.per_node_transmissions is not None
        assert result.per_node_transmissions.shape == (small_path.n,)
        assert result.informed_round is not None
        assert result.informed_round[0] == 0

    def test_energy_matches_trace(self, small_path):
        result = run_protocol(
            small_path,
            CountdownBroadcast(source=0),
            rng=1,
            keep_arrays=True,
            record_rounds=True,
        )
        assert result.energy.total_transmissions == result.per_node_transmissions.sum()
        assert result.energy.total_transmissions == sum(
            r.transmitters for r in result.rounds
        )

    def test_invalid_max_rounds(self, small_path):
        with pytest.raises(ValueError):
            run_protocol(small_path, CountdownBroadcast(), rng=1, max_rounds=0)

    def test_metadata_carried(self, small_path):
        protocol = DeterministicFlood(source=0)
        result = run_protocol(small_path, protocol, rng=1)
        assert "max_transmissions_per_node" in result.metadata


class TestQuiescenceMode:
    def test_quiescence_keeps_counting_energy(self, small_cliques):
        diameter = 2 * 6 - 1
        stop_at_complete = run_protocol(
            small_cliques, KnownDiameterBroadcast(diameter), rng=5
        )
        to_quiescence = run_protocol(
            small_cliques,
            KnownDiameterBroadcast(diameter),
            rng=5,
            run_to_quiescence=True,
        )
        assert to_quiescence.completed
        assert (
            to_quiescence.energy.total_transmissions
            >= stop_at_complete.energy.total_transmissions
        )
        assert to_quiescence.rounds_executed >= stop_at_complete.rounds_executed

    def test_completion_round_is_first_completion(self, small_cliques):
        diameter = 2 * 6 - 1
        result = run_protocol(
            small_cliques,
            KnownDiameterBroadcast(diameter),
            rng=5,
            run_to_quiescence=True,
        )
        assert result.completed
        assert result.completion_round <= result.rounds_executed

    def test_engine_reuse(self, small_path):
        engine = SimulationEngine()
        r1 = engine.run(small_path, CountdownBroadcast(source=0), rng=1)
        r2 = engine.run(small_path, CountdownBroadcast(source=0), rng=2)
        assert r1.completed and r2.completed


class TestDeterminism:
    def test_same_seed_same_result(self, small_gnp):
        a = run_protocol(small_gnp, KnownDiameterBroadcast(4), rng=11)
        b = run_protocol(small_gnp, KnownDiameterBroadcast(4), rng=11)
        assert a.completion_round == b.completion_round
        assert a.energy.total_transmissions == b.energy.total_transmissions

    def test_different_seed_usually_differs(self, small_gnp):
        a = run_protocol(small_gnp, KnownDiameterBroadcast(4), rng=11)
        b = run_protocol(small_gnp, KnownDiameterBroadcast(4), rng=12)
        # They may coincide by chance in completion round, but the full energy
        # footprint matching exactly would be astronomically unlikely.
        assert (
            a.energy.total_transmissions != b.energy.total_transmissions
            or a.completion_round != b.completion_round
        )
