"""Tests for random geometric radio networks."""

import numpy as np
import pytest

from repro.graphs.geometric import (
    connectivity_radius,
    geometric_digraph,
    geometric_digraph_from_positions,
    heterogeneous_geometric_digraph,
)
from repro.graphs.properties import is_strongly_connected


class TestGeometricDigraph:
    def test_basic(self):
        net = geometric_digraph(100, 0.2, rng=1)
        assert net.n == 100
        assert net.is_symmetric()

    def test_return_positions(self):
        net, pos = geometric_digraph(50, 0.2, rng=2, return_positions=True)
        assert pos.shape == (50, 2)
        assert (pos >= 0).all() and (pos <= 1).all()

    def test_reproducible(self):
        assert geometric_digraph(80, 0.2, rng=3) == geometric_digraph(80, 0.2, rng=3)

    def test_radius_monotone(self):
        small = geometric_digraph(120, 0.08, rng=4)
        large = geometric_digraph(120, 0.25, rng=4)
        assert large.num_edges > small.num_edges

    def test_single_node(self):
        assert geometric_digraph(1, 0.3, rng=5).num_edges == 0

    def test_connectivity_radius_usually_connects(self):
        connected = 0
        for seed in range(5):
            net = geometric_digraph(150, 1.8 * connectivity_radius(150), rng=seed)
            connected += is_strongly_connected(net)
        assert connected >= 4

    def test_invalid_radius(self):
        with pytest.raises(ValueError):
            geometric_digraph(10, 0.0, rng=1)


class TestFromPositions:
    def test_edges_match_distances(self):
        positions = np.array([[0.0, 0.0], [0.05, 0.0], [0.5, 0.5]])
        net = geometric_digraph_from_positions(positions, 0.1)
        assert net.has_edge(0, 1) and net.has_edge(1, 0)
        assert not net.has_edge(0, 2)

    def test_bad_shape(self):
        with pytest.raises(ValueError):
            geometric_digraph_from_positions(np.zeros((3, 3)), 0.1)

    def test_single_position(self):
        assert geometric_digraph_from_positions(np.zeros((1, 2)), 0.1).num_edges == 0


class TestHeterogeneous:
    def test_asymmetric_links_possible(self):
        net = heterogeneous_geometric_digraph(150, 0.05, 0.3, rng=7)
        assert net.n == 150
        # With widely different radii the network should not be symmetric.
        assert not net.is_symmetric()

    def test_return_positions(self):
        net, pos = heterogeneous_geometric_digraph(
            40, 0.1, 0.2, rng=8, return_positions=True
        )
        assert pos.shape == (40, 2)

    def test_radius_order_enforced(self):
        with pytest.raises(ValueError):
            heterogeneous_geometric_digraph(10, 0.3, 0.1, rng=1)

    def test_edge_semantics_listener_radius(self):
        # Edge (u, v) exists iff u is within v's listening radius: build a
        # 2-node instance by hand through the public generator's convention.
        net = heterogeneous_geometric_digraph(2, 1.5, 1.5, rng=3)
        # With radius >= sqrt(2) both directions always exist.
        assert net.has_edge(0, 1) and net.has_edge(1, 0)


class TestConnectivityRadius:
    def test_decreases_with_n(self):
        assert connectivity_radius(10_000) < connectivity_radius(100)

    def test_invalid(self):
        with pytest.raises(ValueError):
            connectivity_radius(1)
