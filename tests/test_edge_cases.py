"""Edge-case and failure-injection tests across the stack.

These exercise the corners the main suites do not: degenerate network sizes,
disconnected topologies (broadcast cannot complete), protocols bound to the
wrong kind of workload, and graceful horizon handling.
"""

import math

import numpy as np
import pytest

from repro.baselines.decay import DecayBroadcast
from repro.core.broadcast_general import KnownDiameterBroadcast
from repro.core.broadcast_random import EnergyEfficientBroadcast
from repro.core.gossip_random import RandomNetworkGossip
from repro.core.oblivious import TimeInvariantBroadcast
from repro.experiments.protocols import ProtocolSpec
from repro.experiments.runner import Job, execute_job
from repro.graphs.builders import GraphSpec
from repro.graphs.random_digraph import random_digraph
from repro.graphs.structured import path_network, star_network
from repro.radio.engine import run_protocol
from repro.radio.network import RadioNetwork


class TestDegenerateSizes:
    def test_single_node_broadcast_is_trivially_complete(self):
        network = RadioNetwork(1, [])
        result = run_protocol(network, DecayBroadcast(source=0), rng=1)
        assert result.completed
        assert result.completion_round == 0
        assert result.energy.total_transmissions == 0

    def test_single_node_gossip_is_trivially_complete(self):
        network = RadioNetwork(1, [])
        result = run_protocol(network, RandomNetworkGossip(0.5), rng=1)
        assert result.completed
        assert result.rounds_executed == 0

    def test_two_node_broadcast(self):
        network = RadioNetwork(2, [(0, 1), (1, 0)])
        result = run_protocol(network, DecayBroadcast(source=0), rng=1)
        assert result.completed
        assert result.completion_round >= 1

    def test_algorithm1_on_two_nodes(self):
        network = RadioNetwork(2, [(0, 1), (1, 0)])
        result = run_protocol(network, EnergyEfficientBroadcast(0.9), rng=2)
        assert result.completed
        assert result.energy.max_per_node <= 1


class TestDisconnectedAndUnreachable:
    def test_broadcast_on_disconnected_graph_does_not_complete(self):
        # Two components: 0-1 and 2-3.
        network = RadioNetwork(4, [(0, 1), (1, 0), (2, 3), (3, 2)])
        result = run_protocol(
            network, DecayBroadcast(source=0), rng=1, max_rounds=200
        )
        assert not result.completed
        assert result.informed_count == 2

    def test_quiescent_failure_reports_rounds(self):
        # Algorithm 3 gives up once every informed node's window expires even
        # though the far component is never reached.
        network = RadioNetwork(4, [(0, 1), (1, 0), (2, 3), (3, 2)])
        protocol = KnownDiameterBroadcast(2, beta=0.5)
        result = run_protocol(network, protocol, rng=1, run_to_quiescence=True)
        assert not result.completed
        assert result.rounds_executed < protocol.round_budget

    def test_sink_only_source_cannot_broadcast(self):
        # The source has no out-edges at all.
        network = RadioNetwork(3, [(1, 2), (2, 1)])
        result = run_protocol(
            network, DecayBroadcast(source=0), rng=1, max_rounds=50
        )
        assert not result.completed
        assert result.informed_count == 1


class TestProtocolMisuse:
    def test_algorithm1_source_out_of_range(self):
        network = path_network(4)
        with pytest.raises(ValueError):
            run_protocol(network, EnergyEfficientBroadcast(0.5, source=10), rng=1)

    def test_time_invariant_window_blocks_late_transmissions(self):
        network = star_network(6)
        protocol = TimeInvariantBroadcast(0.9, active_window=1)
        result = run_protocol(
            network, protocol, rng=1, run_to_quiescence=True, keep_arrays=True
        )
        # Everyone transmits at most once (window of a single round).
        assert result.per_node_transmissions.max() <= 1

    def test_job_with_mismatched_protocol_graph_pair_still_runs(self):
        # A gossip protocol on a lower-bound network: semantically odd but
        # must not crash; it simply will not complete within a tiny horizon.
        job = Job(
            graph=GraphSpec("observation43", {"n": 4}),
            protocol=ProtocolSpec("uniform_gossip", {}),
            seed=1,
            max_rounds=10,
        )
        result = execute_job(job)
        assert not result.completed
        assert result.rounds_executed == 10


class TestNumericalEdges:
    def test_algorithm1_with_p_equal_one(self):
        network = RadioNetwork(3, [(0, 1), (0, 2), (1, 0), (1, 2), (2, 0), (2, 1)])
        protocol = EnergyEfficientBroadcast(1.0)
        result = run_protocol(network, protocol, rng=1, run_to_quiescence=True)
        # With p = 1 the source's single transmission reaches everyone.
        assert result.completed
        assert result.completion_round == 1

    def test_algorithm3_diameter_larger_than_network(self):
        # Overstated diameter only lengthens the horizon; the run still works.
        network = path_network(6)
        result = run_protocol(network, KnownDiameterBroadcast(50), rng=2)
        assert result.completed

    def test_gossip_probability_floor(self):
        # p so small that 1/d > 1 must clamp to probability 1.
        network = RadioNetwork(3, [(0, 1), (1, 2), (2, 0)])
        protocol = RandomNetworkGossip(1e-6)
        protocol.bind(network, 1)
        assert protocol.transmit_probability == 1.0

    def test_engine_handles_zero_transmitter_rounds(self):
        # A protocol that never transmits: the engine must walk the horizon
        # and report a clean failure.
        network = path_network(3)

        class Silent(DecayBroadcast):
            def transmit_mask(self, round_index):
                return np.zeros(self.n, dtype=bool)

        result = run_protocol(network, Silent(source=0), rng=1, max_rounds=5)
        assert not result.completed
        assert result.energy.total_transmissions == 0
