"""Property-based tests (hypothesis) for the core data structures and invariants."""

import math

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.broadcast_random import EnergyEfficientBroadcast
from repro.core.distributions import AlphaDistribution, CzumajRytterDistribution, ScaleDistribution
from repro.graphs.lowerbound import observation43_network
from repro.graphs.random_digraph import random_digraph
from repro.graphs.structured import path_of_cliques
from repro.radio.collision import StandardCollisionModel
from repro.radio.energy import EnergyAccountant
from repro.radio.engine import run_protocol
from repro.radio.network import RadioNetwork

# Keep hypothesis examples modest: each example builds graphs / runs rounds.
_SETTINGS = settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


# --------------------------------------------------------------------------- #
# Strategies
# --------------------------------------------------------------------------- #
@st.composite
def edge_lists(draw, max_nodes=12):
    """A random (n, edges) pair with no self-loops."""
    n = draw(st.integers(min_value=2, max_value=max_nodes))
    m = draw(st.integers(min_value=0, max_value=n * (n - 1)))
    edges = draw(
        st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=n - 1),
                st.integers(min_value=0, max_value=n - 1),
            ).filter(lambda e: e[0] != e[1]),
            min_size=0,
            max_size=m,
        )
    )
    return n, edges


@st.composite
def transmit_masks(draw, n):
    bits = draw(st.lists(st.booleans(), min_size=n, max_size=n))
    return np.asarray(bits, dtype=bool)


# --------------------------------------------------------------------------- #
# RadioNetwork invariants
# --------------------------------------------------------------------------- #
class TestNetworkProperties:
    @_SETTINGS
    @given(edge_lists())
    def test_csr_degree_consistency(self, n_edges):
        n, edges = n_edges
        net = RadioNetwork(n, np.asarray(edges, dtype=np.int64).reshape(-1, 2))
        assert net.out_degrees().sum() == net.num_edges
        assert net.in_degrees().sum() == net.num_edges
        # Every edge is retrievable through both adjacencies.
        for u, v in set(edges):
            assert net.has_edge(u, v)
            assert v in net.out_neighbors(u)
            assert u in net.in_neighbors(v)

    @_SETTINGS
    @given(edge_lists())
    def test_reverse_is_involution(self, n_edges):
        n, edges = n_edges
        net = RadioNetwork(n, np.asarray(edges, dtype=np.int64).reshape(-1, 2))
        assert net.reverse().reverse() == net

    @_SETTINGS
    @given(edge_lists())
    def test_symmetrized_is_symmetric(self, n_edges):
        n, edges = n_edges
        net = RadioNetwork(n, np.asarray(edges, dtype=np.int64).reshape(-1, 2))
        assert net.symmetrized().is_symmetric()


# --------------------------------------------------------------------------- #
# Collision-rule invariants
# --------------------------------------------------------------------------- #
class TestCollisionProperties:
    @_SETTINGS
    @given(edge_lists(), st.data())
    def test_receive_iff_exactly_one_transmitting_in_neighbour(self, n_edges, data):
        n, edges = n_edges
        net = RadioNetwork(n, np.asarray(edges, dtype=np.int64).reshape(-1, 2))
        mask = data.draw(transmit_masks(n))
        outcome = StandardCollisionModel().resolve(net, mask)

        # Recompute hear counts naively.
        naive = np.zeros(n, dtype=int)
        for u in range(n):
            if mask[u]:
                for v in net.out_neighbors(u):
                    naive[v] += 1
        assert np.array_equal(naive, outcome.hear_counts)
        receivers = set(outcome.receivers.tolist())
        assert receivers == {v for v in range(n) if naive[v] == 1}
        # The reported sender is a transmitting in-neighbour of the receiver.
        for receiver, sender in zip(outcome.receivers, outcome.senders):
            assert mask[sender]
            assert net.has_edge(int(sender), int(receiver))

    @_SETTINGS
    @given(edge_lists(), st.data())
    def test_energy_accounting_matches_mask_sum(self, n_edges, data):
        n, edges = n_edges
        acc = EnergyAccountant(n)
        total = 0
        for _ in range(3):
            mask = data.draw(transmit_masks(n))
            total += int(mask.sum())
            acc.record_round(mask)
        assert acc.total() == total
        report = acc.report()
        assert report.total_transmissions == total
        assert report.max_per_node <= 3


# --------------------------------------------------------------------------- #
# Distribution invariants
# --------------------------------------------------------------------------- #
class TestDistributionProperties:
    @_SETTINGS
    @given(
        st.lists(st.floats(min_value=0.0, max_value=10.0), min_size=1, max_size=12).filter(
            lambda w: sum(w) > 0
        )
    )
    def test_normalisation_and_mean_bounds(self, weights):
        dist = ScaleDistribution(weights)
        assert dist.probabilities.sum() == pytest.approx(1.0)
        mean = dist.mean_transmission_probability()
        assert 0.0 <= mean <= 1.0
        assert dist.min_scale_probability() > 0.0

    @_SETTINGS
    @given(
        st.integers(min_value=4, max_value=16),
        st.integers(min_value=1, max_value=12),
    )
    def test_alpha_structural_properties(self, log_n, diameter_exp):
        n = 2**log_n
        diameter = min(2**diameter_exp, n)
        alpha = AlphaDistribution(n, diameter)
        prime = CzumajRytterDistribution(n, diameter)
        # Floor: every played scale has probability >= 1/(4 log n).
        assert alpha.min_scale_probability() >= 1.0 / (4.0 * log_n)
        # Energy: mean * lambda is Theta(1).
        assert 0.15 <= alpha.mean_transmission_probability() * alpha.lam <= 4.0
        # Scale-wise domination of alpha' / 2.
        assert np.all(alpha.probabilities[1:] >= prime.probabilities[1:] / 2 - 1e-12)

    @_SETTINGS
    @given(st.integers(min_value=0, max_value=2**31 - 1))
    def test_sampling_stays_on_support(self, seed):
        dist = AlphaDistribution(256, 16)
        scales = dist.sample_scales(64, rng=seed)
        assert scales.min() >= 1
        assert scales.max() <= dist.max_scale


# --------------------------------------------------------------------------- #
# Protocol invariants
# --------------------------------------------------------------------------- #
class TestProtocolProperties:
    @_SETTINGS
    @given(
        st.integers(min_value=64, max_value=192),
        st.integers(min_value=0, max_value=2**31 - 1),
    )
    def test_algorithm1_never_transmits_twice(self, n, seed):
        """The Theorem 2.1 invariant holds for arbitrary (n, seed)."""
        p = min(1.0, 5 * math.log2(n) / n)
        network = random_digraph(n, p, rng=seed)
        result = run_protocol(
            network,
            EnergyEfficientBroadcast(p),
            rng=seed + 1,
            keep_arrays=True,
            run_to_quiescence=True,
        )
        assert result.per_node_transmissions.max() <= 1

    @_SETTINGS
    @given(st.integers(min_value=0, max_value=2**31 - 1))
    def test_informed_set_grows_monotonically(self, seed):
        network = path_of_cliques(4, 5)
        result = run_protocol(
            network,
            EnergyEfficientBroadcast(0.2),
            rng=seed,
            record_rounds=True,
            run_to_quiescence=True,
        )
        curve = result.informed_curve()
        assert (np.diff(curve) >= 0).all()

    @_SETTINGS
    @given(st.integers(min_value=2, max_value=24))
    def test_observation43_structure_scales(self, n):
        net, s = observation43_network(n, return_structure=True)
        assert net.n == 3 * n + 1
        assert net.num_edges == 2 * n + 2 * n
        assert s.relays.size == 2 * n
