"""Tests for the experiment infrastructure (results, protocols, runner, figures)."""

import json

import numpy as np
import pytest

from repro.experiments.figures import ascii_chart, series_to_csv
from repro.experiments.protocols import PROTOCOL_FACTORIES, ProtocolSpec, build_protocol
from repro.experiments.results import ExperimentResult, Series
from repro.experiments.runner import Job, aggregate_runs, execute_job, repeat_job, run_jobs
from repro.graphs.builders import GraphSpec


class TestExperimentResult:
    def _result(self):
        return ExperimentResult(
            experiment_id="E0",
            title="test",
            claim="a claim",
            columns=["a", "b"],
            rows=[[1, 2.5], ["x", None]],
            series=[Series("s", [1, 2], [3.0, 4.0], x_label="n", y_label="t")],
            notes=["note one"],
            parameters={"scale": "quick"},
        )

    def test_render_contains_table_and_notes(self):
        text = self._result().render()
        assert "E0: test" in text
        assert "a claim" in text
        assert "note one" in text
        assert "2.5" in text

    def test_json_roundtrip(self):
        result = self._result()
        back = ExperimentResult.from_json(result.to_json())
        assert back.experiment_id == "E0"
        assert back.rows == [[1, 2.5], ["x", None]]
        assert back.series[0].x == [1, 2]
        assert back.parameters["scale"] == "quick"

    def test_json_handles_numpy_types(self):
        result = self._result()
        result.rows.append([np.int64(3), np.float64(1.5)])
        payload = json.loads(result.to_json())
        assert payload["rows"][-1] == [3, 1.5]

    def test_csv(self):
        csv_text = self._result().to_csv()
        assert csv_text.splitlines()[0] == "a,b"
        assert "2.5" in csv_text

    def test_save_load(self, tmp_path):
        path = self._result().save(tmp_path / "r.json")
        assert path.exists()
        loaded = ExperimentResult.load(path)
        assert loaded.title == "test"


class TestProtocolSpecs:
    @pytest.mark.parametrize(
        "spec",
        [
            ProtocolSpec("algorithm1", {"p": 0.1}),
            ProtocolSpec("algorithm2", {"p": 0.1}),
            ProtocolSpec("algorithm3", {"diameter": 5}),
            ProtocolSpec("tradeoff", {"diameter": 5, "lam": 3.0}),
            ProtocolSpec("decay", {}),
            ProtocolSpec("elsasser_gasieniec", {"p": 0.1}),
            ProtocolSpec("czumaj_rytter_known_d", {"diameter": 5}),
            ProtocolSpec("uniform_selection", {"diameter": 5}),
            ProtocolSpec("deterministic_flood", {}),
            ProtocolSpec("bernoulli_flood", {"q": 0.2}),
            ProtocolSpec("uniform_gossip", {}),
            ProtocolSpec("time_invariant", {"distribution": 0.25}),
        ],
    )
    def test_every_registered_protocol_builds(self, spec):
        protocol = build_protocol(spec)
        assert protocol is not None

    def test_time_invariant_distribution_dicts(self):
        for dist in (
            {"kind": "alpha", "n": 256, "diameter": 8},
            {"kind": "alpha_prime", "n": 256, "diameter": 8},
            {"kind": "uniform", "n": 256},
            {"kind": "fixed", "q": 0.3},
        ):
            protocol = build_protocol(
                ProtocolSpec("time_invariant", {"distribution": dist})
            )
            assert protocol.distribution is not None

    def test_unknown_protocol(self):
        with pytest.raises(ValueError, match="unknown protocol"):
            build_protocol(ProtocolSpec("nope", {}))

    def test_unknown_distribution_kind(self):
        with pytest.raises(ValueError):
            build_protocol(
                ProtocolSpec("time_invariant", {"distribution": {"kind": "bad"}})
            )

    def test_spec_roundtrip(self):
        spec = ProtocolSpec("decay", {"max_phases_active": 3})
        assert ProtocolSpec.from_dict(spec.as_dict()) == spec

    def test_registry_names(self):
        assert {"algorithm1", "algorithm2", "algorithm3"} <= set(PROTOCOL_FACTORIES)


class TestRunner:
    def _job(self, seed=1, **kw):
        return Job(
            graph=GraphSpec("gnp", {"n": 128, "p": 0.08}),
            protocol=ProtocolSpec("algorithm1", {"p": 0.08}),
            seed=seed,
            **kw,
        )

    def test_execute_job(self):
        result = execute_job(self._job())
        assert result.n == 128
        assert result.energy.max_per_node <= 1
        assert "job" in result.metadata

    def test_execute_job_is_deterministic(self):
        a = execute_job(self._job(seed=5))
        b = execute_job(self._job(seed=5))
        assert a.completion_round == b.completion_round
        assert a.energy.total_transmissions == b.energy.total_transmissions

    def test_same_seed_same_topology_across_protocols(self):
        job_a = Job(
            graph=GraphSpec("gnp", {"n": 100, "p": 0.1}),
            protocol=ProtocolSpec("decay", {}),
            seed=3,
        )
        job_b = Job(
            graph=GraphSpec("gnp", {"n": 100, "p": 0.1}),
            protocol=ProtocolSpec("bernoulli_flood", {"q": 0.1}),
            seed=3,
        )
        # Both should see the same sampled network: compare via informed counts
        # being over the same node count and the graph rng being seed-derived.
        a = execute_job(job_a)
        b = execute_job(job_b)
        assert a.n == b.n == 100

    def test_label_and_collision_options(self):
        job = self._job(label="mylabel", collision_model="collision_detection")
        result = execute_job(job)
        assert result.metadata["label"] == "mylabel"

    def test_erasure_collision(self):
        result = execute_job(self._job(erasure_probability=0.2))
        assert result.n == 128

    def test_unknown_collision_model(self):
        with pytest.raises(ValueError):
            execute_job(self._job(collision_model="bogus"))

    def test_run_jobs_serial(self):
        results = run_jobs([self._job(seed=s) for s in (1, 2, 3)])
        assert len(results) == 3

    def test_run_jobs_parallel(self):
        results = run_jobs([self._job(seed=s) for s in range(4)], processes=2)
        assert len(results) == 4
        # Parallel and serial must agree (seeds fully determine outcomes).
        serial = run_jobs([self._job(seed=s) for s in range(4)])
        assert [r.completion_round for r in results] == [
            r.completion_round for r in serial
        ]

    def test_repeat_job(self):
        results = repeat_job(
            GraphSpec("gnp", {"n": 96, "p": 0.1}),
            ProtocolSpec("algorithm1", {"p": 0.1}),
            repetitions=3,
            seed=0,
        )
        assert len(results) == 3

    def test_repeat_job_invalid(self):
        with pytest.raises(ValueError):
            repeat_job(
                GraphSpec("path", {"n": 4}),
                ProtocolSpec("decay", {}),
                repetitions=0,
            )

    def test_aggregate_runs(self):
        runs = repeat_job(
            GraphSpec("gnp", {"n": 96, "p": 0.1}),
            ProtocolSpec("algorithm1", {"p": 0.1}),
            repetitions=4,
            seed=1,
        )
        agg = aggregate_runs(runs)
        assert agg["runs"] == 4
        assert 0.0 <= agg["success_rate"] <= 1.0
        assert agg["max_tx_per_node"].maximum <= 1

    def test_aggregate_empty_rejected(self):
        with pytest.raises(ValueError):
            aggregate_runs([])

    def test_job_as_dict(self):
        payload = self._job().as_dict()
        assert payload["graph"]["family"] == "gnp"
        assert payload["protocol"]["name"] == "algorithm1"


class TestFigures:
    def test_ascii_chart_renders(self):
        series = Series("s", [1, 2, 3], [1.0, 4.0, 2.0], x_label="x", y_label="y")
        text = ascii_chart(series)
        assert "s" in text
        assert "*" in text

    def test_ascii_chart_empty(self):
        assert "empty" in ascii_chart(Series("s", [], []))

    def test_ascii_chart_constant_series(self):
        text = ascii_chart(Series("flat", [1, 2], [5.0, 5.0]))
        assert "*" in text

    def test_ascii_chart_validation(self):
        with pytest.raises(ValueError):
            ascii_chart(Series("s", [1], [1.0, 2.0]))
        with pytest.raises(ValueError):
            ascii_chart(Series("s", [1], [1.0]), width=2)

    def test_series_to_csv(self):
        csv_text = series_to_csv(
            [Series("a", [1], [2.0]), Series("b", [3], [4.0])]
        )
        lines = csv_text.strip().splitlines()
        assert lines[0].startswith("series,")
        assert len(lines) == 3

    def test_series_to_csv_mismatch(self):
        with pytest.raises(ValueError):
            series_to_csv([Series("a", [1, 2], [1.0])])
