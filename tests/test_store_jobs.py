"""Tests for the sweep orchestration service: result store + job queue.

Covers the three guarantees the subsystem makes:

* **content addressing** — canonical digests ignore dict ordering and numpy
  scalar types, change with :data:`~repro.store.ENGINE_VERSION`, and the
  store round-trips full-fidelity traces;
* **resumability** — a sweep killed mid-shard keeps its completed shards,
  and the resumed exact-mode sweep aggregates bit-identically to an
  uninterrupted run;
* **queue robustness** — worker death retries on a fresh pool and degrades
  to in-process execution instead of failing the sweep.
"""

from __future__ import annotations

import json
import os

import numpy as np
import pytest

import repro.experiments.runner as runner_module
from repro.experiments.protocols import ProtocolSpec
from repro.experiments.results import ExperimentResult
from repro.experiments.runner import (
    Job,
    aggregate_runs,
    configure_execution,
    job_store_key,
    repeat_job,
    run_jobs,
)
from repro.graphs.builders import GraphSpec
import repro.jobs.queue as queue_module
from repro.jobs import (
    InProcessBackend,
    JobQueue,
    ProcessPoolBackend,
    WorkerPoolError,
)
from repro.radio.energy import EnergyReport
from repro.radio.trace import RoundRecord, RunResultTrace
from repro.store import ResultStore, canonical_dumps, trial_digest
from repro.store import keys as keys_module

GRAPH = GraphSpec("gnp", {"n": 64, "p": 0.15})
PROTOCOL = ProtocolSpec("algorithm1", {"p": 0.15})
SWEEP = dict(repetitions=6, seed=0, run_to_quiescence=True, batch_mode="exact")


def _sweep(**overrides):
    kw = dict(SWEEP)
    kw.update(overrides)
    return repeat_job(GRAPH, PROTOCOL, **kw)


def assert_traces_equal(a: RunResultTrace, b: RunResultTrace) -> None:
    assert a.protocol_name == b.protocol_name
    assert a.network_name == b.network_name
    assert a.n == b.n
    assert a.completed == b.completed
    assert a.completion_round == b.completion_round
    assert a.rounds_executed == b.rounds_executed
    assert a.energy == b.energy
    assert a.informed_count == b.informed_count
    assert a.rounds == b.rounds
    assert a.metadata == b.metadata


def _aggregate_result(runs) -> ExperimentResult:
    agg = aggregate_runs(runs)
    return ExperimentResult(
        experiment_id="E0",
        title="resume check",
        claim="aggregates are path-independent",
        columns=["runs", "success_rate", "rounds_mean", "total_tx_mean"],
        rows=[
            [
                agg["runs"],
                agg["success_rate"],
                agg["completion_rounds"].mean,
                agg["total_transmissions"].mean,
            ]
        ],
    )


# --------------------------------------------------------------------------- #
# Canonical keys
# --------------------------------------------------------------------------- #
class TestKeys:
    def test_dict_order_is_canonicalised(self):
        a = {"graph": {"n": 64, "p": 0.5}, "seed": 3}
        b = {"seed": 3, "graph": {"p": 0.5, "n": 64}}
        assert trial_digest(a) == trial_digest(b)

    def test_numpy_scalars_digest_like_python_values(self):
        a = {"n": 64, "p": 0.25, "flag": True, "xs": [1, 2]}
        b = {
            "n": np.int64(64),
            "p": np.float64(0.25),
            "flag": np.bool_(True),
            "xs": np.array([1, 2]),
        }
        assert trial_digest(a) == trial_digest(b)
        assert canonical_dumps(a) == canonical_dumps(b)

    def test_tuples_digest_like_lists(self):
        assert trial_digest({"xs": (1, 2)}) == trial_digest({"xs": [1, 2]})

    def test_different_payloads_differ(self):
        assert trial_digest({"seed": 1}) != trial_digest({"seed": 2})

    def test_engine_version_bump_invalidates_keys(self, monkeypatch):
        payload = {"seed": 1}
        before = trial_digest(payload)
        monkeypatch.setattr(keys_module, "ENGINE_VERSION", "bumped")
        assert trial_digest(payload) != before

    def test_unserialisable_value_rejected(self):
        with pytest.raises(TypeError):
            trial_digest({"bad": object()})

    def test_label_excluded_from_job_key(self):
        job = Job(graph=GRAPH, protocol=PROTOCOL, seed=5, label="a")
        relabelled = Job(graph=GRAPH, protocol=PROTOCOL, seed=5, label="b")
        context = {"batch_mode": "exact", "state_backend": "auto"}
        assert job_store_key(job, context) == job_store_key(relabelled, context)


# --------------------------------------------------------------------------- #
# Result store
# --------------------------------------------------------------------------- #
class TestResultStore:
    def _trace(self) -> RunResultTrace:
        return RunResultTrace(
            protocol_name="p",
            network_name="net",
            n=4,
            completed=True,
            completion_round=7,
            rounds_executed=7,
            energy=EnergyReport(5, 1, 1.25, 1.0, 2.0, 4, 4),
            informed_count=4,
            per_node_transmissions=np.array([1, 2, 1, 1], dtype=np.int64),
            informed_round=np.array([0, 1, 2, 3], dtype=np.int64),
            rounds=[RoundRecord(0, 1, 2, 2, 3)],
            metadata={"p": 0.5, "active_history": [1, 2, 3]},
        )

    def test_put_get_roundtrip(self, tmp_path):
        store = ResultStore(tmp_path)
        payload = self._trace().to_payload()
        assert store.put("ab" + "0" * 62, payload)
        back = RunResultTrace.from_payload(store.get("ab" + "0" * 62))
        assert_traces_equal(back, self._trace())
        assert np.array_equal(
            back.per_node_transmissions, self._trace().per_node_transmissions
        )
        assert np.array_equal(back.informed_round, self._trace().informed_round)
        assert back.per_node_transmissions.dtype == np.int64

    def test_reput_is_dropped(self, tmp_path):
        store = ResultStore(tmp_path)
        key = "cd" + "0" * 62
        assert store.put(key, {"x": 1})
        assert not store.put(key, {"x": 1})
        assert store.stats()["entries"] == 1

    def test_persists_across_instances(self, tmp_path):
        ResultStore(tmp_path).put("ef" + "0" * 62, {"x": 1})
        assert ResultStore(tmp_path).get("ef" + "0" * 62) == {"x": 1}

    def test_counters(self, tmp_path):
        store = ResultStore(tmp_path)
        store.put("ab" + "0" * 62, {"x": 1})
        store.get("ab" + "0" * 62)
        store.get("ff" + "0" * 62)
        assert (store.hits, store.misses) == (1, 1)
        store.reset_counters()
        assert (store.hits, store.misses) == (0, 0)

    def test_torn_final_line_is_skipped(self, tmp_path):
        store = ResultStore(tmp_path)
        store.put("ab" + "0" * 62, {"x": 1})
        store.put("ab" + "1" * 62, {"x": 2})
        shard = tmp_path / "results-ab.jsonl"
        with open(shard, "a", encoding="utf-8") as handle:
            handle.write('{"key": "ab222", "payload": {"x":')  # killed mid-write
        fresh = ResultStore(tmp_path)
        assert fresh.get("ab" + "0" * 62) == {"x": 1}
        assert fresh.get("ab" + "1" * 62) == {"x": 2}
        assert fresh.stats()["entries"] == 2

    def test_clear(self, tmp_path):
        store = ResultStore(tmp_path)
        store.put("ab" + "0" * 62, {"x": 1})
        store.put("cd" + "0" * 62, {"x": 2})
        assert store.clear() == 2
        assert store.stats()["entries"] == 0
        assert store.get("ab" + "0" * 62) is None

    def test_prune_drops_stale_engine_versions(self, tmp_path):
        store = ResultStore(tmp_path)
        store.put("ab" + "0" * 62, {"x": 1})
        # Hand-write a record from an older engine (its key can never hit —
        # the version is part of the digest — so prune may drop it).
        stale = {"key": "ab" + "9" * 62, "engine_version": "0.1", "payload": {}}
        with open(tmp_path / "results-ab.jsonl", "a", encoding="utf-8") as handle:
            handle.write(json.dumps(stale) + "\n")
        fresh = ResultStore(tmp_path)
        assert fresh.stats()["stale_entries"] == 1
        assert fresh.prune() == 1
        stats = fresh.stats()
        assert (stats["entries"], stats["stale_entries"]) == (1, 0)
        assert fresh.get("ab" + "0" * 62) == {"x": 1}


# --------------------------------------------------------------------------- #
# Job queue
# --------------------------------------------------------------------------- #
def _square(x):
    return x * x


def _die_unless_marker(task):
    """Kill the worker process hard on first sight of each marker path."""
    marker, value = task
    if not os.path.exists(marker):
        with open(marker, "w") as handle:
            handle.write("seen")
        os._exit(13)
    return value


def _die_outside_parent(task):
    """Kill any process that is not the one that created the task."""
    parent_pid, value = task
    if os.getpid() != parent_pid:
        os._exit(13)
    return value


class TestJobQueue:
    def test_in_process_order_and_callback(self):
        queue = JobQueue(InProcessBackend())
        seen = []
        results = queue.run(
            _square, [1, 2, 3], on_result=lambda i, r: seen.append((i, r))
        )
        assert results == [1, 4, 9]
        assert seen == [(0, 1), (1, 4), (2, 9)]
        assert queue.stats.completed == 3

    def test_chunked_dispatch_preserves_order(self):
        queue = JobQueue(InProcessBackend())
        seen = []
        results = queue.run(
            _square,
            list(range(7)),
            on_result=lambda i, r: seen.append(i),
            chunksize=3,
        )
        assert results == [x * x for x in range(7)]
        assert sorted(seen) == list(range(7))

    def test_process_pool_runs(self):
        queue = JobQueue(ProcessPoolBackend(2))
        assert queue.run(_square, [1, 2, 3, 4]) == [1, 4, 9, 16]

    def test_worker_death_is_retried(self, tmp_path):
        backend = ProcessPoolBackend(2, max_retries=2)
        tasks = [(str(tmp_path / f"marker-{i}"), i) for i in range(3)]
        results = JobQueue(backend).run(_die_unless_marker, tasks)
        assert results == [0, 1, 2]
        assert backend.stats.worker_deaths >= 1
        assert backend.stats.retried_tasks >= 1

    def test_exhausted_retries_fall_back_in_process(self):
        backend = ProcessPoolBackend(2, max_retries=0)
        tasks = [(os.getpid(), i) for i in range(3)]
        results = JobQueue(backend).run(_die_outside_parent, tasks)
        assert results == [0, 1, 2]
        assert backend.stats.worker_deaths == 1
        assert backend.stats.in_process_fallbacks == 3

    def test_task_exceptions_propagate(self):
        queue = JobQueue(ProcessPoolBackend(2, max_retries=2))
        with pytest.raises(ZeroDivisionError):
            queue.run(_reciprocal, [1, 0])

    def test_exhausted_retries_name_poisoned_tasks(self):
        backend = ProcessPoolBackend(
            2, max_retries=1, retry_backoff=0.0, in_process_fallback=False
        )
        tasks = [(os.getpid(), i) for i in range(2)]
        with pytest.raises(WorkerPoolError) as excinfo:
            JobQueue(backend).run(
                _die_outside_parent, tasks, task_labels=["cell-aaaa", "cell-bbbb"]
            )
        message = str(excinfo.value)
        assert "max_retries=1" in message
        assert "cell-aaaa" in message and "cell-bbbb" in message

    def test_retry_backoff_is_exponential(self, monkeypatch):
        sleeps = []
        monkeypatch.setattr(queue_module.time, "sleep", sleeps.append)
        backend = ProcessPoolBackend(2, max_retries=3, retry_backoff=0.25)
        tasks = [(os.getpid(), i) for i in range(2)]
        results = JobQueue(backend).run(_die_outside_parent, tasks)
        assert results == [0, 1]
        assert sleeps == [0.25, 0.5, 1.0]

    def test_backend_parameter_validation(self):
        with pytest.raises(ValueError, match="max_retries"):
            ProcessPoolBackend(2, max_retries=-1)
        with pytest.raises(ValueError, match="retry_backoff"):
            ProcessPoolBackend(2, retry_backoff=-0.5)
        with pytest.raises(ValueError, match="task_labels"):
            JobQueue(InProcessBackend()).run(
                _square, [1, 2, 3], task_labels=["only-one"]
            )


def _reciprocal(x):
    return 1 / x


# --------------------------------------------------------------------------- #
# Resumable sweeps
# --------------------------------------------------------------------------- #
class TestResumableSweeps:
    def test_warm_rerun_executes_zero_engine_shards(self, tmp_path, monkeypatch):
        store = ResultStore(tmp_path)
        cold = _sweep(store=store)
        store.reset_counters()

        def engine_must_not_run(shard):
            raise AssertionError("engine ran during a fully warm sweep")

        monkeypatch.setattr(
            runner_module, "_execute_batch_shard", engine_must_not_run
        )
        warm = _sweep(store=store)
        assert store.misses == 0 and store.hits == len(cold)
        for a, b in zip(cold, warm):
            assert_traces_equal(a, b)

    def test_interrupted_sweep_resumes_bit_identically(self, tmp_path, monkeypatch):
        baseline = _sweep()  # uninterrupted, uncached
        store = ResultStore(tmp_path)

        real = runner_module._execute_batch_shard
        calls = {"n": 0}

        def dies_mid_sweep(shard):
            calls["n"] += 1
            if calls["n"] == 2:
                raise KeyboardInterrupt("simulated worker death mid-shard")
            return real(shard)

        # compaction="off" pins the sharded path: continuous batching never
        # calls _execute_batch_shard (it checkpoints per trial instead, which
        # tests/test_compaction.py covers).
        monkeypatch.setattr(runner_module, "_execute_batch_shard", dies_mid_sweep)
        with pytest.raises(KeyboardInterrupt):
            _sweep(store=store, shards=3, compaction="off")
        monkeypatch.setattr(runner_module, "_execute_batch_shard", real)

        # The completed first shard (2 of 6 trials) survived the crash.
        assert store.stats()["entries"] == 2
        store.reset_counters()
        resumed = _sweep(store=store, shards=3, compaction="off")
        assert store.hits == 2 and store.misses == 4
        for a, b in zip(baseline, resumed):
            assert_traces_equal(a, b)
        # The aggregated ExperimentResult is byte-equal to the uninterrupted
        # run's.
        assert (
            _aggregate_result(resumed).to_json()
            == _aggregate_result(baseline).to_json()
        )

    def test_resume_is_bit_identical_across_sharding(self, tmp_path):
        baseline = _sweep(processes=None)
        store = ResultStore(tmp_path)
        partial = repeat_job(
            GRAPH, PROTOCOL, **{**SWEEP, "repetitions": 3}, store=store
        )
        resumed = _sweep(store=store, shards=4)
        for a, b in zip(baseline[:3], partial):
            assert_traces_equal(a, b)
        for a, b in zip(baseline, resumed):
            assert_traces_equal(a, b)

    def test_labels_reattach_on_cache_hits(self, tmp_path):
        store = ResultStore(tmp_path)
        jobs = [
            Job(graph=GRAPH, protocol=PROTOCOL, seed=s, label=f"first-{s}")
            for s in (1, 2)
        ]
        run_jobs(jobs, store=store)
        relabelled = [
            Job(graph=GRAPH, protocol=PROTOCOL, seed=s, label=f"second-{s}")
            for s in (1, 2)
        ]
        store.reset_counters()
        cached = run_jobs(relabelled, store=store)
        assert store.hits == 2
        assert [r.metadata["label"] for r in cached] == ["second-1", "second-2"]
        assert [r.metadata["job"]["label"] for r in cached] == [
            "second-1",
            "second-2",
        ]

    def test_run_jobs_consults_store(self, tmp_path):
        store = ResultStore(tmp_path)
        jobs = [Job(graph=GRAPH, protocol=PROTOCOL, seed=s) for s in (1, 2, 3)]
        first = run_jobs(jobs, store=store)
        assert store.misses == 3
        store.reset_counters()
        second = run_jobs(jobs, store=store)
        assert (store.hits, store.misses) == (3, 0)
        for a, b in zip(first, second):
            assert_traces_equal(a, b)

    def test_fast_mode_cache_is_all_or_nothing(self, tmp_path):
        store = ResultStore(tmp_path)
        kw = dict(repetitions=4, seed=0, run_to_quiescence=True, store=store)
        first = repeat_job(GRAPH, PROTOCOL, **kw)
        warm = repeat_job(GRAPH, PROTOCOL, **kw)
        for a, b in zip(first, warm):
            assert_traces_equal(a, b)
        # A different cohort (more repetitions) must not bit-mix with the
        # cached four-trial sweep: its keys embed the cohort entropy.
        store.reset_counters()
        repeat_job(GRAPH, PROTOCOL, **{**kw, "repetitions": 6})
        assert store.hits == 0

    def test_interrupted_fast_sweep_discards_partial_hits(
        self, tmp_path, monkeypatch
    ):
        store = ResultStore(tmp_path)
        kw = dict(
            repetitions=4, seed=0, run_to_quiescence=True, store=store, shards=2
        )
        real = runner_module._execute_batch_shard
        calls = {"n": 0}

        def dies_mid_sweep(shard):
            calls["n"] += 1
            if calls["n"] == 2:
                raise KeyboardInterrupt("simulated death mid fast sweep")
            return real(shard)

        monkeypatch.setattr(runner_module, "_execute_batch_shard", dies_mid_sweep)
        with pytest.raises(KeyboardInterrupt):
            repeat_job(GRAPH, PROTOCOL, **kw)
        monkeypatch.setattr(runner_module, "_execute_batch_shard", real)
        assert store.stats()["entries"] == 2  # first shard survived

        # The partial cohort cannot be extended bit-faithfully: the resumed
        # run recomputes everything, and the counters say so (the discarded
        # probe hits are reclassified as misses).
        store.reset_counters()
        uncached = repeat_job(
            GRAPH, PROTOCOL, repetitions=4, seed=0, run_to_quiescence=True,
            shards=2,
        )
        resumed = repeat_job(GRAPH, PROTOCOL, **kw)
        assert store.hits == 0 and store.misses == 4
        for a, b in zip(uncached, resumed):
            assert_traces_equal(a, b)

    def test_ambient_store_via_configure_execution(self, tmp_path):
        try:
            configure_execution(store=ResultStore(tmp_path))
            _sweep()
            store = runner_module._EXECUTION_DEFAULTS.store
            assert store.misses == 6
            store.reset_counters()
            _sweep()
            assert (store.hits, store.misses) == (6, 0)
        finally:
            configure_execution(store=None)
        # With the ambient store cleared, sweeps recompute.
        assert runner_module._EXECUTION_DEFAULTS.store is None

    def test_explicit_false_disables_ambient_store(self, tmp_path):
        try:
            store = ResultStore(tmp_path)
            configure_execution(store=store)
            _sweep(store=False)
            assert store.hits == 0 and store.misses == 0
        finally:
            configure_execution(store=None)

    def test_record_rounds_traces_roundtrip(self, tmp_path):
        store = ResultStore(tmp_path)
        kw = dict(SWEEP, repetitions=3, record_rounds=True)
        cold = repeat_job(GRAPH, PROTOCOL, **kw, store=store)
        warm = repeat_job(GRAPH, PROTOCOL, **kw, store=store)
        assert all(r.rounds for r in cold)
        for a, b in zip(cold, warm):
            assert_traces_equal(a, b)
            assert np.array_equal(a.informed_curve(), b.informed_curve())


# --------------------------------------------------------------------------- #
# CLI surface
# --------------------------------------------------------------------------- #
class TestCli:
    def test_sweep_defaults_to_exact_and_cache(self):
        from repro.cli import build_parser

        args = build_parser().parse_args(["sweep", "E1"])
        assert args.batch_mode == "exact"
        assert args.command == "sweep"

    def test_run_flags_parse(self):
        from repro.cli import build_parser

        args = build_parser().parse_args(
            ["run", "E1", "--resume", "--cache-dir", "/tmp/x", "--no-cache"]
        )
        assert args.resume and args.no_cache
        assert str(args.cache_dir) == "/tmp/x"

    def test_no_cache_wins(self, tmp_path):
        from repro.cli import _store_from_args, build_parser

        args = build_parser().parse_args(
            ["sweep", "E1", "--no-cache", "--cache-dir", str(tmp_path)]
        )
        assert _store_from_args(args) is None

    def test_run_is_uncached_by_default(self):
        from repro.cli import _store_from_args, build_parser

        args = build_parser().parse_args(["run", "E1"])
        assert _store_from_args(args) is None

    def test_resume_enables_store(self, tmp_path, monkeypatch):
        from repro.cli import _store_from_args, build_parser

        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "envcache"))
        args = build_parser().parse_args(["run", "E1", "--resume"])
        store = _store_from_args(args)
        assert store is not None
        assert store.root == tmp_path / "envcache"

    def test_cache_subcommand_stats_and_clear(self, tmp_path, capsys):
        from repro.cli import main

        store = ResultStore(tmp_path)
        store.put("ab" + "0" * 62, {"x": 1})
        assert main(["cache", "stats", "--cache-dir", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "entries:        1" in out
        assert main(["cache", "clear", "--cache-dir", str(tmp_path)]) == 0
        assert "removed 1 entries" in capsys.readouterr().out
        assert ResultStore(tmp_path).stats()["entries"] == 0

    def test_sweep_command_end_to_end(self, tmp_path, capsys):
        from repro.cli import main

        # The sweep command rewrites every process-wide execution default
        # (batch_mode="exact", compaction, ...), not just the store —
        # restore the whole snapshot so later tests see pristine defaults.
        defaults = runner_module._EXECUTION_DEFAULTS
        try:
            argv = [
                "sweep",
                "E9",
                "--scale",
                "quick",
                "--cache-dir",
                str(tmp_path / "cache"),
            ]
            assert main(argv) == 0
            assert "[cache]" in capsys.readouterr().out
        finally:
            runner_module._EXECUTION_DEFAULTS = defaults
