"""Command-line interface: ``python -m repro`` / ``repro``.

Subcommands
-----------

``repro list``
    List the available experiments with their claims.

``repro run E5 [--scale full] [--seed 3] [--processes 4] [--json out.json]``
    Run one experiment (or ``all``) and print its result table; optionally
    write the JSON result file and/or a CSV of the table.

``repro chart E6``
    Run an experiment and render its series as ASCII charts.

``repro sweep E1 [--scale full] [--processes 4]``
    Run an experiment through the sweep service: the content-addressed
    result store is on by default (``.repro_cache`` or ``$REPRO_CACHE_DIR``)
    and the randomness policy defaults to ``exact``, so an interrupted sweep
    resumes bit-identically and a warm re-run executes zero engine rounds.

``repro sweep --grid grid.json``
    Run a serialised scenario/sweep grid (a ``ScenarioSpec.as_dict()`` or
    bare ``SweepGrid.as_dict()`` JSON file) through the streaming
    aggregation pipeline: per-trial results are reduced into running
    accumulators as shards complete — no trace list is ever materialised —
    and the generic per-cell statistics table is printed.

``repro report --accumulators``
    Render the streaming-aggregation checkpoints persisted in the result
    store (running per-cell statistics of current or interrupted sweeps)
    without loading any traces or re-running anything.

``repro cache stats|clear|prune [--cache-dir DIR]``
    Inspect or empty the result store (``prune`` drops records written under
    older engine versions; ``clear`` also drops aggregation checkpoints).

``repro telemetry summarize trace.jsonl [--json]``
    Fold a telemetry trace (written by ``--telemetry PATH`` on any execution
    command) into a per-layer time/throughput report: seconds and trial
    counts per layer (sweep / cell / shard / round-phase / engine), event
    and counter totals, and the span tree.

Execution flags (``run`` / ``chart`` / ``report`` / ``sweep``)
--------------------------------------------------------------

Repetition sweeps ride the batched execution pipeline by default (all seeds
of a sweep advance together through the vectorised
:class:`~repro.radio.batch.BatchEngine`; ``--processes K`` shards them into
``K`` per-worker batches).  ``--no-batch`` forces the serial per-run engine,
``--batch-mode exact`` makes batched runs bit-identical to serial ones
(one rng stream per trial) instead of the default vectorised ``fast`` mode,
``--state-backend {auto,dense,bitset,sparse}`` pins the node-set state
representation (:mod:`repro.radio.nodesets`) instead of the per-workload
heuristic, and ``--kernel {auto,numpy,compiled,edge_sampled}`` selects the
collision-kernel implementation (:mod:`repro.radio.kernels`) — ``auto``
runs the compiled kernel when numba is importable, falling back to the
bit-identical numpy path otherwise.  ``--compaction {auto,on,off}`` and
``--watermark FRAC`` steer continuous batching (live-trial retirement,
batch compaction and shard refill) for in-process sweeps.

Caching flags: ``--resume`` turns the result store on for ``run`` / ``chart``
/ ``report`` (they default to uncached), ``--cache-dir DIR`` picks the store
location (and implies ``--resume``), ``--no-cache`` forces caching off
(including for ``sweep``).

Observability flags: ``--telemetry PATH`` records a structured JSONL trace
(hierarchical spans + metrics, :mod:`repro.telemetry`) of the whole
invocation; ``--progress`` / ``--no-progress`` force the live sweep progress
reporter on or off (default: on exactly when a telemetry trace is being
recorded and stderr is not a pipe).  Telemetry never changes any result bit
or store digest.
"""

from __future__ import annotations

import argparse
import os
import sys
from pathlib import Path
from typing import List, Optional

from repro.experiments.figures import ascii_chart
from repro.experiments.registry import all_experiments, run_experiment
from repro.experiments.runner import configure_execution
from repro.radio.environment import parse_environment_option
from repro.store import ResultStore

__all__ = ["main", "build_parser"]

#: Default result-store location when caching is enabled without an explicit
#: ``--cache-dir`` (overridable via the ``REPRO_CACHE_DIR`` environment
#: variable).  The directory is .gitignore'd.
DEFAULT_CACHE_DIR = ".repro_cache"


def _add_execution_flags(
    parser: argparse.ArgumentParser, *, batch_mode_default: str = "fast"
) -> None:
    """Flags controlling the batched execution pipeline (shared by
    run/chart/report/sweep)."""
    parser.add_argument(
        "--no-batch",
        action="store_true",
        help="run repetition sweeps through the serial per-run engine "
        "instead of the batched pipeline",
    )
    parser.add_argument(
        "--batch-mode",
        choices=["fast", "exact"],
        default=batch_mode_default,
        help="randomness policy of the batched pipeline: 'fast' (vectorised, "
        "statistically identical to serial) or 'exact' (bit-identical) "
        f"[default: {batch_mode_default}]",
    )
    parser.add_argument(
        "--state-backend",
        choices=["auto", "dense", "bitset", "sparse"],
        default="auto",
        help="node-set state backend of the batch engine: 'auto' picks per "
        "workload, 'dense' boolean arrays, 'bitset' packed uint64 words "
        "(8x smaller gossip knowledge), 'sparse' frontier index pools "
        "(decay/flooding at large n); results are identical either way",
    )
    parser.add_argument(
        "--kernel",
        choices=["auto", "numpy", "compiled", "edge_sampled"],
        default="auto",
        help="collision-kernel implementation: 'auto' picks the compiled "
        "(numba) kernel when available and the bit-identical numpy path "
        "otherwise; 'edge_sampled' opts into the O(R*n) mean-field "
        "approximation for edge-bound graphs (fast mode only, stamped "
        "into result provenance)",
    )
    parser.add_argument(
        "--compaction",
        choices=["auto", "on", "off"],
        default="auto",
        help="continuous batching of in-process sweeps: retire finished "
        "trials, compact the live batch and refill freed rows from pending "
        "work; 'auto' engages it for exact-mode sweeps (bit-identical "
        "either way), 'on' forces it (errors when impossible), 'off' keeps "
        "the sharded path [default: auto]",
    )
    parser.add_argument(
        "--watermark",
        type=float,
        default=0.75,
        metavar="FRAC",
        help="occupancy fraction below which the continuous batch compacts "
        "and refills, in (0, 1] [default: 0.75]",
    )
    parser.add_argument(
        "--env",
        metavar="SPEC",
        default=None,
        help="faulty-world environment applied to every run: comma-separated "
        "key=value entries — loss=P (delivery loss), tx_loss=P (charged "
        "transmitter-side loss), burst=PB:PG (Gilbert-Elliott), "
        "churn=F@A[:B] (crash fraction F at round A, recover at B), "
        "jam=K / jam_targets=3+7 / jam_window=A:B, wake=D (staggered "
        "start); e.g. --env loss=0.1,churn=0.2@5:40 "
        "[default: perfectly reliable radio]",
    )
    parser.add_argument(
        "--cache-dir",
        type=Path,
        default=None,
        help="location of the content-addressed result store (enables "
        "caching; default when enabled: $REPRO_CACHE_DIR or "
        f"{DEFAULT_CACHE_DIR})",
    )
    parser.add_argument(
        "--resume",
        action="store_true",
        help="consult the result store before executing and checkpoint "
        "fresh trials into it (on by default for 'sweep')",
    )
    parser.add_argument(
        "--no-cache",
        action="store_true",
        help="disable the result store entirely (overrides --resume / "
        "--cache-dir and the 'sweep' default)",
    )
    parser.add_argument(
        "--telemetry",
        metavar="PATH",
        type=Path,
        default=None,
        help="record a structured JSONL telemetry trace (hierarchical "
        "spans sweep>cell>shard>round-phase + metrics registry) of this "
        "invocation to PATH; fold it with 'repro telemetry summarize'",
    )
    parser.add_argument(
        "--progress",
        dest="progress",
        action="store_true",
        default=None,
        help="show live sweep progress (completed/total trials, cache-hit "
        "ratio, running metric mean, ETA) on stderr [default: on when "
        "--telemetry is given and stderr is a terminal]",
    )
    parser.add_argument(
        "--no-progress",
        dest="progress",
        action="store_false",
        help="suppress the live progress reporter",
    )


def _default_cache_dir() -> Path:
    return Path(os.environ.get("REPRO_CACHE_DIR") or DEFAULT_CACHE_DIR)


def _store_from_args(args: argparse.Namespace) -> Optional[ResultStore]:
    """Resolve the caching flags into a result store (or None = uncached).

    ``run`` / ``chart`` / ``report`` cache only when asked (``--resume`` /
    ``--cache-dir``); ``sweep`` caches by default; ``--no-cache`` wins over
    everything.
    """
    if getattr(args, "no_cache", False):
        return None
    cache_dir = getattr(args, "cache_dir", None)
    wants_cache = (
        cache_dir is not None
        or getattr(args, "resume", False)
        or args.command == "sweep"
    )
    if not wants_cache:
        return None
    return ResultStore(cache_dir if cache_dir is not None else _default_cache_dir())


def build_parser() -> argparse.ArgumentParser:
    """Build the argument parser (exposed for testing)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Reproduction harness for 'Energy efficient randomised communication "
            "in unknown AdHoc networks' (Berenbrink, Cooper, Hu)."
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list available experiments")

    run_parser = sub.add_parser("run", help="run an experiment (or 'all')")
    run_parser.add_argument("experiment", help="experiment id (e.g. E1) or 'all'")
    run_parser.add_argument("--scale", choices=["quick", "full"], default="quick")
    run_parser.add_argument("--seed", type=int, default=0)
    run_parser.add_argument(
        "--processes",
        type=int,
        default=None,
        help="fan repetitions out over this many worker processes",
    )
    run_parser.add_argument("--json", type=Path, default=None, help="write JSON result here")
    run_parser.add_argument("--csv", type=Path, default=None, help="write the table as CSV here")
    _add_execution_flags(run_parser)

    chart_parser = sub.add_parser("chart", help="run an experiment and render its series")
    chart_parser.add_argument("experiment", help="experiment id (e.g. E6)")
    chart_parser.add_argument("--scale", choices=["quick", "full"], default="quick")
    chart_parser.add_argument("--seed", type=int, default=0)
    chart_parser.add_argument(
        "--processes",
        type=int,
        default=None,
        help="fan repetitions out over this many worker processes",
    )
    _add_execution_flags(chart_parser)

    report_parser = sub.add_parser(
        "report", help="run experiments and write a Markdown report + JSON archive"
    )
    report_parser.add_argument(
        "--output", type=Path, default=Path("results"), help="output directory"
    )
    report_parser.add_argument(
        "--experiments",
        nargs="*",
        default=None,
        help="experiment ids to include (default: all)",
    )
    report_parser.add_argument("--scale", choices=["quick", "full"], default="quick")
    report_parser.add_argument("--seed", type=int, default=0)
    report_parser.add_argument("--processes", type=int, default=None)
    report_parser.add_argument(
        "--accumulators",
        action="store_true",
        help="render the streaming-aggregation checkpoints persisted in the "
        "result store instead of running experiments",
    )
    _add_execution_flags(report_parser)

    sweep_parser = sub.add_parser(
        "sweep",
        help="run an experiment (or 'all') through the resumable sweep "
        "service: result store on, exact randomness by default",
    )
    sweep_parser.add_argument(
        "experiment",
        nargs="?",
        default=None,
        help="experiment id (e.g. E1) or 'all' (omit when using --grid)",
    )
    sweep_parser.add_argument(
        "--grid",
        type=Path,
        default=None,
        help="run a serialised scenario / sweep grid JSON file through the "
        "streaming aggregation pipeline instead of a registered experiment",
    )
    sweep_parser.add_argument(
        "--metrics",
        nargs="*",
        default=None,
        help="metric names to accumulate when --grid points at a bare "
        "SweepGrid file (a ScenarioSpec file carries its own)",
    )
    sweep_parser.add_argument("--scale", choices=["quick", "full"], default="quick")
    sweep_parser.add_argument("--seed", type=int, default=0)
    sweep_parser.add_argument(
        "--processes",
        type=int,
        default=None,
        help="fan repetitions out over this many worker processes",
    )
    sweep_parser.add_argument("--json", type=Path, default=None, help="write JSON result here")
    _add_execution_flags(sweep_parser, batch_mode_default="exact")

    cache_parser = sub.add_parser(
        "cache", help="inspect or empty the content-addressed result store"
    )
    cache_parser.add_argument(
        "action",
        choices=["stats", "clear", "prune"],
        help="stats: entry/size counts; clear: delete everything; "
        "prune: drop records from older engine versions",
    )
    cache_parser.add_argument(
        "--cache-dir",
        type=Path,
        default=None,
        help="store location (default: $REPRO_CACHE_DIR or "
        f"{DEFAULT_CACHE_DIR})",
    )

    telemetry_parser = sub.add_parser(
        "telemetry", help="work with recorded telemetry traces"
    )
    telemetry_sub = telemetry_parser.add_subparsers(
        dest="telemetry_action", required=True
    )
    summarize_parser = telemetry_sub.add_parser(
        "summarize",
        help="fold a JSONL trace into a per-layer time/throughput report",
    )
    summarize_parser.add_argument(
        "trace", type=Path, help="trace file written by --telemetry PATH"
    )
    summarize_parser.add_argument(
        "--json",
        action="store_true",
        help="emit the folded summary as JSON instead of the rendered report",
    )

    return parser


def _command_list() -> int:
    for module in all_experiments():
        print(f"{module.EXPERIMENT_ID:>4}  {module.TITLE}")
        print(f"      {module.CLAIM}")
    return 0


def _command_run(args: argparse.Namespace) -> int:
    targets = (
        [m.EXPERIMENT_ID for m in all_experiments()]
        if args.experiment.lower() == "all"
        else [args.experiment]
    )
    exit_code = 0
    for target in targets:
        result = run_experiment(
            target, scale=args.scale, seed=args.seed, processes=args.processes
        )
        print(result.render())
        print()
        if args.json is not None:
            path = args.json
            if len(targets) > 1:
                path = path.with_name(f"{path.stem}_{result.experiment_id}{path.suffix}")
            result.save(path)
            print(f"[written] {path}")
        if args.csv is not None:
            path = args.csv
            if len(targets) > 1:
                path = path.with_name(f"{path.stem}_{result.experiment_id}{path.suffix}")
            path.parent.mkdir(parents=True, exist_ok=True)
            path.write_text(result.to_csv())
            print(f"[written] {path}")
    return exit_code


def _command_chart(args: argparse.Namespace) -> int:
    result = run_experiment(
        args.experiment,
        scale=args.scale,
        seed=args.seed,
        processes=args.processes,
    )
    if not result.series:
        print(f"{result.experiment_id} produced no series to chart")
        return 1
    for series in result.series:
        print(ascii_chart(series))
        print()
    return 0


def _command_sweep_grid(args: argparse.Namespace, store: Optional[ResultStore]) -> int:
    """Run a serialised scenario / grid file through the streaming pipeline."""
    import json

    from repro.analysis.tables import format_table
    from repro.scenarios import ScenarioSpec, SweepGrid, run_grid, run_scenario
    from repro.scenarios.runtime import results_table

    # Grid files may reference experiment-registered probes/metrics
    # ("e7.relay_transmissions", ...); registry discovery is lazy, so import
    # the experiment modules here to populate those registries.
    all_experiments()

    payload = json.loads(Path(args.grid).read_text())
    if "scenario_id" in payload:
        spec = ScenarioSpec.from_dict(payload)
        print(f"[grid] scenario {spec.scenario_id} ({spec.digest()[:12]}…), "
              f"{len(spec.grid)} cells / {spec.grid.total_trials} trials")
        results = run_scenario(spec, processes=args.processes, store=store)
    else:
        grid = SweepGrid.from_dict(payload)
        print(f"[grid] {len(grid)} cells / {grid.total_trials} trials "
              f"({grid.digest()[:12]}…)")
        metrics = tuple(getattr(args, "metrics", None) or ())
        if not metrics and any(cell.metrics is None for cell in grid):
            raise SystemExit(
                "a bare grid file carries no metric set; wrap it in a "
                "ScenarioSpec (with 'metrics'), give every cell its own, "
                "or pass --metrics"
            )
        results = run_grid(
            grid, seed=args.seed, metrics=metrics,
            processes=args.processes, store=store,
        )
    columns, rows = results_table(results)
    print(format_table(columns, rows))
    served = sum(r.counts.get("served", 0) for r in results)
    skipped = sum(r.counts.get("skipped", 0) for r in results)
    executed = sum(r.counts.get("executed", 0) for r in results)
    print(
        f"[aggregation] {executed} trials executed, {served} served from the "
        f"store, {skipped} already aggregated (skipped without re-reading)"
    )
    return 0


def _cache_summary(store: ResultStore) -> str:
    """End-of-run result-store line: hits/misses/puts plus checkpoint count."""
    total = store.hits + store.misses
    line = (
        f"[cache] {store.hits}/{total} trials served from "
        f"{store.root} ({store.misses} missed, {store.puts} stored"
    )
    checkpoints = len(store.aggregates.keys())
    if checkpoints:
        line += f", {checkpoints} aggregation checkpoint(s)"
    return line + ")"


def _command_sweep(args: argparse.Namespace, store: Optional[ResultStore]) -> int:
    if args.grid is not None:
        code = _command_sweep_grid(args, store)
        if store is not None:
            print(_cache_summary(store))
        return code
    if args.experiment is None:
        raise SystemExit("repro sweep needs an experiment id or --grid FILE")
    targets = (
        [m.EXPERIMENT_ID for m in all_experiments()]
        if args.experiment.lower() == "all"
        else [args.experiment]
    )
    for target in targets:
        result = run_experiment(
            target, scale=args.scale, seed=args.seed, processes=args.processes
        )
        print(result.render())
        print()
        if args.json is not None:
            path = args.json
            if len(targets) > 1:
                path = path.with_name(f"{path.stem}_{result.experiment_id}{path.suffix}")
            result.save(path)
            print(f"[written] {path}")
    if store is not None:
        print(_cache_summary(store))
    else:
        print("[cache] disabled (--no-cache)")
    return 0


def _command_cache(args: argparse.Namespace) -> int:
    cache_dir = args.cache_dir if args.cache_dir is not None else _default_cache_dir()
    store = ResultStore(cache_dir)
    if args.action == "stats":
        stats = store.stats()
        print(f"store:          {stats['path']}")
        print(f"engine version: {stats['engine_version']}")
        print(f"entries:        {stats['entries']} ({stats['stale_entries']} stale)")
        print(f"shard files:    {stats['shard_files']}")
        print(f"bytes:          {stats['bytes']}")
        print(f"aggregations:   {stats['aggregate_checkpoints']} checkpoint(s)")
        if stats["stale_entries"]:
            print(
                f"[hint] {stats['stale_entries']} entries were written under "
                "older engine versions and can never be hit; "
                "'repro cache prune' reclaims them"
            )
        return 0
    if args.action == "clear":
        removed = store.clear()
        print(f"[cache] removed {removed} entries from {store.root}")
        return 0
    removed = store.prune()
    print(f"[cache] pruned {removed} stale entries from {store.root}")
    return 0


def _command_telemetry(args: argparse.Namespace) -> int:
    import json

    from repro.telemetry import fold_trace, load_trace, render_summary

    try:
        records = load_trace(args.trace)
    except OSError as exc:
        print(f"[telemetry] cannot read {args.trace}: {exc}", file=sys.stderr)
        return 1
    if not records:
        print(f"[telemetry] no records in {args.trace}", file=sys.stderr)
        return 1
    summary = fold_trace(records)
    if args.json:
        print(json.dumps(summary, indent=2, sort_keys=True))
    else:
        print(render_summary(summary))
    return 0


def _telemetry_from_args(args: argparse.Namespace) -> bool:
    """Install the telemetry pipeline requested by --telemetry/--progress.

    Returns True when a pipeline was configured (the caller owns shutdown).
    The progress reporter defaults to on exactly when a trace is being
    recorded and stderr is a terminal — a redirected stderr gets per-cell
    lines instead of a live rewrite, and a bare ``--progress`` works
    without a trace file (reporter-only pipeline).
    """
    trace_path = getattr(args, "telemetry", None)
    progress = getattr(args, "progress", None)
    if trace_path is None and not progress:
        return False
    from repro.telemetry import FileSink, ProgressReporter, configure_telemetry

    sinks: list = []
    if trace_path is not None:
        sinks.append(FileSink(trace_path))
    if progress is None:
        progress = sys.stderr.isatty()
    if progress:
        sinks.append(ProgressReporter())
    configure_telemetry(sinks=sinks)
    return True


def _command_report(args: argparse.Namespace, store: Optional[ResultStore]) -> int:
    from repro.experiments.report import accumulators_report, generate_report

    if args.accumulators:
        if store is None:
            store = ResultStore(_default_cache_dir())
        print(accumulators_report(store))
        return 0

    paths = generate_report(
        args.output,
        experiment_ids=args.experiments,
        scale=args.scale,
        seed=args.seed,
        processes=args.processes,
    )
    print(f"[written] {paths.report}")
    for path in paths.json_files:
        print(f"[written] {path}")
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point."""
    parser = build_parser()
    args = parser.parse_args(argv)
    store: Optional[ResultStore] = None
    if hasattr(args, "no_batch"):
        if args.kernel == "edge_sampled" and args.batch_mode == "exact":
            parser.error(
                "--kernel edge_sampled is a collision approximation and "
                "cannot honour --batch-mode exact; use --batch-mode fast"
            )
        store = _store_from_args(args)
        execution_kwargs = dict(
            batch=False if args.no_batch else True,
            batch_mode=args.batch_mode,
            state_backend=args.state_backend,
            kernel=args.kernel,
            store=store,
            compaction=args.compaction,
            watermark=args.watermark,
        )
        if getattr(args, "env", None) is not None:
            execution_kwargs["environment"] = parse_environment_option(args.env)
        configure_execution(**execution_kwargs)
    telemetry_active = _telemetry_from_args(args)
    try:
        if args.command == "list":
            return _command_list()
        if args.command == "run":
            return _command_run(args)
        if args.command == "chart":
            return _command_chart(args)
        if args.command == "report":
            return _command_report(args, store)
        if args.command == "sweep":
            return _command_sweep(args, store)
        if args.command == "cache":
            return _command_cache(args)
        if args.command == "telemetry":
            return _command_telemetry(args)
    finally:
        if telemetry_active:
            from repro.telemetry import telemetry_shutdown

            telemetry_shutdown()
            trace_path = getattr(args, "telemetry", None)
            if trace_path is not None:
                print(f"[telemetry] trace written to {trace_path}")
    parser.error(f"unknown command {args.command!r}")  # pragma: no cover
    return 2  # pragma: no cover


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
