"""Folklore flooding baselines.

* :class:`DeterministicFlood` — every informed node transmits in every round.
  On a path this is optimal; on anything with two or more informed
  in-neighbours per frontier node it deadlocks permanently (the collision
  rule means nobody new is ever informed), which is precisely the failure
  mode that motivates randomised protocols.  The class exposes a
  ``max_transmissions_per_node`` cut-off so runs terminate.
* :class:`BernoulliFlood` — every informed node transmits with a fixed
  probability ``q`` each round, forever.  With ``q ≈ 1/Δ`` (Δ = max
  in-degree) this completes but spends Θ(time · q) transmissions per node —
  the energy-oblivious strawman against which the paper's bounded-energy
  protocols are measured in E14.

Deterministic flooding's per-node budget bookkeeping goes through the
:mod:`repro.radio.nodesets` kernel's
:class:`~repro.radio.nodesets.BudgetFrontier`: the serial protocol always
uses the sparse pool (flooded-out nodes cost nothing once evicted), the
batched protocol takes whichever backend its kernel selects.
"""

from __future__ import annotations

import math
from typing import Dict, Optional

import numpy as np

from repro._util.validation import check_positive_int, check_probability
from repro.radio.batch import BatchBroadcastProtocol
from repro.radio.collision import BatchCollisionOutcome, CollisionOutcome
from repro.radio.nodesets import BudgetFrontier, SparseBudgetFrontier
from repro.radio.protocol import BroadcastProtocol

__all__ = [
    "DeterministicFlood",
    "BernoulliFlood",
    "BatchDeterministicFlood",
    "BatchBernoulliFlood",
]


class DeterministicFlood(BroadcastProtocol):
    """Every informed node transmits every round (until its cut-off)."""

    name = "deterministic-flood"

    def __init__(self, *, source: int = 0, max_transmissions_per_node: int = 64):
        super().__init__(source=source)
        self.max_transmissions_per_node = check_positive_int(
            max_transmissions_per_node, "max_transmissions_per_node"
        )
        self._frontier: Optional[BudgetFrontier] = None
        self._all_running = np.ones(1, dtype=bool)
        self.run_metadata: Dict[str, object] = {}

    def _setup_broadcast(self) -> None:
        self._frontier = SparseBudgetFrontier(1, self.n)
        self._frontier.admit(
            np.array([self.source], dtype=np.int64),
            self.max_transmissions_per_node,
        )
        self.run_metadata = {
            "max_transmissions_per_node": self.max_transmissions_per_node
        }

    def transmit_mask(self, round_index: int) -> np.ndarray:
        mask = np.zeros(self.n, dtype=bool)
        mask[self._frontier.transmitters(self._all_running)] = True
        return mask

    def observe(
        self,
        round_index: int,
        transmit_mask: np.ndarray,
        outcome: CollisionOutcome,
    ) -> None:
        newly = self.mark_informed(outcome.receivers, round_index)
        if newly.size:
            self._frontier.admit(newly, self.max_transmissions_per_node)

    def is_quiescent(self, round_index: int) -> bool:
        # An empty frontier can never refill (nobody transmits, so nobody
        # new is informed): the deadlocked run is permanently silent.
        return int(self._frontier.counts()[0]) == 0

    def suggested_max_rounds(self) -> int:
        return 4 * self.n + self.max_transmissions_per_node


class BernoulliFlood(BroadcastProtocol):
    """Every informed node transmits with probability ``q`` each round, forever."""

    name = "bernoulli-flood"

    def __init__(self, q: float, *, source: int = 0):
        super().__init__(source=source)
        self.q = check_probability(q, "q", allow_zero=False)
        self.run_metadata: Dict[str, object] = {}

    def _setup_broadcast(self) -> None:
        self.run_metadata = {"q": self.q}

    def transmit_mask(self, round_index: int) -> np.ndarray:
        draws = self.rng.random(self.n) < self.q
        return self.informed & draws

    def suggested_max_rounds(self) -> int:
        log_n = max(1.0, math.log2(self.n))
        return int(math.ceil(64 * (self.n + log_n) / self.q))


class BatchDeterministicFlood(BatchBroadcastProtocol):
    """Batched :class:`DeterministicFlood` on a kernel budget frontier.

    The informed-with-budget-left set is exactly a
    :class:`~repro.radio.nodesets.BudgetFrontier`: dense backends compare a
    ``(R, n)`` remaining-budget array per round, the sparse backend walks an
    index pool that evicts flooded-out nodes — identical transmitters either
    way.
    """

    name = DeterministicFlood.name
    state_profile = "frontier"

    def __init__(self, *, source: int = 0, max_transmissions_per_node: int = 64):
        super().__init__(source=source)
        self.max_transmissions_per_node = check_positive_int(
            max_transmissions_per_node, "max_transmissions_per_node"
        )
        self._frontier: Optional[BudgetFrontier] = None

    def _setup_broadcast(self) -> None:
        trials, n = self.trials, self.n
        self._frontier = self.kernel.budget_frontier(trials, n)
        self._frontier.admit(
            np.arange(trials, dtype=np.int64) * n + self.source,
            self.max_transmissions_per_node,
        )

    def transmit_flat(self, round_index: int, running: np.ndarray) -> np.ndarray:
        return self._frontier.transmitters(running)

    def observe(
        self,
        round_index: int,
        tx_flat: np.ndarray,
        outcome: BatchCollisionOutcome,
        running: np.ndarray,
    ) -> None:
        newly = self.mark_informed(outcome.receiver_flat, round_index)
        if newly.size:
            self._frontier.admit(newly, self.max_transmissions_per_node)

    def quiescent(self, round_index: int) -> np.ndarray:
        # Mirrors the serial rule: a trial whose frontier emptied is
        # permanently silent (an empty frontier can never refill).
        return self._frontier.counts() == 0

    def _compact_broadcast(self, keep: np.ndarray) -> None:
        self._frontier.select_rows(keep)

    def suggested_max_rounds(self) -> int:
        return 4 * self.n + self.max_transmissions_per_node

    def trial_metadata(self, trial: int) -> Dict[str, object]:
        return {"max_transmissions_per_node": self.max_transmissions_per_node}


class BatchBernoulliFlood(BatchBroadcastProtocol):
    """Batched :class:`BernoulliFlood`.

    In exact mode each running trial draws its full ``rng.random(n)`` vector
    from its own generator, matching the serial protocol's stream call for
    call.  (The per-round draws are dense by construction, so this protocol
    gains nothing from the sparse frontier backend and keeps the plain
    membership profile.)
    """

    name = BernoulliFlood.name

    def __init__(self, q: float, *, source: int = 0):
        super().__init__(source=source)
        self.q = check_probability(q, "q", allow_zero=False)

    def transmit_masks(self, round_index: int, running: np.ndarray) -> np.ndarray:
        masks = np.zeros((self.trials, self.n), dtype=bool)
        rows = np.flatnonzero(running)
        if rows.size:
            draws = self.rng_source.uniform_rows(running, self.n) < self.q
            masks[rows] = self.informed[rows] & draws
        return masks

    def suggested_max_rounds(self) -> int:
        log_n = max(1.0, math.log2(self.n))
        return int(math.ceil(64 * (self.n + log_n) / self.q))

    def trial_metadata(self, trial: int) -> Dict[str, object]:
        return {"q": self.q}
