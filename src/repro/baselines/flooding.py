"""Folklore flooding baselines.

* :class:`DeterministicFlood` — every informed node transmits in every round.
  On a path this is optimal; on anything with two or more informed
  in-neighbours per frontier node it deadlocks permanently (the collision
  rule means nobody new is ever informed), which is precisely the failure
  mode that motivates randomised protocols.  The class exposes a
  ``max_transmissions_per_node`` cut-off so runs terminate.
* :class:`BernoulliFlood` — every informed node transmits with a fixed
  probability ``q`` each round, forever.  With ``q ≈ 1/Δ`` (Δ = max
  in-degree) this completes but spends Θ(time · q) transmissions per node —
  the energy-oblivious strawman against which the paper's bounded-energy
  protocols are measured in E14.
"""

from __future__ import annotations

import math
from typing import Dict, Optional

import numpy as np

from repro._util.validation import check_positive_int, check_probability
from repro.radio.batch import BatchBroadcastProtocol
from repro.radio.protocol import BroadcastProtocol

__all__ = [
    "DeterministicFlood",
    "BernoulliFlood",
    "BatchDeterministicFlood",
    "BatchBernoulliFlood",
]


class DeterministicFlood(BroadcastProtocol):
    """Every informed node transmits every round (until its cut-off)."""

    name = "deterministic-flood"

    def __init__(self, *, source: int = 0, max_transmissions_per_node: int = 64):
        super().__init__(source=source)
        self.max_transmissions_per_node = check_positive_int(
            max_transmissions_per_node, "max_transmissions_per_node"
        )
        self._transmissions: Optional[np.ndarray] = None
        self.run_metadata: Dict[str, object] = {}

    def _setup_broadcast(self) -> None:
        self._transmissions = np.zeros(self.n, dtype=np.int64)
        self.run_metadata = {
            "max_transmissions_per_node": self.max_transmissions_per_node
        }

    def transmit_mask(self, round_index: int) -> np.ndarray:
        mask = self.informed & (self._transmissions < self.max_transmissions_per_node)
        self._transmissions += mask
        return mask

    def suggested_max_rounds(self) -> int:
        return 4 * self.n + self.max_transmissions_per_node


class BernoulliFlood(BroadcastProtocol):
    """Every informed node transmits with probability ``q`` each round, forever."""

    name = "bernoulli-flood"

    def __init__(self, q: float, *, source: int = 0):
        super().__init__(source=source)
        self.q = check_probability(q, "q", allow_zero=False)
        self.run_metadata: Dict[str, object] = {}

    def _setup_broadcast(self) -> None:
        self.run_metadata = {"q": self.q}

    def transmit_mask(self, round_index: int) -> np.ndarray:
        draws = self.rng.random(self.n) < self.q
        return self.informed & draws

    def suggested_max_rounds(self) -> int:
        log_n = max(1.0, math.log2(self.n))
        return int(math.ceil(64 * (self.n + log_n) / self.q))


class BatchDeterministicFlood(BatchBroadcastProtocol):
    """Batched :class:`DeterministicFlood` on ``(R, n)`` state arrays."""

    name = DeterministicFlood.name

    def __init__(self, *, source: int = 0, max_transmissions_per_node: int = 64):
        super().__init__(source=source)
        self.max_transmissions_per_node = check_positive_int(
            max_transmissions_per_node, "max_transmissions_per_node"
        )
        self._transmissions: Optional[np.ndarray] = None

    def _setup_broadcast(self) -> None:
        self._transmissions = np.zeros((self.trials, self.n), dtype=np.int64)

    def transmit_masks(self, round_index: int, running: np.ndarray) -> np.ndarray:
        masks = (
            self.informed
            & (self._transmissions < self.max_transmissions_per_node)
            & running[:, None]
        )
        self._transmissions += masks
        return masks

    def suggested_max_rounds(self) -> int:
        return 4 * self.n + self.max_transmissions_per_node

    def trial_metadata(self, trial: int) -> Dict[str, object]:
        return {"max_transmissions_per_node": self.max_transmissions_per_node}


class BatchBernoulliFlood(BatchBroadcastProtocol):
    """Batched :class:`BernoulliFlood`.

    In exact mode each running trial draws its full ``rng.random(n)`` vector
    from its own generator, matching the serial protocol's stream call for
    call.
    """

    name = BernoulliFlood.name

    def __init__(self, q: float, *, source: int = 0):
        super().__init__(source=source)
        self.q = check_probability(q, "q", allow_zero=False)

    def transmit_masks(self, round_index: int, running: np.ndarray) -> np.ndarray:
        masks = np.zeros((self.trials, self.n), dtype=bool)
        rows = np.flatnonzero(running)
        if rows.size:
            draws = self.rng_source.uniform_rows(running, self.n) < self.q
            masks[rows] = self.informed[rows] & draws
        return masks

    def suggested_max_rounds(self) -> int:
        log_n = max(1.0, math.log2(self.n))
        return int(math.ceil(64 * (self.n + log_n) / self.q))

    def trial_metadata(self, trial: int) -> Dict[str, object]:
        return {"q": self.q}
