"""Baseline protocols the paper compares against (Section 1.1 related work).

* :class:`~repro.baselines.flooding.DeterministicFlood` and
  :class:`~repro.baselines.flooding.BernoulliFlood` — folklore flooding
  (shows why collisions make naive approaches fail or burn energy).
* :class:`~repro.baselines.decay.DecayBroadcast` — Bar-Yehuda, Goldreich,
  Itai [3]: O((D + log n) log n) time, unbounded per-node energy.
* :class:`~repro.baselines.elsasser_gasieniec.ElsasserGasieniecBroadcast` —
  [12]: the three-phase random-graph broadcast Algorithm 1 improves on
  (up to D−1 transmissions per node).
* :class:`~repro.baselines.czumaj_rytter.KnownDiameterCR` and
  :class:`~repro.baselines.czumaj_rytter.UniformSelectionBroadcast` — [11]:
  selection-sequence broadcasting with the α′ distribution (known D) and a
  uniform-scale variant (unknown D).
* :func:`~repro.baselines.phone_call.run_push_broadcast` /
  :func:`~repro.baselines.phone_call.run_push_gossip` — the random
  phone-call model of [13] (no radio collisions; an energy reference point).
* :class:`~repro.baselines.gossip_uniform.UniformScaleGossip` — a
  selection-sequence gossip baseline for general networks in the spirit of
  the Chrobak–Gasieniec–Rytter framework [8].
"""

from repro.baselines.czumaj_rytter import (
    BatchKnownDiameterCR,
    BatchUniformSelectionBroadcast,
    KnownDiameterCR,
    UniformSelectionBroadcast,
)
from repro.baselines.decay import BatchDecayBroadcast, DecayBroadcast
from repro.baselines.elsasser_gasieniec import (
    BatchElsasserGasieniecBroadcast,
    ElsasserGasieniecBroadcast,
)
from repro.baselines.flooding import (
    BatchBernoulliFlood,
    BatchDeterministicFlood,
    BernoulliFlood,
    DeterministicFlood,
)
from repro.baselines.gossip_uniform import BatchUniformScaleGossip, UniformScaleGossip
from repro.baselines.phone_call import (
    PhoneCallResult,
    run_push_broadcast,
    run_push_gossip,
)
from repro.baselines.sequential_gossip import (
    BatchSequentialBroadcastGossip,
    SequentialBroadcastGossip,
)

__all__ = [
    "SequentialBroadcastGossip",
    "BatchSequentialBroadcastGossip",
    "DeterministicFlood",
    "BernoulliFlood",
    "BatchDeterministicFlood",
    "BatchBernoulliFlood",
    "BatchUniformScaleGossip",
    "DecayBroadcast",
    "BatchDecayBroadcast",
    "ElsasserGasieniecBroadcast",
    "BatchElsasserGasieniecBroadcast",
    "KnownDiameterCR",
    "BatchKnownDiameterCR",
    "UniformSelectionBroadcast",
    "BatchUniformSelectionBroadcast",
    "UniformScaleGossip",
    "PhoneCallResult",
    "run_push_broadcast",
    "run_push_gossip",
]
