"""A selection-sequence gossip baseline for general networks.

The paper's Algorithm 2 is specialised to random networks (it needs to know
``d = n p``).  For general networks the literature route ([8, 11]) is to run
repeated broadcast-like phases; the practical common denominator is a
selection-sequence gossip in which a public scale ``I_r`` is drawn uniformly
from ``{1 .. log n}`` each round and *every* node transmits its joined
rumour set with probability ``2^{-I_r}``.  Per-node energy is
``Θ(rounds / log n)`` and completion takes ``O((D + log n) log n · …)``
rounds on bounded-diameter graphs — the baseline Algorithm 2 beats by a
``Θ(n / d)``-ish factor on random networks (experiment E4/E14).
"""

from __future__ import annotations

import math
from typing import Dict, Optional

import numpy as np

from repro._util.validation import check_positive
from repro.core.distributions import UniformScaleDistribution
from repro.core.selection import SelectionSequence
from repro.radio.protocol import GossipProtocol

__all__ = ["UniformScaleGossip"]


class UniformScaleGossip(GossipProtocol):
    """Gossip where all nodes transmit with a shared uniform-scale probability.

    Parameters
    ----------
    rounds_constant:
        Safety-net horizon constant ``C``: the protocol stops scheduling
        transmissions after ``C · n · log2 n`` rounds (the engine stops much
        earlier on the workloads we use, as soon as gossip completes).
    """

    name = "uniform-scale-gossip"

    def __init__(self, *, rounds_constant: float = 8.0):
        super().__init__()
        self.rounds_constant = check_positive(rounds_constant, "rounds_constant")
        self.selection: Optional[SelectionSequence] = None
        self.round_budget: int = 0
        self.run_metadata: Dict[str, object] = {}

    def _setup_gossip(self) -> None:
        n = self.n
        log_n = max(1.0, math.log2(max(2, n)))
        self.selection = SelectionSequence(UniformScaleDistribution(max(2, n)), rng=self.rng)
        self.round_budget = int(math.ceil(self.rounds_constant * n * log_n))
        self.run_metadata = {"round_budget": self.round_budget}

    def transmit_mask(self, round_index: int) -> np.ndarray:
        if round_index >= self.round_budget:
            return np.zeros(self.n, dtype=bool)
        probability = self.selection.probability_at(round_index)
        return self.rng.random(self.n) < probability

    def is_quiescent(self, round_index: int) -> bool:
        return round_index >= self.round_budget

    def suggested_max_rounds(self) -> int:
        return self.round_budget
