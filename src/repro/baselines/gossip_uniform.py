"""A selection-sequence gossip baseline for general networks.

The paper's Algorithm 2 is specialised to random networks (it needs to know
``d = n p``).  For general networks the literature route ([8, 11]) is to run
repeated broadcast-like phases; the practical common denominator is a
selection-sequence gossip in which a public scale ``I_r`` is drawn uniformly
from ``{1 .. log n}`` each round and *every* node transmits its joined
rumour set with probability ``2^{-I_r}``.  Per-node energy is
``Θ(rounds / log n)`` and completion takes ``O((D + log n) log n · …)``
rounds on bounded-diameter graphs — the baseline Algorithm 2 beats by a
``Θ(n / d)``-ish factor on random networks (experiment E4/E14).
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional

import numpy as np

from repro._util.validation import check_positive
from repro.core.distributions import UniformScaleDistribution
from repro.core.selection import SelectionSequence
from repro.radio.batch import BatchGossipProtocol
from repro.radio.protocol import GossipProtocol

__all__ = ["UniformScaleGossip", "BatchUniformScaleGossip"]


class UniformScaleGossip(GossipProtocol):
    """Gossip where all nodes transmit with a shared uniform-scale probability.

    Parameters
    ----------
    rounds_constant:
        Safety-net horizon constant ``C``: the protocol stops scheduling
        transmissions after ``C · n · log2 n`` rounds (the engine stops much
        earlier on the workloads we use, as soon as gossip completes).
    """

    name = "uniform-scale-gossip"

    def __init__(self, *, rounds_constant: float = 8.0):
        super().__init__()
        self.rounds_constant = check_positive(rounds_constant, "rounds_constant")
        self.selection: Optional[SelectionSequence] = None
        self.round_budget: int = 0
        self.run_metadata: Dict[str, object] = {}

    def _setup_gossip(self) -> None:
        n = self.n
        log_n = max(1.0, math.log2(max(2, n)))
        self.selection = SelectionSequence(UniformScaleDistribution(max(2, n)), rng=self.rng)
        self.round_budget = int(math.ceil(self.rounds_constant * n * log_n))
        self.run_metadata = {"round_budget": self.round_budget}

    def transmit_mask(self, round_index: int) -> np.ndarray:
        if round_index >= self.round_budget:
            return np.zeros(self.n, dtype=bool)
        probability = self.selection.probability_at(round_index)
        return self.rng.random(self.n) < probability

    def is_quiescent(self, round_index: int) -> bool:
        return round_index >= self.round_budget

    def suggested_max_rounds(self) -> int:
        return self.round_budget


class BatchUniformScaleGossip(BatchGossipProtocol):
    """Batched :class:`UniformScaleGossip` on an ``(R, n, n)`` knowledge tensor.

    Each trial has its own public scale sequence, as the serial protocol does
    per run.  In exact mode trial ``t`` materialises a
    :class:`~repro.core.selection.SelectionSequence` from its own generator
    and interleaves the scale-block and node draws exactly as the serial
    protocol would, so batched trials are bit-identical to serial runs.  In
    fast mode one shared generator draws the ``R`` scales of a round at once.
    """

    name = UniformScaleGossip.name

    def __init__(self, *, rounds_constant: float = 8.0):
        super().__init__()
        self.rounds_constant = check_positive(rounds_constant, "rounds_constant")
        self.round_budget: int = 0
        self._sequences: Optional[List[SelectionSequence]] = None
        self._distribution: Optional[UniformScaleDistribution] = None

    def _setup_gossip(self) -> None:
        n = self.n
        log_n = max(1.0, math.log2(max(2, n)))
        self.round_budget = int(math.ceil(self.rounds_constant * n * log_n))
        self._distribution = UniformScaleDistribution(max(2, n))
        if self.rng_source.exact_mode:
            self._sequences = [
                SelectionSequence(
                    self._distribution, rng=self.rng_source.generator_for_trial(t)
                )
                for t in range(self.trials)
            ]
        else:
            self._sequences = None

    def transmit_masks(self, round_index: int, running: np.ndarray) -> np.ndarray:
        trials, n = self.trials, self.n
        masks = np.zeros((trials, n), dtype=bool)
        if round_index >= self.round_budget:
            return masks
        if self._sequences is not None:
            # Exact mode: per trial, the scale lookup (which may draw a block
            # of public randomness) then the n node coins — the serial order.
            for t in np.flatnonzero(running):
                probability = self._sequences[t].probability_at(round_index)
                draws = self.rng_source.generator_for_trial(t).random(n)
                masks[t] = draws < probability
            return masks
        # Fast mode: draw this round's R public scales in one call (the
        # engine visits each round exactly once, so no cache is needed).
        probabilities = self._distribution.sample_probabilities(
            trials, rng=self.rng_source.generator
        )
        rows = np.flatnonzero(running)
        if rows.size:
            draws = self.rng_source.uniform_rows(running, n)
            masks[rows] = draws < probabilities[rows, None]
        return masks

    def quiescent(self, round_index: int) -> np.ndarray:
        return np.full(self.trials, round_index >= self.round_budget, dtype=bool)

    def _compact_gossip(self, keep: np.ndarray) -> None:
        if self._sequences is not None:
            # Each sequence owns its trial's generator; the object must
            # travel so the stream position survives compaction.
            self._sequences = [
                seq for seq, k in zip(self._sequences, keep) if k
            ]

    def suggested_max_rounds(self) -> int:
        return self.round_budget

    def trial_metadata(self, trial: int) -> Dict[str, object]:
        return {"round_budget": self.round_budget}
