"""Sequential broadcast-based gossiping (the trivial composition baseline).

The gossiping literature the paper builds on ([8, 11]) obtains gossip
algorithms by composing broadcast procedures.  The simplest member of that
family — and the natural strawman Algorithm 2 is measured against on random
networks — is the *sequential* composition: rumours are scheduled one after
another, and during rumour ``j``'s epoch every node that already knows rumour
``j`` participates in a randomised broadcast of it (all rumours a node knows
ride along, as in the join model).

With an epoch length of ``Θ(log² n)`` rounds this completes gossip on the
networks we simulate in ``Θ(n log² n)`` rounds — the ``O(n log² n)`` regime
the paper quotes for general-network gossiping — at ``Θ(polylog)``
transmissions per node, compared with Algorithm 2's ``O(d log n)`` rounds.

The broadcast procedure used inside an epoch is the uniform-scale selection
sequence (no knowledge of the topology is needed), refreshed per epoch.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional

import numpy as np

from repro._util.validation import check_positive
from repro.core.distributions import UniformScaleDistribution
from repro.core.selection import SelectionSequence
from repro.radio.batch import BatchGossipProtocol
from repro.radio.protocol import GossipProtocol

__all__ = ["SequentialBroadcastGossip", "BatchSequentialBroadcastGossip"]


class SequentialBroadcastGossip(GossipProtocol):
    """Gossip by broadcasting one rumour per epoch, in node-id order.

    Parameters
    ----------
    epoch_length_factor:
        Epoch length is ``ceil(factor * log2(n)^2)`` rounds — enough for a
        selection-sequence broadcast to finish w.h.p. on the bounded-diameter
        and random networks used in the experiments.
    passes:
        How many times the rumour schedule cycles through all ``n`` sources.
        One pass suffices on strongly connected networks because rumours
        accumulate (the join model); the option exists for stress tests on
        poorly connected topologies.
    """

    name = "sequential-broadcast-gossip"

    def __init__(self, *, epoch_length_factor: float = 2.0, passes: int = 1):
        super().__init__()
        self.epoch_length_factor = check_positive(
            epoch_length_factor, "epoch_length_factor"
        )
        if passes < 1:
            raise ValueError(f"passes must be >= 1, got {passes}")
        self.passes = int(passes)
        self.epoch_length: int = 1
        self.round_budget: int = 0
        self.selection: Optional[SelectionSequence] = None
        self._current_epoch: int = -1
        self.run_metadata: Dict[str, object] = {}

    def _setup_gossip(self) -> None:
        n = self.n
        log_n = max(1.0, math.log2(max(2, n)))
        self.epoch_length = max(1, int(math.ceil(self.epoch_length_factor * log_n**2)))
        self.round_budget = self.epoch_length * n * self.passes
        self.selection = SelectionSequence(UniformScaleDistribution(max(2, n)), rng=self.rng)
        self._current_epoch = -1
        self.run_metadata = {
            "epoch_length": self.epoch_length,
            "round_budget": self.round_budget,
            "passes": self.passes,
        }

    def _rumour_for_epoch(self, epoch: int) -> int:
        return epoch % self.n

    def transmit_mask(self, round_index: int) -> np.ndarray:
        if round_index >= self.round_budget:
            return np.zeros(self.n, dtype=bool)
        epoch = round_index // self.epoch_length
        rumour = self._rumour_for_epoch(epoch)
        # Participants: nodes that already know the epoch's rumour.
        participants = self.knowledge[:, rumour]
        if not participants.any():
            return np.zeros(self.n, dtype=bool)
        probability = self.selection.probability_at(round_index)
        draws = self.rng.random(self.n) < probability
        return participants & draws

    def is_quiescent(self, round_index: int) -> bool:
        return round_index >= self.round_budget

    def suggested_max_rounds(self) -> int:
        return self.round_budget

    def __repr__(self) -> str:
        return (
            f"SequentialBroadcastGossip(epoch_length_factor={self.epoch_length_factor}, "
            f"passes={self.passes})"
        )


class BatchSequentialBroadcastGossip(BatchGossipProtocol):
    """Batched :class:`SequentialBroadcastGossip`.

    The epoch (and therefore the scheduled rumour) depends only on the round
    index, so all trials broadcast the same rumour slot; participants are
    read off the ``(R, n, n)`` knowledge tensor.  Exact mode interleaves each
    trial's public-scale block draws and node coins exactly as the serial
    protocol does.
    """

    name = SequentialBroadcastGossip.name

    def __init__(self, *, epoch_length_factor: float = 2.0, passes: int = 1):
        super().__init__()
        self.epoch_length_factor = check_positive(
            epoch_length_factor, "epoch_length_factor"
        )
        if passes < 1:
            raise ValueError(f"passes must be >= 1, got {passes}")
        self.passes = int(passes)
        self.epoch_length: int = 1
        self.round_budget: int = 0
        self._sequences: Optional[List[SelectionSequence]] = None
        self._distribution: Optional[UniformScaleDistribution] = None

    def _setup_gossip(self) -> None:
        n = self.n
        log_n = max(1.0, math.log2(max(2, n)))
        self.epoch_length = max(1, int(math.ceil(self.epoch_length_factor * log_n**2)))
        self.round_budget = self.epoch_length * n * self.passes
        self._distribution = UniformScaleDistribution(max(2, n))
        if self.rng_source.exact_mode:
            self._sequences = [
                SelectionSequence(
                    self._distribution, rng=self.rng_source.generator_for_trial(t)
                )
                for t in range(self.trials)
            ]
        else:
            self._sequences = None

    def transmit_masks(self, round_index: int, running: np.ndarray) -> np.ndarray:
        trials, n = self.trials, self.n
        masks = np.zeros((trials, n), dtype=bool)
        if round_index >= self.round_budget:
            return masks
        epoch = round_index // self.epoch_length
        rumour = epoch % n
        # Participants: nodes that already know the epoch's rumour (a bit
        # extraction under the packed backends — the tensor never expands).
        participants = self.knows_rumour(rumour)
        if self._sequences is not None:
            for t in np.flatnonzero(running):
                if not participants[t].any():
                    continue
                probability = self._sequences[t].probability_at(round_index)
                draws = self.rng_source.generator_for_trial(t).random(n)
                masks[t] = participants[t] & (draws < probability)
            return masks
        probabilities = self._distribution.sample_probabilities(
            trials, rng=self.rng_source.generator
        )
        rows = np.flatnonzero(running)
        if rows.size:
            draws = self.rng_source.uniform_rows(running, n)
            masks[rows] = participants[rows] & (draws < probabilities[rows, None])
        return masks

    def quiescent(self, round_index: int) -> np.ndarray:
        return np.full(self.trials, round_index >= self.round_budget, dtype=bool)

    def _compact_gossip(self, keep: np.ndarray) -> None:
        if self._sequences is not None:
            # Each sequence owns its trial's generator; the object must
            # travel so the stream position survives compaction.
            self._sequences = [
                seq for seq, k in zip(self._sequences, keep) if k
            ]

    def suggested_max_rounds(self) -> int:
        return self.round_budget

    def trial_metadata(self, trial: int) -> Dict[str, object]:
        return {
            "epoch_length": self.epoch_length,
            "round_budget": self.round_budget,
            "passes": self.passes,
        }
