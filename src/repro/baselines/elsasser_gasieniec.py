"""The Elsässer–Gasieniec random-graph broadcast [12].

The direct predecessor of Algorithm 1 (the paper: "Our broadcasting
algorithm is similar to the one of Elsässer and Gasieniec in [12].  The
difference is that our algorithm sends at most one message per node, whereas
the randomised algorithm of [12] sends up to D−1 messages per node").

Three phases, with ``D = ceil(log n / log d)`` the w.h.p. diameter of
``G(n, p)``:

* **Phase 1** (``D − 1`` rounds): every informed node transmits with
  probability 1 in every round — hence up to ``D − 1`` transmissions per
  node.
* **Phase 2** (one round): every informed node transmits with probability
  ``min(1, n / d^D)``.
* **Phase 3** (``β log n`` rounds): every node informed in the first two
  phases transmits with probability ``1/d`` per round.

The broadcast time is ``O(log n)`` w.h.p., the same as Algorithm 1; the
difference E1/E14 exhibit is the per-node and total energy.
"""

from __future__ import annotations

import math
from typing import Dict, Optional

import numpy as np

from repro._util.logmath import ceil_log_ratio, expected_degree
from repro._util.validation import check_positive, check_probability
from repro.radio.batch import BatchBroadcastProtocol
from repro.radio.collision import CollisionOutcome
from repro.radio.protocol import BroadcastProtocol

__all__ = ["ElsasserGasieniecBroadcast", "BatchElsasserGasieniecBroadcast"]


class ElsasserGasieniecBroadcast(BroadcastProtocol):
    """The three-phase broadcast of Elsässer and Gasieniec (SPAA 2005).

    Parameters
    ----------
    p:
        Edge probability of the underlying ``G(n, p)`` (known to all nodes).
    source:
        Broadcast originator.
    beta:
        Phase-3 length multiplier (``ceil(beta * log2 n)`` rounds).
    """

    name = "elsasser-gasieniec-broadcast"

    def __init__(self, p: float, *, source: int = 0, beta: float = 8.0):
        super().__init__(source=source)
        self.p = check_probability(p, "p", allow_zero=False)
        self.beta = check_positive(beta, "beta")
        self.d: float = 0.0
        self.D: int = 1
        self.phase2_probability: float = 0.0
        self.phase3_probability: float = 0.0
        self.phase3_rounds: int = 0
        self._eligible_phase3: Optional[np.ndarray] = None
        self.run_metadata: Dict[str, object] = {}

    def _setup_broadcast(self) -> None:
        n = self.n
        self.d = max(expected_degree(n, self.p), 1.0 + 1e-9)
        self.D = max(1, ceil_log_ratio(n, self.d))
        log_n = max(1.0, math.log2(n))
        self.phase2_probability = min(1.0, n / (self.d**self.D))
        self.phase3_probability = min(1.0, 1.0 / self.d)
        self.phase3_rounds = int(math.ceil(self.beta * log_n))
        self._eligible_phase3 = None
        self.run_metadata = {
            "p": self.p,
            "d": self.d,
            "D": self.D,
            "phase2_probability": self.phase2_probability,
            "phase3_probability": self.phase3_probability,
            "phase3_rounds": self.phase3_rounds,
        }

    # Phase boundaries (0-based round indices):
    #   rounds [0, D-2]            -> Phase 1 (D-1 rounds)
    #   round  D-1                 -> Phase 2
    #   rounds [D, D+phase3_rounds) -> Phase 3
    def phase_of_round(self, round_index: int) -> str:
        if round_index < self.D - 1:
            return "phase1"
        if round_index == self.D - 1:
            return "phase2"
        if round_index < self.D + self.phase3_rounds:
            return "phase3"
        return "done"

    def transmit_mask(self, round_index: int) -> np.ndarray:
        phase = self.phase_of_round(round_index)
        if phase == "phase1":
            return self.informed.copy()
        if phase == "phase2":
            draws = self.rng.random(self.n) < self.phase2_probability
            return self.informed & draws
        if phase == "phase3":
            if self._eligible_phase3 is None:
                # Nodes informed during Phases 1-2 are the Phase-3 pool.
                self._eligible_phase3 = self.informed.copy()
            draws = self.rng.random(self.n) < self.phase3_probability
            return self._eligible_phase3 & draws
        return np.zeros(self.n, dtype=bool)

    def observe(
        self,
        round_index: int,
        transmit_mask: np.ndarray,
        outcome: CollisionOutcome,
    ) -> None:
        self.mark_informed(outcome.receivers, round_index)

    def is_quiescent(self, round_index: int) -> bool:
        if round_index >= self.D + self.phase3_rounds:
            return True
        return not bool(self.informed.any())

    def suggested_max_rounds(self) -> int:
        return self.D + self.phase3_rounds + 1


class BatchElsasserGasieniecBroadcast(BatchBroadcastProtocol):
    """Batched :class:`ElsasserGasieniecBroadcast` on ``(R, n)`` state.

    The phase of a round depends only on the round index, so all trials move
    through the three phases together.  In exact mode each running trial
    draws its full ``rng.random(n)`` vector in Phases 2–3 from its own
    generator, matching the serial stream call for call.
    """

    name = ElsasserGasieniecBroadcast.name

    def __init__(self, p: float, *, source: int = 0, beta: float = 8.0):
        super().__init__(source=source)
        self.p = check_probability(p, "p", allow_zero=False)
        self.beta = check_positive(beta, "beta")
        self.d: float = 0.0
        self.D: int = 1
        self.phase2_probability: float = 0.0
        self.phase3_probability: float = 0.0
        self.phase3_rounds: int = 0
        self._eligible_phase3: Optional[np.ndarray] = None

    def _setup_broadcast(self) -> None:
        n = self.n
        self.d = max(expected_degree(n, self.p), 1.0 + 1e-9)
        self.D = max(1, ceil_log_ratio(n, self.d))
        log_n = max(1.0, math.log2(n))
        self.phase2_probability = min(1.0, n / (self.d**self.D))
        self.phase3_probability = min(1.0, 1.0 / self.d)
        self.phase3_rounds = int(math.ceil(self.beta * log_n))
        self._eligible_phase3 = None

    def phase_of_round(self, round_index: int) -> str:
        if round_index < self.D - 1:
            return "phase1"
        if round_index == self.D - 1:
            return "phase2"
        if round_index < self.D + self.phase3_rounds:
            return "phase3"
        return "done"

    def transmit_masks(self, round_index: int, running: np.ndarray) -> np.ndarray:
        trials, n = self.trials, self.n
        phase = self.phase_of_round(round_index)
        if phase == "phase1":
            return self.informed & running[:, None]
        if phase in ("phase2", "phase3"):
            if phase == "phase2":
                eligible = self.informed
                probability = self.phase2_probability
            else:
                if self._eligible_phase3 is None:
                    # Nodes informed during Phases 1-2 are the Phase-3 pool.
                    self._eligible_phase3 = self.informed.copy()
                eligible = self._eligible_phase3
                probability = self.phase3_probability
            masks = np.zeros((trials, n), dtype=bool)
            rows = np.flatnonzero(running)
            if rows.size:
                draws = self.rng_source.uniform_rows(running, n)
                masks[rows] = eligible[rows] & (draws < probability)
            return masks
        return np.zeros((trials, n), dtype=bool)

    def quiescent(self, round_index: int) -> np.ndarray:
        return np.full(
            self.trials, round_index >= self.D + self.phase3_rounds, dtype=bool
        )

    def _compact_broadcast(self, keep: np.ndarray) -> None:
        if self._eligible_phase3 is not None:
            self._eligible_phase3 = np.ascontiguousarray(
                self._eligible_phase3[keep]
            )

    def suggested_max_rounds(self) -> int:
        return self.D + self.phase3_rounds + 1

    def trial_metadata(self, trial: int) -> Dict[str, object]:
        return {
            "p": self.p,
            "d": self.d,
            "D": self.D,
            "phase2_probability": self.phase2_probability,
            "phase3_probability": self.phase3_probability,
            "phase3_rounds": self.phase3_rounds,
        }
