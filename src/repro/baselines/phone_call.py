"""Random phone-call push protocols (Elsässer [13]).

The random phone-call model is *not* a radio model: in every round each
informed node picks one neighbour uniformly at random and transfers the
message point-to-point — there are no collisions, so a round always
delivers.  The paper cites [13] as the communication-complexity reference
point for broadcasting on random graphs (``O(n · max{log log n,
log n / log d})`` transmissions); we include push broadcast and push gossip
as the "collision-free" energy reference in experiment E14.

Because the communication model differs, these baselines do not run on the
radio engine; they are small standalone simulators that report the same
headline quantities (completion round, total transmissions, max per node).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Optional

import numpy as np

from repro._util.rng import SeedLike, as_generator
from repro._util.validation import check_node_index, check_positive_int
from repro.radio.network import RadioNetwork

__all__ = ["PhoneCallResult", "run_push_broadcast", "run_push_gossip"]


@dataclass(frozen=True)
class PhoneCallResult:
    """Outcome of a phone-call-model run."""

    completed: bool
    completion_round: int
    total_transmissions: int
    max_per_node: int
    mean_per_node: float
    n: int

    def as_dict(self) -> Dict[str, object]:
        return {
            "completed": self.completed,
            "completion_round": self.completion_round,
            "total_transmissions": self.total_transmissions,
            "max_per_node": self.max_per_node,
            "mean_per_node": self.mean_per_node,
            "n": self.n,
        }


def _pick_random_out_neighbours(
    network: RadioNetwork, nodes: np.ndarray, rng: np.random.Generator
) -> np.ndarray:
    """For each node in ``nodes`` pick one uniform out-neighbour (-1 if none)."""
    indptr = network.out_indptr
    starts = indptr[nodes]
    degrees = indptr[nodes + 1] - starts
    picks = np.full(nodes.size, -1, dtype=np.int64)
    has_neighbours = degrees > 0
    if has_neighbours.any():
        offsets = np.floor(
            rng.random(int(has_neighbours.sum())) * degrees[has_neighbours]
        ).astype(np.int64)
        picks[has_neighbours] = network.out_indices[
            starts[has_neighbours] + offsets
        ].astype(np.int64)
    return picks


def run_push_broadcast(
    network: RadioNetwork,
    *,
    source: int = 0,
    rng: SeedLike = None,
    max_rounds: Optional[int] = None,
) -> PhoneCallResult:
    """Push broadcast: each informed node calls one random out-neighbour per round."""
    generator = as_generator(rng)
    n = network.n
    source = check_node_index(source, n, "source")
    if max_rounds is None:
        max_rounds = int(math.ceil(64 * max(1.0, math.log2(max(2, n))))) + 4 * n
    max_rounds = check_positive_int(max_rounds, "max_rounds")

    informed = np.zeros(n, dtype=bool)
    informed[source] = True
    transmissions = np.zeros(n, dtype=np.int64)
    completed = bool(informed.all())
    completion_round = 0

    for round_index in range(max_rounds):
        if completed:
            break
        senders = np.flatnonzero(informed)
        picks = _pick_random_out_neighbours(network, senders, generator)
        transmissions[senders] += 1
        valid = picks >= 0
        informed[picks[valid]] = True
        if informed.all():
            completed = True
            completion_round = round_index + 1
            break
    else:
        completion_round = max_rounds

    return PhoneCallResult(
        completed=completed,
        completion_round=completion_round,
        total_transmissions=int(transmissions.sum()),
        max_per_node=int(transmissions.max()),
        mean_per_node=float(transmissions.mean()),
        n=n,
    )


def run_push_gossip(
    network: RadioNetwork,
    *,
    rng: SeedLike = None,
    max_rounds: Optional[int] = None,
) -> PhoneCallResult:
    """Push gossip: every node calls one random out-neighbour per round, joining rumours."""
    generator = as_generator(rng)
    n = network.n
    if max_rounds is None:
        max_rounds = int(math.ceil(64 * max(1.0, math.log2(max(2, n))))) + 4 * n
    max_rounds = check_positive_int(max_rounds, "max_rounds")

    knowledge = np.eye(n, dtype=bool)
    transmissions = np.zeros(n, dtype=np.int64)
    completed = bool(knowledge.all())
    completion_round = 0
    all_nodes = np.arange(n, dtype=np.int64)

    for round_index in range(max_rounds):
        if completed:
            break
        picks = _pick_random_out_neighbours(network, all_nodes, generator)
        transmissions += picks >= 0
        valid = picks >= 0
        receivers = picks[valid]
        senders = all_nodes[valid]
        # Round-start snapshot: gather sender rows before updating.
        payloads = knowledge[senders]
        np.logical_or.at(knowledge, receivers, payloads)
        if knowledge.all():
            completed = True
            completion_round = round_index + 1
            break
    else:
        completion_round = max_rounds

    return PhoneCallResult(
        completed=completed,
        completion_round=completion_round,
        total_transmissions=int(transmissions.sum()),
        max_per_node=int(transmissions.max()),
        mean_per_node=float(transmissions.mean()),
        n=n,
    )
