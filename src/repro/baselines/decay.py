"""The Bar-Yehuda–Goldreich–Itai ``Decay`` broadcast [3].

The classic randomised broadcast for unknown radio networks.  Time is divided
into *phases* of ``k = ceil(2 log2 n)`` rounds.  At the start of each phase
every informed node draws a geometric stopping time and then transmits in the
first ``X`` rounds of the phase, where ``Pr[X >= i] = 2^{-(i-1)}`` (i.e. it
keeps transmitting and halves its survival probability every round, capped at
``k``).  Within a phase the expected number of transmissions per informed
node is at most 2, and each uninformed neighbour of the frontier is informed
with constant probability per phase, giving ``O((D + log n) log n)`` rounds
w.h.p.

Energy: a node keeps participating in every phase until the broadcast
completes (the original protocol has no retirement rule), so per-node energy
grows linearly with the number of phases it lives through —
``Θ(log n)``-ish near the source but up to ``Θ((D + log n))`` transmissions
per node overall.  This is the energy cost Algorithm 3 avoids.  An optional
``max_phases_active`` cut-off bounds it for the comparison experiments.

Frontier bookkeeping goes through the :mod:`repro.radio.nodesets` kernel:
phase quotas live in a :class:`~repro.radio.nodesets.QuotaFrontier`, drawn
only for the participating nodes.  The serial protocol always uses the
sparse pool (strictly less work than a dense quota array at every ``n``);
the batched protocol takes whichever backend its kernel selects, so large-n
sweeps prune the frontier geometrically within each phase instead of paying
``O(R * n)`` mask work per round.
"""

from __future__ import annotations

import math
from typing import Dict, Optional

import numpy as np

from repro._util.validation import check_positive_int
from repro.radio.batch import BatchBroadcastProtocol
from repro.radio.collision import BatchCollisionOutcome, CollisionOutcome
from repro.radio.nodesets import QuotaFrontier, SparseQuotaFrontier
from repro.radio.protocol import BroadcastProtocol

__all__ = ["DecayBroadcast", "BatchDecayBroadcast"]


class DecayBroadcast(BroadcastProtocol):
    """Bar-Yehuda et al. Decay protocol.

    Parameters
    ----------
    source:
        Broadcast originator.
    max_phases_active:
        Optional retirement rule: a node stops participating after this many
        phases counted from the phase in which it was informed.  ``None``
        reproduces the original (energy-unbounded) protocol.
    """

    name = "decay-broadcast"

    def __init__(self, *, source: int = 0, max_phases_active: Optional[int] = None):
        super().__init__(source=source)
        if max_phases_active is not None:
            max_phases_active = check_positive_int(
                max_phases_active, "max_phases_active"
            )
        self.max_phases_active = max_phases_active
        self.phase_length: int = 1
        self._frontier: Optional[QuotaFrontier] = None
        self._all_running = np.ones(1, dtype=bool)
        self._informed_phase: Optional[np.ndarray] = None
        self.run_metadata: Dict[str, object] = {}

    def _setup_broadcast(self) -> None:
        n = self.n
        self.phase_length = max(1, int(math.ceil(2 * math.log2(max(2, n)))))
        # Sparse pool: quotas are drawn (and stored) only for the phase's
        # participants, and the pool halves every round of the phase.
        self._frontier = SparseQuotaFrontier(1, n)
        self._informed_phase = np.full(n, -1, dtype=np.int64)
        self._informed_phase[self.source] = 0
        self._stuck = False
        self._probe_count = -1
        self._tested_count = -1
        self.run_metadata = {
            "phase_length": self.phase_length,
            "max_phases_active": self.max_phases_active,
        }

    def _draw_phase_quotas(self, participating: np.ndarray) -> None:
        """Draw the per-phase geometric transmission quotas for participants."""
        count = int(participating.sum())
        if count:
            draws = self.rng.geometric(0.5, size=count)
            values = np.minimum(draws, self.phase_length)
        else:
            values = np.empty(0, dtype=np.int64)
        self._frontier.begin_phase(participating[None, :], values)

    def transmit_mask(self, round_index: int) -> np.ndarray:
        phase_index, within = divmod(round_index, self.phase_length)
        if within == 0:
            participating = self.informed.copy()
            if self.max_phases_active is not None:
                alive = (phase_index - self._informed_phase) < self.max_phases_active
                participating &= alive & (self._informed_phase >= 0)
            self._draw_phase_quotas(participating)
        mask = np.zeros(self.n, dtype=bool)
        mask[self._frontier.transmitters(within, self._all_running)] = True
        return mask

    def observe(
        self,
        round_index: int,
        transmit_mask: np.ndarray,
        outcome: CollisionOutcome,
    ) -> None:
        newly = self.mark_informed(outcome.receivers, round_index)
        if newly.size:
            phase_index = round_index // self.phase_length
            # Newly informed nodes join from the *next* phase.
            self._informed_phase[newly] = phase_index + 1

    def _frontier_closed(self) -> bool:
        """True when no informed node has an edge to an uninformed one."""
        informed = self.informed
        net = self.network
        src_informed = np.repeat(informed, np.diff(net.out_indptr))
        return not (src_informed & ~informed[net.out_indices]).any()

    def is_quiescent(self, round_index: int) -> bool:
        # Decay nodes transmit forever, so the schedule never runs dry;
        # instead a run is *dead* exactly when no transmission can change
        # anything: the informed set has no edge into an uninformed node
        # (the disconnected sub-threshold case), or the optional retirement
        # rule has permanently silenced every informed node.  Closure is a
        # whole-graph test, so it is probed once per phase and only after a
        # phase made zero progress; the verdict is monotone (an informed
        # set only grows), so a stuck run stays stuck.
        if self._stuck:
            return True
        if round_index % self.phase_length == 0:
            count = int(self.informed.sum())
            if count < self.n:
                if self.max_phases_active is not None:
                    phase_index = round_index // self.phase_length
                    alive = (
                        self.informed
                        & (self._informed_phase >= 0)
                        & (
                            (phase_index - self._informed_phase)
                            < self.max_phases_active
                        )
                    )
                    if not alive.any():
                        self._stuck = True
                if (
                    not self._stuck
                    and count == self._probe_count
                    and count != self._tested_count
                ):
                    self._tested_count = count
                    self._stuck = self._frontier_closed()
            self._probe_count = count
        return self._stuck or self.is_complete()

    def suggested_max_rounds(self) -> int:
        log_n = max(1.0, math.log2(max(2, self.n)))
        return int(math.ceil(32 * (self.n + log_n) * log_n))


class BatchDecayBroadcast(BatchBroadcastProtocol):
    """Batched Decay: ``R`` trials draw their phase quotas together.

    At each phase boundary the participating nodes of every running trial
    draw their geometric transmission quotas in one concatenated call
    (:meth:`~repro.radio.batch.BatchRandomSource.geometrics_for_counts`); the
    within-phase rounds then ask the kernel's
    :class:`~repro.radio.nodesets.QuotaFrontier` for the surviving
    transmitters — a dense ``(R, n)`` mask comparison or, under the sparse
    backend, an index pool that shrinks geometrically as the phase decays.
    Exact mode draws each trial's block from its own generator — the serial
    protocol's ``rng.geometric(0.5, count)`` call — so batched runs are
    bit-identical to serial ones under every backend.
    """

    name = DecayBroadcast.name
    state_profile = "frontier"

    def __init__(self, *, source: int = 0, max_phases_active: Optional[int] = None):
        super().__init__(source=source)
        if max_phases_active is not None:
            max_phases_active = check_positive_int(
                max_phases_active, "max_phases_active"
            )
        self.max_phases_active = max_phases_active
        self.phase_length: int = 1
        self._frontier: Optional[QuotaFrontier] = None
        self._informed_phase: Optional[np.ndarray] = None

    def _setup_broadcast(self) -> None:
        trials, n = self.trials, self.n
        self.phase_length = max(1, int(math.ceil(2 * math.log2(max(2, n)))))
        self._frontier = self.kernel.quota_frontier(trials, n)
        self._informed_phase = np.full((trials, n), -1, dtype=np.int64)
        self._informed_phase[:, self.source] = 0
        self._stuck = np.zeros(trials, dtype=bool)
        self._probe_counts = np.full(trials, -1, dtype=np.int64)
        self._tested_counts = np.full(trials, -1, dtype=np.int64)

    def transmit_flat(self, round_index: int, running: np.ndarray) -> np.ndarray:
        phase_index, within = divmod(round_index, self.phase_length)
        if within == 0:
            participating = self.informed & running[:, None]
            if self.max_phases_active is not None:
                alive = (
                    phase_index - self._informed_phase
                ) < self.max_phases_active
                participating &= alive & (self._informed_phase >= 0)
            counts = participating.sum(axis=1)
            if counts.any():
                # Concatenated trial-major draws land on participating nodes
                # in ascending id order — the serial assignment exactly.
                draws = self.rng_source.geometrics_for_counts(0.5, counts)
                values = np.minimum(draws, self.phase_length)
            else:
                values = np.empty(0, dtype=np.int64)
            self._frontier.begin_phase(participating, values)
        return self._frontier.transmitters(within, running)

    def observe(
        self,
        round_index: int,
        tx_flat: np.ndarray,
        outcome: BatchCollisionOutcome,
        running: np.ndarray,
    ) -> None:
        newly = self.mark_informed(outcome.receiver_flat, round_index)
        if newly.size:
            phase_index = round_index // self.phase_length
            # Newly informed nodes join from the *next* phase.
            self._informed_phase.reshape(-1)[newly] = phase_index + 1

    def _trial_frontier_closed(self, trial: int, informed: np.ndarray) -> bool:
        """True when trial ``trial`` has no informed-to-uninformed edge."""
        n = self.n
        batch = self.batch
        indptr = batch.out_indptr[trial * n : (trial + 1) * n + 1]
        targets = batch.out_indices[indptr[0] : indptr[-1]]
        row = informed[trial]
        src_informed = np.repeat(row, np.diff(indptr))
        return not (src_informed & ~row[targets - trial * n]).any()

    def quiescent(self, round_index: int) -> np.ndarray:
        # Mirrors the serial rule (same probe rounds, same stagnation
        # trigger) so dead trials retire in the same round under the serial
        # and batched engines and exact-mode streams stay bit-identical: a
        # trial is dead when its informed set is closed under out-edges, or
        # when ``max_phases_active`` silenced every informed node for good.
        # The O(edges) closure test runs at most once per distinct informed
        # count, and only at phase boundaries that made zero progress.
        if round_index % self.phase_length == 0:
            counts = self._members.counts()
            n = self.n
            incomplete = ~self._stuck & (counts < n)
            if incomplete.any():
                if self.max_phases_active is not None:
                    phase_index = round_index // self.phase_length
                    alive = (
                        self.informed
                        & (self._informed_phase >= 0)
                        & (
                            (phase_index - self._informed_phase)
                            < self.max_phases_active
                        )
                    )
                    self._stuck |= incomplete & ~alive.any(axis=1)
                candidates = np.flatnonzero(
                    incomplete
                    & ~self._stuck
                    & (counts == self._probe_counts)
                    & (counts != self._tested_counts)
                )
                if candidates.size:
                    informed = self.informed
                    for trial in candidates:
                        self._tested_counts[trial] = counts[trial]
                        if self._trial_frontier_closed(int(trial), informed):
                            self._stuck[trial] = True
            self._probe_counts = counts.copy()
        return self._stuck | self.completed()

    def _compact_broadcast(self, keep: np.ndarray) -> None:
        self._frontier.select_rows(keep)
        self._informed_phase = np.ascontiguousarray(self._informed_phase[keep])
        self._stuck = self._stuck[keep].copy()
        self._probe_counts = self._probe_counts[keep].copy()
        self._tested_counts = self._tested_counts[keep].copy()

    def suggested_max_rounds(self) -> int:
        log_n = max(1.0, math.log2(max(2, self.n)))
        return int(math.ceil(32 * (self.n + log_n) * log_n))

    def trial_metadata(self, trial: int) -> Dict[str, object]:
        return {
            "phase_length": self.phase_length,
            "max_phases_active": self.max_phases_active,
        }
