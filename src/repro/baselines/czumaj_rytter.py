"""Czumaj–Rytter selection-sequence broadcasting baselines [11].

Two baselines are derived from the same engine as Algorithm 3
(:class:`~repro.core.broadcast_general.KnownDiameterBroadcast`), differing
only in the scale distribution and the active-window length:

* :class:`KnownDiameterCR` — the known-diameter algorithm of [11] Section
  4.1, converted into a bounded-energy protocol exactly the way the paper
  describes at the start of Section 4 ("The only modification necessary is
  to stop nodes from transmitting after a certain number of rounds").  It
  uses the distribution ``α′`` (geometric tail, no per-scale floor), so a
  node must stay active for ``Θ(log² n · log(n/D))`` rounds to guarantee
  per-neighbour delivery w.h.p., which at ``Θ(1/log(n/D))`` expected
  transmissions per round costs ``Θ(log² n)`` transmissions per node — the
  quantity Theorem 4.1 improves to ``O(log² n / log(n/D))``.

* :class:`UniformSelectionBroadcast` — the unknown-diameter variant: scales
  are drawn uniformly from ``{1 .. log n}`` and nodes stay active for
  ``Θ(log² n)`` rounds.  Per-round energy is ``Θ(1/log n)`` so per-node
  energy is ``Θ(log n)``, but the *time* loses the ``D log(n/D)`` optimality
  (every hop costs ``Θ(log n)`` regardless of local density).  This is the
  stand-in for the general unknown-topology selection-sequence family
  ([3, 11]) in the comparison experiment E14.
"""

from __future__ import annotations

import math
from typing import Optional

from repro._util.logmath import lambda_of
from repro.core.broadcast_general import (
    BatchKnownDiameterBroadcast,
    KnownDiameterBroadcast,
)
from repro.core.distributions import CzumajRytterDistribution, UniformScaleDistribution

__all__ = [
    "KnownDiameterCR",
    "UniformSelectionBroadcast",
    "BatchKnownDiameterCR",
    "BatchUniformSelectionBroadcast",
]


def _install_cr_configuration(proto) -> None:
    """α′ distribution + log(n/D)-longer window, shared by the serial and
    batched CR classes so the two cannot drift apart."""
    lam = lambda_of(proto.n, proto.diameter)
    proto._distribution_override = CzumajRytterDistribution(proto.n, proto.diameter)
    proto.window_factor = max(1.0, lam)


def _uniform_selection_round_budget(proto) -> int:
    """Safety-net horizon with the Θ(log n)-per-hop slack the uniform-scale
    protocol pays, shared by the serial and batched classes."""
    log_n = max(1.0, math.log2(proto.n))
    return int(
        math.ceil(
            proto.round_budget_constant * (proto.diameter * log_n + log_n**2)
        )
    )


class KnownDiameterCR(KnownDiameterBroadcast):
    """Energy-bounded Czumaj–Rytter broadcast with known diameter.

    Identical round structure to Algorithm 3 but:

    * the public scales follow ``α′`` (no probability floor on large scales);
    * the active window is longer by a factor ``log(n/D)`` — the price of the
      missing floor, and the reason its per-node energy is ``Θ(log² n)``.
    """

    name = "czumaj-rytter-known-diameter"

    def __init__(
        self,
        diameter: int,
        *,
        source: int = 0,
        beta: float = 2.0,
        round_budget_constant: float = 24.0,
    ):
        super().__init__(
            diameter,
            source=source,
            beta=beta,
            round_budget_constant=round_budget_constant,
        )

    def _setup_broadcast(self) -> None:
        _install_cr_configuration(self)
        super()._setup_broadcast()


class UniformSelectionBroadcast(KnownDiameterBroadcast):
    """Selection-sequence broadcast with uniform scales (diameter unknown).

    The ``diameter`` argument is *not* given to the nodes — it is only used
    to size the safety-net round budget of the simulation; the distribution
    and the active window depend on ``n`` alone.
    """

    name = "uniform-selection-broadcast"

    def __init__(
        self,
        diameter: int,
        *,
        source: int = 0,
        beta: float = 2.0,
        round_budget_constant: float = 48.0,
    ):
        super().__init__(
            diameter,
            source=source,
            beta=beta,
            round_budget_constant=round_budget_constant,
        )

    def _setup_broadcast(self) -> None:
        self._distribution_override = UniformScaleDistribution(self.n)
        super()._setup_broadcast()
        self.round_budget = _uniform_selection_round_budget(self)
        self.run_metadata["round_budget"] = self.round_budget


class BatchKnownDiameterCR(BatchKnownDiameterBroadcast):
    """Batched :class:`KnownDiameterCR` (α′ scales, log(n/D)-longer window)."""

    name = KnownDiameterCR.name

    def __init__(
        self,
        diameter: int,
        *,
        source: int = 0,
        beta: float = 2.0,
        round_budget_constant: float = 24.0,
    ):
        super().__init__(
            diameter,
            source=source,
            beta=beta,
            round_budget_constant=round_budget_constant,
        )

    def _setup_broadcast(self) -> None:
        _install_cr_configuration(self)
        super()._setup_broadcast()


class BatchUniformSelectionBroadcast(BatchKnownDiameterBroadcast):
    """Batched :class:`UniformSelectionBroadcast` (uniform scales, unknown D)."""

    name = UniformSelectionBroadcast.name

    def __init__(
        self,
        diameter: int,
        *,
        source: int = 0,
        beta: float = 2.0,
        round_budget_constant: float = 48.0,
    ):
        super().__init__(
            diameter,
            source=source,
            beta=beta,
            round_budget_constant=round_budget_constant,
        )

    def _setup_broadcast(self) -> None:
        self._distribution_override = UniformScaleDistribution(self.n)
        super()._setup_broadcast()
        self.round_budget = _uniform_selection_round_budget(self)
