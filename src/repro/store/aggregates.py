"""Persisted running-aggregation state for resumable streaming sweeps.

The scenario runtime (:mod:`repro.scenarios.runtime`) aggregates per-trial
metrics on the fly instead of materialising traces.  When a sweep is backed
by a :class:`~repro.store.ResultStore`, the running
:class:`~repro.analysis.streaming.AccumulatorSet` of every sweep cell is
checkpointed here under the cell's aggregation digest (a content address
over the cell spec, the execution context and the metric set — the same
recipe as the per-trial store keys).  A resumed sweep reloads the state and
*continues* aggregating from the trials it has not consumed yet; the trials
already folded in are skipped entirely — their traces are never re-read.

Records are one JSON file per aggregation key under ``<root>/aggregates``
(atomic ``tmp`` + ``rename`` writes, so a crash mid-checkpoint leaves the
previous state intact).  Every file carries the
:data:`~repro.store.keys.ENGINE_VERSION` it was computed under and is
ignored on load under any other version.
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Dict, List, Optional

from repro.store.keys import ENGINE_VERSION

__all__ = ["AggregateStore"]


class AggregateStore:
    """Keyed JSON checkpoints of streaming-aggregation state."""

    def __init__(self, root) -> None:
        self.root = Path(root)

    def _path(self, key: str) -> Path:
        if not key or any(c not in "0123456789abcdef" for c in key):
            raise ValueError(f"aggregation key must be a hex digest, got {key!r}")
        return self.root / f"{key}.json"

    # ------------------------------------------------------------------ #
    def load(self, key: str) -> Optional[Dict[str, object]]:
        """The checkpointed state for ``key``, or ``None``.

        Corrupt files (torn writes from a crash without the atomic rename
        having happened — or manual tampering) and states written under a
        different engine version read as missing.
        """
        path = self._path(key)
        try:
            state = json.loads(path.read_text(encoding="utf-8"))
        except (OSError, json.JSONDecodeError):
            return None
        if not isinstance(state, dict):
            return None
        if state.get("engine_version") != ENGINE_VERSION:
            return None
        return state

    def save(self, key: str, state: Dict[str, object]) -> Path:
        """Atomically checkpoint ``state`` under ``key``."""
        path = self._path(key)
        self.root.mkdir(parents=True, exist_ok=True)
        body = dict(state)
        body["engine_version"] = ENGINE_VERSION
        tmp = path.with_suffix(".json.tmp")
        tmp.write_text(
            json.dumps(body, separators=(",", ":"), sort_keys=True),
            encoding="utf-8",
        )
        os.replace(tmp, path)
        return path

    def delete(self, key: str) -> bool:
        """Drop the state for ``key``; returns whether anything was removed."""
        try:
            self._path(key).unlink()
            return True
        except FileNotFoundError:
            return False

    # ------------------------------------------------------------------ #
    def keys(self) -> List[str]:
        """Every aggregation key with checkpointed state."""
        if not self.root.is_dir():
            return []
        return sorted(path.stem for path in self.root.glob("*.json"))

    def entries(self) -> List[Dict[str, object]]:
        """Every loadable checkpoint (current engine version only)."""
        out = []
        for key in self.keys():
            state = self.load(key)
            if state is not None:
                state = dict(state)
                state["aggregation_key"] = key
                out.append(state)
        return out

    def clear(self) -> int:
        """Delete every checkpoint; returns how many files were removed."""
        removed = 0
        if self.root.is_dir():
            for path in self.root.glob("*.json"):
                path.unlink()
                removed += 1
        return removed

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"AggregateStore({str(self.root)!r})"
