"""Content-addressed result store for sweep orchestration.

The store is the persistence half of the sweep service (the other half is
the job queue in :mod:`repro.jobs`): every per-trial simulation outcome is
written once under a canonical digest of *what produced it*, so re-running
any experiment — or extending its repetition count — only computes the
trials that are actually missing.

* :mod:`repro.store.keys` — canonical digests (:func:`trial_digest`) and the
  :data:`ENGINE_VERSION` constant that gates them;
* :mod:`repro.store.result_store` — :class:`ResultStore`, append-only JSONL
  shards under a cache directory;
* :mod:`repro.store.aggregates` — :class:`AggregateStore`, checkpointed
  streaming-aggregation state so resumed sweeps continue their running
  reduction without re-reading stored traces.

The experiment runner (:mod:`repro.experiments.runner`) owns the mapping
from jobs to digests and payloads; this package deliberately knows nothing
about jobs or traces — it stores opaque JSON payloads under opaque keys.
"""

from repro.store.aggregates import AggregateStore
from repro.store.keys import (
    ENGINE_VERSION,
    canonical_dumps,
    canonicalize,
    trial_digest,
)
from repro.store.result_store import ResultStore

__all__ = [
    "ENGINE_VERSION",
    "AggregateStore",
    "ResultStore",
    "canonical_dumps",
    "canonicalize",
    "trial_digest",
]
