"""Canonical cache keys for the content-addressed result store.

Every per-trial result is addressed by a SHA-256 digest of *what produced
it*: the job's declarative specs (graph family + params, protocol name +
params, seed, engine options) plus the execution context that affects the
result bits (randomness policy, state backend) and :data:`ENGINE_VERSION`.
Two configurations that would produce identical bits must digest to the same
key, so the payload is canonicalised before hashing:

* dict keys are sorted (insertion order never matters),
* numpy scalars collapse to the Python values they JSON-serialise as
  (``np.int64(5)`` and ``5`` digest identically, as do ``np.float64(p)``
  and ``float(p)``),
* tuples and numpy arrays become lists.

Conversely, anything that *can* change the result bits must be part of the
payload — most importantly :data:`ENGINE_VERSION`, which is baked into every
digest so results computed by an older engine can never be mistaken for
current ones.
"""

from __future__ import annotations

import hashlib
import json
from typing import Any, Mapping

import numpy as np

__all__ = ["ENGINE_VERSION", "canonicalize", "canonical_dumps", "trial_digest"]

#: Version tag of the simulation engine's *semantics*.  Bump this on any
#: change that alters what a (graph, protocol, seed) triple computes — rng
#: consumption order, collision resolution, protocol round logic, trace
#: contents — and every previously stored result silently becomes a cache
#: miss instead of a wrong answer.  Purely representational changes (state
#: backends, scheduling, sharding) are bit-identical by construction and do
#: not require a bump.
ENGINE_VERSION = "4.0"


def canonicalize(value: Any) -> Any:
    """Reduce ``value`` to canonical JSON-ready form (see module docstring)."""
    if isinstance(value, Mapping):
        return {str(k): canonicalize(value[k]) for k in sorted(value, key=str)}
    if isinstance(value, (list, tuple)):
        return [canonicalize(v) for v in value]
    if isinstance(value, np.ndarray):
        return [canonicalize(v) for v in value.tolist()]
    if isinstance(value, np.bool_):
        return bool(value)
    if isinstance(value, np.integer):
        return int(value)
    if isinstance(value, np.floating):
        return float(value)
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    raise TypeError(
        f"value of type {type(value).__name__} cannot be part of a cache key"
    )


def canonical_dumps(payload: Any) -> str:
    """Deterministic JSON text of ``payload`` (sorted keys, no whitespace)."""
    return json.dumps(
        canonicalize(payload), sort_keys=True, separators=(",", ":")
    )


def trial_digest(payload: Mapping[str, Any]) -> str:
    """The store key for one trial: SHA-256 over the canonical payload.

    :data:`ENGINE_VERSION` is merged into the payload before hashing, so a
    version bump invalidates every existing key at once.
    """
    body = dict(payload)
    body["engine_version"] = ENGINE_VERSION
    return hashlib.sha256(canonical_dumps(body).encode("utf-8")).hexdigest()
