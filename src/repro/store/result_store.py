"""Content-addressed result store: append-only JSONL shards under a cache dir.

The store maps a trial digest (:func:`repro.store.keys.trial_digest`) to the
serialised :class:`~repro.radio.trace.RunResultTrace` payload of that trial.
Records live in 256 append-only shard files (``results-XX.jsonl``, sharded by
the first digest byte) so that

* writes are a single appended line — a sweep killed mid-write corrupts at
  most the final line of one shard, which the loader skips, leaving every
  previously completed trial intact (this is what makes interrupted sweeps
  resumable);
* reads only parse the shards actually touched (an in-memory index per shard
  is built lazily on first access);
* the whole store remains greppable/debuggable with standard tools.

Only the parent process of a sweep writes (workers hand results back over the
queue), so single-writer append semantics hold in normal operation; each
record is emitted as one ``write(2)`` call on an ``O_APPEND`` descriptor, so
concurrent CLI invocations appending to the same shard do not interleave
mid-line.

Every record carries the :data:`~repro.store.keys.ENGINE_VERSION` it was
computed under.  Version-bumped records can never be *hit* (the version is
part of the digest), so they are dead weight — :meth:`ResultStore.prune`
rewrites the shards without them.
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Dict, Iterator, Optional, Tuple

from repro.store.keys import ENGINE_VERSION

__all__ = ["ResultStore"]


class ResultStore:
    """A content-addressed store of per-trial simulation results.

    Parameters
    ----------
    root:
        Directory holding the shard files (created on first use).

    Attributes
    ----------
    hits / misses:
        Running counters of :meth:`get` outcomes since construction (or the
        last :meth:`reset_counters`) — the CLI's cache summary and the
        warm-sweep assertions read these.
    """

    def __init__(self, root) -> None:
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        self._shards: Dict[str, Dict[str, dict]] = {}
        self.hits = 0
        self.misses = 0

    # ------------------------------------------------------------------ #
    # Lookup / insert
    # ------------------------------------------------------------------ #
    def get(self, key: str) -> Optional[dict]:
        """The stored payload for ``key``, or ``None`` (counts hit/miss)."""
        payload = self._index_for(key).get(key)
        if payload is None:
            self.misses += 1
            return None
        self.hits += 1
        return payload

    def __contains__(self, key: str) -> bool:
        return key in self._index_for(key)

    def put(self, key: str, payload: dict) -> bool:
        """Store ``payload`` under ``key``; returns False if already present.

        The store is content-addressed: a key collision means the same bits,
        so re-puts are dropped rather than appended twice.
        """
        index = self._index_for(key)
        if key in index:
            return False
        record = {
            "key": key,
            "engine_version": ENGINE_VERSION,
            "payload": payload,
        }
        line = json.dumps(record, separators=(",", ":"), sort_keys=True) + "\n"
        # One os.write on an O_APPEND fd: records larger than the stdio
        # buffer would otherwise be flushed in several write(2) calls, which
        # concurrent CLI invocations could interleave mid-line.
        fd = os.open(
            self._shard_path(key), os.O_WRONLY | os.O_CREAT | os.O_APPEND, 0o644
        )
        try:
            os.write(fd, line.encode("utf-8"))
        finally:
            os.close(fd)
        index[key] = payload
        return True

    # ------------------------------------------------------------------ #
    # Maintenance
    # ------------------------------------------------------------------ #
    def stats(self) -> dict:
        """Entry/file/byte counts over the whole store (loads every shard)."""
        entries = 0
        stale = 0
        total_bytes = 0
        files = 0
        for path, records in self._iter_shard_files():
            files += 1
            total_bytes += path.stat().st_size
            for record in records:
                entries += 1
                if record.get("engine_version") != ENGINE_VERSION:
                    stale += 1
        return {
            "path": str(self.root),
            "entries": entries,
            "stale_entries": stale,
            "shard_files": files,
            "bytes": total_bytes,
            "engine_version": ENGINE_VERSION,
        }

    def clear(self) -> int:
        """Delete every stored result; returns the number of entries removed."""
        removed = 0
        for path, records in self._iter_shard_files():
            removed += sum(1 for _ in records)
            path.unlink()
        self._shards.clear()
        return removed

    def prune(self) -> int:
        """Drop records from other engine versions; returns how many.

        Version-bumped records are unreachable (the version is part of the
        digest) — pruning rewrites each shard keeping only current-version
        records, first-write-wins per key.
        """
        removed = 0
        for path, records in self._iter_shard_files():
            keep = []
            seen = set()
            for record in records:
                key = record.get("key")
                if record.get("engine_version") != ENGINE_VERSION or key in seen:
                    removed += 1
                    continue
                seen.add(key)
                keep.append(record)
            if not keep:
                path.unlink()
                continue
            tmp = path.with_suffix(".jsonl.tmp")
            with open(tmp, "w", encoding="utf-8") as handle:
                for record in keep:
                    handle.write(
                        json.dumps(record, separators=(",", ":"), sort_keys=True)
                        + "\n"
                    )
            os.replace(tmp, path)
        self._shards.clear()
        return removed

    def reset_counters(self) -> None:
        """Zero the hit/miss counters."""
        self.hits = 0
        self.misses = 0

    # ------------------------------------------------------------------ #
    # Internals
    # ------------------------------------------------------------------ #
    @staticmethod
    def _prefix(key: str) -> str:
        return key[:2]

    def _shard_path(self, key: str) -> Path:
        return self.root / f"results-{self._prefix(key)}.jsonl"

    def _index_for(self, key: str) -> Dict[str, dict]:
        prefix = self._prefix(key)
        index = self._shards.get(prefix)
        if index is None:
            index = {}
            path = self.root / f"results-{prefix}.jsonl"
            for record in self._read_records(path):
                record_key = record.get("key")
                # First write wins: same key means same content, and a
                # version-mismatched record can never be asked for (its key
                # embeds the version it was written under).
                if record_key and record_key not in index:
                    index[record_key] = record.get("payload")
            self._shards[prefix] = index
        return index

    @staticmethod
    def _read_records(path: Path) -> Iterator[dict]:
        if not path.exists():
            return
        with open(path, "r", encoding="utf-8") as handle:
            for line in handle:
                line = line.strip()
                if not line:
                    continue
                try:
                    record = json.loads(line)
                except json.JSONDecodeError:
                    # A process killed mid-append leaves at most one torn
                    # final line; everything before it is still good.
                    continue
                if isinstance(record, dict):
                    yield record

    def _iter_shard_files(self) -> Iterator[Tuple[Path, list]]:
        for path in sorted(self.root.glob("results-??.jsonl")):
            yield path, list(self._read_records(path))

    def __repr__(self) -> str:
        return f"ResultStore({str(self.root)!r})"
