"""Content-addressed result store: append-only JSONL shards under a cache dir.

The store maps a trial digest (:func:`repro.store.keys.trial_digest`) to the
serialised :class:`~repro.radio.trace.RunResultTrace` payload of that trial.
Records live in 256 append-only shard files (``results-XX.jsonl``, sharded by
the first digest byte) so that

* writes are a single appended line — a sweep killed mid-write corrupts at
  most the final line of one shard, which the loader skips, leaving every
  previously completed trial intact (this is what makes interrupted sweeps
  resumable);
* reads only parse the shards actually touched (a per-shard index is built
  lazily on first access);
* the whole store remains greppable/debuggable with standard tools.

The in-memory index maps each key to its **file offset**, not to its parsed
payload: ``put`` and ``__contains__`` only need key presence, and a sweep
over huge shards must not pin every previously stored trace in process
memory just because it *touched* the shard.  ``get`` seeks to the recorded
offset and parses one line on demand; nothing read this way is retained.

Only the parent process of a sweep writes (workers hand results back over the
queue), so single-writer append semantics hold in normal operation; each
record is emitted as one ``write(2)`` call on an ``O_APPEND`` descriptor, so
concurrent CLI invocations appending to the same shard do not interleave
mid-line.

Every record carries the :data:`~repro.store.keys.ENGINE_VERSION` it was
computed under.  Version-bumped records can never be *hit* (the version is
part of the digest), so they are dead weight — :meth:`ResultStore.prune`
rewrites the shards without them.
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Dict, Iterator, Optional, Tuple

from repro import telemetry
from repro.store.keys import ENGINE_VERSION

__all__ = ["ResultStore"]


class ResultStore:
    """A content-addressed store of per-trial simulation results.

    Parameters
    ----------
    root:
        Directory holding the shard files (created on first use).

    Attributes
    ----------
    hits / misses / puts:
        Running counters of :meth:`get` outcomes and successful inserts
        since construction (or the last :meth:`reset_counters`) — the
        CLI's cache summary and the warm-sweep assertions read these.
        Mirrored into the telemetry metrics registry (``store.hits`` /
        ``store.misses`` / ``store.puts`` / ``store.pruned``) when
        telemetry is enabled.
    """

    def __init__(self, root) -> None:
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        #: Lazy per-shard index: first-digest-byte prefix -> {key -> offset}.
        self._shards: Dict[str, Dict[str, int]] = {}
        #: Cached read handles, one per shard actually read from — a warm
        #: 10⁵-trial streaming resume does one seek+readline per trial, not
        #: one open/close round trip.
        self._handles: Dict[str, object] = {}
        self._aggregates = None
        self.hits = 0
        self.misses = 0
        self.puts = 0

    @property
    def aggregates(self):
        """The co-located :class:`~repro.store.aggregates.AggregateStore`
        (streaming-aggregation checkpoints under ``<root>/aggregates``)."""
        if self._aggregates is None:
            from repro.store.aggregates import AggregateStore

            self._aggregates = AggregateStore(self.root / "aggregates")
        return self._aggregates

    # ------------------------------------------------------------------ #
    # Lookup / insert
    # ------------------------------------------------------------------ #
    def get(self, key: str) -> Optional[dict]:
        """The stored payload for ``key``, or ``None`` (counts hit/miss)."""
        payload = self._load_payload(key)
        if payload is None:
            self.misses += 1
            telemetry.counter_inc("store.misses")
            return None
        self.hits += 1
        telemetry.counter_inc("store.hits")
        return payload

    def __contains__(self, key: str) -> bool:
        return key in self._index_for(key)

    def put(self, key: str, payload: dict) -> bool:
        """Store ``payload`` under ``key``; returns False if already present.

        The store is content-addressed: a key collision means the same bits,
        so re-puts are dropped rather than appended twice.
        """
        index = self._index_for(key)
        if key in index:
            return False
        record = {
            "key": key,
            "engine_version": ENGINE_VERSION,
            "payload": payload,
        }
        line = json.dumps(record, separators=(",", ":"), sort_keys=True) + "\n"
        # One os.write on an O_APPEND fd: records larger than the stdio
        # buffer would otherwise be flushed in several write(2) calls, which
        # concurrent CLI invocations could interleave mid-line.
        fd = os.open(
            self._shard_path(key), os.O_WRONLY | os.O_CREAT | os.O_APPEND, 0o644
        )
        try:
            # Under single-writer operation the record lands exactly at the
            # pre-write end of the file, which is what the offset index
            # records; a concurrent writer can invalidate this, in which
            # case ``get`` falls back to a shard rescan (see _load_payload).
            offset = os.lseek(fd, 0, os.SEEK_END)
            os.write(fd, line.encode("utf-8"))
        finally:
            os.close(fd)
        index[key] = offset
        self.puts += 1
        telemetry.counter_inc("store.puts")
        return True

    # ------------------------------------------------------------------ #
    # Maintenance
    # ------------------------------------------------------------------ #
    def stats(self) -> dict:
        """Entry/file/byte counts over the whole store (scans every shard)."""
        entries = 0
        stale = 0
        total_bytes = 0
        files = 0
        for path, records in self._iter_shard_files():
            files += 1
            total_bytes += path.stat().st_size
            for record in records:
                entries += 1
                if record.get("engine_version") != ENGINE_VERSION:
                    stale += 1
        return {
            "path": str(self.root),
            "entries": entries,
            "stale_entries": stale,
            "shard_files": files,
            "bytes": total_bytes,
            "aggregate_checkpoints": len(self.aggregates.keys()),
            "engine_version": ENGINE_VERSION,
        }

    def clear(self) -> int:
        """Delete every stored result (and every aggregation checkpoint —
        their inputs are gone); returns the number of trial entries removed."""
        removed = 0
        for path, records in self._iter_shard_files():
            removed += sum(1 for _ in records)
            path.unlink()
        self._invalidate_all()
        self.aggregates.clear()
        return removed

    def prune(self) -> int:
        """Drop records from other engine versions; returns how many.

        Version-bumped records are unreachable (the version is part of the
        digest) — pruning rewrites each shard keeping only current-version
        records, first-write-wins per key.
        """
        removed = 0
        for path, records in self._iter_shard_files():
            keep = []
            seen = set()
            for record in records:
                key = record.get("key")
                if record.get("engine_version") != ENGINE_VERSION or key in seen:
                    removed += 1
                    continue
                seen.add(key)
                keep.append(record)
            if not keep:
                path.unlink()
                continue
            tmp = path.with_suffix(".jsonl.tmp")
            with open(tmp, "w", encoding="utf-8") as handle:
                for record in keep:
                    handle.write(
                        json.dumps(record, separators=(",", ":"), sort_keys=True)
                        + "\n"
                    )
            os.replace(tmp, path)
        self._invalidate_all()
        if removed:
            telemetry.counter_inc("store.pruned", removed)
        return removed

    def reset_counters(self) -> None:
        """Zero the hit/miss/put counters."""
        self.hits = 0
        self.misses = 0
        self.puts = 0

    # ------------------------------------------------------------------ #
    # Internals
    # ------------------------------------------------------------------ #
    @staticmethod
    def _prefix(key: str) -> str:
        return key[:2]

    def _shard_path(self, key: str) -> Path:
        return self.root / f"results-{self._prefix(key)}.jsonl"

    def _index_for(self, key: str) -> Dict[str, int]:
        """The shard's key -> file-offset map (built lazily, payload-free)."""
        prefix = self._prefix(key)
        index = self._shards.get(prefix)
        if index is None:
            index = {}
            path = self.root / f"results-{prefix}.jsonl"
            for offset, record in self._read_records(path, with_offsets=True):
                record_key = record.get("key")
                # First write wins: same key means same content, and a
                # version-mismatched record can never be asked for (its key
                # embeds the version it was written under).
                if record_key and record_key not in index:
                    index[record_key] = offset
            self._shards[prefix] = index
        return index

    def _load_payload(self, key: str) -> Optional[dict]:
        """Parse one record's payload at its indexed offset (lazy load)."""
        offset = self._index_for(key).get(key)
        if offset is None:
            return None
        record = self._record_at(key, offset)
        if record is not None and record.get("key") == key:
            return record.get("payload")
        # The offset lied (an external writer moved things around, or the
        # shard was rewritten behind our back): rebuild this shard's index
        # — and drop the cached handle, which may point at a replaced
        # inode — then try once more.
        self._invalidate_shard(self._prefix(key))
        offset = self._index_for(key).get(key)
        if offset is None:
            return None
        record = self._record_at(key, offset)
        if record is not None and record.get("key") == key:
            return record.get("payload")
        return None

    def _read_handle(self, key: str):
        prefix = self._prefix(key)
        handle = self._handles.get(prefix)
        if handle is None:
            handle = open(self._shard_path(key), "r", encoding="utf-8")
            self._handles[prefix] = handle
        return handle

    def _record_at(self, key: str, offset: int) -> Optional[dict]:
        try:
            handle = self._read_handle(key)
            handle.seek(offset)
            line = handle.readline().strip()
        except OSError:
            self._close_handle(self._prefix(key))
            return None
        if not line:
            return None
        try:
            record = json.loads(line)
        except json.JSONDecodeError:
            return None
        return record if isinstance(record, dict) else None

    def _close_handle(self, prefix: str) -> None:
        handle = self._handles.pop(prefix, None)
        if handle is not None:
            try:
                handle.close()
            except OSError:  # pragma: no cover - close best-effort
                pass

    def _invalidate_shard(self, prefix: str) -> None:
        """Forget the in-memory view of one shard (index + read handle)."""
        self._shards.pop(prefix, None)
        self._close_handle(prefix)

    def _invalidate_all(self) -> None:
        self._shards.clear()
        for prefix in list(self._handles):
            self._close_handle(prefix)

    @staticmethod
    def _read_records(
        path: Path, *, with_offsets: bool = False
    ) -> Iterator:
        if not path.exists():
            return
        with open(path, "rb") as handle:
            offset = 0
            for raw in handle:
                line_start = offset
                offset += len(raw)
                line = raw.strip()
                if not line:
                    continue
                try:
                    record = json.loads(line.decode("utf-8"))
                except (json.JSONDecodeError, UnicodeDecodeError):
                    # A process killed mid-append leaves at most one torn
                    # final line; everything before it is still good.
                    continue
                if isinstance(record, dict):
                    yield (line_start, record) if with_offsets else record

    def _iter_shard_files(self) -> Iterator[Tuple[Path, list]]:
        for path in sorted(self.root.glob("results-??.jsonl")):
            yield path, list(self._read_records(path))

    def __repr__(self) -> str:
        return f"ResultStore({str(self.root)!r})"
