"""Fold a telemetry JSONL trace into a per-layer time/throughput report.

Pure offline analysis: reads records written by
``repro.telemetry.spans`` (directly or relayed from workers), pairs
``span_begin``/``span_end`` by span id, accepts pre-aggregated
``span`` records, and produces

- a per-layer table (span count, total seconds, trials, trials/s),
- event counts by name,
- the final metrics-registry snapshot,
- an indented span tree (parent links survive the cross-process
  relay, so worker shards hang under the cell that spawned them).

Torn trailing lines (a crashed run mid-write) are skipped, matching
the result store's JSONL tolerance.
"""

from __future__ import annotations

import json
import os
from typing import Any, Dict, Iterable, List, Optional

__all__ = ["fold_trace", "load_trace", "render_summary", "summarize_trace"]


def load_trace(path: os.PathLike | str) -> List[Dict[str, Any]]:
    records: List[Dict[str, Any]] = []
    with open(os.fspath(path), "r", encoding="utf-8") as fh:
        for line in fh:
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError:
                continue  # torn line from an interrupted writer
            if isinstance(record, dict) and "type" in record:
                records.append(record)
    return records


def _span_trials(attrs: Dict[str, Any]) -> Optional[int]:
    trials = attrs.get("trials")
    return trials if isinstance(trials, int) else None


def fold_trace(records: Iterable[Dict[str, Any]]) -> Dict[str, Any]:
    """Aggregate raw records into the summary structure.

    Returns ``{"layers", "events", "spans", "roots", "metrics",
    "record_count"}`` where ``layers`` maps layer name →
    ``{"spans", "seconds", "trials"}`` (in first-seen order),
    ``spans`` maps span id → merged span info, and ``roots`` lists
    parentless span ids in trace order.
    """

    spans: Dict[str, Dict[str, Any]] = {}
    roots: List[str] = []
    events: Dict[str, int] = {}
    metrics: Dict[str, Any] = {}
    count = 0

    for record in records:
        count += 1
        kind = record.get("type")
        if kind in ("span_begin", "span"):
            span_id = record["span"]
            info = spans.setdefault(
                span_id,
                {
                    "id": span_id,
                    "layer": record.get("layer", "?"),
                    "name": record.get("name", "?"),
                    "parent": record.get("parent"),
                    "attrs": dict(record.get("attrs") or {}),
                    "seconds": None,
                    "children": [],
                },
            )
            if kind == "span":
                info["seconds"] = record.get("seconds")
            if info["parent"] is None:
                roots.append(span_id)
        elif kind == "span_end":
            span_id = record["span"]
            info = spans.get(span_id)
            if info is None:
                # end without begin (trace truncated at the front):
                # synthesise a root entry so the time still counts.
                info = {
                    "id": span_id,
                    "layer": record.get("layer", "?"),
                    "name": record.get("name", "?"),
                    "parent": None,
                    "attrs": {},
                    "seconds": None,
                    "children": [],
                }
                spans[span_id] = info
                roots.append(span_id)
            info["seconds"] = record.get("seconds")
            info["attrs"].update(record.get("attrs") or {})
        elif kind == "event":
            name = record.get("name", "?")
            events[name] = events.get(name, 0) + 1
        elif kind == "metrics":
            metrics = record.get("metrics") or {}

    for info in spans.values():
        parent = spans.get(info["parent"]) if info["parent"] else None
        if parent is not None:
            parent["children"].append(info["id"])

    layers: Dict[str, Dict[str, Any]] = {}
    for info in spans.values():
        layer = layers.setdefault(
            info["layer"], {"spans": 0, "seconds": 0.0, "trials": 0}
        )
        layer["spans"] += 1
        if info["seconds"] is not None:
            layer["seconds"] += info["seconds"]
        trials = _span_trials(info["attrs"])
        if trials is not None:
            layer["trials"] += trials

    return {
        "layers": layers,
        "events": events,
        "spans": spans,
        "roots": roots,
        "metrics": metrics,
        "record_count": count,
    }


def summarize_trace(path: os.PathLike | str) -> Dict[str, Any]:
    return fold_trace(load_trace(path))


def _format_seconds(seconds: Optional[float]) -> str:
    if seconds is None:
        return "-"
    if seconds >= 1:
        return f"{seconds:.2f}s"
    return f"{seconds * 1e3:.1f}ms"


def _render_tree(
    summary: Dict[str, Any], span_id: str, depth: int, lines: List[str]
) -> None:
    info = summary["spans"][span_id]
    attrs = info["attrs"]
    extras = []
    trials = _span_trials(attrs)
    if trials is not None:
        extras.append(f"trials={trials}")
    for key in ("kernel", "state_backend", "shard", "error"):
        if key in attrs:
            extras.append(f"{key}={attrs[key]}")
    suffix = f"  [{', '.join(extras)}]" if extras else ""
    lines.append(
        f"{'  ' * depth}{info['layer']}:{info['name']} "
        f"{_format_seconds(info['seconds'])}{suffix}"
    )
    for child in info["children"]:
        _render_tree(summary, child, depth + 1, lines)


def render_summary(summary: Dict[str, Any], *, tree: bool = True) -> str:
    """Render the folded summary as the ``telemetry summarize`` report."""

    lines: List[str] = []
    layers = summary["layers"]
    lines.append("per-layer totals:")
    if layers:
        width = max(len(name) for name in layers)
        for name, layer in layers.items():
            seconds = layer["seconds"]
            rate = ""
            if layer["trials"] and seconds > 0:
                rate = f"  ({layer['trials'] / seconds:,.0f} trials/s)"
            trials = f"  trials={layer['trials']}" if layer["trials"] else ""
            lines.append(
                f"  {name:<{width}}  spans={layer['spans']:<5d} "
                f"time={_format_seconds(seconds):>9}{trials}{rate}"
            )
    else:
        lines.append("  (no spans)")

    if summary["events"]:
        lines.append("events:")
        for name in sorted(summary["events"]):
            lines.append(f"  {name}: {summary['events'][name]}")

    counters = (summary.get("metrics") or {}).get("counters") or {}
    if counters:
        lines.append("counters:")
        for name in sorted(counters):
            value = counters[name]
            shown = int(value) if float(value).is_integer() else value
            lines.append(f"  {name}: {shown}")

    gauges = (summary.get("metrics") or {}).get("gauges") or {}
    if gauges:
        lines.append("gauges:")
        for name in sorted(gauges):
            lines.append(f"  {name}: {gauges[name]:g}")

    if tree and summary["roots"]:
        lines.append("span tree:")
        for root in summary["roots"]:
            _render_tree(summary, root, 1, lines)

    lines.append(f"records: {summary['record_count']}")
    return "\n".join(lines)
