"""Zero-dependency structured observability for the simulation stack.

Hierarchical spans (``sweep → cell → shard → round-phase``) with
monotonic timings on pluggable JSONL sinks, a metrics registry fed
from the hot layers, a cross-process relay for process-pool workers,
a live CLI progress reporter, and an offline trace summarizer.

Disabled by default; every instrumented call site degrades to one
global load + comparison (see ``benchmarks/test_bench_telemetry.py``
for the gate).  Enable with::

    from repro import telemetry
    telemetry.configure_telemetry(sink=telemetry.FileSink("trace.jsonl"))

or via the CLI flags ``--telemetry PATH`` / ``--progress``, and fold a
trace with ``repro telemetry summarize trace.jsonl``.

This package imports nothing from the rest of ``repro`` (stdlib only),
so even the dependency-free hot modules can emit into it.
"""

from repro.telemetry.metrics import MetricsRegistry
from repro.telemetry.progress import ProgressReporter
from repro.telemetry.spans import (
    FileSink,
    MemorySink,
    NullSink,
    Span,
    TelemetryPipeline,
    aggregate_span,
    capture,
    configure_telemetry,
    counter_inc,
    current_registry,
    enabled,
    event,
    gauge_set,
    get_pipeline,
    histogram_observe,
    ingest,
    span,
    telemetry_provenance,
    telemetry_shutdown,
)
from repro.telemetry.summarize import (
    fold_trace,
    load_trace,
    render_summary,
    summarize_trace,
)

__all__ = [
    "FileSink",
    "MemorySink",
    "MetricsRegistry",
    "NullSink",
    "ProgressReporter",
    "Span",
    "TelemetryPipeline",
    "aggregate_span",
    "capture",
    "configure_telemetry",
    "counter_inc",
    "current_registry",
    "enabled",
    "event",
    "fold_trace",
    "gauge_set",
    "get_pipeline",
    "histogram_observe",
    "ingest",
    "load_trace",
    "render_summary",
    "span",
    "summarize_trace",
    "telemetry_provenance",
    "telemetry_shutdown",
]
