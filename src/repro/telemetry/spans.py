"""Structured telemetry core: hierarchical spans, events, and sinks.

This module is the zero-dependency spine of ``repro.telemetry``.  It
deliberately imports nothing from the rest of ``repro`` (and nothing
beyond the stdlib) so that even the dependency-free hot layers
(``repro.radio.kernels``, ``repro.radio.nodesets``) can emit telemetry
without creating an import cycle.

Design constraints, in order:

1. **Near-zero cost when disabled.**  Telemetry is off by default.  The
   global pipeline is a single module-level reference; every public
   entry point starts with ``if _PIPELINE is None: return`` (or returns
   a shared no-op span singleton), so a disabled call is one global
   load, one comparison, and a return.  Hot loops additionally hoist
   ``enabled()`` into a local before iterating.
2. **Append-only JSONL.**  Records are flat JSON objects written one
   per line; a trace file can be tailed, grepped, or folded by
   ``repro.telemetry.summarize`` without loading it whole.
3. **Monotonic timing.**  All ``t`` fields are seconds relative to the
   pipeline's start on ``time.perf_counter()``; ``seconds`` fields are
   perf-counter deltas.  Wall-clock appears only once, in the
   ``config`` record, so traces are immune to clock steps.
4. **Cross-process relay.**  Process-pool workers cannot write to the
   parent's sink.  ``capture()`` installs a memory pipeline inside the
   worker, and the resulting payload travels back through the existing
   per-completion result channel; ``ingest()`` re-parents the records
   under the parent's current span and merges metric counters.  Record
   order within a worker is preserved; ``seq`` is reassigned on ingest
   so a single trace file has one total order (never compare ``t``
   across processes).

Record schema (one JSON object per line):

- ``{"type": "config", "t": 0.0, "seq": 0, "unix_time": ..., "pid": ...,
  "sinks": [...]}`` — first record of a pipeline.
- ``{"type": "span_begin", "span": id, "parent": id|null,
  "layer": ..., "name": ..., "t": ..., "seq": ..., "attrs": {...}}``
- ``{"type": "span_end", "span": id, "layer": ..., "name": ...,
  "t": ..., "seq": ..., "seconds": ..., "attrs": {...}}`` — ``attrs``
  holds annotations added during the span.
- ``{"type": "span", ...}`` — a pre-aggregated span (begin+end in one
  record, e.g. the engine's per-phase round totals), same fields as
  ``span_begin`` plus ``seconds``.
- ``{"type": "event", "name": ..., "parent": id|null, "t": ...,
  "seq": ..., "attrs": {...}}`` — one-shot occurrence.
- ``{"type": "metrics", "t": ..., "seq": ..., "metrics": {...}}`` —
  registry snapshot, emitted on shutdown.

The pipeline is process-global and intended for single-threaded use
(the simulation stack is single-threaded per process; parallelism is
process-based and relayed through ``capture``/``ingest``).
"""

from __future__ import annotations

import json
import os
import time
from typing import IO, Any, Dict, Iterable, List, Optional

__all__ = [
    "FileSink",
    "MemorySink",
    "NullSink",
    "Span",
    "TelemetryPipeline",
    "aggregate_span",
    "capture",
    "configure_telemetry",
    "counter_inc",
    "current_registry",
    "enabled",
    "event",
    "gauge_set",
    "get_pipeline",
    "histogram_observe",
    "ingest",
    "span",
    "telemetry_provenance",
    "telemetry_shutdown",
]

from repro.telemetry.metrics import MetricsRegistry


# ---------------------------------------------------------------------------
# Sinks
# ---------------------------------------------------------------------------


class NullSink:
    """Discards every record (useful for measuring pure pipeline cost)."""

    def emit(self, record: Dict[str, Any]) -> None:
        pass

    def close(self) -> None:
        pass

    def describe(self) -> str:
        return "null"


class MemorySink:
    """Keeps records in a list — the relay buffer and the test harness."""

    def __init__(self) -> None:
        self.records: List[Dict[str, Any]] = []

    def emit(self, record: Dict[str, Any]) -> None:
        self.records.append(record)

    def close(self) -> None:
        pass

    def describe(self) -> str:
        return "memory"


class FileSink:
    """Appends one JSON object per line to ``path``.

    The file is opened lazily on the first record and flushed per line,
    so a crashed run still leaves a readable (possibly torn-tailed)
    trace; the summarizer skips torn lines the same way the result
    store does.
    """

    def __init__(self, path: os.PathLike | str) -> None:
        self.path = os.fspath(path)
        self._fh: Optional[IO[str]] = None

    def emit(self, record: Dict[str, Any]) -> None:
        if self._fh is None:
            parent = os.path.dirname(self.path)
            if parent:
                os.makedirs(parent, exist_ok=True)
            self._fh = open(self.path, "a", encoding="utf-8")
        self._fh.write(json.dumps(record, separators=(",", ":"), default=str))
        self._fh.write("\n")
        self._fh.flush()

    def close(self) -> None:
        if self._fh is not None:
            self._fh.close()
            self._fh = None

    def describe(self) -> str:
        return f"file:{self.path}"


# ---------------------------------------------------------------------------
# Pipeline
# ---------------------------------------------------------------------------


class TelemetryPipeline:
    """Fan-out of telemetry records to sinks plus a metrics registry."""

    def __init__(self, sinks: Iterable[Any], *, id_prefix: str = "") -> None:
        self.sinks = list(sinks)
        self.registry = MetricsRegistry()
        self._id_prefix = id_prefix
        self._t0 = time.perf_counter()
        self._seq = 0
        self._ids = 0
        self._stack: List[str] = []
        self.emit(
            {
                "type": "config",
                "t": 0.0,
                "unix_time": time.time(),
                "pid": os.getpid(),
                "sinks": [s.describe() for s in self.sinks],
            }
        )

    def now(self) -> float:
        return time.perf_counter() - self._t0

    def next_id(self) -> str:
        self._ids += 1
        return f"{self._id_prefix}s{self._ids}"

    def current_span(self) -> Optional[str]:
        return self._stack[-1] if self._stack else None

    def emit(self, record: Dict[str, Any]) -> None:
        record["seq"] = self._seq
        self._seq += 1
        for sink in self.sinks:
            sink.emit(record)

    def close(self) -> None:
        self.emit(
            {
                "type": "metrics",
                "t": self.now(),
                "metrics": self.registry.snapshot(),
            }
        )
        for sink in self.sinks:
            sink.close()


_PIPELINE: Optional[TelemetryPipeline] = None


def enabled() -> bool:
    """True when a telemetry pipeline is installed.

    Hot loops should hoist this into a local once per run rather than
    calling per iteration.
    """

    return _PIPELINE is not None


def get_pipeline() -> Optional[TelemetryPipeline]:
    return _PIPELINE


def configure_telemetry(
    *,
    sink: Any = None,
    sinks: Iterable[Any] = (),
    enabled: bool = True,
) -> Optional[TelemetryPipeline]:
    """Install (or remove, with ``enabled=False``) the global pipeline.

    Replaces any previously installed pipeline after closing it.  With
    no sinks and ``enabled=True`` a :class:`MemorySink` is installed so
    ``configure_telemetry()`` alone gives an inspectable pipeline.
    """

    global _PIPELINE
    if _PIPELINE is not None:
        _PIPELINE.close()
        _PIPELINE = None
    if not enabled:
        return None
    all_sinks = ([sink] if sink is not None else []) + list(sinks)
    if not all_sinks:
        all_sinks = [MemorySink()]
    _PIPELINE = TelemetryPipeline(all_sinks)
    return _PIPELINE


def telemetry_shutdown() -> None:
    """Close and uninstall the global pipeline (no-op when disabled)."""

    global _PIPELINE
    if _PIPELINE is not None:
        _PIPELINE.close()
        _PIPELINE = None


def telemetry_provenance() -> Dict[str, Any]:
    """Provenance stamp for reports: active config, never digested."""

    if _PIPELINE is None:
        return {"enabled": False}
    return {
        "enabled": True,
        "sinks": [s.describe() for s in _PIPELINE.sinks],
    }


# ---------------------------------------------------------------------------
# Spans and events
# ---------------------------------------------------------------------------


class _NoopSpan:
    """Shared do-nothing span returned whenever telemetry is disabled."""

    __slots__ = ()

    def __enter__(self) -> "_NoopSpan":
        return self

    def __exit__(self, *exc: Any) -> bool:
        return False

    def annotate(self, **attrs: Any) -> None:
        pass


_NOOP_SPAN = _NoopSpan()


class Span:
    """A live span; use as a context manager.

    Emits ``span_begin`` on enter and ``span_end`` (with ``seconds``)
    on exit; nested spans parent to the innermost open span of the
    same pipeline.  ``annotate()`` adds attributes that appear on the
    ``span_end`` record (e.g. results known only at completion).
    """

    __slots__ = ("_pipeline", "_start", "id", "layer", "name", "end_attrs")

    def __init__(
        self,
        pipeline: TelemetryPipeline,
        layer: str,
        name: str,
        attrs: Dict[str, Any],
    ) -> None:
        self._pipeline = pipeline
        self.layer = layer
        self.name = name
        self.end_attrs: Dict[str, Any] = {}
        self.id = pipeline.next_id()
        self._start = pipeline.now()
        pipeline.emit(
            {
                "type": "span_begin",
                "span": self.id,
                "parent": pipeline.current_span(),
                "layer": layer,
                "name": name,
                "t": self._start,
                "attrs": attrs,
            }
        )
        pipeline._stack.append(self.id)

    def __enter__(self) -> "Span":
        return self

    def annotate(self, **attrs: Any) -> None:
        self.end_attrs.update(attrs)

    def __exit__(self, exc_type: Any, exc: Any, tb: Any) -> bool:
        pipeline = self._pipeline
        if pipeline._stack and pipeline._stack[-1] == self.id:
            pipeline._stack.pop()
        elif self.id in pipeline._stack:
            # Mis-nested exit (exception unwound through several spans):
            # drop everything above this span too.
            while pipeline._stack and pipeline._stack.pop() != self.id:
                pass
        end = pipeline.now()
        if exc_type is not None:
            self.end_attrs["error"] = exc_type.__name__
        pipeline.emit(
            {
                "type": "span_end",
                "span": self.id,
                "layer": self.layer,
                "name": self.name,
                "t": end,
                "seconds": end - self._start,
                "attrs": self.end_attrs,
            }
        )
        return False


def span(layer: str, name: str, **attrs: Any):
    """Open a span (context manager); no-op singleton when disabled."""

    pipeline = _PIPELINE
    if pipeline is None:
        return _NOOP_SPAN
    return Span(pipeline, layer, name, attrs)


def event(name: str, **attrs: Any) -> None:
    """Emit a one-shot event parented to the innermost open span."""

    pipeline = _PIPELINE
    if pipeline is None:
        return
    pipeline.emit(
        {
            "type": "event",
            "name": name,
            "parent": pipeline.current_span(),
            "t": pipeline.now(),
            "attrs": attrs,
        }
    )


def aggregate_span(layer: str, name: str, seconds: float, **attrs: Any) -> None:
    """Emit a pre-aggregated span (begin+end collapsed into one record).

    Used where per-occurrence spans would be too hot — e.g. the engine
    emits one ``round-phase`` span per phase per run, carrying the
    summed seconds across all rounds.
    """

    pipeline = _PIPELINE
    if pipeline is None:
        return
    pipeline.emit(
        {
            "type": "span",
            "span": pipeline.next_id(),
            "parent": pipeline.current_span(),
            "layer": layer,
            "name": name,
            "t": pipeline.now(),
            "seconds": seconds,
            "attrs": attrs,
        }
    )


# ---------------------------------------------------------------------------
# Metrics registry pass-throughs (gated on the global pipeline)
# ---------------------------------------------------------------------------


def current_registry() -> Optional[MetricsRegistry]:
    return _PIPELINE.registry if _PIPELINE is not None else None


def counter_inc(name: str, value: float = 1) -> None:
    pipeline = _PIPELINE
    if pipeline is not None:
        pipeline.registry.counter_inc(name, value)


def gauge_set(name: str, value: float) -> None:
    pipeline = _PIPELINE
    if pipeline is not None:
        pipeline.registry.gauge_set(name, value)


def histogram_observe(name: str, value: float) -> None:
    pipeline = _PIPELINE
    if pipeline is not None:
        pipeline.registry.histogram_observe(name, value)


# ---------------------------------------------------------------------------
# Cross-process relay
# ---------------------------------------------------------------------------


class capture:
    """Context manager that buffers telemetry for relay to a parent.

    Installs a fresh memory pipeline for the duration of the block —
    regardless of what the process inherited at fork/spawn time — so a
    worker's spans, events, and counters accumulate in one picklable
    payload.  ``payload()`` (valid after exit) returns
    ``{"label", "records", "metrics"}``; ship it through the normal
    result channel and feed it to :func:`ingest` in the parent.

    Span ids inside the buffer are prefixed with ``label`` so ids from
    different workers never collide in the merged trace.
    """

    def __init__(self, label: str) -> None:
        self.label = label
        self._sink = MemorySink()
        self._saved: Optional[TelemetryPipeline] = None
        self._pipeline: Optional[TelemetryPipeline] = None

    def __enter__(self) -> "capture":
        global _PIPELINE
        self._saved = _PIPELINE
        self._pipeline = TelemetryPipeline(
            [self._sink], id_prefix=f"{self.label}/"
        )
        _PIPELINE = self._pipeline
        return self

    def __exit__(self, *exc: Any) -> bool:
        global _PIPELINE
        _PIPELINE = self._saved
        self._saved = None
        return False

    def payload(self) -> Dict[str, Any]:
        assert self._pipeline is not None
        return {
            "label": self.label,
            "records": [
                r for r in self._sink.records if r["type"] != "config"
            ],
            "metrics": self._pipeline.registry.snapshot(),
        }


def ingest(payload: Optional[Dict[str, Any]], **tags: Any) -> None:
    """Merge a :func:`capture` payload into the live pipeline.

    Buffer-root records (``parent`` is null) are re-parented under the
    pipeline's current span; every record gains ``tags`` in its attrs
    (e.g. ``shard=<cell digest label>`` so events stay attributed to
    the right cell however shards interleave); metric counters merge
    additively.  Worker-relative ``t`` values are preserved under
    ``worker_t`` and replaced with the parent pipeline's ingest time so
    ``t`` stays monotonic within the trace file.
    """

    pipeline = _PIPELINE
    if pipeline is None or not payload:
        return
    parent = pipeline.current_span()
    now = pipeline.now()
    for record in payload.get("records", ()):
        record = dict(record)
        if record.get("parent") is None and record["type"] != "metrics":
            record["parent"] = parent
        if tags:
            attrs = dict(record.get("attrs") or {})
            attrs.update(tags)
            record["attrs"] = attrs
        if "t" in record:
            record["worker_t"] = record["t"]
            record["t"] = now
        pipeline.emit(record)
    metrics = payload.get("metrics")
    if metrics:
        pipeline.registry.merge(metrics)
