"""Live sweep progress: a telemetry sink that renders to a terminal.

``ProgressReporter`` is just another pipeline sink — it watches the
same record stream a :class:`~repro.telemetry.spans.FileSink` would
persist, so enabling progress costs nothing extra in the hot layers
and the two sinks can run side by side.

It reacts to:

- ``span_begin``/``span_end`` on the ``sweep`` and ``cell`` layers
  (run shape, per-cell completion lines),
- ``progress`` events emitted by the scenario runtime every few
  hundred trials (completed/total, cache-hit ratio, running mean and
  CI width of the primary metric from the streaming accumulators),

and renders either a single live ``\\r``-rewritten status line (TTY)
or plain per-cell completion lines (non-TTY, e.g. CI logs).  ETA is
extrapolated from the reporter's own monotonic clock and the trial
completion rate so far.
"""

from __future__ import annotations

import sys
import time
from typing import Any, Dict, Optional, TextIO

__all__ = ["ProgressReporter"]


class ProgressReporter:
    def __init__(
        self,
        stream: Optional[TextIO] = None,
        *,
        live: Optional[bool] = None,
    ) -> None:
        self.stream = stream if stream is not None else sys.stderr
        if live is None:
            isatty = getattr(self.stream, "isatty", None)
            live = bool(isatty()) if callable(isatty) else False
        self.live = live
        self._start: Optional[float] = None
        self._total_trials: Optional[int] = None
        self._sweep_span: Optional[str] = None
        self._cells_total: Optional[int] = None
        self._cells_done = 0
        self._cell_names: Dict[str, str] = {}
        self._line_open = False

    # -- sink protocol ----------------------------------------------------

    def emit(self, record: Dict[str, Any]) -> None:
        kind = record.get("type")
        if kind == "span_begin":
            self._on_begin(record)
        elif kind == "span_end":
            self._on_end(record)
        elif kind == "event" and record.get("name") == "progress":
            self._on_progress(record.get("attrs") or {})

    def close(self) -> None:
        self._finish_line()

    def describe(self) -> str:
        return "progress"

    # -- record handlers --------------------------------------------------

    def _on_begin(self, record: Dict[str, Any]) -> None:
        layer = record.get("layer")
        attrs = record.get("attrs") or {}
        if layer == "sweep":
            self._start = time.perf_counter()
            self._sweep_span = record.get("span")
            self._total_trials = attrs.get("trials")
            self._cells_total = attrs.get("cells")
            self._cells_done = 0
        elif layer == "cell":
            self._cell_names[record["span"]] = record.get("name", "cell")
            if self._start is None:
                # bare `run` (no sweep span): treat the cell as the run
                self._start = time.perf_counter()
                self._total_trials = attrs.get("trials")

    def _on_end(self, record: Dict[str, Any]) -> None:
        layer = record.get("layer")
        if layer == "cell":
            name = self._cell_names.pop(record["span"], record.get("name"))
            self._cells_done += 1
            attrs = record.get("attrs") or {}
            if not self.live:
                executed = attrs.get("executed")
                served = attrs.get("served")
                detail = ""
                if executed is not None or served is not None:
                    detail = f" (executed={executed}, cached={served})"
                self._println(
                    f"[progress] cell {name} done in "
                    f"{record.get('seconds', 0.0):.2f}s{detail}"
                )
        elif layer == "sweep" and record.get("span") == self._sweep_span:
            self._finish_line()
            self._println(
                f"[progress] sweep done: {self._cells_done} cell(s) in "
                f"{record.get('seconds', 0.0):.2f}s"
            )
            self._sweep_span = None
            self._start = None

    def _on_progress(self, attrs: Dict[str, Any]) -> None:
        completed = attrs.get("completed")
        total = attrs.get("total", self._total_trials)
        parts = []
        if completed is not None and total:
            parts.append(f"{completed}/{total} trials")
        elif completed is not None:
            parts.append(f"{completed} trials")
        ratio = attrs.get("cache_hit_ratio")
        if ratio is not None:
            parts.append(f"cache {ratio:.0%}")
        metric = attrs.get("metric")
        mean = attrs.get("mean")
        if metric is not None and mean is not None:
            ci = attrs.get("ci_width")
            ci_text = f" ±{ci / 2:.3g}" if ci is not None else ""
            parts.append(f"{metric}={mean:.4g}{ci_text}")
        eta = self._eta(completed, total)
        if eta is not None:
            parts.append(f"eta {eta:.0f}s")
        if not parts:
            return
        line = "[progress] " + "  ".join(parts)
        if self.live:
            self.stream.write("\r\x1b[2K" + line)
            self.stream.flush()
            self._line_open = True
        else:
            self._println(line)

    # -- helpers ----------------------------------------------------------

    def _eta(
        self, completed: Optional[int], total: Optional[int]
    ) -> Optional[float]:
        if (
            self._start is None
            or not completed
            or not total
            or completed >= total
        ):
            return None
        elapsed = time.perf_counter() - self._start
        if elapsed <= 0:
            return None
        return elapsed * (total - completed) / completed

    def _finish_line(self) -> None:
        if self._line_open:
            self.stream.write("\n")
            self.stream.flush()
            self._line_open = False

    def _println(self, text: str) -> None:
        self._finish_line()
        self.stream.write(text + "\n")
        self.stream.flush()
