"""Metrics registry: counters, gauges, and scalar histograms.

Values live in plain dicts keyed by metric name — no per-metric
objects, no locks (the simulation stack is single-threaded per
process; cross-process aggregation happens by snapshotting a worker's
registry and :meth:`MetricsRegistry.merge`-ing it in the parent, the
same channel the span relay uses).

Histograms are deliberately scalar summaries (count/total/min/max),
not bucketed: the streaming layer (``repro.analysis.streaming``)
already owns exact moments and quantile sketches for *metric values*;
telemetry histograms only need cheap shape for *operational* values
like per-run seconds.
"""

from __future__ import annotations

from typing import Any, Dict

__all__ = ["MetricsRegistry"]


class MetricsRegistry:
    """Create-on-first-touch registry of named counters/gauges/histograms."""

    __slots__ = ("counters", "gauges", "histograms")

    def __init__(self) -> None:
        self.counters: Dict[str, float] = {}
        self.gauges: Dict[str, float] = {}
        self.histograms: Dict[str, Dict[str, float]] = {}

    def counter_inc(self, name: str, value: float = 1) -> None:
        self.counters[name] = self.counters.get(name, 0) + value

    def gauge_set(self, name: str, value: float) -> None:
        self.gauges[name] = value

    def histogram_observe(self, name: str, value: float) -> None:
        h = self.histograms.get(name)
        if h is None:
            self.histograms[name] = {
                "count": 1,
                "total": value,
                "min": value,
                "max": value,
            }
            return
        h["count"] += 1
        h["total"] += value
        if value < h["min"]:
            h["min"] = value
        if value > h["max"]:
            h["max"] = value

    def counter(self, name: str) -> float:
        return self.counters.get(name, 0)

    def snapshot(self) -> Dict[str, Any]:
        """JSON-ready copy (histograms gain a derived ``mean``)."""

        return {
            "counters": dict(self.counters),
            "gauges": dict(self.gauges),
            "histograms": {
                name: {**h, "mean": h["total"] / h["count"]}
                for name, h in self.histograms.items()
            },
        }

    def merge(self, snapshot: Dict[str, Any]) -> None:
        """Fold another registry's snapshot in (counters add, gauges
        last-write-wins, histograms combine)."""

        for name, value in (snapshot.get("counters") or {}).items():
            self.counter_inc(name, value)
        for name, value in (snapshot.get("gauges") or {}).items():
            self.gauge_set(name, value)
        for name, other in (snapshot.get("histograms") or {}).items():
            h = self.histograms.get(name)
            if h is None:
                self.histograms[name] = {
                    "count": other["count"],
                    "total": other["total"],
                    "min": other["min"],
                    "max": other["max"],
                }
                continue
            h["count"] += other["count"]
            h["total"] += other["total"]
            h["min"] = min(h["min"], other["min"])
            h["max"] = max(h["max"], other["max"])

    def reset(self) -> None:
        self.counters.clear()
        self.gauges.clear()
        self.histograms.clear()
