"""Statistical analysis of experiment results.

* :mod:`repro.analysis.statistics` — summaries of repeated measurements
  (mean, confidence intervals, success probabilities with Wilson bounds).
* :mod:`repro.analysis.scaling` — least-squares fits of measured quantities
  against the asymptotic forms the theorems claim (``log n``, ``log² n``,
  ``d log n``, ``log n / p``, …) and simple model selection, used to check
  the *shape* of each bound.
* :mod:`repro.analysis.concentration` — empirical verification of the
  phase-growth lemmas of Section 2 (Lemmas 2.3–2.5).
* :mod:`repro.analysis.streaming` — single-pass bounded-memory aggregation
  (exact running moments, min/max, quantile sketch) consumed by the
  scenario sweeps so 10⁵⁺-trial studies never materialise their traces.
* :mod:`repro.analysis.tables` — fixed-width text tables shared by the
  experiment harness, the CLI and EXPERIMENTS.md.
"""

from repro.analysis.concentration import PhaseGrowthCheck, check_phase1_growth
from repro.analysis.scaling import ScalingFit, candidate_models, fit_model, fit_scaling
from repro.analysis.statistics import (
    SummaryStatistics,
    success_probability,
    summarize,
)
from repro.analysis.streaming import (
    AccumulatorSet,
    MetricAccumulator,
    QuantileSketch,
)
from repro.analysis.tables import format_table

__all__ = [
    "SummaryStatistics",
    "summarize",
    "success_probability",
    "MetricAccumulator",
    "AccumulatorSet",
    "QuantileSketch",
    "ScalingFit",
    "fit_model",
    "fit_scaling",
    "candidate_models",
    "PhaseGrowthCheck",
    "check_phase1_growth",
    "format_table",
]
