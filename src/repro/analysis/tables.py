"""Fixed-width text tables.

The experiment harness, the CLI and EXPERIMENTS.md all render results as
plain monospaced tables; keeping the formatter here keeps them identical.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence

__all__ = ["format_table", "format_value"]


def format_value(value, *, float_format: str = "{:.4g}") -> str:
    """Render a cell: floats compactly, None as '-', everything else via str()."""
    if value is None:
        return "-"
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, float):
        return float_format.format(value)
    return str(value)


def format_table(
    columns: Sequence[str],
    rows: Iterable[Sequence],
    *,
    title: Optional[str] = None,
    float_format: str = "{:.4g}",
) -> str:
    """Render ``rows`` under ``columns`` as an aligned text table."""
    columns = [str(c) for c in columns]
    rendered_rows: List[List[str]] = []
    for row in rows:
        cells = [format_value(cell, float_format=float_format) for cell in row]
        if len(cells) != len(columns):
            raise ValueError(
                f"row has {len(cells)} cells but there are {len(columns)} columns: {cells}"
            )
        rendered_rows.append(cells)

    widths = [len(c) for c in columns]
    for cells in rendered_rows:
        for i, cell in enumerate(cells):
            widths[i] = max(widths[i], len(cell))

    def render_line(cells: Sequence[str]) -> str:
        return "  ".join(cell.ljust(widths[i]) for i, cell in enumerate(cells)).rstrip()

    lines = []
    if title:
        lines.append(title)
    header = render_line(columns)
    lines.append(header)
    lines.append("-" * len(header))
    lines.extend(render_line(cells) for cells in rendered_rows)
    return "\n".join(lines)
