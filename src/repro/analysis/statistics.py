"""Summaries of repeated stochastic measurements."""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Sequence, Tuple

import numpy as np

__all__ = ["SummaryStatistics", "summarize", "success_probability", "wilson_interval"]


@dataclass(frozen=True)
class SummaryStatistics:
    """Mean/median/spread of a sample of repeated measurements."""

    count: int
    mean: float
    std: float
    minimum: float
    maximum: float
    median: float
    ci_low: float
    ci_high: float

    def as_dict(self) -> Dict[str, float]:
        return {
            "count": self.count,
            "mean": self.mean,
            "std": self.std,
            "min": self.minimum,
            "max": self.maximum,
            "median": self.median,
            "ci_low": self.ci_low,
            "ci_high": self.ci_high,
        }

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"{self.mean:.4g} ± {self.std:.2g} (n={self.count})"


def summarize(values: Sequence[float], *, confidence: float = 0.95) -> SummaryStatistics:
    """Summarise ``values`` with a normal-approximation confidence interval.

    Raises ``ValueError`` on an empty sample — callers must not silently
    aggregate nothing.
    """
    arr = np.asarray(list(values), dtype=float)
    if arr.size == 0:
        raise ValueError("cannot summarise an empty sample")
    if not np.all(np.isfinite(arr)):
        raise ValueError("sample contains non-finite values")
    if not 0.0 < confidence < 1.0:
        raise ValueError(f"confidence must lie in (0, 1), got {confidence}")
    mean = float(arr.mean())
    std = float(arr.std(ddof=1)) if arr.size > 1 else 0.0
    z = _normal_quantile(0.5 + confidence / 2.0)
    half_width = z * std / math.sqrt(arr.size) if arr.size > 1 else 0.0
    return SummaryStatistics(
        count=int(arr.size),
        mean=mean,
        std=std,
        minimum=float(arr.min()),
        maximum=float(arr.max()),
        median=float(np.median(arr)),
        ci_low=mean - half_width,
        ci_high=mean + half_width,
    )


def success_probability(successes: int, trials: int) -> float:
    """Plain success-rate estimate ``successes / trials``."""
    if trials <= 0:
        raise ValueError(f"trials must be positive, got {trials}")
    if not 0 <= successes <= trials:
        raise ValueError(
            f"successes must lie in [0, trials={trials}], got {successes}"
        )
    return successes / trials


def wilson_interval(
    successes: int, trials: int, *, confidence: float = 0.95
) -> Tuple[float, float]:
    """Wilson score interval for a binomial proportion.

    Preferred over the normal approximation because success probabilities in
    the w.h.p. experiments sit very close to 1.
    """
    rate = success_probability(successes, trials)
    if not 0.0 < confidence < 1.0:
        raise ValueError(f"confidence must lie in (0, 1), got {confidence}")
    z = _normal_quantile(0.5 + confidence / 2.0)
    denom = 1.0 + z**2 / trials
    centre = (rate + z**2 / (2 * trials)) / denom
    half = (
        z
        * math.sqrt(rate * (1.0 - rate) / trials + z**2 / (4.0 * trials**2))
        / denom
    )
    return (max(0.0, centre - half), min(1.0, centre + half))


def _normal_quantile(q: float) -> float:
    """Standard-normal quantile via the Acklam/Beasley–Springer approximation."""
    if not 0.0 < q < 1.0:
        raise ValueError(f"quantile argument must lie in (0, 1), got {q}")
    # Coefficients for the rational approximation.
    a = [-3.969683028665376e01, 2.209460984245205e02, -2.759285104469687e02,
         1.383577518672690e02, -3.066479806614716e01, 2.506628277459239e00]
    b = [-5.447609879822406e01, 1.615858368580409e02, -1.556989798598866e02,
         6.680131188771972e01, -1.328068155288572e01]
    c = [-7.784894002430293e-03, -3.223964580411365e-01, -2.400758277161838e00,
         -2.549732539343734e00, 4.374664141464968e00, 2.938163982698783e00]
    d = [7.784695709041462e-03, 3.224671290700398e-01, 2.445134137142996e00,
         3.754408661907416e00]
    p_low = 0.02425
    if q < p_low:
        u = math.sqrt(-2.0 * math.log(q))
        return (((((c[0] * u + c[1]) * u + c[2]) * u + c[3]) * u + c[4]) * u + c[5]) / (
            (((d[0] * u + d[1]) * u + d[2]) * u + d[3]) * u + 1.0
        )
    if q > 1.0 - p_low:
        u = math.sqrt(-2.0 * math.log(1.0 - q))
        return -(
            ((((c[0] * u + c[1]) * u + c[2]) * u + c[3]) * u + c[4]) * u + c[5]
        ) / ((((d[0] * u + d[1]) * u + d[2]) * u + d[3]) * u + 1.0)
    u = q - 0.5
    t = u * u
    return (
        (((((a[0] * t + a[1]) * t + a[2]) * t + a[3]) * t + a[4]) * t + a[5])
        * u
        / (((((b[0] * t + b[1]) * t + b[2]) * t + b[3]) * t + b[4]) * t + 1.0)
    )
