"""Empirical checks of the Section-2 phase-growth lemmas.

Algorithm 1's analysis rests on three concentration statements:

* **Lemma 2.3** — while ``|U_t| < 1/p``, the active set grows by a factor in
  ``(d/16, 2d)`` each Phase-1 round (and tightly ``(1 ± o(1)) d`` in the
  mid-range);
* **Lemma 2.4** — after Phase 1, ``c₁ d^T ≤ |U_{T+1}| ≤ c₂ d^T``;
* **Lemma 2.5** — after Phase 2, ``|U_{T+2}| ≥ c·n`` (sparse regime).

:func:`check_phase1_growth` extracts the per-round growth factors from an
Algorithm-1 run trace (the protocol records ``|U_t|`` each round) and reports
how they compare with ``d`` — experiment E2 aggregates these over many seeds.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence

import numpy as np

__all__ = ["PhaseGrowthCheck", "check_phase1_growth"]


@dataclass(frozen=True)
class PhaseGrowthCheck:
    """Per-run summary of Phase-1 growth behaviour."""

    growth_factors: np.ndarray
    normalized_growth: np.ndarray
    final_phase1_active: int
    predicted_phase1_active: float
    phase1_ratio: float

    def as_dict(self) -> Dict[str, object]:
        return {
            "growth_factors": self.growth_factors.tolist(),
            "normalized_growth": self.normalized_growth.tolist(),
            "final_phase1_active": self.final_phase1_active,
            "predicted_phase1_active": self.predicted_phase1_active,
            "phase1_ratio": self.phase1_ratio,
        }


def check_phase1_growth(
    active_history: Sequence[int], T: int, d: float
) -> PhaseGrowthCheck:
    """Analyse the ``|U_t|`` series of one Algorithm-1 run.

    Parameters
    ----------
    active_history:
        ``|U_t|`` at the start of each round (the protocol's
        ``active_history``); entry 0 is round 1 of Phase 1 (``|U_1| = 1``).
    T:
        Number of Phase-1 rounds.
    d:
        Expected degree ``n p``.

    Returns
    -------
    PhaseGrowthCheck
        ``growth_factors[i] = |U_{i+2}| / |U_{i+1}|`` for the Phase-1 rounds,
        ``normalized_growth`` divides them by ``d``, and ``phase1_ratio`` is
        ``|U_{T+1}| / d^T`` (Lemma 2.4 predicts a constant).
    """
    history = np.asarray(list(active_history), dtype=float)
    if history.size == 0:
        raise ValueError("active_history is empty")
    if T < 1:
        raise ValueError(f"T must be >= 1, got {T}")
    if d <= 0:
        raise ValueError(f"d must be positive, got {d}")

    # Growth factors across Phase-1 rounds (need |U_1| .. |U_{T+1}|).
    upper = min(T + 1, history.size)
    phase1 = history[:upper]
    with np.errstate(divide="ignore", invalid="ignore"):
        factors = phase1[1:] / np.where(phase1[:-1] > 0, phase1[:-1], np.nan)
    factors = factors[np.isfinite(factors)]

    final_active = int(phase1[-1]) if phase1.size else 0
    predicted = float(d**T)
    ratio = final_active / predicted if predicted > 0 else float("nan")
    return PhaseGrowthCheck(
        growth_factors=factors,
        normalized_growth=factors / d,
        final_phase1_active=final_active,
        predicted_phase1_active=predicted,
        phase1_ratio=ratio,
    )
