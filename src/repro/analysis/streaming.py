"""Streaming (single-pass, bounded-memory) aggregation of per-trial metrics.

The experiment sweeps used to materialise every
:class:`~repro.radio.trace.RunResultTrace` of a repetition sweep and reduce
the list at the end (``aggregate_runs``).  That caps concentration studies:
a 10⁵-trial tail estimation would hold 10⁵ traces in memory for the sake of
a handful of scalars.  This module provides the replacement reduction — a
:class:`MetricAccumulator` that consumes one scalar observation at a time
and keeps only

* **exact running moments** — count, sum and sum of squares held as
  Shewchuk-style non-overlapping partials, so the reduced sum is the
  *correctly rounded* true sum.  Feeding the same multiset of values in any
  order (shards complete out of order under process fan-out) yields
  bit-identical results, which is what lets the streaming path promise
  equality with the materialised one;
* **min / max**;
* a **bounded-memory quantile sketch** (:class:`QuantileSketch`): exact
  order statistics while the sample fits its capacity, a deterministic
  Ben-Haim/Tom-Tov-style centroid histogram beyond it.

Accumulator state is plain JSON (:meth:`MetricAccumulator.state_dict` /
:meth:`MetricAccumulator.from_state`) so a resumable sweep can checkpoint
its running aggregation next to the result store and *continue* it on
resume instead of re-reading every stored trace.
"""

from __future__ import annotations

import bisect
import math
from typing import Dict, Iterable, List, Optional, Sequence

import numpy as np

from repro.analysis.statistics import SummaryStatistics, _normal_quantile
from repro.radio.kernels import partials_extend

__all__ = [
    "QuantileSketch",
    "MetricAccumulator",
    "AccumulatorSet",
]


def _partials_add(partials: List[float], x: float) -> None:
    """Add ``x`` into a Shewchuk partial-sum list (exact, in place).

    The invariant: ``partials`` is a list of non-overlapping floats whose
    mathematical sum is exactly the sum of everything added so far.
    """
    i = 0
    for y in partials:
        if abs(x) < abs(y):
            x, y = y, x
        hi = x + y
        lo = y - (hi - x)
        if lo:
            partials[i] = lo
            i += 1
        x = hi
    partials[i:] = [x]


def _partials_value(partials: Sequence[float]) -> float:
    """Correctly rounded float value of a partial-sum list."""
    return math.fsum(partials)


class QuantileSketch:
    """Deterministic bounded-memory quantile estimate.

    Equal values share one weighted centroid, so the sketch is **lossless**
    — and :meth:`quantile` returns the *exact* NumPy-``linear`` order
    statistic (the median equals ``np.median`` bit for bit) — as long as
    the number of *distinct* values stays within ``capacity``.  That covers
    both small samples and arbitrarily large sweeps of discrete metrics
    (completion rounds, transmission counts), the bulk of what the
    experiments measure.

    Only once distinct values exceed the capacity does it degrade to a
    Ben-Haim/Tom-Tov streaming histogram: the two closest adjacent
    centroids merge into their weighted mean, and quantiles are read by
    piecewise-linear interpolation over cumulative weights.  Both regimes
    are deterministic functions of the insertion sequence (no randomness);
    only the lossy regime is order-sensitive, which the equivalence tests
    treat as a tolerance, not an identity.
    """

    __slots__ = ("capacity", "_values", "_weights", "count", "_lossless")

    def __init__(self, capacity: int = 1024) -> None:
        if capacity < 2:
            raise ValueError(f"sketch capacity must be >= 2, got {capacity}")
        self.capacity = int(capacity)
        self._values: List[float] = []
        self._weights: List[float] = []
        self.count = 0
        self._lossless = True

    # ------------------------------------------------------------------ #
    def add(self, value: float, weight: float = 1.0) -> None:
        index = bisect.bisect_left(self._values, value)
        if index < len(self._values) and self._values[index] == value:
            # Exact duplicate: bump the centroid's weight — no growth, no
            # compaction, no information loss.
            self._weights[index] += weight
        else:
            self._values.insert(index, value)
            self._weights.insert(index, weight)
            if len(self._values) > self.capacity:
                self._compact()
        self.count += weight

    def extend(self, values: np.ndarray) -> None:
        """Add a chunk of unit-weight values in one sorted merge.

        While the sketch is lossless and the merged distinct-value set still
        fits the capacity, the result is np-bitwise identical to adding the
        values one at a time (sequential adds would never compact either, so
        both paths end at the same sorted centroid list; weight bumps are
        exact integer float additions).  Otherwise — the sketch is already
        lossy, or the merge would overflow capacity — it falls back to
        per-value :meth:`add` calls, preserving the order-sensitive
        compaction semantics exactly.
        """
        values = np.ascontiguousarray(values, dtype=np.float64).ravel()
        if values.size == 0:
            return
        unique, counts = np.unique(values, return_counts=True)
        fits = self._lossless and (
            len(self._values) == 0 or unique.size <= self.capacity
        )
        if fits and len(self._values):
            existing = np.asarray(self._values, dtype=np.float64)
            positions = np.searchsorted(existing, unique)
            clipped = np.minimum(positions, existing.size - 1)
            duplicate = existing[clipped] == unique
            new_count = int(unique.size - duplicate.sum())
            if len(self._values) + new_count > self.capacity:
                fits = False
            else:
                weights = np.asarray(self._weights, dtype=np.float64)
                if duplicate.any():
                    weights[positions[duplicate]] += counts[duplicate]
                if new_count:
                    insert_at = positions[~duplicate]
                    existing = np.insert(existing, insert_at, unique[~duplicate])
                    weights = np.insert(
                        weights, insert_at, counts[~duplicate].astype(np.float64)
                    )
                self._values = existing.tolist()
                self._weights = weights.tolist()
                self.count += float(values.size)
                return
        if fits:
            if unique.size > self.capacity:
                fits = False
            else:
                self._values = unique.tolist()
                self._weights = counts.astype(np.float64).tolist()
                self.count += float(values.size)
                return
        for value in values.tolist():
            self.add(value)

    def _compact(self) -> None:
        """Merge the closest adjacent centroid pair (first such pair wins)."""
        self._lossless = False
        values, weights = self._values, self._weights
        best = 0
        best_gap = math.inf
        for i in range(len(values) - 1):
            gap = values[i + 1] - values[i]
            if gap < best_gap:
                best_gap = gap
                best = i
        w = weights[best] + weights[best + 1]
        merged = (
            values[best] * weights[best] + values[best + 1] * weights[best + 1]
        ) / w
        values[best : best + 2] = [merged]
        weights[best : best + 2] = [w]

    # ------------------------------------------------------------------ #
    def quantile(self, q: float) -> float:
        """The ``q``-quantile of everything added (``0 <= q <= 1``)."""
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile must lie in [0, 1], got {q}")
        if not self._values:
            raise ValueError("cannot query an empty sketch")
        values, weights = self._values, self._weights
        if self._lossless:
            # NumPy 'linear' interpolation over the (weight-expanded) sorted
            # sample, including NumPy's two-sided lerp — so e.g. the median
            # is np.median bit for bit while the sketch is lossless.
            total = int(round(self.count))
            position = q * (total - 1)
            low = int(math.floor(position))
            high = min(low + 1, total - 1)
            frac = position - low
            a = self._value_at_rank(low)
            b = self._value_at_rank(high)
            diff = b - a
            if frac >= 0.5:
                return b - diff * (1.0 - frac)
            return a + diff * frac
        # Centroid regime: centroid i sits at cumulative weight
        # (w_i / 2 + sum of earlier weights); interpolate linearly between
        # neighbouring centroids.
        total = math.fsum(weights)
        target = q * total
        cumulative = 0.0
        previous_value = values[0]
        previous_centre = weights[0] / 2.0
        if target <= previous_centre:
            return values[0]
        for i in range(len(values)):
            centre = cumulative + weights[i] / 2.0
            if target <= centre:
                span = centre - previous_centre
                frac = (target - previous_centre) / span if span > 0 else 0.0
                return previous_value * (1.0 - frac) + values[i] * frac
            previous_value = values[i]
            previous_centre = centre
            cumulative += weights[i]
        return values[-1]

    def median(self) -> float:
        return self.quantile(0.5)

    def _value_at_rank(self, rank: int) -> float:
        """The ``rank``-th smallest sample (0-based) of the weighted multiset."""
        cumulative = 0.0
        for value, weight in zip(self._values, self._weights):
            cumulative += weight
            if rank < cumulative:
                return value
        return self._values[-1]

    @property
    def is_exact(self) -> bool:
        """True while no lossy compaction has happened (quantiles exact)."""
        return self._lossless

    # ------------------------------------------------------------------ #
    def merge(self, other: "QuantileSketch") -> None:
        """Fold ``other``'s centroids into this sketch."""
        if not other._lossless:
            self._lossless = False
        for value, weight in zip(other._values, other._weights):
            self.add(value, weight)

    def state_dict(self) -> Dict[str, object]:
        return {
            "capacity": self.capacity,
            "values": list(self._values),
            "weights": list(self._weights),
            "count": self.count,
            "lossless": self._lossless,
        }

    @classmethod
    def from_state(cls, state: Dict[str, object]) -> "QuantileSketch":
        sketch = cls(capacity=int(state["capacity"]))
        sketch._values = [float(v) for v in state["values"]]
        sketch._weights = [float(w) for w in state["weights"]]
        sketch.count = float(state.get("count", math.fsum(sketch._weights)))
        sketch._lossless = bool(state.get("lossless", True))
        return sketch

    def __len__(self) -> int:
        return len(self._values)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"QuantileSketch(centroids={len(self._values)}, count={self.count})"


class MetricAccumulator:
    """Single-pass reduction of one scalar metric across a sweep's trials.

    Feed observations with :meth:`add`; read the reduced
    :class:`~repro.analysis.statistics.SummaryStatistics` with
    :meth:`summary`.  The running moments are held as exact partial sums, so
    the mean (and every quantity derived from count/sum/sum-of-squares) is
    independent of the order trials stream in — a sweep aggregated shard by
    shard as completions arrive produces bit-identical moments to one
    aggregated from a materialised list.
    """

    __slots__ = ("count", "_sum", "_sumsq", "minimum", "maximum", "sketch")

    def __init__(self, *, sketch_capacity: int = 1024) -> None:
        self.count = 0
        self._sum: List[float] = []
        self._sumsq: List[float] = []
        self.minimum = math.inf
        self.maximum = -math.inf
        self.sketch = QuantileSketch(capacity=sketch_capacity)

    # ------------------------------------------------------------------ #
    def add(self, value: float) -> None:
        value = float(value)
        if not math.isfinite(value):
            raise ValueError(f"cannot accumulate non-finite value {value!r}")
        self.count += 1
        _partials_add(self._sum, value)
        _partials_add(self._sumsq, value * value)
        if value < self.minimum:
            self.minimum = value
        if value > self.maximum:
            self.maximum = value
        self.sketch.add(value)

    def add_many(
        self,
        values: Iterable[float],
        weights: Optional[Iterable[float]] = None,
    ) -> None:
        """Accumulate a chunk of observations in vectorised passes.

        The unweighted path is bit-identical to calling :meth:`add` per
        value: moments are folded through the chunked Shewchuk kernel
        (:func:`repro.radio.kernels.partials_extend`), min/max reduce over
        the array, and the sketch takes the chunk via
        :meth:`QuantileSketch.extend`.  Unlike :meth:`add`, validation is
        all-or-nothing: a non-finite value raises before anything is
        accumulated.

        ``weights`` (optional, positive and finite) treats each value as a
        weighted observation: the count grows by each weight, the moments by
        ``w·v`` / ``w·v²`` (each product rounded once), and the sketch takes
        per-value weighted adds.  Weighted ingest is a convenience for
        pre-reduced inputs; only the unweighted path carries the bit-equality
        guarantee.
        """
        if not isinstance(values, (np.ndarray, list, tuple)):
            values = list(values)
        values = np.ascontiguousarray(values, dtype=np.float64).ravel()
        if values.size == 0:
            return
        if not np.isfinite(values).all():
            bad = values[~np.isfinite(values)][0]
            raise ValueError(f"cannot accumulate non-finite value {bad!r}")
        if weights is None:
            self.count += int(values.size)
            self._sum = partials_extend(self._sum, values)
            self._sumsq = partials_extend(self._sumsq, values * values)
            low = float(values.min())
            high = float(values.max())
            if low < self.minimum:
                self.minimum = low
            if high > self.maximum:
                self.maximum = high
            self.sketch.extend(values)
            return
        weights = np.ascontiguousarray(weights, dtype=np.float64).ravel()
        if weights.shape != values.shape:
            raise ValueError(
                f"weights must match values ({values.shape}), "
                f"got {weights.shape}"
            )
        if not np.isfinite(weights).all() or (weights <= 0).any():
            raise ValueError("weights must be positive and finite")
        self.count += float(weights.sum())
        self._sum = partials_extend(self._sum, weights * values)
        self._sumsq = partials_extend(self._sumsq, weights * (values * values))
        low = float(values.min())
        high = float(values.max())
        if low < self.minimum:
            self.minimum = low
        if high > self.maximum:
            self.maximum = high
        for value, weight in zip(values.tolist(), weights.tolist()):
            self.sketch.add(value, weight)

    def merge(self, other: "MetricAccumulator") -> None:
        """Fold another accumulator in (exact for the moments)."""
        self.count += other.count
        for partial in other._sum:
            _partials_add(self._sum, partial)
        for partial in other._sumsq:
            _partials_add(self._sumsq, partial)
        self.minimum = min(self.minimum, other.minimum)
        self.maximum = max(self.maximum, other.maximum)
        self.sketch.merge(other.sketch)

    # ------------------------------------------------------------------ #
    @property
    def total(self) -> float:
        """Correctly rounded running sum."""
        return _partials_value(self._sum)

    @property
    def mean(self) -> float:
        if self.count == 0:
            raise ValueError("cannot take the mean of zero observations")
        return self.total / self.count

    def variance(self) -> float:
        """Unbiased (ddof=1) sample variance from the exact moments."""
        if self.count < 2:
            return 0.0
        total = self.total
        sumsq = _partials_value(self._sumsq)
        var = (sumsq - total * total / self.count) / (self.count - 1)
        # The two-pass formula np.std uses cannot go negative; the one-pass
        # moment formula can by a rounding hair when the spread is tiny.
        return max(var, 0.0)

    def summary(self, *, confidence: float = 0.95) -> SummaryStatistics:
        """The sweep-level summary (same shape ``summarize`` produces)."""
        if self.count == 0:
            raise ValueError("cannot summarise an empty accumulator")
        if not 0.0 < confidence < 1.0:
            raise ValueError(f"confidence must lie in (0, 1), got {confidence}")
        mean = self.mean
        std = math.sqrt(self.variance()) if self.count > 1 else 0.0
        z = _normal_quantile(0.5 + confidence / 2.0)
        half_width = z * std / math.sqrt(self.count) if self.count > 1 else 0.0
        return SummaryStatistics(
            count=self.count,
            mean=mean,
            std=std,
            minimum=self.minimum,
            maximum=self.maximum,
            median=self.sketch.median(),
            ci_low=mean - half_width,
            ci_high=mean + half_width,
        )

    def summary_or_none(self) -> Optional[SummaryStatistics]:
        return self.summary() if self.count else None

    # ------------------------------------------------------------------ #
    def state_dict(self) -> Dict[str, object]:
        return {
            "count": self.count,
            "sum_partials": list(self._sum),
            "sumsq_partials": list(self._sumsq),
            "min": None if self.count == 0 else self.minimum,
            "max": None if self.count == 0 else self.maximum,
            "sketch": self.sketch.state_dict(),
        }

    @classmethod
    def from_state(cls, state: Dict[str, object]) -> "MetricAccumulator":
        accumulator = cls(sketch_capacity=int(state["sketch"]["capacity"]))
        accumulator.count = int(state["count"])
        accumulator._sum = [float(v) for v in state["sum_partials"]]
        accumulator._sumsq = [float(v) for v in state["sumsq_partials"]]
        if state.get("min") is not None:
            accumulator.minimum = float(state["min"])
        if state.get("max") is not None:
            accumulator.maximum = float(state["max"])
        accumulator.sketch = QuantileSketch.from_state(state["sketch"])
        return accumulator

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        if self.count == 0:
            return "MetricAccumulator(empty)"
        return f"MetricAccumulator(count={self.count}, mean={self.mean:.4g})"


class AccumulatorSet:
    """A named family of :class:`MetricAccumulator`\\ s (one sweep cell's
    running aggregation) plus the trial count it has consumed.

    Observations arrive as per-trial mappings ``{metric: value-or-values}``;
    ``None`` values are skipped (a metric can be undefined for a trial —
    e.g. the completion round of a failed run), and list values contribute
    every element (metrics with several samples per trial, like per-round
    growth factors).
    """

    def __init__(
        self, metrics: Sequence[str], *, sketch_capacity: int = 1024
    ) -> None:
        self.metrics: Dict[str, MetricAccumulator] = {
            name: MetricAccumulator(sketch_capacity=sketch_capacity)
            for name in metrics
        }
        self.trials = 0

    def observe(self, sample: Dict[str, object]) -> None:
        """Consume one trial's metric mapping."""
        self.trials += 1
        for name, value in sample.items():
            if value is None:
                continue
            accumulator = self.metrics.get(name)
            if accumulator is None:
                continue
            if isinstance(value, (list, tuple)):
                accumulator.add_many(value)
            else:
                accumulator.add(value)

    def observe_many(self, samples: Sequence[Dict[str, object]]) -> None:
        """Consume a buffered chunk of trial samples in one pass per metric.

        Equivalent to calling :meth:`observe` per sample — the moments are
        exactly rounded either way, and each metric sees its values in the
        same sample order, so sketches match the sequential path too — but
        each metric pays one vectorised :meth:`MetricAccumulator.add_many`
        instead of a Python-level ``add`` per trial.
        """
        if not samples:
            return
        self.trials += len(samples)
        for name, accumulator in self.metrics.items():
            chunk: List[float] = []
            for sample in samples:
                value = sample.get(name)
                if value is None:
                    continue
                if isinstance(value, (list, tuple)):
                    chunk.extend(value)
                else:
                    chunk.append(value)
            if chunk:
                accumulator.add_many(chunk)

    def __getitem__(self, name: str) -> MetricAccumulator:
        return self.metrics[name]

    def summary_or_none(self, name: str) -> Optional[SummaryStatistics]:
        accumulator = self.metrics.get(name)
        return accumulator.summary_or_none() if accumulator is not None else None

    def mean(self, name: str) -> Optional[float]:
        accumulator = self.metrics.get(name)
        if accumulator is None or accumulator.count == 0:
            return None
        return accumulator.mean

    # ------------------------------------------------------------------ #
    def state_dict(self) -> Dict[str, object]:
        return {
            "trials": self.trials,
            "metrics": {
                name: acc.state_dict() for name, acc in self.metrics.items()
            },
        }

    @classmethod
    def from_state(cls, state: Dict[str, object]) -> "AccumulatorSet":
        instance = cls([])
        instance.trials = int(state.get("trials", 0))
        instance.metrics = {
            name: MetricAccumulator.from_state(metric_state)
            for name, metric_state in state.get("metrics", {}).items()
        }
        return instance

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"AccumulatorSet(trials={self.trials}, "
            f"metrics={sorted(self.metrics)})"
        )
