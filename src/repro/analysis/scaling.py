"""Asymptotic-shape checks: fit measurements against claimed growth models.

A theorem of the form "quantity = O(f(n))" is checked empirically by fitting
``y ≈ c · f(n)`` over a sweep of ``n`` (least squares through the origin) and
inspecting

* the fitted constant ``c`` (should be O(1) and stable),
* the coefficient of determination ``R²``,
* the ratio series ``y / f(n)`` (should be roughly flat — no systematic
  growth).

:func:`fit_scaling` additionally compares a measured series against several
candidate models and reports which one fits best, which is how EXPERIMENTS.md
distinguishes e.g. ``log n`` growth from ``log² n`` growth.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Dict, Mapping, Optional, Sequence

import numpy as np

__all__ = ["ScalingFit", "fit_model", "fit_scaling", "candidate_models", "ratio_spread"]


@dataclass(frozen=True)
class ScalingFit:
    """Result of fitting ``y ≈ c · f(x)``."""

    model_name: str
    constant: float
    r_squared: float
    ratios: np.ndarray

    @property
    def ratio_spread(self) -> float:
        """``max(y/f) / min(y/f)`` — 1.0 means a perfect constant ratio."""
        positive = self.ratios[self.ratios > 0]
        if positive.size == 0:
            return math.inf
        return float(positive.max() / positive.min())

    def as_dict(self) -> Dict[str, float]:
        return {
            "model": self.model_name,
            "constant": self.constant,
            "r_squared": self.r_squared,
            "ratio_spread": self.ratio_spread,
        }


def fit_model(
    x: Sequence[float],
    y: Sequence[float],
    model: Callable[[np.ndarray], np.ndarray],
    *,
    name: str = "model",
) -> ScalingFit:
    """Least-squares fit of ``y ≈ c · model(x)`` through the origin."""
    x_arr = np.asarray(list(x), dtype=float)
    y_arr = np.asarray(list(y), dtype=float)
    if x_arr.size != y_arr.size:
        raise ValueError(f"x and y must have equal length, got {x_arr.size} and {y_arr.size}")
    if x_arr.size == 0:
        raise ValueError("cannot fit an empty series")
    f = np.asarray(model(x_arr), dtype=float)
    if f.shape != x_arr.shape:
        raise ValueError("model must map x element-wise")
    if np.any(f <= 0):
        raise ValueError("model values must be positive over the fitted range")
    constant = float(np.dot(f, y_arr) / np.dot(f, f))
    predicted = constant * f
    ss_res = float(np.sum((y_arr - predicted) ** 2))
    mean_y = float(y_arr.mean())
    ss_tot = float(np.sum((y_arr - mean_y) ** 2))
    if ss_tot == 0.0:
        r_squared = 1.0 if ss_res == 0.0 else 0.0
    else:
        r_squared = 1.0 - ss_res / ss_tot
    return ScalingFit(
        model_name=name,
        constant=constant,
        r_squared=r_squared,
        ratios=y_arr / f,
    )


def candidate_models(*, p: Optional[Mapping[float, float]] = None) -> Dict[str, Callable]:
    """The growth models the paper's bounds use, keyed by name.

    All are functions of ``n``; models involving ``p`` (``log n / p``) need
    the per-``n`` edge probability supplied via the ``p`` mapping.
    """
    models: Dict[str, Callable] = {
        "const": lambda n: np.ones_like(np.asarray(n, dtype=float)),
        "log n": lambda n: np.log2(np.asarray(n, dtype=float)),
        "log^2 n": lambda n: np.log2(np.asarray(n, dtype=float)) ** 2,
        "sqrt n": lambda n: np.sqrt(np.asarray(n, dtype=float)),
        "n": lambda n: np.asarray(n, dtype=float),
        "n log n": lambda n: np.asarray(n, dtype=float)
        * np.log2(np.asarray(n, dtype=float)),
    }
    if p is not None:
        lookup = dict(p)

        def log_n_over_p(n_values):
            n_arr = np.asarray(n_values, dtype=float)
            return np.asarray(
                [math.log2(v) / lookup[float(v)] for v in n_arr], dtype=float
            )

        models["log n / p"] = log_n_over_p
    return models


def fit_scaling(
    x: Sequence[float],
    y: Sequence[float],
    models: Mapping[str, Callable[[np.ndarray], np.ndarray]],
) -> Dict[str, ScalingFit]:
    """Fit every candidate model; the caller picks by ``r_squared``/``ratio_spread``."""
    if not models:
        raise ValueError("at least one candidate model is required")
    return {name: fit_model(x, y, fn, name=name) for name, fn in models.items()}


def ratio_spread(x: Sequence[float], y: Sequence[float], model: Callable) -> float:
    """Convenience: the max/min spread of ``y / model(x)``."""
    return fit_model(x, y, model).ratio_spread
