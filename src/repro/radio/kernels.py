"""Compiled hot-path kernels behind the batch engine and streaming ingest.

The engine's per-round cost is dominated by two inner loops: the batched
collision resolution (gather every transmitter's listeners, count hearers,
mask the exactly-one deliveries) and the per-trial accumulator ingest of the
streaming aggregation layer.  This module hosts compiled (numba ``@njit``)
versions of both behind a tiny registry, plus an opt-in *edge-sampled*
approximation of the collision round for the edge-bound ``G(n, p)`` regime.

Design rules:

* **Optional dependency.**  numba is never required.  Every kernel has a
  pure-numpy/pure-Python fallback with identical semantics, and
  :func:`resolve_collision_kernel` silently resolves ``"compiled"`` (and
  ``"auto"``) to ``"numpy"`` when numba is absent, so the package imports
  and runs unchanged without it.
* **Exactness.**  The ``"numpy"`` and ``"compiled"`` collision kernels are
  bit-identical: the fused pass emits receivers in the scalar models'
  transmitter-major edge order, the same order the numpy reference produces
  when no listener filter is installed (exact mode never installs one).
  The ingest kernel reproduces the Shewchuk partial-sum update float for
  float, so streaming moments stay exactly rounded and order-independent.
* **Approximations are loud.**  ``"edge_sampled"`` replaces the per-edge
  gather with an O(R·n) per-listener Bernoulli draw under a mean-field
  transmit model.  It is a different distribution, so it can never be
  resolved under ``batch_mode="exact"`` and is stamped into run provenance
  by the engine.
* **Statelessness.**  Kernels keep no state between calls: every invocation
  receives the stacked CSR and transmitter set it operates on.  The
  continuous-batching engine (:meth:`repro.radio.batch.BatchEngine.
  run_continuous`) relies on this — its union batch shrinks on compaction
  and grows on refill, so the row count a kernel sees can change from one
  round to the next.

This module deliberately imports nothing from the rest of :mod:`repro` so
that :mod:`repro.radio.collision` and :mod:`repro.analysis.streaming` can
depend on it without cycles.  (The one exception is
:mod:`repro.telemetry`, which is itself stdlib-only and imports nothing
back, so the no-cycle guarantee holds.)
"""

from __future__ import annotations

from typing import List, Sequence

import numpy as np

from repro import telemetry

__all__ = [
    "COLLISION_KERNELS",
    "DEFAULT_KERNEL",
    "compiled_available",
    "resolve_collision_kernel",
    "exactly_one_fused",
    "exactly_one_fused_reference",
    "edge_sampled_delivery_probabilities",
    "partials_extend",
    "warm_kernels",
]

#: Selectable collision-kernel names (``"auto"`` picks compiled when
#: available, numpy otherwise; it never picks an approximation).
COLLISION_KERNELS = ("auto", "numpy", "compiled", "edge_sampled")

DEFAULT_KERNEL = "auto"

try:  # pragma: no cover - exercised via the no-numba subprocess test
    from numba import njit as _njit

    _HAVE_NUMBA = True
except Exception:  # pragma: no cover - ImportError in practice
    _HAVE_NUMBA = False

    def _njit(*args, **kwargs):
        """No-op ``@njit`` stand-in so kernels stay importable without numba."""
        if args and callable(args[0]):
            return args[0]

        def _decorate(function):
            return function

        return _decorate


def compiled_available() -> bool:
    """Whether numba is importable and the compiled kernels are usable."""
    return _HAVE_NUMBA


def resolve_collision_kernel(
    name: str, *, exact_mode: bool = False, record: bool = False
) -> str:
    """Resolve a requested kernel name to the implementation that will run.

    ``"auto"`` and ``"compiled"`` both resolve to ``"compiled"`` when numba
    is available and fall back to the bit-identical ``"numpy"`` path when it
    is not (the fallback is silent because the two are interchangeable).
    ``"edge_sampled"`` resolves to itself but is rejected under exact mode:
    it samples a different delivery distribution, so it can never honour the
    serial-equivalence contract.

    ``record=True`` counts the resolution in the telemetry metrics
    registry (``kernels.resolved.<name>``).  Only the engines pass it —
    resolution is also called from validation and cache-key paths, which
    would inflate the counts into noise.
    """
    if name not in COLLISION_KERNELS:
        raise ValueError(
            f"unknown collision kernel {name!r}; expected one of "
            f"{COLLISION_KERNELS}"
        )
    if name == "edge_sampled":
        if exact_mode:
            raise ValueError(
                'kernel "edge_sampled" is a collision approximation and '
                'cannot be used with batch_mode="exact"; run in fast mode '
                "or pick an exact kernel (auto/numpy/compiled)"
            )
        resolved = "edge_sampled"
    elif name == "numpy":
        resolved = "numpy"
    else:
        resolved = "compiled" if _HAVE_NUMBA else "numpy"
    if record:
        telemetry.counter_inc(f"kernels.resolved.{resolved}")
    return resolved


# --------------------------------------------------------------------------- #
# Fused exactly-one collision kernel
# --------------------------------------------------------------------------- #
def _exactly_one_fused_impl(indptr, indices, tx_flat, total_nodes, filter_mask):
    """Single-pass exactly-one resolution over a stacked CSR.

    Fuses the listener gather, the hear-count accumulation and the
    delivered-edge masking of the numpy reference
    (:meth:`BatchCollisionModel._batch_exactly_one_rule`) into one walk over
    the transmitters' adjacency rows.  ``filter_mask`` is either a
    ``total_nodes``-bool interest filter or an empty array meaning "no
    filter".

    Returns ``(listeners, edge_ends, delivered_mask, flat_counts,
    receiver_flat)`` with the exact dtypes and orderings of the reference:
    receivers come out in transmitter-major edge order, which is what the
    exact-equivalence mode pins against the scalar engine.
    """
    num_tx = tx_flat.shape[0]
    edge_ends = np.empty(num_tx, dtype=np.int64)
    total = 0
    for i in range(num_tx):
        v = tx_flat[i]
        total += indptr[v + 1] - indptr[v]
        edge_ends[i] = total

    listeners = np.empty(total, dtype=indices.dtype)
    flat_counts = np.zeros(total_nodes, dtype=np.int64)
    pos = 0
    for i in range(num_tx):
        v = tx_flat[i]
        for e in range(indptr[v], indptr[v + 1]):
            listener = indices[e]
            listeners[pos] = listener
            flat_counts[listener] += 1
            pos += 1

    use_filter = filter_mask.shape[0] != 0
    delivered_mask = np.empty(total, dtype=np.bool_)
    delivered = 0
    for j in range(total):
        listener = listeners[j]
        hit = flat_counts[listener] == 1
        if hit and use_filter:
            hit = filter_mask[listener]
        delivered_mask[j] = hit
        if hit:
            delivered += 1

    receiver_flat = np.empty(delivered, dtype=np.int64)
    k = 0
    for j in range(total):
        if delivered_mask[j]:
            receiver_flat[k] = listeners[j]
            k += 1
    return listeners, edge_ends, delivered_mask, flat_counts, receiver_flat


#: Undecorated reference implementation — importable for algorithmic tests
#: even when numba is absent (it is plain Python, so only call it on small
#: inputs).
exactly_one_fused_reference = _exactly_one_fused_impl

if _HAVE_NUMBA:  # pragma: no cover - requires numba
    exactly_one_fused = _njit(cache=True, nogil=True)(_exactly_one_fused_impl)
else:
    exactly_one_fused = _exactly_one_fused_impl


# --------------------------------------------------------------------------- #
# Edge-sampled collision approximation
# --------------------------------------------------------------------------- #
def edge_sampled_delivery_probabilities(
    in_degrees: np.ndarray, tx_counts: np.ndarray, n: int
) -> np.ndarray:
    """Mean-field exactly-one delivery probability per (trial, listener).

    With ``k`` of a trial's ``n`` nodes transmitting, each in-neighbour of a
    listener is modelled as transmitting independently with probability
    ``f = k / n``, so a listener of in-degree ``d`` hears exactly one
    transmitter with probability ``d · f · (1 − f)^(d−1)``.  Cost is
    O(R·n) regardless of edge count — the point of the kernel on edge-bound
    ``G(n, p)`` — at the price of ignoring which specific neighbours
    transmit (correlations with the protocol state are dropped).

    Parameters are flat over the stacked batch: ``in_degrees`` has one entry
    per ``trial * n + node`` id, ``tx_counts`` one per trial.
    """
    fractions = (tx_counts.astype(np.float64) / float(n)).repeat(n)
    degrees = in_degrees.astype(np.float64)
    survive = np.power(1.0 - fractions, np.maximum(degrees - 1.0, 0.0))
    return degrees * fractions * survive


# --------------------------------------------------------------------------- #
# Shewchuk partial-sum chunk ingest
# --------------------------------------------------------------------------- #
#: Worst-case number of non-overlapping float64 partials is ~40 (the full
#: exponent range divided by the mantissa width); 64 leaves slack.
_PARTIALS_CAPACITY = 64


def _partials_merge_impl(buffer, count, values):
    """Fold ``values`` into a Shewchuk partial buffer, returning the new size.

    Float-for-float identical to ``streaming._partials_add`` applied per
    value: same swap, same two-sum, same zero-elision — so a chunked ingest
    leaves exactly the partials a sequential one would.
    """
    for k in range(values.shape[0]):
        x = values[k]
        i = 0
        for j in range(count):
            y = buffer[j]
            if abs(x) < abs(y):
                x, y = y, x
            hi = x + y
            lo = y - (hi - x)
            if lo != 0.0:
                buffer[i] = lo
                i += 1
            x = hi
        buffer[i] = x
        count = i + 1
    return count


if _HAVE_NUMBA:  # pragma: no cover - requires numba
    _partials_merge = _njit(cache=True, nogil=True)(_partials_merge_impl)
else:
    _partials_merge = None


def partials_extend(partials: Sequence[float], values: np.ndarray) -> List[float]:
    """Add every element of ``values`` into a Shewchuk partial-sum list.

    Returns the new partial list (the input is not mutated).  Uses the
    compiled chunk kernel when numba is available and an equivalent local
    Python loop otherwise; both produce bit-identical partials to repeated
    ``_partials_add`` calls, preserving the exactly-rounded,
    order-independent moment guarantee of the streaming layer.
    """
    values = np.ascontiguousarray(values, dtype=np.float64).ravel()
    if values.size == 0:
        return list(partials)
    if _partials_merge is not None and len(partials) < _PARTIALS_CAPACITY:
        buffer = np.zeros(_PARTIALS_CAPACITY, dtype=np.float64)
        count = len(partials)
        buffer[:count] = partials
        count = _partials_merge(buffer, count, values)
        return buffer[:count].tolist()
    result = list(partials)
    for x in values.tolist():
        i = 0
        for y in result:
            if abs(x) < abs(y):
                x, y = y, x
            hi = x + y
            lo = y - (hi - x)
            if lo:
                result[i] = lo
                i += 1
            x = hi
        result[i:] = [x]
    return result


def warm_kernels() -> None:
    """Force JIT compilation of every compiled kernel on toy inputs.

    Benchmark fixtures call this before timing so ``BENCH_engine.json``
    cells measure steady-state throughput, not first-call compilation.
    A no-op when numba is absent.
    """
    if not _HAVE_NUMBA:  # pragma: no cover - requires numba for the rest
        return
    indptr = np.array([0, 1, 2], dtype=np.int64)
    indices = np.array([1, 0], dtype=np.int32)
    tx = np.array([0], dtype=np.int64)
    exactly_one_fused(indptr, indices, tx, 2, np.empty(0, dtype=np.bool_))
    exactly_one_fused(indptr, indices, tx, 2, np.ones(2, dtype=np.bool_))
    partials_extend([], np.array([1.0, 2.0]))
