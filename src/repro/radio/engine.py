"""The synchronous round engine.

The engine owns the round loop; the protocol owns the per-node decision rule;
the collision model owns the receive semantics.  One round is:

1. ask the protocol for its transmit mask,
2. resolve collisions (vectorised CSR gather + ``bincount``),
3. feed the outcome back to the protocol,
4. account energy and (optionally) record a per-round trace entry.

The loop stops when the protocol reports completion or the round horizon is
reached.  The horizon exists only as a safety net — every experiment sets it
comfortably above the bound it is trying to measure so a correct protocol
never hits it.
"""

from __future__ import annotations

from typing import Mapping, Optional

import numpy as np

from repro._util.rng import SeedLike, as_generator
from repro._util.validation import check_positive_int
from repro.radio.collision import CollisionModel, StandardCollisionModel
from repro.radio.energy import EnergyAccountant
from repro.radio.environment import Environment, build_environment
from repro.radio.network import RadioNetwork
from repro.radio.protocol import BroadcastProtocol, GossipProtocol, Protocol
from repro.radio.trace import RoundRecord, RunResultTrace

__all__ = ["SimulationEngine", "run_protocol"]


class SimulationEngine:
    """Runs protocols on radio networks under a collision model.

    Parameters
    ----------
    collision_model:
        Receive semantics; defaults to the paper's
        :class:`~repro.radio.collision.StandardCollisionModel`.
    record_rounds:
        Keep a :class:`~repro.radio.trace.RoundRecord` per round (needed by
        the phase-growth and lower-bound experiments; costs a little memory).
    keep_arrays:
        Keep per-node arrays (transmission counts, informed rounds) on the
        result.
    retire_dead:
        Stop a run the round it goes *dead* — quiescent without completing
        (the transmission schedule ran dry), or environment-doomed (crashed
        forever with no recovery scheduled) — instead of spinning to
        ``max_rounds``.  The outcome of a dead run can never change, so
        this only shortens ``rounds_executed``.  On by default; mirrors
        :class:`~repro.radio.batch.BatchEngine` so exact-mode equivalence
        holds round for round.
    environment:
        Optional faulty-world layer (an
        :class:`~repro.radio.environment.Environment` or a spec dict) that
        perturbs each round around collision resolution: crashed/asleep
        radios are gated before energy accounting, transmitter-side loss is
        applied after it (charged but lost), deliveries are filtered after
        resolution.  A null environment is skipped entirely.
    """

    def __init__(
        self,
        collision_model: Optional[CollisionModel] = None,
        *,
        record_rounds: bool = False,
        keep_arrays: bool = False,
        run_to_quiescence: bool = False,
        retire_dead: bool = True,
        environment=None,
    ):
        self.collision_model = collision_model or StandardCollisionModel()
        self.record_rounds = bool(record_rounds)
        self.keep_arrays = bool(keep_arrays)
        self.run_to_quiescence = bool(run_to_quiescence)
        self.retire_dead = bool(retire_dead)
        if environment is not None and not isinstance(environment, Environment):
            if not isinstance(environment, Mapping):
                raise TypeError(
                    "environment must be an Environment or a spec dict, "
                    f"got {type(environment).__name__}"
                )
            environment = build_environment(environment)
        self.environment = environment

    def run(
        self,
        network: RadioNetwork,
        protocol: Protocol,
        *,
        rng: SeedLike = None,
        max_rounds: Optional[int] = None,
    ) -> RunResultTrace:
        """Run ``protocol`` on ``network`` until completion or ``max_rounds``.

        Returns
        -------
        RunResultTrace
            The run summary.  ``completed`` is False when the horizon was hit
            before the protocol's objective was reached.
        """
        generator = as_generator(rng)
        protocol.bind(network, generator)
        if max_rounds is None:
            max_rounds = protocol.suggested_max_rounds()
        max_rounds = check_positive_int(max_rounds, "max_rounds")

        environment = self.environment
        env_active = environment is not None and not environment.is_null
        if env_active:
            environment.reset(network)

        accountant = EnergyAccountant(network.n)
        rounds: list = []
        completed = protocol.is_complete()
        completion_round = 0
        rounds_executed = 0

        # Same per-class gate as the batch engine: the base ``is_quiescent``
        # just mirrors ``is_complete``, so probing it buys nothing.
        retire_dead = (
            self.retire_dead
            and not self.run_to_quiescence
            and type(protocol).is_quiescent is not Protocol.is_quiescent
        )

        if not (completed and not self.run_to_quiescence):
            for round_index in range(max_rounds):
                mask = np.asarray(protocol.transmit_mask(round_index), dtype=bool)
                if env_active:
                    environment.begin_round(round_index, generator)
                    # Gated radios (crashed/asleep) never key the transmitter,
                    # so gate *before* energy accounting...
                    mask = environment.gate_transmitters(round_index, mask)
                transmitters = accountant.record_round(mask)
                air_mask = mask
                if env_active:
                    # ...while in-flight loss is charged-but-lost: perturb
                    # *after* accounting, and the protocol still believes it
                    # transmitted (``observe`` sees the pre-loss mask).
                    air_mask = environment.perturb_transmissions(
                        round_index, mask, generator
                    )
                outcome = self.collision_model.resolve(network, air_mask, generator)
                if env_active:
                    outcome = environment.filter_deliveries(
                        round_index, outcome, generator
                    )

                informed_before = _informed_count(protocol)
                protocol.observe(round_index, mask, outcome)
                informed_after = _informed_count(protocol)
                rounds_executed = round_index + 1

                if self.record_rounds:
                    rounds.append(
                        RoundRecord(
                            round_index=round_index,
                            transmitters=transmitters,
                            deliveries=int(outcome.receivers.size),
                            newly_informed=(
                                informed_after - informed_before
                                if informed_after is not None and informed_before is not None
                                else int(outcome.receivers.size)
                            ),
                            informed_after=(
                                informed_after if informed_after is not None else -1
                            ),
                        )
                    )

                if protocol.is_complete():
                    if not completed:
                        completed = True
                        completion_round = rounds_executed
                    if not self.run_to_quiescence or protocol.is_quiescent(
                        round_index + 1
                    ):
                        break
                elif (self.run_to_quiescence or retire_dead) and (
                    protocol.is_quiescent(round_index + 1)
                ):
                    # The schedule is exhausted without reaching the objective
                    # (a failed run); nothing more will ever be transmitted.
                    break
                if env_active and self.retire_dead and environment.is_doomed(
                    round_index
                ):
                    # Crashed forever (e.g. churn with every radio down and
                    # no recovery scheduled): the outcome can never change.
                    break
        if not completed:
            completion_round = rounds_executed

        result = RunResultTrace(
            protocol_name=protocol.name,
            network_name=network.name,
            n=network.n,
            completed=completed,
            completion_round=completion_round,
            rounds_executed=rounds_executed,
            energy=accountant.report(),
            informed_count=_informed_count(protocol),
            rounds=rounds,
            metadata=dict(getattr(protocol, "run_metadata", {}) or {}),
        )
        if env_active:
            result.metadata["environment"] = environment.report()
        if self.keep_arrays:
            result.per_node_transmissions = accountant.per_node()
            if isinstance(protocol, BroadcastProtocol):
                result.informed_round = protocol.informed_round.copy()
        return result


def run_protocol(
    network: RadioNetwork,
    protocol: Protocol,
    *,
    rng: SeedLike = None,
    max_rounds: Optional[int] = None,
    collision_model: Optional[CollisionModel] = None,
    record_rounds: bool = False,
    keep_arrays: bool = False,
    run_to_quiescence: bool = False,
    retire_dead: bool = True,
    environment=None,
) -> RunResultTrace:
    """Convenience wrapper: build an engine and run once.

    Examples
    --------
    >>> from repro.graphs import random_digraph
    >>> from repro.core import EnergyEfficientBroadcast
    >>> net = random_digraph(256, 0.05, rng=1)
    >>> result = run_protocol(net, EnergyEfficientBroadcast(source=0), rng=2)
    >>> result.energy.max_per_node <= 1
    True
    """
    engine = SimulationEngine(
        collision_model,
        record_rounds=record_rounds,
        keep_arrays=keep_arrays,
        run_to_quiescence=run_to_quiescence,
        retire_dead=retire_dead,
        environment=environment,
    )
    return engine.run(network, protocol, rng=rng, max_rounds=max_rounds)


def _informed_count(protocol: Protocol) -> Optional[int]:
    """Progress metric: informed nodes (broadcast) or min rumours known (gossip)."""
    if isinstance(protocol, BroadcastProtocol):
        return protocol.informed_count()
    if isinstance(protocol, GossipProtocol):
        return int(protocol.rumours_known().min())
    return None
