"""Collision semantics for the synchronous radio round.

The paper uses the standard radio-network collision rule: a node receives a
message in a round iff **exactly one** of its in-neighbours transmits, and
cannot distinguish a collision (two or more transmitters) from silence.

Two additional models are provided for ablations and the geometric-graph
extension experiment:

* :class:`WithCollisionDetectionModel` — receivers can tell "collision"
  apart from "silence" (they still receive no payload on a collision).
* :class:`ErasureCollisionModel` — standard rule, but each otherwise
  successful delivery is independently erased with a fixed probability
  (a crude model of fading).

All models operate on whole rounds at once and are fully vectorised.

Batched counterparts (:class:`BatchCollisionModel` and subclasses) resolve
the rounds of ``R`` independent trials in a single flattened gather plus one
count over ``trial * n + listener`` ids.  Because the trials of a
:class:`~repro.radio.batch.NetworkBatch` are stacked block-diagonally, the
scalar models' gather machinery (:meth:`CollisionModel._gather_listener_edges`)
applies verbatim to the stacked CSR — no edge crosses a trial boundary, so
per-trial semantics are preserved exactly.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro._util.validation import check_probability
from repro.radio import kernels as _kernels
from repro.radio.network import RadioNetwork

__all__ = [
    "CollisionOutcome",
    "CollisionModel",
    "StandardCollisionModel",
    "WithCollisionDetectionModel",
    "ErasureCollisionModel",
    "BatchCollisionOutcome",
    "BatchCollisionModel",
    "BatchStandardCollisionModel",
    "BatchWithCollisionDetectionModel",
    "BatchErasureCollisionModel",
    "as_batch_collision_model",
]


@dataclass(frozen=True)
class CollisionOutcome:
    """The resolved result of one synchronous round.

    Attributes
    ----------
    receivers:
        1-D array of node ids that successfully received a message this round.
    senders:
        1-D array (same length) with the unique transmitting in-neighbour that
        delivered to the corresponding receiver.
    hear_counts:
        ``n``-vector of how many in-neighbours of each node transmitted
        (before any erasure).  ``hear_counts[v] >= 2`` means ``v`` experienced
        a collision.
    collision_flags:
        ``n``-bool vector; under models with collision detection this marks
        the nodes that *detected* a collision.  All-``False`` under the
        standard model (nodes cannot detect collisions).
    """

    receivers: np.ndarray
    senders: np.ndarray
    hear_counts: np.ndarray
    collision_flags: np.ndarray


class CollisionModel:
    """Base class: resolve which transmissions are received in a round."""

    #: Whether receivers learn that a collision happened.
    detects_collisions: bool = False

    def resolve(
        self,
        network: RadioNetwork,
        transmit_mask: np.ndarray,
        rng: Optional[np.random.Generator] = None,
    ) -> CollisionOutcome:
        """Resolve one round.

        Parameters
        ----------
        network:
            The radio network.
        transmit_mask:
            Boolean ``n``-vector; ``True`` where the node transmits this round.
        rng:
            Random generator (only used by stochastic models).
        """
        raise NotImplementedError

    # ------------------------------------------------------------------ #
    # Shared vectorised machinery
    # ------------------------------------------------------------------ #
    @staticmethod
    def _hear_counts_and_unique_sender(
        network: RadioNetwork, transmit_mask: np.ndarray
    ) -> tuple:
        """Return (hear_counts, receivers, senders) under the exactly-one rule.

        ``receivers`` are the nodes with exactly one transmitting in-neighbour
        and ``senders[i]`` is that unique in-neighbour of ``receivers[i]``.
        """
        n = network.n
        transmit_mask = np.asarray(transmit_mask, dtype=bool)
        if transmit_mask.shape != (n,):
            raise ValueError(
                f"transmit_mask must have shape ({n},), got {transmit_mask.shape}"
            )
        tx_nodes = np.flatnonzero(transmit_mask)
        return CollisionModel._hear_counts_from_transmitters(
            n, network.out_indptr, network.out_indices, tx_nodes
        )

    @staticmethod
    def _gather_listener_edges(
        indptr: np.ndarray, indices: np.ndarray, tx_nodes: np.ndarray
    ) -> tuple:
        """Flat gather of all (transmitter -> listener) pairs of a round.

        Returns ``(listeners, edge_ends)`` where ``listeners`` holds every
        edge's listener in transmitter order (rows in CSR order) and
        ``edge_ends`` is the *inclusive* cumulative edge count per
        transmitter (``cumsum(lengths)``) — edge ``j`` belongs to the row
        found by ``searchsorted(edge_ends, j, side="right")``.
        """
        starts = indptr[tx_nodes]
        lengths = indptr[tx_nodes + 1] - starts
        total = int(lengths.sum())
        if total == 0:
            return indices[:0], lengths
        edge_ends = np.cumsum(lengths)
        # position of edge j within the flat gather: arange(total) plus the
        # per-row shift from the row's CSR start (one repeat, one add).
        shift = starts - (edge_ends - lengths)
        flat_edges = np.arange(total, dtype=np.int64) + np.repeat(shift, lengths)
        return indices[flat_edges], edge_ends

    @staticmethod
    def _hear_counts_from_transmitters(
        n: int, indptr: np.ndarray, indices: np.ndarray, tx_nodes: np.ndarray
    ) -> tuple:
        """Exactly-one-rule resolution from a sorted transmitter-id array.

        The sparse core shared by the scalar and the batched models: cost is
        O(edges out of transmitters), independent of ``n`` except for the
        final ``bincount``.
        """
        listeners, edge_ends = (
            CollisionModel._gather_listener_edges(indptr, indices, tx_nodes)
            if tx_nodes.size
            else (indices[:0], None)
        )
        if listeners.size == 0:
            empty = np.empty(0, dtype=np.int64)
            return np.zeros(n, dtype=np.int64), empty, empty

        hear_counts = np.bincount(listeners, minlength=n)
        # Deliveries are usually far rarer than edges, so the senders are
        # recovered only for delivered edges (searchsorted on the per-row
        # edge offsets) instead of materialising a full per-edge sender array.
        delivered_edges = np.flatnonzero(hear_counts[listeners] == 1)
        receivers = listeners[delivered_edges].astype(np.int64, copy=False)
        senders = tx_nodes[np.searchsorted(edge_ends, delivered_edges, side="right")]
        return hear_counts, receivers, senders


class StandardCollisionModel(CollisionModel):
    """The paper's model: receive iff exactly one in-neighbour transmits."""

    detects_collisions = False

    def resolve(
        self,
        network: RadioNetwork,
        transmit_mask: np.ndarray,
        rng: Optional[np.random.Generator] = None,
    ) -> CollisionOutcome:
        hear_counts, receivers, senders = self._hear_counts_and_unique_sender(
            network, transmit_mask
        )
        return CollisionOutcome(
            receivers=receivers,
            senders=senders,
            hear_counts=hear_counts,
            collision_flags=np.zeros(network.n, dtype=bool),
        )

    def __repr__(self) -> str:
        return "StandardCollisionModel()"


class WithCollisionDetectionModel(CollisionModel):
    """Receivers can distinguish collision (>= 2 transmitters heard) from silence."""

    detects_collisions = True

    def resolve(
        self,
        network: RadioNetwork,
        transmit_mask: np.ndarray,
        rng: Optional[np.random.Generator] = None,
    ) -> CollisionOutcome:
        hear_counts, receivers, senders = self._hear_counts_and_unique_sender(
            network, transmit_mask
        )
        return CollisionOutcome(
            receivers=receivers,
            senders=senders,
            hear_counts=hear_counts,
            collision_flags=hear_counts >= 2,
        )

    def __repr__(self) -> str:
        return "WithCollisionDetectionModel()"


class ErasureCollisionModel(CollisionModel):
    """Standard rule plus i.i.d. erasure of successful deliveries.

    Parameters
    ----------
    erasure_probability:
        Probability that an otherwise successful delivery is lost.
    """

    detects_collisions = False

    def __init__(self, erasure_probability: float):
        self.erasure_probability = check_probability(
            erasure_probability, "erasure_probability"
        )

    def resolve(
        self,
        network: RadioNetwork,
        transmit_mask: np.ndarray,
        rng: Optional[np.random.Generator] = None,
    ) -> CollisionOutcome:
        if rng is None:
            raise ValueError("ErasureCollisionModel requires an rng")
        hear_counts, receivers, senders = self._hear_counts_and_unique_sender(
            network, transmit_mask
        )
        if receivers.size and self.erasure_probability > 0.0:
            keep = rng.random(receivers.size) >= self.erasure_probability
            receivers = receivers[keep]
            senders = senders[keep]
        return CollisionOutcome(
            receivers=receivers,
            senders=senders,
            hear_counts=hear_counts,
            collision_flags=np.zeros(network.n, dtype=bool),
        )

    def __repr__(self) -> str:
        return f"ErasureCollisionModel(erasure_probability={self.erasure_probability})"


# --------------------------------------------------------------------------- #
# Batched collision resolution (R trials per round)
# --------------------------------------------------------------------------- #
class BatchCollisionOutcome:
    """The resolved result of one synchronous round across ``R`` trials.

    Receivers and senders are stored as *flat* node ids ``trial * n + node``
    in trial-major order (all of trial 0's deliveries, then trial 1's, …);
    within a trial the order matches what the scalar models produce, which is
    what makes the exact-equivalence mode of the batch engine possible.

    Everything beyond ``receiver_flat`` is derived lazily: the batch engine's
    broadcast hot path only reads the receivers, so the unique senders, the
    per-trial delivery counts and the dense hear-count matrix are computed on
    first access (gossip reads the senders, the erasure model the counts, and
    only diagnostics the dense matrices).

    Attributes
    ----------
    receiver_flat:
        1-D array of flat ids of nodes that received a message this round.
    sender_flat:
        1-D array (same length) with the flat id of the unique transmitting
        in-neighbour that delivered to the corresponding receiver (lazy).
    receiver_counts:
        ``R``-vector with the number of deliveries per trial (lazy).
    hear_counts:
        ``(R, n)`` matrix of how many in-neighbours of each node transmitted
        (lazy).
    collision_flags:
        ``(R, n)`` bool matrix of detected collisions (all-``False`` unless
        the model detects collisions; lazy).
    """

    #: Whether per-receiver sender identities can be recovered from this
    #: outcome.  ``False`` on approximation/scheduled outcomes, whose sender
    #: getters raise — callers that reshape the receiver set (erasure,
    #: lossy environments) consult this before materialising senders.
    tracks_senders = True

    __slots__ = (
        "receiver_flat",
        "trials",
        "n",
        "detects_collisions",
        "_receiver_counts",
        "_sender_flat",
        "_listeners",
        "_edge_ends",
        "_tx_flat",
        "_delivered_mask",
        "_hear_dense",
        "_trial_offsets",
    )

    def __init__(
        self,
        *,
        receiver_flat: np.ndarray,
        trials: int,
        n: int,
        listeners: Optional[np.ndarray] = None,
        edge_ends: Optional[np.ndarray] = None,
        tx_flat: Optional[np.ndarray] = None,
        delivered_mask: Optional[np.ndarray] = None,
        receiver_counts: Optional[np.ndarray] = None,
        sender_flat: Optional[np.ndarray] = None,
        hear_dense: Optional[np.ndarray] = None,
        detects_collisions: bool = False,
    ):
        self.receiver_flat = receiver_flat
        self.trials = trials
        self.n = n
        self.detects_collisions = detects_collisions
        self._receiver_counts = receiver_counts
        self._sender_flat = sender_flat
        self._listeners = listeners
        self._edge_ends = edge_ends
        self._tx_flat = tx_flat
        self._delivered_mask = delivered_mask
        self._hear_dense = hear_dense
        self._trial_offsets = None

    @property
    def receiver_counts(self) -> np.ndarray:
        """Per-trial delivery counts (computed on first access)."""
        if self._receiver_counts is None:
            self._receiver_counts = np.bincount(
                self.receiver_flat // self.n, minlength=self.trials
            )
        return self._receiver_counts

    @receiver_counts.setter
    def receiver_counts(self, value: np.ndarray) -> None:
        self._receiver_counts = value
        self._trial_offsets = None

    @property
    def sender_flat(self) -> np.ndarray:
        """Flat ids of the unique delivering senders (computed on first access)."""
        if self._sender_flat is None:
            if self._tx_flat is None or self._listeners is None:
                self._sender_flat = np.empty(0, dtype=np.int64)
                return self._sender_flat
            mask = self._delivered_mask
            if mask is None:
                # Dense-scan path: rebuild the per-edge delivery mask from
                # the (immutable) receiver set — not from the listener
                # filter, which the protocol may have mutated since the
                # round was resolved — then align the senders with the
                # (sorted) receiver order.  Every receiver is heard exactly
                # once, so membership alone identifies its delivering edge.
                receivers = self.receiver_flat
                positions = np.searchsorted(receivers, self._listeners)
                positions[positions == receivers.size] = max(receivers.size - 1, 0)
                mask = (
                    receivers[positions] == self._listeners
                    if receivers.size
                    else np.zeros(self._listeners.size, dtype=bool)
                )
                delivered_edges = np.flatnonzero(mask)
                senders = self._tx_flat[
                    np.searchsorted(self._edge_ends, delivered_edges, side="right")
                ]
                receivers_edge_order = self._listeners[delivered_edges]
                self._sender_flat = senders[np.argsort(receivers_edge_order)]
            else:
                delivered_edges = np.flatnonzero(mask)
                self._sender_flat = self._tx_flat[
                    np.searchsorted(self._edge_ends, delivered_edges, side="right")
                ]
        return self._sender_flat

    @sender_flat.setter
    def sender_flat(self, value: np.ndarray) -> None:
        self._sender_flat = value

    @property
    def hear_counts(self) -> np.ndarray:
        """Dense ``(R, n)`` hear counts (built on first access)."""
        if self._hear_dense is None:
            total = self.trials * self.n
            if self._listeners is None or self._listeners.size == 0:
                dense = np.zeros(total, dtype=np.int64)
            else:
                dense = np.bincount(self._listeners, minlength=total)
            self._hear_dense = dense.reshape(self.trials, self.n)
        return self._hear_dense

    @property
    def collision_flags(self) -> np.ndarray:
        """Dense ``(R, n)`` detected-collision flags."""
        if not self.detects_collisions:
            return np.zeros((self.trials, self.n), dtype=bool)
        return self.hear_counts >= 2

    def receivers_of(self, trial: int) -> np.ndarray:
        """Local node ids of ``trial``'s receivers (scalar-model order)."""
        start, stop = self._trial_slice(trial)
        return self.receiver_flat[start:stop] - trial * self.n

    def senders_of(self, trial: int) -> np.ndarray:
        """Local node ids of ``trial``'s delivering senders."""
        start, stop = self._trial_slice(trial)
        return self.sender_flat[start:stop] - trial * self.n

    def _trial_slice(self, trial: int) -> tuple:
        # receiver_flat is immutable once handed out per trial, so the prefix
        # sums are computed once and reused by all R receivers_of/senders_of
        # calls (the setter above invalidates them if the counts are rebound).
        if self._trial_offsets is None:
            self._trial_offsets = np.concatenate(
                [[0], np.cumsum(self.receiver_counts)]
            )
        offsets = self._trial_offsets
        return int(offsets[trial]), int(offsets[trial + 1])


class _EdgeSampledOutcome(BatchCollisionOutcome):
    """Outcome of the edge-sampled approximation kernel.

    The approximation draws deliveries per listener without ever gathering
    edges, so there is no per-receiver sender, no per-edge hear count and no
    collision flag to report.  Anything that needs them (gossip's sender
    merge, collision-detection protocols, diagnostics) fails loudly instead
    of silently reading garbage.
    """

    __slots__ = ()

    tracks_senders = False

    _MISSING = (
        "the edge-sampled collision kernel does not track {what}; protocols "
        "that consume {what} require an exact kernel (auto/numpy/compiled)"
    )

    @property
    def sender_flat(self) -> np.ndarray:
        raise RuntimeError(self._MISSING.format(what="sender identities"))

    @property
    def hear_counts(self) -> np.ndarray:
        raise RuntimeError(self._MISSING.format(what="per-node hear counts"))

    @property
    def collision_flags(self) -> np.ndarray:
        raise RuntimeError(self._MISSING.format(what="collision flags"))


class BatchCollisionModel:
    """Base class: resolve ``R`` trials\' rounds in one vectorised pass.

    Subclasses mirror the scalar models one-to-one; the mapping is available
    via :func:`as_batch_collision_model`.
    """

    detects_collisions: bool = False

    #: Resolved collision-kernel name driving :meth:`_batch_exactly_one_rule`
    #: (``"numpy"``, ``"compiled"`` or ``"edge_sampled"``).  The batch engine
    #: assigns this at the start of every run from its resolved ``kernel``
    #: option; direct users of the models get the numpy reference path.
    kernel: str = "numpy"

    #: Whether :meth:`resolve` consumes no randomness — a precondition for
    #: the batch engine's scheduled (mega-gather) resolution, which resolves
    #: future rounds before the per-round rng draws would happen.  Defaults
    #: to False so a stochastic subclass that forgets to declare itself can
    #: never be silently pre-resolved; deterministic models opt in.
    resolves_deterministically: bool = False

    def resolve(
        self,
        batch,  # NetworkBatch (duck-typed to avoid an import cycle with batch.py)
        transmitters: np.ndarray,
        rng_source=None,
        listener_filter: Optional[np.ndarray] = None,
    ) -> BatchCollisionOutcome:
        """Resolve one round for every trial.

        Parameters
        ----------
        batch:
            A :class:`~repro.radio.batch.NetworkBatch`.
        transmitters:
            Either a sorted 1-D array of flat transmitter ids
            (``trial * n + node`` — the fast path the batch engine uses) or a
            boolean ``(R, n)`` matrix.
        rng_source:
            A :class:`~repro.radio.batch.BatchRandomSource` (only used by
            stochastic models).
        listener_filter:
            Optional flat bool vector (``R * n``); deliveries to nodes where
            it is ``False`` are dropped from the outcome.  The engine passes
            the protocol's interest set (e.g. the still-uninformed nodes of a
            broadcast) so rounds don't pay for deliveries the protocol would
            ignore.  Collision *counting* always uses every transmission.
        """
        raise NotImplementedError

    # ------------------------------------------------------------------ #
    # Shared vectorised machinery
    # ------------------------------------------------------------------ #
    #: Below this many gathered edges the listener counts come from an
    #: argsort of the edges instead of a full-width bincount — late broadcast
    #: rounds have a handful of transmitters, and a dense count would touch
    #: the whole ``R * n`` id space every round.
    _SPARSE_EDGE_THRESHOLD = 8192

    def _batch_exactly_one_rule(
        self, batch, transmitters, listener_filter=None, rng_source=None
    ) -> "BatchCollisionOutcome":
        """Resolve all ``R`` trials\' rounds with one flattened gather.

        Dispatches on :attr:`kernel`: the ``"compiled"`` kernel fuses the
        gather/count/mask passes into one compiled walk over the stacked
        CSR, ``"edge_sampled"`` replaces them with a per-listener Bernoulli
        approximation, and the default ``"numpy"`` path below is the exact
        reference the others are measured against.

        The numpy reference lowers the transmitters of all trials onto the
        stacked block-diagonal CSR (extending
        :meth:`CollisionModel._gather_listener_edges`) and counts hearers
        over ``trial * n + listener`` ids — by one ``bincount`` when the
        round is dense, or by an argsort of the gathered edges when it is
        sparse.  Both strategies — and the fused compiled kernel — yield
        receivers in the scalar models\' edge order, which the
        exact-equivalence mode relies on.
        """
        trials, n = batch.trials, batch.n
        transmitters = np.asarray(transmitters)
        if transmitters.ndim == 2:
            if transmitters.shape != (trials, n):
                raise ValueError(
                    f"transmit masks must have shape ({trials}, {n}), "
                    f"got {transmitters.shape}"
                )
            tx_flat = np.flatnonzero(transmitters.reshape(-1))
        else:
            tx_flat = transmitters.astype(np.int64, copy=False)

        kernel = self.kernel
        if kernel == "edge_sampled":
            return self._edge_sampled_rule(
                batch, tx_flat, rng_source, listener_filter
            )
        if kernel == "compiled" and _kernels.compiled_available():
            return self._fused_rule(batch, tx_flat, listener_filter)

        listeners, edge_ends = (
            CollisionModel._gather_listener_edges(
                batch.out_indptr, batch.out_indices, tx_flat
            )
            if tx_flat.size
            else (batch.out_indices[:0], None)
        )
        total_edges = listeners.size
        if total_edges == 0:
            return BatchCollisionOutcome(
                receiver_flat=np.empty(0, dtype=np.int64),
                trials=trials,
                n=n,
                receiver_counts=np.zeros(trials, dtype=np.int64),
                sender_flat=np.empty(0, dtype=np.int64),
            )

        hear_dense = None
        delivered_mask = None
        if total_edges >= BatchCollisionModel._SPARSE_EDGE_THRESHOLD:
            flat_counts = np.bincount(listeners, minlength=batch.total_nodes)
            hear_dense = flat_counts.reshape(trials, n)
            if listener_filter is not None:
                # Dense scan: with an interest filter the receivers are just
                # the ids heard exactly once that the protocol still cares
                # about — no per-edge gather or compress at all.  The ids
                # come out sorted, which only the exact-equivalence mode
                # (which never passes a filter) would mind.
                receiver_flat = np.flatnonzero(
                    (flat_counts == 1) & listener_filter
                )
            else:
                delivered_mask = flat_counts[listeners] == 1
                receiver_flat = listeners[delivered_mask].astype(
                    np.int64, copy=False
                )
        else:
            order = np.argsort(listeners, kind="stable")
            sorted_listeners = listeners[order]
            run_first = np.empty(total_edges, dtype=bool)
            run_last = np.empty(total_edges, dtype=bool)
            run_first[0] = True
            run_first[1:] = sorted_listeners[1:] != sorted_listeners[:-1]
            run_last[-1] = True
            run_last[:-1] = run_first[1:]
            delivered_mask = np.empty(total_edges, dtype=bool)
            delivered_mask[order] = run_first & run_last
            if listener_filter is not None:
                delivered_mask &= listener_filter[listeners]
            receiver_flat = listeners[delivered_mask].astype(np.int64, copy=False)
        return BatchCollisionOutcome(
            receiver_flat=receiver_flat,
            trials=trials,
            n=n,
            listeners=listeners,
            edge_ends=edge_ends,
            tx_flat=tx_flat,
            delivered_mask=delivered_mask,
            hear_dense=hear_dense,
        )

    @staticmethod
    def _fused_rule(batch, tx_flat, listener_filter) -> "BatchCollisionOutcome":
        """Compiled single-pass resolution (bit-identical to the numpy path)."""
        trials, n = batch.trials, batch.n
        filter_arg = (
            listener_filter
            if listener_filter is not None
            else _EMPTY_FILTER
        )
        listeners, edge_ends, delivered_mask, flat_counts, receiver_flat = (
            _kernels.exactly_one_fused(
                batch.out_indptr,
                batch.out_indices,
                tx_flat,
                batch.total_nodes,
                filter_arg,
            )
            if tx_flat.size
            else (batch.out_indices[:0], None, None, None, None)
        )
        if listeners.size == 0:
            return BatchCollisionOutcome(
                receiver_flat=np.empty(0, dtype=np.int64),
                trials=trials,
                n=n,
                receiver_counts=np.zeros(trials, dtype=np.int64),
                sender_flat=np.empty(0, dtype=np.int64),
            )
        return BatchCollisionOutcome(
            receiver_flat=receiver_flat,
            trials=trials,
            n=n,
            listeners=listeners,
            edge_ends=edge_ends,
            tx_flat=tx_flat,
            delivered_mask=delivered_mask,
            hear_dense=flat_counts.reshape(trials, n),
        )

    @staticmethod
    def _edge_sampled_rule(
        batch, tx_flat, rng_source, listener_filter
    ) -> "BatchCollisionOutcome":
        """Edge-sampled approximation: O(R·n) per-listener Bernoulli draws.

        Replaces the per-edge gather with one delivery draw per listener
        under a mean-field transmit model (each in-neighbour transmits
        independently with the trial's transmit fraction).  Fast mode only —
        the engine never resolves this kernel under exact mode — and the
        shared fast-path generator supplies the draws.
        """
        if rng_source is None:
            raise ValueError(
                'kernel "edge_sampled" requires an rng_source for its '
                "delivery draws"
            )
        trials, n = batch.trials, batch.n
        if tx_flat.size == 0:
            return _EdgeSampledOutcome(
                receiver_flat=np.empty(0, dtype=np.int64),
                trials=trials,
                n=n,
                receiver_counts=np.zeros(trials, dtype=np.int64),
            )
        tx_counts = np.bincount(tx_flat // n, minlength=trials)
        probabilities = _kernels.edge_sampled_delivery_probabilities(
            batch.in_degrees, tx_counts, n
        )
        hit = rng_source.generator.random(batch.total_nodes) < probabilities
        if listener_filter is not None:
            hit &= listener_filter
        return _EdgeSampledOutcome(
            receiver_flat=np.flatnonzero(hit),
            trials=trials,
            n=n,
        )


#: Sentinel "no filter" argument for the fused kernel (numba specialises on
#: dtype, so the no-filter case passes an empty bool array instead of None).
_EMPTY_FILTER = np.empty(0, dtype=np.bool_)


class BatchStandardCollisionModel(BatchCollisionModel):
    """Batched :class:`StandardCollisionModel`."""

    detects_collisions = False
    resolves_deterministically = True

    def resolve(
        self,
        batch,
        transmitters: np.ndarray,
        rng_source=None,
        listener_filter: Optional[np.ndarray] = None,
    ) -> BatchCollisionOutcome:
        return self._batch_exactly_one_rule(
            batch, transmitters, listener_filter, rng_source
        )

    def __repr__(self) -> str:
        return "BatchStandardCollisionModel()"


class BatchWithCollisionDetectionModel(BatchCollisionModel):
    """Batched :class:`WithCollisionDetectionModel`."""

    detects_collisions = True
    resolves_deterministically = True

    def resolve(
        self,
        batch,
        transmitters: np.ndarray,
        rng_source=None,
        listener_filter: Optional[np.ndarray] = None,
    ) -> BatchCollisionOutcome:
        outcome = self._batch_exactly_one_rule(
            batch, transmitters, listener_filter, rng_source
        )
        outcome.detects_collisions = True
        return outcome

    def __repr__(self) -> str:
        return "BatchWithCollisionDetectionModel()"


class BatchErasureCollisionModel(BatchCollisionModel):
    """Batched :class:`ErasureCollisionModel`.

    In the exact-equivalence mode of the batch engine the keep/erase draws
    come one trial at a time from that trial's own generator — the same
    ``rng.random(receivers.size)`` call the scalar model makes — so batched
    runs are bit-identical to serial ones.
    """

    detects_collisions = False

    def __init__(self, erasure_probability: float):
        self.erasure_probability = check_probability(
            erasure_probability, "erasure_probability"
        )

    def resolve(
        self,
        batch,
        transmitters: np.ndarray,
        rng_source=None,
        listener_filter: Optional[np.ndarray] = None,
    ) -> BatchCollisionOutcome:
        if rng_source is None:
            raise ValueError("BatchErasureCollisionModel requires an rng_source")
        outcome = self._batch_exactly_one_rule(
            batch, transmitters, listener_filter, rng_source
        )
        if outcome.receiver_flat.size and self.erasure_probability > 0.0:
            keep = (
                rng_source.uniforms_for_counts(outcome.receiver_counts)
                >= self.erasure_probability
            )
            if not outcome.tracks_senders:
                # The approximation tracks no senders — erase receivers only.
                outcome.receiver_flat = outcome.receiver_flat[keep]
            else:
                # Materialise the senders against the pre-erasure receivers
                # before reassigning receiver_flat — the lazy getter derives
                # them from the receiver set, which is about to shrink.
                senders = outcome.sender_flat
                outcome.receiver_flat = outcome.receiver_flat[keep]
                outcome.sender_flat = senders[keep]
            outcome.receiver_counts = np.bincount(
                outcome.receiver_flat // batch.n, minlength=batch.trials
            )
        return outcome

    def __repr__(self) -> str:
        return (
            f"BatchErasureCollisionModel("
            f"erasure_probability={self.erasure_probability})"
        )


def as_batch_collision_model(model: CollisionModel) -> BatchCollisionModel:
    """Map a scalar collision model to its batched counterpart."""
    if isinstance(model, BatchCollisionModel):
        return model
    if isinstance(model, ErasureCollisionModel):
        return BatchErasureCollisionModel(model.erasure_probability)
    if isinstance(model, WithCollisionDetectionModel):
        return BatchWithCollisionDetectionModel()
    if isinstance(model, StandardCollisionModel):
        return BatchStandardCollisionModel()
    raise TypeError(
        f"no batched counterpart registered for {type(model).__name__}"
    )
