"""Collision semantics for the synchronous radio round.

The paper uses the standard radio-network collision rule: a node receives a
message in a round iff **exactly one** of its in-neighbours transmits, and
cannot distinguish a collision (two or more transmitters) from silence.

Two additional models are provided for ablations and the geometric-graph
extension experiment:

* :class:`WithCollisionDetectionModel` — receivers can tell "collision"
  apart from "silence" (they still receive no payload on a collision).
* :class:`ErasureCollisionModel` — standard rule, but each otherwise
  successful delivery is independently erased with a fixed probability
  (a crude model of fading).

All models operate on whole rounds at once and are fully vectorised.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro._util.validation import check_probability
from repro.radio.network import RadioNetwork

__all__ = [
    "CollisionOutcome",
    "CollisionModel",
    "StandardCollisionModel",
    "WithCollisionDetectionModel",
    "ErasureCollisionModel",
]


@dataclass(frozen=True)
class CollisionOutcome:
    """The resolved result of one synchronous round.

    Attributes
    ----------
    receivers:
        1-D array of node ids that successfully received a message this round.
    senders:
        1-D array (same length) with the unique transmitting in-neighbour that
        delivered to the corresponding receiver.
    hear_counts:
        ``n``-vector of how many in-neighbours of each node transmitted
        (before any erasure).  ``hear_counts[v] >= 2`` means ``v`` experienced
        a collision.
    collision_flags:
        ``n``-bool vector; under models with collision detection this marks
        the nodes that *detected* a collision.  All-``False`` under the
        standard model (nodes cannot detect collisions).
    """

    receivers: np.ndarray
    senders: np.ndarray
    hear_counts: np.ndarray
    collision_flags: np.ndarray


class CollisionModel:
    """Base class: resolve which transmissions are received in a round."""

    #: Whether receivers learn that a collision happened.
    detects_collisions: bool = False

    def resolve(
        self,
        network: RadioNetwork,
        transmit_mask: np.ndarray,
        rng: Optional[np.random.Generator] = None,
    ) -> CollisionOutcome:
        """Resolve one round.

        Parameters
        ----------
        network:
            The radio network.
        transmit_mask:
            Boolean ``n``-vector; ``True`` where the node transmits this round.
        rng:
            Random generator (only used by stochastic models).
        """
        raise NotImplementedError

    # ------------------------------------------------------------------ #
    # Shared vectorised machinery
    # ------------------------------------------------------------------ #
    @staticmethod
    def _hear_counts_and_unique_sender(
        network: RadioNetwork, transmit_mask: np.ndarray
    ) -> tuple:
        """Return (hear_counts, receivers, senders) under the exactly-one rule.

        ``receivers`` are the nodes with exactly one transmitting in-neighbour
        and ``senders[i]`` is that unique in-neighbour of ``receivers[i]``.
        """
        n = network.n
        transmit_mask = np.asarray(transmit_mask, dtype=bool)
        if transmit_mask.shape != (n,):
            raise ValueError(
                f"transmit_mask must have shape ({n},), got {transmit_mask.shape}"
            )
        tx_nodes = np.flatnonzero(transmit_mask)
        if tx_nodes.size == 0:
            empty = np.empty(0, dtype=np.int64)
            return np.zeros(n, dtype=np.int64), empty, empty

        indptr = network.out_indptr
        indices = network.out_indices
        starts = indptr[tx_nodes]
        ends = indptr[tx_nodes + 1]
        lengths = ends - starts
        total = int(lengths.sum())
        if total == 0:
            empty = np.empty(0, dtype=np.int64)
            return np.zeros(n, dtype=np.int64), empty, empty

        # Flat gather of all (transmitter -> listener) pairs this round.
        # offsets enumerate positions within each transmitter's row.
        row_origin = np.repeat(starts, lengths)
        within = np.arange(total, dtype=np.int64) - np.repeat(
            np.cumsum(lengths) - lengths, lengths
        )
        flat_edges = row_origin + within
        listeners = indices[flat_edges].astype(np.int64, copy=False)
        senders_per_edge = np.repeat(tx_nodes, lengths)

        hear_counts = np.bincount(listeners, minlength=n)
        receiver_mask = hear_counts == 1
        edge_to_receiver = receiver_mask[listeners]
        receivers = listeners[edge_to_receiver]
        senders = senders_per_edge[edge_to_receiver]
        return hear_counts, receivers, senders


class StandardCollisionModel(CollisionModel):
    """The paper's model: receive iff exactly one in-neighbour transmits."""

    detects_collisions = False

    def resolve(
        self,
        network: RadioNetwork,
        transmit_mask: np.ndarray,
        rng: Optional[np.random.Generator] = None,
    ) -> CollisionOutcome:
        hear_counts, receivers, senders = self._hear_counts_and_unique_sender(
            network, transmit_mask
        )
        return CollisionOutcome(
            receivers=receivers,
            senders=senders,
            hear_counts=hear_counts,
            collision_flags=np.zeros(network.n, dtype=bool),
        )

    def __repr__(self) -> str:
        return "StandardCollisionModel()"


class WithCollisionDetectionModel(CollisionModel):
    """Receivers can distinguish collision (>= 2 transmitters heard) from silence."""

    detects_collisions = True

    def resolve(
        self,
        network: RadioNetwork,
        transmit_mask: np.ndarray,
        rng: Optional[np.random.Generator] = None,
    ) -> CollisionOutcome:
        hear_counts, receivers, senders = self._hear_counts_and_unique_sender(
            network, transmit_mask
        )
        return CollisionOutcome(
            receivers=receivers,
            senders=senders,
            hear_counts=hear_counts,
            collision_flags=hear_counts >= 2,
        )

    def __repr__(self) -> str:
        return "WithCollisionDetectionModel()"


class ErasureCollisionModel(CollisionModel):
    """Standard rule plus i.i.d. erasure of successful deliveries.

    Parameters
    ----------
    erasure_probability:
        Probability that an otherwise successful delivery is lost.
    """

    detects_collisions = False

    def __init__(self, erasure_probability: float):
        self.erasure_probability = check_probability(
            erasure_probability, "erasure_probability"
        )

    def resolve(
        self,
        network: RadioNetwork,
        transmit_mask: np.ndarray,
        rng: Optional[np.random.Generator] = None,
    ) -> CollisionOutcome:
        if rng is None:
            raise ValueError("ErasureCollisionModel requires an rng")
        hear_counts, receivers, senders = self._hear_counts_and_unique_sender(
            network, transmit_mask
        )
        if receivers.size and self.erasure_probability > 0.0:
            keep = rng.random(receivers.size) >= self.erasure_probability
            receivers = receivers[keep]
            senders = senders[keep]
        return CollisionOutcome(
            receivers=receivers,
            senders=senders,
            hear_counts=hear_counts,
            collision_flags=np.zeros(network.n, dtype=bool),
        )

    def __repr__(self) -> str:
        return f"ErasureCollisionModel(erasure_probability={self.erasure_probability})"
