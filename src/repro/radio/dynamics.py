"""Topology dynamics for mobile networks.

The paper motivates its locality requirement with node mobility ("due to the
mobility of the nodes, the network topology changes over time") and notes
after Algorithm 2 that the gossiping algorithm becomes dynamic simply by
time-stamping rumours.  This module provides a small churn model used by the
``dynamic_gossip`` example and the geometric extension experiment:

* :class:`EdgeChurnModel` — every epoch, each existing edge is dropped with
  probability ``drop_probability`` and each absent (non-self-loop) edge is
  created with a probability chosen to keep the expected edge count stable.
* :class:`WaypointDriftModel` — nodes hold positions in the unit square and
  take Gaussian steps each epoch; the geometric radio network is rebuilt from
  the new positions.

Both produce a sequence of :class:`~repro.radio.network.RadioNetwork`
snapshots; the engine is simply re-run (or stepped) against each snapshot.
"""

from __future__ import annotations

from typing import Iterator, Optional

import numpy as np

from repro._util.rng import SeedLike, as_generator
from repro._util.validation import check_positive, check_positive_int, check_probability
from repro.radio.network import RadioNetwork

__all__ = ["EdgeChurnModel", "WaypointDriftModel"]


class EdgeChurnModel:
    """Random edge churn that keeps the expected number of edges stable."""

    def __init__(self, drop_probability: float = 0.05):
        self.drop_probability = check_probability(drop_probability, "drop_probability")

    def evolve(
        self, network: RadioNetwork, *, rng: SeedLike = None
    ) -> RadioNetwork:
        """Return a churned copy of ``network``."""
        generator = as_generator(rng)
        n = network.n
        edges = network.edge_list()
        m = edges.shape[0]
        if m == 0 or self.drop_probability == 0.0:
            return network

        keep = generator.random(m) >= self.drop_probability
        kept = edges[keep]
        expected_new = m - int(keep.sum())
        # Sample replacement edges uniformly among ordered non-loop pairs.
        new_edges = []
        attempts = 0
        max_attempts = 20 * max(1, expected_new)
        existing = set(map(tuple, kept.tolist()))
        while len(new_edges) < expected_new and attempts < max_attempts:
            u = int(generator.integers(0, n))
            v = int(generator.integers(0, n))
            attempts += 1
            if u == v or (u, v) in existing:
                continue
            existing.add((u, v))
            new_edges.append((u, v))
        if new_edges:
            kept = np.vstack([kept, np.asarray(new_edges, dtype=np.int64)])
        return RadioNetwork(n, kept, name=network.name or "churned")

    def snapshots(
        self, network: RadioNetwork, epochs: int, *, rng: SeedLike = None
    ) -> Iterator[RadioNetwork]:
        """Yield ``epochs`` successive churned snapshots (the first is the input)."""
        epochs = check_positive_int(epochs, "epochs")
        generator = as_generator(rng)
        current = network
        for _ in range(epochs):
            yield current
            current = self.evolve(current, rng=generator)


class WaypointDriftModel:
    """Gaussian drift of node positions in the unit square (torus wraparound)."""

    def __init__(self, step_std: float = 0.02, radius: float = 0.15):
        self.step_std = check_positive(step_std, "step_std")
        self.radius = check_positive(radius, "radius")

    def initial_positions(self, n: int, *, rng: SeedLike = None) -> np.ndarray:
        """Uniform positions in the unit square."""
        generator = as_generator(rng)
        return generator.random((check_positive_int(n, "n"), 2))

    def drift(self, positions: np.ndarray, *, rng: SeedLike = None) -> np.ndarray:
        """One Gaussian drift step with wraparound."""
        generator = as_generator(rng)
        positions = np.asarray(positions, dtype=float)
        moved = positions + generator.normal(0.0, self.step_std, positions.shape)
        return np.mod(moved, 1.0)

    def network_from_positions(
        self, positions: np.ndarray, *, name: str = "waypoint"
    ) -> RadioNetwork:
        """Unit-disk radio network induced by ``positions`` and :attr:`radius`."""
        from repro.graphs.geometric import geometric_digraph_from_positions

        return geometric_digraph_from_positions(positions, self.radius, name=name)

    def snapshots(
        self, n: int, epochs: int, *, rng: SeedLike = None
    ) -> Iterator[RadioNetwork]:
        """Yield ``epochs`` network snapshots following the drifting positions."""
        epochs = check_positive_int(epochs, "epochs")
        generator = as_generator(rng)
        positions = self.initial_positions(n, rng=generator)
        for epoch in range(epochs):
            yield self.network_from_positions(positions, name=f"waypoint[{epoch}]")
            positions = self.drift(positions, rng=generator)
