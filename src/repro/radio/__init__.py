"""Radio-network simulation substrate.

This package implements the communication model of Section 1.2 of the paper:

* the network is a **directed** graph ``G = (V, E)``; an edge ``(u, v)``
  means that a transmission by ``u`` can be heard by ``v`` (``u`` lies inside
  ``v``'s listening range) — not necessarily vice versa;
* time proceeds in **synchronous rounds**; in each round every node decides
  (based only on local state, the round number and global constants such as
  ``n`` and optionally ``D``) whether to transmit;
* a node ``v`` **receives** a message in a round iff *exactly one* of its
  in-neighbours transmits in that round; if two or more transmit, the
  messages collide and ``v`` hears nothing (and cannot even detect the
  collision under the standard model);
* there are no acknowledgements and no collision detection;
* **energy** is the number of transmissions (fixed transmission power).

Public surface:

* :class:`~repro.radio.network.RadioNetwork` — CSR digraph container.
* :class:`~repro.radio.protocol.Protocol` — base class for oblivious
  protocols (what the paper calls "algorithms").
* :class:`~repro.radio.engine.SimulationEngine` and
  :func:`~repro.radio.engine.run_protocol` — the synchronous round engine.
* :class:`~repro.radio.energy.EnergyAccountant` — transmission accounting.
* :mod:`~repro.radio.collision` — pluggable collision semantics.
* :mod:`~repro.radio.trace` — per-round traces and run summaries.
* :mod:`~repro.radio.batch` — the batched Monte-Carlo engine: ``R``
  independent trials advanced per vectorised round on stacked ``(R, n)``
  state, with per-trial completion masking and an exact-equivalence mode.
* :mod:`~repro.radio.nodesets` — pluggable node-set state backends (dense
  boolean arrays, bitset-packed ``uint64`` words, sparse frontier index
  pools) behind the :class:`~repro.radio.nodesets.NodeSetKernel` the batch
  protocols bind against.
* :mod:`~repro.radio.environment` — composable faulty-world layers (i.i.d.
  and burst message loss, crash/churn schedules, adversarial jamming,
  wake-up asynchrony) wrapped around collision resolution, with scalar and
  batched mirrors pinned bit-identical in exact mode.
"""

from repro.radio.batch import (
    BatchBroadcastProtocol,
    BatchEngine,
    BatchGossipProtocol,
    BatchProtocol,
    BatchRandomSource,
    NetworkBatch,
    ScheduledTransmissions,
    resolve_scheduled_rounds,
    run_protocol_batch,
)
from repro.radio.collision import (
    BatchCollisionModel,
    BatchCollisionOutcome,
    BatchErasureCollisionModel,
    BatchStandardCollisionModel,
    BatchWithCollisionDetectionModel,
    CollisionModel,
    CollisionOutcome,
    ErasureCollisionModel,
    StandardCollisionModel,
    WithCollisionDetectionModel,
    as_batch_collision_model,
)
from repro.radio.energy import BatchEnergyAccountant, EnergyAccountant, EnergyReport
from repro.radio.nodesets import (
    STATE_BACKENDS,
    NodeSetKernel,
    resolve_kernel,
    select_backend,
)
from repro.radio.engine import SimulationEngine, run_protocol
from repro.radio.environment import (
    ENVIRONMENT_FAMILIES,
    BatchEnvironment,
    BurstLossEnvironment,
    ChurnEnvironment,
    ComposedEnvironment,
    Environment,
    IidLossEnvironment,
    JamEnvironment,
    NullEnvironment,
    WakeupEnvironment,
    as_batch_environment,
    build_batch_environment,
    build_environment,
    parse_environment_option,
    validate_environment_spec,
)
from repro.radio.network import RadioNetwork
from repro.radio.protocol import BroadcastProtocol, GossipProtocol, Protocol
from repro.radio.trace import RoundRecord, RunResultTrace

__all__ = [
    "RadioNetwork",
    "NetworkBatch",
    "Protocol",
    "BroadcastProtocol",
    "GossipProtocol",
    "BatchProtocol",
    "BatchBroadcastProtocol",
    "BatchGossipProtocol",
    "SimulationEngine",
    "run_protocol",
    "BatchEngine",
    "BatchRandomSource",
    "ScheduledTransmissions",
    "resolve_scheduled_rounds",
    "run_protocol_batch",
    "EnergyAccountant",
    "BatchEnergyAccountant",
    "EnergyReport",
    "CollisionModel",
    "CollisionOutcome",
    "StandardCollisionModel",
    "WithCollisionDetectionModel",
    "ErasureCollisionModel",
    "BatchCollisionModel",
    "BatchCollisionOutcome",
    "BatchStandardCollisionModel",
    "BatchWithCollisionDetectionModel",
    "BatchErasureCollisionModel",
    "as_batch_collision_model",
    "STATE_BACKENDS",
    "NodeSetKernel",
    "resolve_kernel",
    "select_backend",
    "Environment",
    "NullEnvironment",
    "IidLossEnvironment",
    "BurstLossEnvironment",
    "ChurnEnvironment",
    "JamEnvironment",
    "WakeupEnvironment",
    "ComposedEnvironment",
    "BatchEnvironment",
    "ENVIRONMENT_FAMILIES",
    "build_environment",
    "build_batch_environment",
    "as_batch_environment",
    "validate_environment_spec",
    "parse_environment_option",
    "RoundRecord",
    "RunResultTrace",
]
