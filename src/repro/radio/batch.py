"""Batched Monte-Carlo simulation: ``R`` independent trials per round.

Every experiment in this repository is a Monte-Carlo sweep — the same
``(n, p, protocol)`` point repeated over dozens of seeds.  The serial
:class:`~repro.radio.engine.SimulationEngine` pays the full Python round-loop
overhead once *per trial*; this module makes the repetition axis an array
dimension instead:

* :class:`NetworkBatch` stacks ``R`` equally-sized networks into one
  block-diagonal CSR, so collision resolution for all trials is a single
  flattened gather plus one ``bincount`` over ``trial * n + listener`` ids
  (see :class:`~repro.radio.collision.BatchCollisionModel`).
* :class:`BatchProtocol` (and the broadcast/gossip bases) keep per-node state
  in whole-batch node-set structures and advance every trial with one set of
  vectorised operations per round.  The state representation is pluggable
  (:mod:`repro.radio.nodesets`): dense boolean arrays, bitset-packed
  ``uint64`` words (8x smaller gossip knowledge tensors), or sparse frontier
  index pools (Decay/flooding at large ``n``) — selected automatically per
  workload or forced via ``state_backend=``; every backend is bit-identical
  to dense under the exact rng mode.
* :class:`BatchEngine` owns the batched round loop, masking out trials that
  have individually completed (or gone quiescent) so a finished trial costs
  nothing while its siblings run on.
* When a protocol commits to a fixed future transmission schedule
  (:meth:`BatchProtocol.presampled_schedule` — Algorithm 1's fast-mode
  Phase 3 does), the engine resolves the scheduled rounds ahead of time in
  sliced mega-gathers (:func:`resolve_scheduled_rounds`): the rounds are
  mutually independent once the transmitters are fixed, so the exactly-one
  rule is applied over composite ``round * total_nodes + listener`` keys,
  pruned against the protocol's current interest set at every slice.

This module is the execution substrate of the *unified pipeline*: every
protocol in ``repro.experiments.protocols.PROTOCOL_FACTORIES`` has a batched
implementation registered in ``BATCH_PROTOCOL_FACTORIES``, and the
experiment runner's ``ExecutionPlan`` composes this engine with process
fan-out (each worker runs one :class:`NetworkBatch` shard of a sweep).

Randomness comes in two modes, selected by the :class:`BatchRandomSource`
the engine builds:

* **fast** (default): one shared generator serves all trials with single
  vectorised draws per round.  Results are statistically identical to serial
  runs but not bit-identical.
* **exact**: one child generator per trial, consumed in exactly the calls
  the serial engine + protocol would make.  Batched runs are then
  *bit-identical* to serial runs trial by trial — the equivalence tests in
  ``tests/test_batch_engine.py`` assert this for broadcast, gossip and the
  erasure collision model.
"""

from __future__ import annotations

import abc
import time
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Union

import numpy as np

from repro import telemetry
from repro._util.rng import SeedLike, as_generator
from repro._util.validation import check_node_index, check_positive_int
from repro.radio.collision import (
    BatchCollisionModel,
    BatchCollisionOutcome,
    BatchStandardCollisionModel,
    CollisionModel,
    as_batch_collision_model,
)
from repro.radio.energy import BatchEnergyAccountant
from repro.radio.environment import (
    BatchEnvironment,
    as_batch_environment,
    build_batch_environment,
)
from repro.radio.kernels import COLLISION_KERNELS, resolve_collision_kernel
from repro.radio.network import RadioNetwork
from repro.radio.nodesets import (
    KnowledgeState,
    NodeSetKernel,
    NodeSetState,
    STATE_BACKENDS,
    resolve_kernel,
)
from repro.radio.trace import RoundRecord, RunResultTrace

__all__ = [
    "NetworkBatch",
    "BatchRandomSource",
    "BatchProtocol",
    "BatchBroadcastProtocol",
    "BatchGossipProtocol",
    "BatchEngine",
    "PendingTrial",
    "ScheduledTransmissions",
    "resolve_scheduled_rounds",
    "run_protocol_batch",
]


class NetworkBatch:
    """``R`` equally-sized radio networks stacked block-diagonally.

    Trial ``t``'s node ``v`` becomes flat node ``t * n + v``; no edge crosses
    a trial boundary, so any whole-round computation on the stacked CSR is
    exactly ``R`` independent per-trial computations.

    Parameters
    ----------
    networks:
        The per-trial topologies.  All must have the same number of nodes.
        Pass the same network object ``R`` times (or use :meth:`shared`) to
        run every trial on one shared topology.
    """

    __slots__ = (
        "networks",
        "trials",
        "n",
        "total_nodes",
        "out_indptr",
        "out_indices",
        "_in_degrees",
    )

    def __init__(self, networks: Sequence[RadioNetwork]):
        networks = list(networks)
        if not networks:
            raise ValueError("NetworkBatch needs at least one network")
        n = networks[0].n
        for net in networks[1:]:
            if net.n != n:
                raise ValueError(
                    f"all networks in a batch must have the same size; "
                    f"got {net.n} and {n}"
                )
        trials = len(networks)
        self.networks = networks
        self.trials = trials
        self.n = n
        self.total_nodes = trials * n
        self._in_degrees = None

        if trials * n > np.iinfo(np.int32).max:
            raise ValueError(
                f"batch of {trials} x {n} nodes exceeds the int32 id space; "
                "split the repetitions into smaller batches"
            )
        first = networks[0]
        if trials > 1 and all(net is first for net in networks):
            # Shared-topology tiling: one broadcast add per array instead of
            # a Python loop over R identical blocks.  Produces arrays
            # bit-identical to the general path below.
            num_edges = first.num_edges
            indptr = np.empty(self.total_nodes + 1, dtype=np.int64)
            indptr[0] = 0
            edge_offsets = np.arange(trials, dtype=np.int64) * num_edges
            indptr[1:] = (
                first.out_indptr[1:][None, :] + edge_offsets[:, None]
            ).reshape(-1)
            indices = np.empty(trials * num_edges, dtype=np.int32)
            node_offsets = np.arange(trials, dtype=np.int64) * n
            np.add(
                first.out_indices[None, :],
                node_offsets[:, None],
                out=indices.reshape(trials, num_edges),
                casting="unsafe",
            )
            self.out_indptr = indptr
            self.out_indices = indices
            return
        total_edges = sum(net.num_edges for net in networks)
        indptr = np.empty(self.total_nodes + 1, dtype=np.int64)
        indptr[0] = 0
        # int32 flat ids halve the memory traffic of the per-round gathers.
        indices = np.empty(total_edges, dtype=np.int32)
        edge_offset = 0
        for t, net in enumerate(networks):
            ip = net.out_indptr
            indptr[t * n + 1 : (t + 1) * n + 1] = ip[1:] + edge_offset
            block = indices[edge_offset : edge_offset + net.num_edges]
            np.add(net.out_indices, np.int32(t * n), out=block, casting="unsafe")
            edge_offset += net.num_edges
        self.out_indptr = indptr
        self.out_indices = indices

    @classmethod
    def shared(cls, network: RadioNetwork, trials: int) -> "NetworkBatch":
        """Batch that runs every trial on the same shared topology."""
        trials = check_positive_int(trials, "trials")
        return cls([network] * trials)

    @property
    def edge_density(self) -> float:
        """Fraction of possible (directed, loop-free) edges present."""
        possible = self.trials * self.n * max(self.n - 1, 1)
        return self.out_indices.size / possible

    @property
    def in_degrees(self) -> np.ndarray:
        """Flat per-node in-degrees (built on first access, then cached).

        Consumed by the edge-sampled collision kernel, whose per-listener
        delivery probability depends only on the listener's in-degree.
        """
        if self._in_degrees is None:
            self._in_degrees = np.bincount(
                self.out_indices, minlength=self.total_nodes
            )
        return self._in_degrees

    def __repr__(self) -> str:
        return f"NetworkBatch(trials={self.trials}, n={self.n})"


class BatchRandomSource:
    """Random draws for a batch of trials, in fast or exact mode.

    Fast mode serves every request from one shared generator with a single
    vectorised draw.  Exact mode holds one generator per trial and consumes
    each trial's stream with exactly the calls the serial path would make
    (``rng.random(k)`` per trial, trials in ascending order), which is what
    makes batched runs bit-identical to serial ones.
    """

    def __init__(
        self,
        *,
        generator: Optional[np.random.Generator] = None,
        per_trial: Optional[Sequence[np.random.Generator]] = None,
    ):
        if (generator is None) == (per_trial is None):
            raise ValueError("provide exactly one of generator / per_trial")
        self._generator = generator
        self._per_trial = list(per_trial) if per_trial is not None else None

    @classmethod
    def fast(cls, rng: SeedLike = None) -> "BatchRandomSource":
        """Shared-generator mode (vectorised, not stream-equivalent)."""
        return cls(generator=as_generator(rng))

    @classmethod
    def exact(cls, rngs: Sequence[SeedLike]) -> "BatchRandomSource":
        """Per-trial-generator mode (bit-identical to serial runs)."""
        return cls(per_trial=[as_generator(r) for r in rngs])

    @property
    def exact_mode(self) -> bool:
        """True when each trial owns its generator (serial-equivalent draws)."""
        return self._per_trial is not None

    @property
    def generator(self) -> np.random.Generator:
        """The shared generator (fast mode only)."""
        if self._generator is None:
            raise RuntimeError("no shared generator in exact mode")
        return self._generator

    def generator_for_trial(self, trial: int) -> np.random.Generator:
        """Trial ``trial``'s own generator (exact mode only)."""
        if self._per_trial is None:
            raise RuntimeError("no per-trial generators in fast mode")
        return self._per_trial[trial]

    # ------------------------------------------------------------------ #
    # Draw helpers (uniforms in [0, 1))
    # ------------------------------------------------------------------ #
    def uniforms_for_counts(self, counts: np.ndarray) -> np.ndarray:
        """``counts[t]`` uniforms per trial, concatenated in trial order.

        Exact mode draws trial ``t``'s block as one ``random(counts[t])``
        call from trial ``t``'s generator — the same call (and therefore the
        same values, assigned in the caller's trial-major order) the serial
        protocol makes.
        """
        counts = np.asarray(counts)
        if not self.exact_mode:
            return self._generator.random(int(counts.sum()))
        chunks = [
            self._per_trial[t].random(int(c))
            for t, c in enumerate(counts)
            if c
        ]
        return np.concatenate(chunks) if chunks else np.empty(0)

    def uniform_rows(self, rows: np.ndarray, n: int) -> np.ndarray:
        """A ``(k, n)`` uniform matrix for the ``k`` trials flagged in ``rows``."""
        rows = np.asarray(rows, dtype=bool)
        k = int(rows.sum())
        if not self.exact_mode:
            return self._generator.random((k, n))
        if k == 0:
            return np.empty((0, n))
        return np.stack(
            [self._per_trial[t].random(n) for t in np.flatnonzero(rows)]
        )

    def select_trials(self, keep: np.ndarray) -> "BatchRandomSource":
        """The source for the trials where ``keep`` is True (compaction).

        Exact mode keeps the surviving trials' generator *objects* — their
        stream positions travel with them, and per-trial streams are
        position-independent by construction, so neither the row a trial
        occupies nor who shares its batch can change its draws.  Fast mode
        returns ``self``: one shared stream serves any row count.
        """
        if not self.exact_mode:
            return self
        keep = np.asarray(keep, dtype=bool)
        return BatchRandomSource(
            per_trial=[g for g, k in zip(self._per_trial, keep) if k]
        )

    @property
    def trial_generators(self) -> List[np.random.Generator]:
        """The per-trial generator objects, in trial order (exact mode only)."""
        if self._per_trial is None:
            raise RuntimeError("no per-trial generators in fast mode")
        return self._per_trial

    def geometrics_for_counts(self, p: float, counts: np.ndarray) -> np.ndarray:
        """``counts[t]`` Geometric(p) draws per trial, concatenated in trial order.

        Exact mode draws trial ``t``'s block as one ``geometric(p, counts[t])``
        call from trial ``t``'s generator — the call the serial Decay protocol
        makes at a phase boundary.
        """
        counts = np.asarray(counts)
        if not self.exact_mode:
            return self._generator.geometric(p, size=int(counts.sum()))
        chunks = [
            self._per_trial[t].geometric(p, size=int(c))
            for t, c in enumerate(counts)
            if c
        ]
        return np.concatenate(chunks) if chunks else np.empty(0, dtype=np.int64)


@dataclass(frozen=True)
class ScheduledTransmissions:
    """A protocol's committed transmission schedule for a block of rounds.

    Once a protocol's remaining randomness is fixed (Algorithm 1's fast-mode
    Phase 3 pre-samples every pool node's unique transmission round), the
    transmitters of every future round are known in advance and the rounds
    become mutually independent: collision resolution for all of them can be
    done up front by :func:`resolve_scheduled_rounds` in one chunked
    mega-gather instead of one small gather per round.

    Attributes
    ----------
    tx_flat:
        Flat transmitter ids (``trial * n + node``) of every scheduled round,
        concatenated round-major; within a round the ids are sorted.
    offsets:
        Monotone slice boundaries, one entry per covered round plus one:
        round ``first_round + j`` transmits ``tx_flat[offsets[j]:offsets[j+1]]``.
    first_round:
        Engine round index of ``offsets``' first slice.
    """

    tx_flat: np.ndarray
    offsets: np.ndarray
    first_round: int

    @property
    def num_rounds(self) -> int:
        """How many rounds the schedule covers."""
        return len(self.offsets) - 1

    def slice(self, start: int, stop: int) -> "ScheduledTransmissions":
        """The sub-schedule covering schedule-relative rounds ``[start, stop)``.

        The engine resolves a long schedule in slices so each slice can be
        pruned against the protocol's *current* interest set — which shrinks
        fast while the schedule plays out — and so rounds beyond an early
        finish are never resolved at all.
        """
        offs = self.offsets
        return ScheduledTransmissions(
            tx_flat=self.tx_flat[offs[start] : offs[stop]],
            offsets=offs[start : stop + 1] - offs[start],
            first_round=self.first_round + start,
        )


def resolve_scheduled_rounds(
    batch: "NetworkBatch",
    schedule: ScheduledTransmissions,
    *,
    listener_filter: Optional[np.ndarray] = None,
    max_chunk_edges: int = 1 << 22,
) -> Dict[int, np.ndarray]:
    """Resolve every scheduled round's deliveries in chunked mega-gathers.

    Rounds whose transmitters are already fixed are independent of one another
    and of any protocol state, so instead of one CSR gather per round the
    listener edges of *many* rounds are gathered at once and the exactly-one
    rule is applied over composite ``round * total_nodes + listener`` keys —
    one sort replaces per-round Python overhead.  Chunking along rounds
    bounds peak memory to ``O(max_chunk_edges)`` gathered edges.

    ``listener_filter`` (a flat bool vector, nodes the protocol still cares
    about — e.g. a broadcast's uninformed set when the schedule is resolved)
    prunes the composite keys right after the gather: a listener's hear count
    depends only on the edges pointing *at it*, so dropping every edge into
    an uninteresting listener leaves the surviving listeners' counts — and
    therefore their deliveries — unchanged while typically shrinking the sort
    by an order of magnitude.  The filter is a snapshot: deliveries to nodes
    that become uninteresting *during* the scheduled block are retained
    (a superset of what per-round filtering would keep), which is observably
    equivalent for protocols whose interest set only shrinks.

    Returns a mapping ``round_index -> sorted flat receiver ids`` for every
    round the schedule covers (empty rounds included).  Only valid under
    deterministic collision resolution (no erasure) — the caller gates this.
    """
    tx_all = schedule.tx_flat
    offsets = np.asarray(schedule.offsets, dtype=np.int64)
    num_rounds = len(offsets) - 1
    total_nodes = batch.total_nodes
    outcomes: Dict[int, np.ndarray] = {
        schedule.first_round + j: tx_all[:0].astype(np.int64)
        for j in range(num_rounds)
    }
    if tx_all.size == 0 or num_rounds == 0:
        return outcomes

    # Per-transmitter out-degrees let us chunk on gathered-edge volume.
    degrees = batch.out_indptr[tx_all + 1] - batch.out_indptr[tx_all]
    edge_cum = np.concatenate([[0], np.cumsum(degrees)])

    start = 0
    while start < num_rounds:
        stop = start + 1
        while (
            stop < num_rounds
            and edge_cum[offsets[stop + 1]] - edge_cum[offsets[start]]
            <= max_chunk_edges
        ):
            stop += 1
        lo, hi = int(offsets[start]), int(offsets[stop])
        tx_chunk = tx_all[lo:hi]
        if tx_chunk.size:
            round_of_tx = (
                np.searchsorted(offsets, np.arange(lo, hi), side="right") - 1
            )
            listeners, _ = CollisionModel._gather_listener_edges(
                batch.out_indptr, batch.out_indices, tx_chunk
            )
            if listeners.size:
                round_of_edge = np.repeat(round_of_tx, degrees[lo:hi])
                if listener_filter is not None:
                    interesting = listener_filter[listeners]
                    listeners = listeners[interesting]
                    round_of_edge = round_of_edge[interesting]
            if listeners.size:
                keys = round_of_edge * np.int64(total_nodes) + listeners
                keys.sort()
                run_first = np.empty(keys.size, dtype=bool)
                run_last = np.empty(keys.size, dtype=bool)
                run_first[0] = True
                run_first[1:] = keys[1:] != keys[:-1]
                run_last[-1] = True
                run_last[:-1] = run_first[1:]
                delivered = keys[run_first & run_last]
                rounds_of_delivery = delivered // total_nodes
                receivers = delivered % total_nodes
                bounds = np.searchsorted(
                    rounds_of_delivery, np.arange(start, stop + 1)
                )
                for j in range(start, stop):
                    block = receivers[bounds[j - start] : bounds[j - start + 1]]
                    if block.size:
                        outcomes[schedule.first_round + j] = block
        start = stop
    return outcomes


class _ScheduledOutcome(BatchCollisionOutcome):
    """Outcome rebuilt from pre-resolved receivers: receivers only.

    Scheduled resolution never materialises senders or hear counts, and the
    lazy base-class getters would silently fabricate empty/zero values for
    them — wrong-but-plausible data for any future protocol that both
    presamples a schedule and consults collision feedback.  Fail loudly
    instead.
    """

    tracks_senders = False

    _UNAVAILABLE = (
        "{field} is not available on a scheduled-resolution outcome; "
        "protocols that consult it must not offer a presampled_schedule "
        "(or the engine must run with scheduled_resolution=False)"
    )

    @property
    def sender_flat(self) -> np.ndarray:
        raise RuntimeError(self._UNAVAILABLE.format(field="sender_flat"))

    @property
    def hear_counts(self) -> np.ndarray:
        raise RuntimeError(self._UNAVAILABLE.format(field="hear_counts"))

    @property
    def collision_flags(self) -> np.ndarray:
        raise RuntimeError(self._UNAVAILABLE.format(field="collision_flags"))


class _RowSliceOutcome(BatchCollisionOutcome):
    """One cohort's row-slice of a union collision outcome.

    The continuous engine resolves all cohorts in one union gather, then
    hands each cohort its own rows re-addressed into the cohort's trial
    space.  Fields the union resolution did not materialise (senders unless
    a protocol declared :attr:`BatchProtocol.needs_senders` or an
    environment is active; hear counts unless the model detects collisions)
    fail loudly instead of lazily fabricating the empty values the base
    class would.
    """

    __slots__ = ()

    tracks_senders = False

    _UNAVAILABLE = (
        "{field} is not available on this row-sliced outcome; the "
        "continuous engine only materialises senders for cohorts whose "
        "protocol declares needs_senders (or under an active environment) "
        "and hear counts under a collision-detecting model"
    )

    @property
    def sender_flat(self) -> np.ndarray:
        raise RuntimeError(self._UNAVAILABLE.format(field="sender_flat"))

    @property
    def hear_counts(self) -> np.ndarray:
        if self._hear_dense is None:
            raise RuntimeError(self._UNAVAILABLE.format(field="hear_counts"))
        return self._hear_dense


class _RowSliceOutcomeWithSenders(_RowSliceOutcome):
    """Row-sliced outcome whose senders were materialised from the union."""

    __slots__ = ()

    tracks_senders = True

    @property
    def sender_flat(self) -> np.ndarray:
        if self._sender_flat is None:
            raise RuntimeError(self._UNAVAILABLE.format(field="sender_flat"))
        return self._sender_flat

    @sender_flat.setter
    def sender_flat(self, value: np.ndarray) -> None:
        # Environments reshape the delivery set in place (receiver-side
        # loss); the base-class setter is shadowed by the property above.
        self._sender_flat = value


def _slice_outcome_rows(
    outcome: BatchCollisionOutcome,
    row_lo: int,
    row_hi: int,
    *,
    with_senders: bool,
) -> BatchCollisionOutcome:
    """Slice a union outcome down to trials ``[row_lo, row_hi)``.

    ``receiver_flat`` is trial-major sorted, so the cohort's block is found
    with two binary searches; senders are aligned index-for-index with the
    receivers, so the same slice applies.  The result's ids live in the
    cohort's own trial space (``trial - row_lo``).
    """
    n = outcome.n
    offset = np.int64(row_lo) * n
    lo, hi = np.searchsorted(
        outcome.receiver_flat, [offset, np.int64(row_hi) * n]
    )
    receiver = outcome.receiver_flat[lo:hi] - offset
    hear = (
        outcome.hear_counts[row_lo:row_hi]
        if outcome.detects_collisions
        else None
    )
    sender = None
    cls = _RowSliceOutcome
    if with_senders and outcome.tracks_senders:
        cls = _RowSliceOutcomeWithSenders
        sender = outcome.sender_flat[lo:hi] - offset
    return cls(
        receiver_flat=receiver,
        trials=row_hi - row_lo,
        n=n,
        sender_flat=sender,
        hear_dense=hear,
        detects_collisions=outcome.detects_collisions,
    )


class BatchProtocol(abc.ABC):
    """Base class for batched protocols: ``R`` trials on stacked state.

    The lifecycle mirrors :class:`~repro.radio.protocol.Protocol`, with every
    hook operating on whole-batch data and a ``running`` mask of trials still
    being advanced::

        protocol.bind(batch, rng_source)
        for r in range(max_rounds):
            tx_flat = protocol.transmit_flat(r, running)     # sorted flat ids
            outcome = collision_model.resolve(batch, tx_flat, rng_source)
            protocol.observe(r, tx_flat, outcome, running)
            ... engine updates `running` from completed()/quiescent() ...

    Transmitters travel as sorted *flat* node ids (``trial * n + node``) so a
    round's cost scales with the number of transmitters, not with ``R * n``;
    protocols whose decision rule is naturally dense implement
    :meth:`transmit_masks` instead and inherit the flattening.

    Implementations must not consume randomness for trials outside
    ``running`` (the rng helpers make this natural), so a trial's stream is
    untouched after it stops — a requirement of the exact-equivalence mode.
    """

    #: Same machine-readable name as the serial counterpart, so batched runs
    #: drop into existing experiment tables unchanged.
    name: str = "batch-protocol"

    #: State shape consumed by the backend auto-selection heuristic
    #: (:func:`repro.radio.nodesets.select_backend`): ``"knowledge"`` for
    #: gossip's ``(R, n, n)`` tensor, ``"frontier"`` for quota/budget-pool
    #: protocols (Decay, deterministic flooding), ``"plain"`` otherwise.
    state_profile: str = "plain"

    #: Whether :meth:`observe` consumes ``outcome.sender_flat``.  The
    #: continuous engine only materialises (and row-slices) sender
    #: identities from its union outcomes for cohorts that need them.
    needs_senders: bool = False

    def __init__(self) -> None:
        self._batch: Optional[NetworkBatch] = None
        self._rng_source: Optional[BatchRandomSource] = None
        self._kernel: Optional[NodeSetKernel] = None

    # ------------------------------------------------------------------ #
    # Lifecycle
    # ------------------------------------------------------------------ #
    def bind(
        self,
        batch: NetworkBatch,
        rng_source: BatchRandomSource,
        kernel: Optional[NodeSetKernel] = None,
    ) -> None:
        """Attach to a network batch and reset all per-run state.

        ``kernel`` picks the node-set state backend; when omitted the
        ``"auto"`` heuristic resolves one from the batch shape and the
        protocol's :attr:`state_profile`.  Every backend is bit-identical
        under the exact rng mode, so the choice is purely a space/time one.
        """
        self._batch = batch
        self._rng_source = rng_source
        if kernel is None:
            kernel = resolve_kernel(
                "auto",
                batch.trials,
                batch.n,
                profile=self.state_profile,
                density=batch.edge_density,
            )
        self._kernel = kernel
        self._setup()

    def _setup(self) -> None:
        """Initialise per-run state (called from :meth:`bind`). Override."""

    def compact(
        self,
        keep: np.ndarray,
        batch: NetworkBatch,
        rng_source: BatchRandomSource,
    ) -> None:
        """Shrink per-trial state to the trials where ``keep`` is True.

        The continuous engine compacts a live batch by rebinding the
        protocol to the row-selected ``batch`` / ``rng_source`` and asking
        every per-trial state holder to repack itself.  Surviving trials
        keep their relative order (trial ``t`` lands in row
        ``keep[:t].sum()``) — the same remapping the engine applies to the
        stacked CSR, the accountant and the environment.  Subclasses with
        per-trial state beyond the base classes' override
        :meth:`_compact_state` (or the broadcast/gossip hooks).
        """
        self._batch = batch
        self._rng_source = rng_source
        self._compact_state(np.asarray(keep, dtype=bool))

    def _compact_state(self, keep: np.ndarray) -> None:
        """Subclass hook: row-select any additional per-trial state."""

    def transmit_flat(self, round_index: int, running: np.ndarray) -> np.ndarray:
        """Sorted flat ids of this round's transmitters (running trials only).

        The default flattens :meth:`transmit_masks`; sparse protocols
        override this directly and never materialise an ``(R, n)`` mask.
        """
        masks = np.asarray(self.transmit_masks(round_index, running), dtype=bool)
        if masks.shape != (self.trials, self.n):
            raise ValueError(
                f"transmit_masks must have shape ({self.trials}, {self.n}), "
                f"got {masks.shape}"
            )
        masks = masks & running[:, None]
        return np.flatnonzero(masks.reshape(-1))

    def transmit_masks(self, round_index: int, running: np.ndarray) -> np.ndarray:
        """Boolean ``(R, n)`` transmit matrix (dense-protocol hook)."""
        raise NotImplementedError(
            f"{type(self).__name__} must override transmit_flat or transmit_masks"
        )

    def observe(
        self,
        round_index: int,
        tx_flat: np.ndarray,
        outcome: BatchCollisionOutcome,
        running: np.ndarray,
    ) -> None:
        """Update per-trial state from the resolved round (override as needed)."""

    def listener_interest(self) -> Optional[np.ndarray]:
        """Flat bool vector of nodes whose deliveries the protocol still uses.

        When a protocol ignores deliveries to some nodes (a broadcast ignores
        deliveries to already-informed nodes), returning that mask lets the
        engine drop uninteresting deliveries inside collision resolution —
        late rounds then cost O(new information), not O(deliveries).  Only
        consulted in fast mode with ``record_rounds`` off, where trimmed
        outcomes are observably equivalent.  ``None`` keeps every delivery.
        """
        return None

    def presampled_schedule(
        self, round_index: int
    ) -> Optional[ScheduledTransmissions]:
        """The committed transmission schedule from ``round_index`` on, if any.

        A protocol that can fix all of its remaining randomness up front
        (Algorithm 1's fast-mode Phase 3) returns a
        :class:`ScheduledTransmissions` here; the engine then resolves every
        scheduled round's collisions in one chunked mega-gather
        (:func:`resolve_scheduled_rounds`) instead of one gather per round.
        The engine still calls :meth:`transmit_flat` every round (for energy
        accounting and per-trial ``running`` gating), so the returned
        schedule must enumerate the *ungated* transmitters — the engine
        intersects outcomes with the live ``running`` mask itself.  Return
        ``None`` (the default) to keep per-round resolution.
        """
        return None

    @abc.abstractmethod
    def completed(self) -> np.ndarray:
        """Per-trial bool vector: objective reached."""

    def quiescent(self, round_index: int) -> np.ndarray:
        """Per-trial bool vector: no node will ever transmit again."""
        return self.completed()

    def suggested_max_rounds(self) -> int:
        """Horizon after which the engine gives up (same for all trials)."""
        return 4 * self.n * max(1, int(np.log2(max(2, self.n))))

    def informed_counts(self) -> Optional[np.ndarray]:
        """Per-trial progress metric (``None`` when not applicable)."""
        return None

    def trial_metadata(self, trial: int) -> dict:
        """Per-trial metadata carried onto the trial's result trace."""
        return {}

    # ------------------------------------------------------------------ #
    # Accessors
    # ------------------------------------------------------------------ #
    @property
    def batch(self) -> NetworkBatch:
        """The bound network batch."""
        if self._batch is None:
            raise RuntimeError(f"{type(self).__name__} is not bound yet")
        return self._batch

    @property
    def rng_source(self) -> BatchRandomSource:
        """The batch random source."""
        if self._rng_source is None:
            raise RuntimeError(f"{type(self).__name__} is not bound yet")
        return self._rng_source

    @property
    def kernel(self) -> NodeSetKernel:
        """The node-set state kernel this run was bound with."""
        if self._kernel is None:
            raise RuntimeError(f"{type(self).__name__} is not bound yet")
        return self._kernel

    @property
    def trials(self) -> int:
        """Number of trials in the bound batch."""
        return self.batch.trials

    @property
    def n(self) -> int:
        """Number of nodes per trial."""
        return self.batch.n

    def __repr__(self) -> str:
        return f"{type(self).__name__}()"


class BatchBroadcastProtocol(BatchProtocol):
    """Batched broadcasting: one source per trial informs every node.

    Mirrors :class:`~repro.radio.protocol.BroadcastProtocol`; the informed
    set lives in a kernel-selected :class:`~repro.radio.nodesets.
    NodeSetState` (dense mask or packed bitset), the informed-round array
    stays dense (it is trace metadata, identical under every backend).
    """

    name = "broadcast"

    def __init__(self, source: int = 0):
        super().__init__()
        self.source = int(source)
        self._members: Optional[NodeSetState] = None
        self._informed_round: Optional[np.ndarray] = None

    def _setup(self) -> None:
        trials, n = self.trials, self.n
        check_node_index(self.source, n, "source")
        self._members = self.kernel.node_set(trials, n)
        self._members.add_flat(
            np.arange(trials, dtype=np.int64) * n + self.source
        )
        self._informed_round = np.full((trials, n), -1, dtype=np.int64)
        self._informed_round[:, self.source] = 0
        self._setup_broadcast()

    def _setup_broadcast(self) -> None:
        """Subclass hook for additional per-run state."""

    def _compact_state(self, keep: np.ndarray) -> None:
        self._members.select_rows(keep)
        self._informed_round = np.ascontiguousarray(self._informed_round[keep])
        self._compact_broadcast(keep)

    def _compact_broadcast(self, keep: np.ndarray) -> None:
        """Subclass hook: row-select additional per-trial broadcast state."""

    @property
    def informed(self) -> np.ndarray:
        """Boolean ``(R, n)`` informed matrix (read-only — do not mutate)."""
        if self._members is None:
            raise RuntimeError("protocol not bound")
        return self._members.mask()

    @property
    def informed_round(self) -> np.ndarray:
        """``(R, n)`` round in which each node was informed (-1 if never)."""
        if self._informed_round is None:
            raise RuntimeError("protocol not bound")
        return self._informed_round

    def informed_counts(self) -> np.ndarray:
        """Per-trial number of informed nodes."""
        return self._members.counts().copy()

    def mark_informed(self, flat_nodes: np.ndarray, round_index: int) -> np.ndarray:
        """Mark flat node ids informed; returns the newly-informed subset."""
        newly = self._members.add_flat(flat_nodes)
        if newly.size:
            self._informed_round.reshape(-1)[newly] = round_index + 1
        return newly

    def listener_interest(self) -> np.ndarray:
        """Deliveries to already-informed nodes carry no new information."""
        return self._members.complement_flat()

    def observe(
        self,
        round_index: int,
        tx_flat: np.ndarray,
        outcome: BatchCollisionOutcome,
        running: np.ndarray,
    ) -> None:
        self.mark_informed(outcome.receiver_flat, round_index)

    def completed(self) -> np.ndarray:
        return self._members.counts() == self.n

    def __repr__(self) -> str:
        return f"{type(self).__name__}(source={self.source})"


class BatchGossipProtocol(BatchProtocol):
    """Batched gossiping on an ``R x n x n`` rumour-knowledge relation.

    The knowledge lives in a kernel-selected
    :class:`~repro.radio.nodesets.KnowledgeState`: the dense backend keeps
    the original boolean ``(R, n, n)`` tensor, the bitset/sparse backends a
    packed ``(R, n, ceil(n/64))`` uint64 tensor — 8x smaller, which is what
    lifts the practical gossip batch ceiling past ``R * n² ~ 1e8`` bool
    cells.  Deliveries merge with the same sender-rows-gathered-first
    semantics the serial :class:`~repro.radio.protocol.GossipProtocol` uses,
    so merges always see round-start knowledge.
    """

    name = "gossip"
    state_profile = "knowledge"
    needs_senders = True

    def __init__(self) -> None:
        super().__init__()
        self._knowledge_state: Optional[KnowledgeState] = None

    def _setup(self) -> None:
        self._knowledge_state = self.kernel.knowledge(self.trials, self.n)
        self._setup_gossip()

    def _setup_gossip(self) -> None:
        """Subclass hook for additional per-run state."""

    def _compact_state(self, keep: np.ndarray) -> None:
        self._knowledge_state.select_rows(keep)
        self._compact_gossip(keep)

    def _compact_gossip(self, keep: np.ndarray) -> None:
        """Subclass hook: row-select additional per-trial gossip state."""

    @property
    def knowledge_state(self) -> KnowledgeState:
        """The backend knowledge object (preferred over :attr:`knowledge`)."""
        if self._knowledge_state is None:
            raise RuntimeError("protocol not bound")
        return self._knowledge_state

    @property
    def knowledge(self) -> np.ndarray:
        """The ``(R, n, n)`` bool tensor.

        A live view on the dense backend; packed backends materialise a
        fresh unpacked copy, so large-``n`` code should prefer the
        :attr:`knowledge_state` operations (:meth:`knows_rumour`,
        :meth:`rumours_known`) which never expand the tensor.
        """
        return self.knowledge_state.as_dense()

    def knows_rumour(self, rumour: int) -> np.ndarray:
        """``(R, n)`` bool: which nodes currently know ``rumour``."""
        return self.knowledge_state.column(rumour)

    def rumours_known(self) -> np.ndarray:
        """``(R, n)`` per-node count of known rumours."""
        return self.knowledge_state.per_node_counts()

    def merge_deliveries(self, outcome: BatchCollisionOutcome) -> None:
        """Join every delivered rumour set into its receiver's (all trials)."""
        if outcome.receiver_flat.size == 0:
            return
        self.knowledge_state.merge_flat(outcome.sender_flat, outcome.receiver_flat)

    def observe(
        self,
        round_index: int,
        tx_flat: np.ndarray,
        outcome: BatchCollisionOutcome,
        running: np.ndarray,
    ) -> None:
        self.merge_deliveries(outcome)

    def informed_counts(self) -> np.ndarray:
        """Per-trial minimum rumour count (the serial progress metric)."""
        return self.knowledge_state.min_counts()

    def completed(self) -> np.ndarray:
        return self.knowledge_state.complete()


class PendingTrial:
    """One unit of admissible work for :meth:`BatchEngine.run_continuous`.

    Parameters
    ----------
    network:
        The trial's :class:`RadioNetwork`.  Trials admitted in the same wave
        that share one network *object* keep the shared-topology CSR tiling.
    rng:
        Exact-mode per-trial seed/generator, consumed exactly as the serial
        engine would.  ``None`` selects fast mode (one shared vectorised
        stream); a continuous run must be all-exact or all-fast.
    tag:
        Opaque identifier handed to ``result_sink`` with the trial's trace
        (defaults to the admission index).
    """

    __slots__ = ("network", "rng", "tag")

    def __init__(self, network: RadioNetwork, rng: SeedLike = None, tag=None):
        self.network = network
        self.rng = rng
        self.tag = tag


class _Cohort:
    """One admission wave inside a continuous run.

    Protocols key *all* behaviour on a scalar round index (phase schedules,
    ``O(log n)`` horizons), so trials admitted at global round ``g`` must see
    local round ``0`` while older trials see ``g - start_round``.  Each wave
    therefore keeps its own protocol instance, stacked batch, RNG source,
    accountant and environment; only collision resolution is unioned across
    cohorts per global round.
    """

    __slots__ = (
        "protocol",
        "batch",
        "rng_source",
        "accountant",
        "environment",
        "start_round",
        "horizon",
        "tags",
        "orders",
        "completed",
        "completion_round",
        "rounds_executed",
        "running",
        "row_offset",
        "last_tx",
        "pending_retired",
    )


class BatchEngine:
    """Runs a batched protocol over ``R`` trials with one loop of vectorised rounds.

    Per-trial completion masking reproduces the serial engine's stopping rule
    exactly: a trial stops when it completes (or, under
    ``run_to_quiescence``, when it goes quiescent), and a stopped trial
    neither transmits nor consumes randomness while its siblings continue.

    Parameters
    ----------
    collision_model:
        A :class:`~repro.radio.collision.BatchCollisionModel`, or a scalar
        :class:`~repro.radio.collision.CollisionModel` (converted via
        :func:`~repro.radio.collision.as_batch_collision_model`).  Defaults
        to the batched standard model.
    record_rounds / keep_arrays / run_to_quiescence:
        Same semantics as on :class:`~repro.radio.engine.SimulationEngine`,
        applied per trial.
    retire_dead:
        Retire a trial the round it goes *dead* — quiescent (no node will
        ever transmit again) without completing, or environment-doomed
        (crashed forever with no recovery scheduled) — instead of spinning
        it to ``max_rounds``.  A dead trial's outcome can never change, so
        this only shortens ``rounds_executed`` for trials that would have
        burned the round cap (disconnected graphs under sub-threshold
        ``p``).  On by default; mirrored by the serial engine so exact-mode
        equivalence holds round for round.
    scheduled_resolution:
        When a protocol commits to a fixed future transmission schedule
        (:meth:`BatchProtocol.presampled_schedule`), resolve all scheduled
        rounds in one chunked mega-gather instead of one gather per round.
        Only taken under deterministic collision resolution without collision
        detection; results are identical either way (the flag exists so the
        equivalence can be tested).
    state_backend:
        Node-set state backend handed to the protocol at bind time:
        ``"auto"`` (default — heuristic per workload), ``"dense"``,
        ``"bitset"`` or ``"sparse"``.  All backends produce identical
        results (bit-identical in exact rng mode); the knob trades memory
        (packed gossip knowledge) against per-round bookkeeping (sparse
        frontiers).
    kernel:
        Collision-kernel selection (:data:`repro.radio.kernels.
        COLLISION_KERNELS`): ``"auto"`` (default — compiled when numba is
        available, numpy otherwise), ``"numpy"``, ``"compiled"`` (silently
        falls back to the bit-identical numpy path without numba) or
        ``"edge_sampled"`` (an O(R·n)-per-round approximation for
        edge-bound graphs; fast mode only, stamped into each trace's
        metadata as ``collision_kernel``).
    environment:
        Optional faulty-world layer (a
        :class:`~repro.radio.environment.BatchEnvironment`, a scalar
        :class:`~repro.radio.environment.Environment`, or a spec dict) that
        perturbs each round around collision resolution for every trial.
        An active environment disables interest trimming and scheduled
        mega-gather resolution (it must see the full delivery set and
        perturbs non-deterministically); a null environment costs nothing.
    """

    #: Rounds resolved per scheduled-resolution slice: small enough that the
    #: interest snapshot stays fresh (and an early finish wastes little),
    #: large enough to amortise the per-slice gather/sort.
    _SCHEDULE_SLICE_ROUNDS = 8

    def __init__(
        self,
        collision_model: Union[BatchCollisionModel, CollisionModel, None] = None,
        *,
        record_rounds: bool = False,
        keep_arrays: bool = False,
        run_to_quiescence: bool = False,
        retire_dead: bool = True,
        scheduled_resolution: bool = True,
        state_backend: str = "auto",
        environment=None,
        kernel: str = "auto",
    ):
        if collision_model is None:
            self.collision_model: BatchCollisionModel = BatchStandardCollisionModel()
        else:
            self.collision_model = as_batch_collision_model(collision_model)
        if environment is not None and not isinstance(environment, BatchEnvironment):
            environment = as_batch_environment(environment)
        self.environment = environment
        self.record_rounds = bool(record_rounds)
        self.keep_arrays = bool(keep_arrays)
        self.run_to_quiescence = bool(run_to_quiescence)
        self.retire_dead = bool(retire_dead)
        self.scheduled_resolution = bool(scheduled_resolution)
        if state_backend not in STATE_BACKENDS:
            known = ", ".join(STATE_BACKENDS)
            raise ValueError(
                f"unknown state backend {state_backend!r}; known: {known}"
            )
        self.state_backend = state_backend
        if kernel not in COLLISION_KERNELS:
            known = ", ".join(COLLISION_KERNELS)
            raise ValueError(
                f"unknown collision kernel {kernel!r}; known: {known}"
            )
        self.kernel = kernel

    def run(
        self,
        networks: Union[NetworkBatch, RadioNetwork, Sequence[RadioNetwork]],
        protocol: BatchProtocol,
        *,
        rng: SeedLike = None,
        rngs: Optional[Sequence[SeedLike]] = None,
        trials: Optional[int] = None,
        max_rounds: Optional[int] = None,
        result_sink=None,
    ) -> List[RunResultTrace]:
        """Run all trials to their individual completion; one trace per trial.

        Parameters
        ----------
        networks:
            A :class:`NetworkBatch`, a sequence of equally-sized networks
            (one per trial), or a single network together with ``trials``
            (every trial then shares that topology).
        rng:
            Fast-mode seed/generator: one shared stream serves all trials
            with vectorised draws.  Ignored when ``rngs`` is given.
        rngs:
            Exact-equivalence mode: one seed/generator per trial, consumed
            exactly as the serial engine would — batched results are then
            bit-identical to ``SimulationEngine.run`` with the same per-trial
            generators.
        max_rounds:
            Per-trial horizon (defaults to the protocol's suggestion).
        result_sink:
            Optional ``(trial_index, trace) -> None`` callback.  When given,
            each trial's trace is handed to it as results are assembled and
            the method returns an empty list — a streaming consumer (the
            sweep aggregation layer) then never holds ``R`` trace objects
            at once.
        """
        batch = self._coerce_batch(networks, trials)
        if rngs is not None:
            if len(rngs) != batch.trials:
                raise ValueError(
                    f"rngs must have one entry per trial "
                    f"({batch.trials}), got {len(rngs)}"
                )
            rng_source = BatchRandomSource.exact(rngs)
        else:
            rng_source = BatchRandomSource.fast(rng)

        environment = self.environment
        env_active = environment is not None and not environment.is_null
        if env_active:
            environment.bind(batch, rng_source)

        # Resolve the collision kernel for this run (rejects edge_sampled
        # under exact mode) and install it on the model for the round loop.
        collision_kernel = resolve_collision_kernel(
            self.kernel, exact_mode=rng_source.exact_mode, record=True
        )
        self.collision_model.kernel = collision_kernel

        kernel = resolve_kernel(
            self.state_backend,
            batch.trials,
            batch.n,
            profile=protocol.state_profile,
            density=batch.edge_density,
        )
        protocol.bind(batch, rng_source, kernel)
        if max_rounds is None:
            max_rounds = protocol.suggested_max_rounds()
        max_rounds = check_positive_int(max_rounds, "max_rounds")

        trials_count, n = batch.trials, batch.n
        accountant = BatchEnergyAccountant(trials_count, n)
        completed = np.asarray(protocol.completed(), dtype=bool).copy()
        completion_round = np.zeros(trials_count, dtype=np.int64)
        rounds_executed = np.zeros(trials_count, dtype=np.int64)
        # Serial rule: a trial that is already complete enters the loop only
        # under run_to_quiescence (it may still be scheduled to transmit).
        if self.run_to_quiescence:
            running = np.ones(trials_count, dtype=bool)
        else:
            running = ~completed

        # Trimmed outcomes (deliveries the protocol would ignore dropped in
        # collision resolution) are observably equivalent only when nobody
        # records per-round delivery counts and no per-trial stream has to
        # match the serial engine call for call.
        use_interest = (
            not self.record_rounds and not rng_source.exact_mode and not env_active
        )
        # Mega-gather fast path: legal only when resolution is deterministic
        # (pre-resolving would skip erasure draws), collision-free feedback is
        # not part of the outcome (scheduled outcomes carry receivers only —
        # no senders, no hear counts), and trimmed deliveries are observably
        # equivalent (the resolver prunes against the protocol's interest set
        # the same way per-round resolution would).
        can_schedule = (
            self.scheduled_resolution
            and use_interest
            and self.collision_model.resolves_deterministically
            and not self.collision_model.detects_collisions
            # The edge-sampled kernel draws fresh randomness per round, so
            # pre-resolving scheduled rounds would skip its draws.
            and collision_kernel != "edge_sampled"
        )
        plan: Optional[ScheduledTransmissions] = None
        scheduled: Dict[int, np.ndarray] = {}
        sched_next = 0  # schedule-relative index of the next unresolved slice

        # Dead retirement is gated per protocol class: the base ``quiescent``
        # just mirrors ``completed()``, so probing it every round would cost
        # a vector op to learn nothing.  Only protocols with a real liveness
        # override (transmission schedules that can run dry) participate.
        retire_dead = (
            self.retire_dead
            and not self.run_to_quiescence
            and type(protocol).quiescent is not BatchProtocol.quiescent
        )
        retired_dead = 0

        # Telemetry is hoisted once per run: when disabled, the loop pays
        # three `if tel:` branch checks per round and nothing else.
        tel = telemetry.enabled()
        if tel:
            clock = time.perf_counter
            run_start = clock()
            phase_seconds = {"transmit": 0.0, "resolve": 0.0, "observe": 0.0}

        round_log: List[dict] = []
        for round_index in range(max_rounds):
            if not running.any():
                break
            if tel:
                t_mark = clock()
            if can_schedule and plan is None:
                plan = protocol.presampled_schedule(round_index)
            tx_flat = np.asarray(
                protocol.transmit_flat(round_index, running), dtype=np.int64
            )
            if env_active:
                environment.begin_round(round_index, running)
                # Gated radios (crashed/asleep) are not energy-charged;
                # in-flight loss below is charged-but-lost, and ``observe``
                # still sees the pre-loss (gated) transmit set.
                tx_flat = environment.gate_transmit_flat(
                    round_index, tx_flat, running
                )
            transmitters = accountant.record_flat(tx_flat)
            air_flat = tx_flat
            if env_active:
                air_flat = environment.perturb_transmissions(
                    round_index, tx_flat, running
                )
            if tel:
                now = clock()
                phase_seconds["transmit"] += now - t_mark
                t_mark = now
            cached = None
            if plan is not None:
                j = round_index - plan.first_round
                if 0 <= j < plan.num_rounds:
                    if j >= sched_next:
                        # Resolve the next slice of rounds in one mega-gather,
                        # pruned against the interest set as of *now* — it
                        # shrinks fast while the schedule plays out, so later
                        # slices sort almost nothing.
                        stop = min(
                            j + self._SCHEDULE_SLICE_ROUNDS, plan.num_rounds
                        )
                        scheduled.update(
                            resolve_scheduled_rounds(
                                batch,
                                plan.slice(sched_next, stop),
                                listener_filter=protocol.listener_interest(),
                            )
                        )
                        sched_next = stop
                    cached = scheduled.pop(round_index)
            if cached is not None:
                # Trials are block-diagonal-independent, so dropping a
                # stopped trial's receivers reproduces per-round resolution
                # of the running-gated transmitters exactly.
                receiver_flat = cached
                if receiver_flat.size and not running.all():
                    receiver_flat = receiver_flat[running[receiver_flat // n]]
                outcome = _ScheduledOutcome(
                    receiver_flat=receiver_flat,
                    trials=trials_count,
                    n=n,
                )
            else:
                outcome = self.collision_model.resolve(
                    batch,
                    air_flat,
                    rng_source,
                    listener_filter=(
                        protocol.listener_interest() if use_interest else None
                    ),
                )
                if env_active:
                    outcome = environment.filter_deliveries(
                        round_index, outcome, running
                    )
            if tel:
                now = clock()
                phase_seconds["resolve"] += now - t_mark
                t_mark = now

            informed_before = (
                protocol.informed_counts() if self.record_rounds else None
            )
            protocol.observe(round_index, tx_flat, outcome, running)
            rounds_executed[running] = round_index + 1

            if self.record_rounds:
                round_log.append(
                    {
                        "running": running.copy(),
                        "transmitters": transmitters,
                        "deliveries": outcome.receiver_counts,
                        "informed_before": informed_before,
                        "informed_after": protocol.informed_counts(),
                    }
                )

            completed_now = np.asarray(protocol.completed(), dtype=bool)
            newly_completed = running & completed_now & ~completed
            completion_round[newly_completed] = round_index + 1
            completed |= newly_completed
            if self.run_to_quiescence:
                stop = running & np.asarray(
                    protocol.quiescent(round_index + 1), dtype=bool
                )
            else:
                stop = running & completed_now
                if retire_dead:
                    # Dead retirement: quiescent-but-incomplete trials can
                    # never change outcome — cut them loose now instead of
                    # spinning them to the round cap.
                    dead = (
                        running
                        & ~stop
                        & np.asarray(protocol.quiescent(round_index + 1), dtype=bool)
                    )
                    if dead.any():
                        stop |= dead
                        retired_dead += int(dead.sum())
            if env_active and self.retire_dead:
                doomed = environment.doomed_trials(round_index)
                if doomed is not None:
                    doomed = running & ~stop & np.asarray(doomed, dtype=bool)
                    if doomed.any():
                        stop |= doomed
                        retired_dead += int(doomed.sum())
            running = running & ~stop
            if tel:
                phase_seconds["observe"] += clock() - t_mark

        if tel:
            self._emit_run_telemetry(
                batch,
                protocol,
                rounds_executed,
                phase_seconds,
                clock() - run_start,
                collision_kernel=collision_kernel,
                state_backend=kernel.backend,
            )
            if retired_dead:
                telemetry.counter_inc("engine.retired_dead", retired_dead)
        completion_round[~completed] = rounds_executed[~completed]
        return self._assemble_results(
            batch,
            protocol,
            accountant,
            completed,
            completion_round,
            rounds_executed,
            round_log,
            environment=environment if env_active else None,
            collision_kernel=collision_kernel,
            result_sink=result_sink,
        )

    # ------------------------------------------------------------------ #
    # Continuous batching
    # ------------------------------------------------------------------ #
    def run_continuous(
        self,
        pending,
        protocol_factory,
        *,
        capacity: int,
        watermark: float = 0.75,
        max_rounds: Optional[int] = None,
        rng: SeedLike = None,
        result_sink=None,
    ) -> List[RunResultTrace]:
        """Run a stream of trials at near-constant occupancy.

        The plain :meth:`run` pays for every trial until the *slowest* trial
        in its batch finishes: completed trials ride along as dead rows in
        the stacked CSR.  This method instead retires each trial the round
        it stops, **compacts** the live batch down to surviving rows when
        occupancy drops below ``watermark * capacity`` (or a quarter of the
        rows have died), and **refills** the freed rows from ``pending`` —
        the continuous-batching schedule of inference serving, applied to
        Monte-Carlo trials.

        Trials admitted at global round ``g`` see their protocol's round
        ``0`` at ``g``: each admission wave runs as its own *cohort* with a
        private protocol/batch/RNG/environment, and only collision
        resolution is unioned across cohorts (one gather per global round).
        In exact mode (every :class:`PendingTrial` carries an ``rng``) each
        trial's results are bit-identical to :meth:`run` and to the serial
        engine — per-trial streams are position-independent by construction.

        Parameters
        ----------
        pending:
            Iterable of :class:`PendingTrial` (consumed lazily — admission
            pulls only what fits).  All-exact or all-fast; no mixing.
        protocol_factory:
            Zero-argument callable producing a fresh protocol per cohort.
        capacity:
            Target row count (the analogue of ``trials`` in :meth:`run`).
        watermark:
            Refill trigger, as a fraction of ``capacity`` (in ``(0, 1]``).
        rng:
            Fast-mode shared seed/generator (ignored in exact mode).
        result_sink:
            Optional ``(tag, trace) -> None`` streaming consumer; the tag is
            the trial's :attr:`PendingTrial.tag` (admission index when
            unset).  With a sink the method returns an empty list.
        """
        if self.record_rounds:
            raise ValueError(
                "record_rounds is incompatible with run_continuous: cohorts "
                "start at different global rounds, so there is no single "
                "per-round log; use run() for instrumented runs"
            )
        capacity = check_positive_int(capacity, "capacity")
        if not 0.0 < watermark <= 1.0:
            raise ValueError(f"watermark must be in (0, 1], got {watermark}")

        env_spec = (
            self.environment.spec()
            if self.environment is not None and not self.environment.is_null
            else None
        )

        queue: List[PendingTrial] = []
        source = iter(pending)
        exhausted = False

        def _has_more() -> bool:
            nonlocal exhausted
            if queue:
                return True
            if exhausted:
                return False
            try:
                queue.append(next(source))
            except StopIteration:
                exhausted = True
                return False
            return True

        def _pull(limit: int) -> List[PendingTrial]:
            nonlocal exhausted
            items: List[PendingTrial] = []
            while len(items) < limit:
                if queue:
                    items.append(queue.pop(0))
                    continue
                if exhausted:
                    break
                try:
                    items.append(next(source))
                except StopIteration:
                    exhausted = True
                    break
            return items

        if not _has_more():
            return []
        exact_mode = queue[0].rng is not None
        n = queue[0].network.n
        collision_kernel = resolve_collision_kernel(
            self.kernel, exact_mode=exact_mode, record=True
        )
        self.collision_model.kernel = collision_kernel
        shared_rng = None if exact_mode else BatchRandomSource.fast(rng)
        # Same legality rule as run(): trimmed outcomes only when no
        # per-trial stream must match serial draws and no environment can
        # resurrect interest in a delivery the protocol would ignore.
        use_interest = not exact_mode and env_spec is None

        cohorts: List[_Cohort] = []
        union_batch: Optional[NetworkBatch] = None
        union_rng: Optional[BatchRandomSource] = None
        union_stale = True
        results: Dict[int, RunResultTrace] = {}
        admitted = 0
        stats = {
            "retired": 0,
            "retired_dead": 0,
            "compactions": 0,
            "refills": 0,
            "trial_rounds": 0,
        }
        retire = False  # set from the first cohort's protocol class
        needs_senders = False

        tel = telemetry.enabled()
        if tel:
            clock = time.perf_counter
            run_start = clock()
            # Same per-phase aggregation as run(): summed seconds across all
            # rounds, so a traced continuous sweep folds into the identical
            # round-phase span layer the sharded engine produces.
            phase_seconds = {"transmit": 0.0, "resolve": 0.0, "observe": 0.0}

        def _note_retired(c: _Cohort, idx: np.ndarray, dead: int = 0) -> None:
            # A retired trial's state is frozen (it neither transmits nor
            # draws randomness again), so building its result trace can wait
            # until its rows are about to move — _flush_retired runs before
            # compaction, at cohort drop, and therefore before the run
            # returns.  Retiring trials one round at a time would otherwise
            # pay the per-call cost of the energy/percentile pass per round.
            c.pending_retired.extend(int(t) for t in idx)
            stats["retired"] += len(idx)
            stats["retired_dead"] += dead

        def _flush_retired(c: _Cohort) -> None:
            if not c.pending_retired:
                return
            idx = np.asarray(c.pending_retired, dtype=np.int64)
            c.pending_retired = []
            _materialize_trials(c, idx)

        def _materialize_trials(c: _Cohort, idx: np.ndarray) -> None:
            informed = c.protocol.informed_counts()
            per_node = self.keep_arrays
            informed_rounds = (
                c.protocol.informed_round
                if self.keep_arrays
                and isinstance(c.protocol, BatchBroadcastProtocol)
                else None
            )
            energies = c.accountant.reports_for(idx)
            for j, t in enumerate(idx):
                t = int(t)
                if not c.completed[t]:
                    c.completion_round[t] = c.rounds_executed[t]
                result = RunResultTrace(
                    protocol_name=c.protocol.name,
                    network_name=c.batch.networks[t].name,
                    n=n,
                    completed=bool(c.completed[t]),
                    completion_round=int(c.completion_round[t]),
                    rounds_executed=int(c.rounds_executed[t]),
                    energy=energies[j],
                    informed_count=(
                        int(informed[t]) if informed is not None else None
                    ),
                    rounds=[],
                    metadata=dict(c.protocol.trial_metadata(t)),
                )
                if per_node:
                    result.per_node_transmissions = c.accountant.per_node(t)
                if informed_rounds is not None:
                    result.informed_round = informed_rounds[t].copy()
                if c.environment is not None:
                    result.metadata["environment"] = c.environment.trial_report(t)
                if collision_kernel == "edge_sampled":
                    result.metadata["collision_kernel"] = "edge_sampled"
                if result_sink is not None:
                    result_sink(c.tags[t], result)
                else:
                    results[c.orders[t]] = result
                stats["trial_rounds"] += int(c.rounds_executed[t])

        def _admit(items: List[PendingTrial], start_round: int) -> _Cohort:
            nonlocal admitted, retire, needs_senders
            for it in items:
                if (it.rng is not None) != exact_mode:
                    raise ValueError(
                        "run_continuous cannot mix exact-mode trials "
                        "(rng set) with fast-mode trials (rng None)"
                    )
                if it.network.n != n:
                    raise ValueError(
                        f"all continuous trials must share n; "
                        f"got {it.network.n} and {n}"
                    )
            protocol = protocol_factory()
            batch = NetworkBatch([it.network for it in items])
            if exact_mode:
                rng_source = BatchRandomSource.exact([it.rng for it in items])
            else:
                rng_source = shared_rng
            kernel = resolve_kernel(
                self.state_backend,
                batch.trials,
                batch.n,
                profile=protocol.state_profile,
                density=batch.edge_density,
            )
            protocol.bind(batch, rng_source, kernel)
            environment = None
            if env_spec is not None:
                environment = build_batch_environment(env_spec)
                environment.bind(batch, rng_source)
            c = _Cohort()
            c.protocol = protocol
            c.batch = batch
            c.rng_source = rng_source
            c.accountant = BatchEnergyAccountant(batch.trials, batch.n)
            c.environment = environment
            c.start_round = start_round
            c.horizon = (
                max_rounds
                if max_rounds is not None
                else protocol.suggested_max_rounds()
            )
            c.tags = [
                it.tag if it.tag is not None else admitted + i
                for i, it in enumerate(items)
            ]
            c.orders = list(range(admitted, admitted + batch.trials))
            admitted += batch.trials
            c.completed = np.asarray(protocol.completed(), dtype=bool).copy()
            c.completion_round = np.zeros(batch.trials, dtype=np.int64)
            c.rounds_executed = np.zeros(batch.trials, dtype=np.int64)
            if self.run_to_quiescence:
                c.running = np.ones(batch.trials, dtype=bool)
            else:
                c.running = ~c.completed
            c.row_offset = 0
            c.last_tx = None
            c.pending_retired = []
            retire = (
                self.retire_dead
                and not self.run_to_quiescence
                and type(protocol).quiescent is not BatchProtocol.quiescent
            )
            needs_senders = type(protocol).needs_senders
            cohorts.append(c)
            # Trials complete at bind never enter the loop (serial rule);
            # retire them on the spot so their rows can be reclaimed.
            at_bind = np.flatnonzero(~c.running)
            if at_bind.size:
                _note_retired(c, at_bind)
            return c

        def _compact_cohort(c: _Cohort) -> None:
            _flush_retired(c)
            keep = c.running.copy()
            # Identity-preserving list filter: waves sharing one network
            # object keep the tiled-CSR fast path after compaction.
            nets = [net for net, k in zip(c.batch.networks, keep) if k]
            new_batch = NetworkBatch(nets)
            new_rng = c.rng_source.select_trials(keep)
            c.protocol.compact(keep, new_batch, new_rng)
            c.accountant.select_rows(keep)
            if c.environment is not None:
                c.environment.select_rows(keep, new_rng)
            c.batch = new_batch
            c.rng_source = new_rng
            c.completed = c.completed[keep]
            c.completion_round = c.completion_round[keep]
            c.rounds_executed = c.rounds_executed[keep]
            c.running = c.running[keep]
            c.tags = [tag for tag, k in zip(c.tags, keep) if k]
            c.orders = [o for o, k in zip(c.orders, keep) if k]

        def _rebuild_union() -> None:
            nonlocal union_batch, union_rng
            offset = 0
            for c in cohorts:
                c.row_offset = offset
                offset += c.batch.trials
            if len(cohorts) == 1:
                # Single-wave shortcut: reuse the cohort's own batch (keeps
                # shared-topology tiling) and its rng source directly.
                union_batch = cohorts[0].batch
                union_rng = cohorts[0].rng_source
            else:
                union_batch = NetworkBatch(
                    [net for c in cohorts for net in c.batch.networks]
                )
                if exact_mode:
                    union_rng = BatchRandomSource(
                        per_trial=[
                            g
                            for c in cohorts
                            for g in c.rng_source.trial_generators
                        ]
                    )
                else:
                    union_rng = shared_rng

        global_round = 0
        live = 0
        # Occupancy only moves when a trial retires or a refill lands, so
        # the liveness scan + compaction/refill triggers run only on rounds
        # where something stopped (and once at admission).
        occupancy_dirty = True
        while True:
            if occupancy_dirty:
                occupancy_dirty = False
                # Dropping a cohort whose every trial has stopped costs
                # nothing (no CSR rebuild — the whole block just leaves the
                # union), so it is never gated behind the compaction
                # thresholds.
                if any(not c.running.any() for c in cohorts):
                    for c in cohorts:
                        if not c.running.any():
                            _flush_retired(c)
                    cohorts[:] = [c for c in cohorts if c.running.any()]
                    union_stale = True
                live = sum(int(c.running.sum()) for c in cohorts)
                rows = sum(c.batch.trials for c in cohorts)
                # Anti-thrash: row-level compaction rebuilds CSR + state
                # backends, so it must either make room for a refill or
                # reclaim rows that will actually repay the rebuild.  While
                # the queue can still refill, a quarter of the rows is
                # enough (freed rows turn into fresh trials).  Once it runs
                # dry the batch is draining and every completion frees more
                # rows for nothing — compacting on each would re-pay the
                # rebuild O(log rows) times — so the trigger waits until
                # dead rows dominate (three quarters, and at least half the
                # configured capacity): one late compaction that collapses
                # a long straggler tail in a single step.
                refill_possible = _has_more()
                refill_needed = live < watermark * capacity and refill_possible
                if refill_possible:
                    dead_floor = max(1, rows // 4)
                else:
                    dead_floor = max(1, (3 * rows) // 4, capacity // 2)
                compact_worth = rows > 0 and (rows - live) >= dead_floor
                if refill_needed or compact_worth:
                    for c in cohorts:
                        if not c.running.all():
                            _compact_cohort(c)
                    new_rows = sum(c.batch.trials for c in cohorts)
                    if new_rows != rows:
                        union_stale = True
                        stats["compactions"] += 1
                        if tel:
                            telemetry.event(
                                "engine.compaction",
                                round=global_round,
                                rows_before=rows,
                                rows_after=new_rows,
                                live=live,
                            )
                            telemetry.counter_inc("engine.compactions")
                    if refill_needed:
                        items = _pull(capacity - live)
                        if items:
                            c = _admit(items, global_round)
                            live += int(c.running.sum())
                            union_stale = True
                            occupancy_dirty = True
                            stats["refills"] += 1
                            if tel:
                                telemetry.event(
                                    "engine.refill",
                                    round=global_round,
                                    added=len(items),
                                    occupancy=live / capacity,
                                )
                                telemetry.counter_inc("engine.refills")
            if not cohorts:
                if _has_more():
                    # Capacity is free but the watermark test above already
                    # admitted what it could; loop to admit the rest.
                    occupancy_dirty = True
                    continue
                break
            if union_stale:
                _rebuild_union()
                union_stale = False
                if tel:
                    telemetry.gauge_set("engine.occupancy", live / capacity)
            elif tel and global_round % 64 == 0:
                telemetry.gauge_set("engine.occupancy", live / capacity)

            if tel:
                t_mark = clock()
            air_parts: List[np.ndarray] = []
            for c in cohorts:
                local = global_round - c.start_round
                tx = np.asarray(
                    c.protocol.transmit_flat(local, c.running), dtype=np.int64
                )
                if c.environment is not None:
                    c.environment.begin_round(local, c.running)
                    tx = c.environment.gate_transmit_flat(local, tx, c.running)
                c.accountant.record_flat(tx)
                air = tx
                if c.environment is not None:
                    air = c.environment.perturb_transmissions(
                        local, tx, c.running
                    )
                c.last_tx = tx
                if c.row_offset:
                    air = air + np.int64(c.row_offset) * n
                air_parts.append(air)
            air_union = (
                air_parts[0]
                if len(air_parts) == 1
                else np.concatenate(air_parts)
            )

            listener_filter = None
            if use_interest:
                interests = [c.protocol.listener_interest() for c in cohorts]
                if all(i is not None for i in interests):
                    listener_filter = (
                        interests[0]
                        if len(interests) == 1
                        else np.concatenate(interests)
                    )

            if tel:
                now = clock()
                phase_seconds["transmit"] += now - t_mark
                t_mark = now
            outcome = self.collision_model.resolve(
                union_batch, air_union, union_rng, listener_filter=listener_filter
            )
            with_senders = env_spec is not None or needs_senders
            if tel:
                now = clock()
                phase_seconds["resolve"] += now - t_mark
                t_mark = now

            for c in cohorts:
                local = global_round - c.start_round
                if len(cohorts) == 1:
                    out_c = outcome
                else:
                    out_c = _slice_outcome_rows(
                        outcome,
                        c.row_offset,
                        c.row_offset + c.batch.trials,
                        with_senders=with_senders,
                    )
                if c.environment is not None:
                    out_c = c.environment.filter_deliveries(
                        local, out_c, c.running
                    )
                c.protocol.observe(local, c.last_tx, out_c, c.running)
                c.rounds_executed[c.running] = local + 1

                completed_now = np.asarray(c.protocol.completed(), dtype=bool)
                newly = c.running & completed_now & ~c.completed
                c.completion_round[newly] = local + 1
                c.completed |= newly
                if self.run_to_quiescence:
                    stop = c.running & np.asarray(
                        c.protocol.quiescent(local + 1), dtype=bool
                    )
                else:
                    stop = c.running & completed_now
                    if retire:
                        stop |= (
                            c.running
                            & ~stop
                            & np.asarray(
                                c.protocol.quiescent(local + 1), dtype=bool
                            )
                        )
                if c.environment is not None and self.retire_dead:
                    doomed = c.environment.doomed_trials(local)
                    if doomed is not None:
                        stop |= c.running & np.asarray(doomed, dtype=bool)
                at_horizon = local + 1 >= c.horizon
                if at_horizon or stop.any():
                    dead = (
                        0
                        if self.run_to_quiescence
                        else int((stop & ~c.completed).sum())
                    )
                    if at_horizon:
                        stop = stop | c.running
                    c.running = c.running & ~stop
                    idx = np.flatnonzero(stop)
                    if idx.size:
                        _note_retired(c, idx, dead=dead)
                        occupancy_dirty = True
            if tel:
                phase_seconds["observe"] += clock() - t_mark
            global_round += 1

        if tel:
            total_seconds = clock() - run_start
            for phase, seconds in phase_seconds.items():
                telemetry.aggregate_span(
                    "round-phase", phase, seconds, rounds=global_round
                )
            telemetry.event(
                "engine.continuous",
                trials=stats["retired"],
                n=n,
                capacity=capacity,
                watermark=watermark,
                kernel=collision_kernel,
                rounds=global_round,
                trial_rounds=stats["trial_rounds"],
                compactions=stats["compactions"],
                refills=stats["refills"],
                retired_dead=stats["retired_dead"],
                seconds=total_seconds,
                trials_per_second=(
                    stats["retired"] / total_seconds
                    if total_seconds > 0
                    else None
                ),
            )
            telemetry.counter_inc("engine.runs")
            telemetry.counter_inc("engine.trials", stats["retired"])
            telemetry.counter_inc("engine.trial_rounds", stats["trial_rounds"])
            if stats["retired_dead"]:
                telemetry.counter_inc(
                    "engine.retired_dead", stats["retired_dead"]
                )
        if result_sink is not None:
            return []
        return [results[i] for i in sorted(results)]

    # ------------------------------------------------------------------ #
    # Helpers
    # ------------------------------------------------------------------ #
    @staticmethod
    def _coerce_batch(networks, trials: Optional[int]) -> NetworkBatch:
        if isinstance(networks, NetworkBatch):
            return networks
        if isinstance(networks, RadioNetwork):
            if trials is None:
                raise ValueError(
                    "pass trials=R when running a batch on a single network"
                )
            return NetworkBatch.shared(networks, trials)
        return NetworkBatch(networks)

    @staticmethod
    def _emit_run_telemetry(
        batch: NetworkBatch,
        protocol: BatchProtocol,
        rounds_executed: np.ndarray,
        phase_seconds: Dict[str, float],
        total_seconds: float,
        *,
        collision_kernel: str,
        state_backend: str,
    ) -> None:
        """One ``engine.run`` event + per-phase aggregate spans per run.

        Round phases are pre-aggregated (summed seconds across all rounds)
        rather than one span per round — at thousands of rounds per run,
        per-round records would dwarf the simulation itself.
        """
        trials_count = int(batch.trials)
        max_rounds_run = int(rounds_executed.max()) if trials_count else 0
        trial_rounds = int(rounds_executed.sum())
        for phase, seconds in phase_seconds.items():
            telemetry.aggregate_span(
                "round-phase", phase, seconds, rounds=max_rounds_run
            )
        telemetry.event(
            "engine.run",
            protocol=protocol.name,
            trials=trials_count,
            n=int(batch.n),
            kernel=collision_kernel,
            state_backend=state_backend,
            rounds=max_rounds_run,
            trial_rounds=trial_rounds,
            seconds=total_seconds,
            trials_per_second=(
                trials_count / total_seconds if total_seconds > 0 else None
            ),
            rounds_per_second=(
                trial_rounds / total_seconds if total_seconds > 0 else None
            ),
        )
        telemetry.counter_inc("engine.runs")
        telemetry.counter_inc("engine.trials", trials_count)
        telemetry.counter_inc("engine.trial_rounds", trial_rounds)
        telemetry.histogram_observe("engine.run_seconds", total_seconds)

    def _assemble_results(
        self,
        batch: NetworkBatch,
        protocol: BatchProtocol,
        accountant: BatchEnergyAccountant,
        completed: np.ndarray,
        completion_round: np.ndarray,
        rounds_executed: np.ndarray,
        round_log: List[dict],
        environment=None,
        collision_kernel: str = "numpy",
        result_sink=None,
    ) -> List[RunResultTrace]:
        reports = accountant.reports()
        informed = protocol.informed_counts()
        per_node = accountant.per_node() if self.keep_arrays else None
        informed_rounds = (
            protocol.informed_round
            if self.keep_arrays and isinstance(protocol, BatchBroadcastProtocol)
            else None
        )
        results: List[RunResultTrace] = []
        for t in range(batch.trials):
            rounds: List[RoundRecord] = []
            for entry in round_log:
                if not entry["running"][t]:
                    continue
                before = entry["informed_before"]
                after = entry["informed_after"]
                deliveries = int(entry["deliveries"][t])
                # Trials run contiguously from round 0 until they stop, so the
                # per-trial record index equals the engine's round index.
                rounds.append(
                    RoundRecord(
                        round_index=len(rounds),
                        transmitters=int(entry["transmitters"][t]),
                        deliveries=deliveries,
                        newly_informed=(
                            int(after[t] - before[t])
                            if after is not None and before is not None
                            else deliveries
                        ),
                        informed_after=int(after[t]) if after is not None else -1,
                    )
                )
            result = RunResultTrace(
                protocol_name=protocol.name,
                network_name=batch.networks[t].name,
                n=batch.n,
                completed=bool(completed[t]),
                completion_round=int(completion_round[t]),
                rounds_executed=int(rounds_executed[t]),
                energy=reports[t],
                informed_count=(
                    int(informed[t]) if informed is not None else None
                ),
                rounds=rounds,
                metadata=dict(protocol.trial_metadata(t)),
            )
            if per_node is not None:
                result.per_node_transmissions = per_node[t]
            if informed_rounds is not None:
                result.informed_round = informed_rounds[t].copy()
            if environment is not None:
                result.metadata["environment"] = environment.trial_report(t)
            if collision_kernel == "edge_sampled":
                # Approximate results must be distinguishable from exact
                # ones wherever the trace ends up (stores, aggregations).
                result.metadata["collision_kernel"] = "edge_sampled"
            if result_sink is not None:
                result_sink(t, result)
            else:
                results.append(result)
        return results


def run_protocol_batch(
    networks: Union[NetworkBatch, RadioNetwork, Sequence[RadioNetwork]],
    protocol: BatchProtocol,
    *,
    rng: SeedLike = None,
    rngs: Optional[Sequence[SeedLike]] = None,
    trials: Optional[int] = None,
    max_rounds: Optional[int] = None,
    collision_model: Union[BatchCollisionModel, CollisionModel, None] = None,
    record_rounds: bool = False,
    keep_arrays: bool = False,
    run_to_quiescence: bool = False,
    retire_dead: bool = True,
    state_backend: str = "auto",
    environment=None,
    kernel: str = "auto",
) -> List[RunResultTrace]:
    """Convenience wrapper: build a :class:`BatchEngine` and run once.

    Examples
    --------
    >>> from repro.graphs import random_digraph
    >>> from repro.core import BatchEnergyEfficientBroadcast
    >>> net = random_digraph(256, 0.05, rng=1)
    >>> results = run_protocol_batch(
    ...     net, BatchEnergyEfficientBroadcast(0.05), trials=8, rng=2
    ... )
    >>> max(r.energy.max_per_node for r in results) <= 1
    True
    """
    engine = BatchEngine(
        collision_model,
        record_rounds=record_rounds,
        keep_arrays=keep_arrays,
        run_to_quiescence=run_to_quiescence,
        retire_dead=retire_dead,
        state_backend=state_backend,
        environment=environment,
        kernel=kernel,
    )
    return engine.run(
        networks,
        protocol,
        rng=rng,
        rngs=rngs,
        trials=trials,
        max_rounds=max_rounds,
    )
