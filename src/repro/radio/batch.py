"""Batched Monte-Carlo simulation: ``R`` independent trials per round.

Every experiment in this repository is a Monte-Carlo sweep — the same
``(n, p, protocol)`` point repeated over dozens of seeds.  The serial
:class:`~repro.radio.engine.SimulationEngine` pays the full Python round-loop
overhead once *per trial*; this module makes the repetition axis an array
dimension instead:

* :class:`NetworkBatch` stacks ``R`` equally-sized networks into one
  block-diagonal CSR, so collision resolution for all trials is a single
  flattened gather plus one ``bincount`` over ``trial * n + listener`` ids
  (see :class:`~repro.radio.collision.BatchCollisionModel`).
* :class:`BatchProtocol` (and the broadcast/gossip bases) keep per-node state
  in whole-batch node-set structures and advance every trial with one set of
  vectorised operations per round.  The state representation is pluggable
  (:mod:`repro.radio.nodesets`): dense boolean arrays, bitset-packed
  ``uint64`` words (8x smaller gossip knowledge tensors), or sparse frontier
  index pools (Decay/flooding at large ``n``) — selected automatically per
  workload or forced via ``state_backend=``; every backend is bit-identical
  to dense under the exact rng mode.
* :class:`BatchEngine` owns the batched round loop, masking out trials that
  have individually completed (or gone quiescent) so a finished trial costs
  nothing while its siblings run on.
* When a protocol commits to a fixed future transmission schedule
  (:meth:`BatchProtocol.presampled_schedule` — Algorithm 1's fast-mode
  Phase 3 does), the engine resolves the scheduled rounds ahead of time in
  sliced mega-gathers (:func:`resolve_scheduled_rounds`): the rounds are
  mutually independent once the transmitters are fixed, so the exactly-one
  rule is applied over composite ``round * total_nodes + listener`` keys,
  pruned against the protocol's current interest set at every slice.

This module is the execution substrate of the *unified pipeline*: every
protocol in ``repro.experiments.protocols.PROTOCOL_FACTORIES`` has a batched
implementation registered in ``BATCH_PROTOCOL_FACTORIES``, and the
experiment runner's ``ExecutionPlan`` composes this engine with process
fan-out (each worker runs one :class:`NetworkBatch` shard of a sweep).

Randomness comes in two modes, selected by the :class:`BatchRandomSource`
the engine builds:

* **fast** (default): one shared generator serves all trials with single
  vectorised draws per round.  Results are statistically identical to serial
  runs but not bit-identical.
* **exact**: one child generator per trial, consumed in exactly the calls
  the serial engine + protocol would make.  Batched runs are then
  *bit-identical* to serial runs trial by trial — the equivalence tests in
  ``tests/test_batch_engine.py`` assert this for broadcast, gossip and the
  erasure collision model.
"""

from __future__ import annotations

import abc
import time
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Union

import numpy as np

from repro import telemetry
from repro._util.rng import SeedLike, as_generator
from repro._util.validation import check_node_index, check_positive_int
from repro.radio.collision import (
    BatchCollisionModel,
    BatchCollisionOutcome,
    BatchStandardCollisionModel,
    CollisionModel,
    as_batch_collision_model,
)
from repro.radio.energy import BatchEnergyAccountant
from repro.radio.environment import BatchEnvironment, as_batch_environment
from repro.radio.kernels import COLLISION_KERNELS, resolve_collision_kernel
from repro.radio.network import RadioNetwork
from repro.radio.nodesets import (
    KnowledgeState,
    NodeSetKernel,
    NodeSetState,
    STATE_BACKENDS,
    resolve_kernel,
)
from repro.radio.trace import RoundRecord, RunResultTrace

__all__ = [
    "NetworkBatch",
    "BatchRandomSource",
    "BatchProtocol",
    "BatchBroadcastProtocol",
    "BatchGossipProtocol",
    "BatchEngine",
    "ScheduledTransmissions",
    "resolve_scheduled_rounds",
    "run_protocol_batch",
]


class NetworkBatch:
    """``R`` equally-sized radio networks stacked block-diagonally.

    Trial ``t``'s node ``v`` becomes flat node ``t * n + v``; no edge crosses
    a trial boundary, so any whole-round computation on the stacked CSR is
    exactly ``R`` independent per-trial computations.

    Parameters
    ----------
    networks:
        The per-trial topologies.  All must have the same number of nodes.
        Pass the same network object ``R`` times (or use :meth:`shared`) to
        run every trial on one shared topology.
    """

    __slots__ = (
        "networks",
        "trials",
        "n",
        "total_nodes",
        "out_indptr",
        "out_indices",
        "_in_degrees",
    )

    def __init__(self, networks: Sequence[RadioNetwork]):
        networks = list(networks)
        if not networks:
            raise ValueError("NetworkBatch needs at least one network")
        n = networks[0].n
        for net in networks[1:]:
            if net.n != n:
                raise ValueError(
                    f"all networks in a batch must have the same size; "
                    f"got {net.n} and {n}"
                )
        trials = len(networks)
        self.networks = networks
        self.trials = trials
        self.n = n
        self.total_nodes = trials * n
        self._in_degrees = None

        if trials * n > np.iinfo(np.int32).max:
            raise ValueError(
                f"batch of {trials} x {n} nodes exceeds the int32 id space; "
                "split the repetitions into smaller batches"
            )
        first = networks[0]
        if trials > 1 and all(net is first for net in networks):
            # Shared-topology tiling: one broadcast add per array instead of
            # a Python loop over R identical blocks.  Produces arrays
            # bit-identical to the general path below.
            num_edges = first.num_edges
            indptr = np.empty(self.total_nodes + 1, dtype=np.int64)
            indptr[0] = 0
            edge_offsets = np.arange(trials, dtype=np.int64) * num_edges
            indptr[1:] = (
                first.out_indptr[1:][None, :] + edge_offsets[:, None]
            ).reshape(-1)
            indices = np.empty(trials * num_edges, dtype=np.int32)
            node_offsets = np.arange(trials, dtype=np.int64) * n
            np.add(
                first.out_indices[None, :],
                node_offsets[:, None],
                out=indices.reshape(trials, num_edges),
                casting="unsafe",
            )
            self.out_indptr = indptr
            self.out_indices = indices
            return
        total_edges = sum(net.num_edges for net in networks)
        indptr = np.empty(self.total_nodes + 1, dtype=np.int64)
        indptr[0] = 0
        # int32 flat ids halve the memory traffic of the per-round gathers.
        indices = np.empty(total_edges, dtype=np.int32)
        edge_offset = 0
        for t, net in enumerate(networks):
            ip = net.out_indptr
            indptr[t * n + 1 : (t + 1) * n + 1] = ip[1:] + edge_offset
            block = indices[edge_offset : edge_offset + net.num_edges]
            np.add(net.out_indices, np.int32(t * n), out=block, casting="unsafe")
            edge_offset += net.num_edges
        self.out_indptr = indptr
        self.out_indices = indices

    @classmethod
    def shared(cls, network: RadioNetwork, trials: int) -> "NetworkBatch":
        """Batch that runs every trial on the same shared topology."""
        trials = check_positive_int(trials, "trials")
        return cls([network] * trials)

    @property
    def edge_density(self) -> float:
        """Fraction of possible (directed, loop-free) edges present."""
        possible = self.trials * self.n * max(self.n - 1, 1)
        return self.out_indices.size / possible

    @property
    def in_degrees(self) -> np.ndarray:
        """Flat per-node in-degrees (built on first access, then cached).

        Consumed by the edge-sampled collision kernel, whose per-listener
        delivery probability depends only on the listener's in-degree.
        """
        if self._in_degrees is None:
            self._in_degrees = np.bincount(
                self.out_indices, minlength=self.total_nodes
            )
        return self._in_degrees

    def __repr__(self) -> str:
        return f"NetworkBatch(trials={self.trials}, n={self.n})"


class BatchRandomSource:
    """Random draws for a batch of trials, in fast or exact mode.

    Fast mode serves every request from one shared generator with a single
    vectorised draw.  Exact mode holds one generator per trial and consumes
    each trial's stream with exactly the calls the serial path would make
    (``rng.random(k)`` per trial, trials in ascending order), which is what
    makes batched runs bit-identical to serial ones.
    """

    def __init__(
        self,
        *,
        generator: Optional[np.random.Generator] = None,
        per_trial: Optional[Sequence[np.random.Generator]] = None,
    ):
        if (generator is None) == (per_trial is None):
            raise ValueError("provide exactly one of generator / per_trial")
        self._generator = generator
        self._per_trial = list(per_trial) if per_trial is not None else None

    @classmethod
    def fast(cls, rng: SeedLike = None) -> "BatchRandomSource":
        """Shared-generator mode (vectorised, not stream-equivalent)."""
        return cls(generator=as_generator(rng))

    @classmethod
    def exact(cls, rngs: Sequence[SeedLike]) -> "BatchRandomSource":
        """Per-trial-generator mode (bit-identical to serial runs)."""
        return cls(per_trial=[as_generator(r) for r in rngs])

    @property
    def exact_mode(self) -> bool:
        """True when each trial owns its generator (serial-equivalent draws)."""
        return self._per_trial is not None

    @property
    def generator(self) -> np.random.Generator:
        """The shared generator (fast mode only)."""
        if self._generator is None:
            raise RuntimeError("no shared generator in exact mode")
        return self._generator

    def generator_for_trial(self, trial: int) -> np.random.Generator:
        """Trial ``trial``'s own generator (exact mode only)."""
        if self._per_trial is None:
            raise RuntimeError("no per-trial generators in fast mode")
        return self._per_trial[trial]

    # ------------------------------------------------------------------ #
    # Draw helpers (uniforms in [0, 1))
    # ------------------------------------------------------------------ #
    def uniforms_for_counts(self, counts: np.ndarray) -> np.ndarray:
        """``counts[t]`` uniforms per trial, concatenated in trial order.

        Exact mode draws trial ``t``'s block as one ``random(counts[t])``
        call from trial ``t``'s generator — the same call (and therefore the
        same values, assigned in the caller's trial-major order) the serial
        protocol makes.
        """
        counts = np.asarray(counts)
        if not self.exact_mode:
            return self._generator.random(int(counts.sum()))
        chunks = [
            self._per_trial[t].random(int(c))
            for t, c in enumerate(counts)
            if c
        ]
        return np.concatenate(chunks) if chunks else np.empty(0)

    def uniform_rows(self, rows: np.ndarray, n: int) -> np.ndarray:
        """A ``(k, n)`` uniform matrix for the ``k`` trials flagged in ``rows``."""
        rows = np.asarray(rows, dtype=bool)
        k = int(rows.sum())
        if not self.exact_mode:
            return self._generator.random((k, n))
        if k == 0:
            return np.empty((0, n))
        return np.stack(
            [self._per_trial[t].random(n) for t in np.flatnonzero(rows)]
        )

    def geometrics_for_counts(self, p: float, counts: np.ndarray) -> np.ndarray:
        """``counts[t]`` Geometric(p) draws per trial, concatenated in trial order.

        Exact mode draws trial ``t``'s block as one ``geometric(p, counts[t])``
        call from trial ``t``'s generator — the call the serial Decay protocol
        makes at a phase boundary.
        """
        counts = np.asarray(counts)
        if not self.exact_mode:
            return self._generator.geometric(p, size=int(counts.sum()))
        chunks = [
            self._per_trial[t].geometric(p, size=int(c))
            for t, c in enumerate(counts)
            if c
        ]
        return np.concatenate(chunks) if chunks else np.empty(0, dtype=np.int64)


@dataclass(frozen=True)
class ScheduledTransmissions:
    """A protocol's committed transmission schedule for a block of rounds.

    Once a protocol's remaining randomness is fixed (Algorithm 1's fast-mode
    Phase 3 pre-samples every pool node's unique transmission round), the
    transmitters of every future round are known in advance and the rounds
    become mutually independent: collision resolution for all of them can be
    done up front by :func:`resolve_scheduled_rounds` in one chunked
    mega-gather instead of one small gather per round.

    Attributes
    ----------
    tx_flat:
        Flat transmitter ids (``trial * n + node``) of every scheduled round,
        concatenated round-major; within a round the ids are sorted.
    offsets:
        Monotone slice boundaries, one entry per covered round plus one:
        round ``first_round + j`` transmits ``tx_flat[offsets[j]:offsets[j+1]]``.
    first_round:
        Engine round index of ``offsets``' first slice.
    """

    tx_flat: np.ndarray
    offsets: np.ndarray
    first_round: int

    @property
    def num_rounds(self) -> int:
        """How many rounds the schedule covers."""
        return len(self.offsets) - 1

    def slice(self, start: int, stop: int) -> "ScheduledTransmissions":
        """The sub-schedule covering schedule-relative rounds ``[start, stop)``.

        The engine resolves a long schedule in slices so each slice can be
        pruned against the protocol's *current* interest set — which shrinks
        fast while the schedule plays out — and so rounds beyond an early
        finish are never resolved at all.
        """
        offs = self.offsets
        return ScheduledTransmissions(
            tx_flat=self.tx_flat[offs[start] : offs[stop]],
            offsets=offs[start : stop + 1] - offs[start],
            first_round=self.first_round + start,
        )


def resolve_scheduled_rounds(
    batch: "NetworkBatch",
    schedule: ScheduledTransmissions,
    *,
    listener_filter: Optional[np.ndarray] = None,
    max_chunk_edges: int = 1 << 22,
) -> Dict[int, np.ndarray]:
    """Resolve every scheduled round's deliveries in chunked mega-gathers.

    Rounds whose transmitters are already fixed are independent of one another
    and of any protocol state, so instead of one CSR gather per round the
    listener edges of *many* rounds are gathered at once and the exactly-one
    rule is applied over composite ``round * total_nodes + listener`` keys —
    one sort replaces per-round Python overhead.  Chunking along rounds
    bounds peak memory to ``O(max_chunk_edges)`` gathered edges.

    ``listener_filter`` (a flat bool vector, nodes the protocol still cares
    about — e.g. a broadcast's uninformed set when the schedule is resolved)
    prunes the composite keys right after the gather: a listener's hear count
    depends only on the edges pointing *at it*, so dropping every edge into
    an uninteresting listener leaves the surviving listeners' counts — and
    therefore their deliveries — unchanged while typically shrinking the sort
    by an order of magnitude.  The filter is a snapshot: deliveries to nodes
    that become uninteresting *during* the scheduled block are retained
    (a superset of what per-round filtering would keep), which is observably
    equivalent for protocols whose interest set only shrinks.

    Returns a mapping ``round_index -> sorted flat receiver ids`` for every
    round the schedule covers (empty rounds included).  Only valid under
    deterministic collision resolution (no erasure) — the caller gates this.
    """
    tx_all = schedule.tx_flat
    offsets = np.asarray(schedule.offsets, dtype=np.int64)
    num_rounds = len(offsets) - 1
    total_nodes = batch.total_nodes
    outcomes: Dict[int, np.ndarray] = {
        schedule.first_round + j: tx_all[:0].astype(np.int64)
        for j in range(num_rounds)
    }
    if tx_all.size == 0 or num_rounds == 0:
        return outcomes

    # Per-transmitter out-degrees let us chunk on gathered-edge volume.
    degrees = batch.out_indptr[tx_all + 1] - batch.out_indptr[tx_all]
    edge_cum = np.concatenate([[0], np.cumsum(degrees)])

    start = 0
    while start < num_rounds:
        stop = start + 1
        while (
            stop < num_rounds
            and edge_cum[offsets[stop + 1]] - edge_cum[offsets[start]]
            <= max_chunk_edges
        ):
            stop += 1
        lo, hi = int(offsets[start]), int(offsets[stop])
        tx_chunk = tx_all[lo:hi]
        if tx_chunk.size:
            round_of_tx = (
                np.searchsorted(offsets, np.arange(lo, hi), side="right") - 1
            )
            listeners, _ = CollisionModel._gather_listener_edges(
                batch.out_indptr, batch.out_indices, tx_chunk
            )
            if listeners.size:
                round_of_edge = np.repeat(round_of_tx, degrees[lo:hi])
                if listener_filter is not None:
                    interesting = listener_filter[listeners]
                    listeners = listeners[interesting]
                    round_of_edge = round_of_edge[interesting]
            if listeners.size:
                keys = round_of_edge * np.int64(total_nodes) + listeners
                keys.sort()
                run_first = np.empty(keys.size, dtype=bool)
                run_last = np.empty(keys.size, dtype=bool)
                run_first[0] = True
                run_first[1:] = keys[1:] != keys[:-1]
                run_last[-1] = True
                run_last[:-1] = run_first[1:]
                delivered = keys[run_first & run_last]
                rounds_of_delivery = delivered // total_nodes
                receivers = delivered % total_nodes
                bounds = np.searchsorted(
                    rounds_of_delivery, np.arange(start, stop + 1)
                )
                for j in range(start, stop):
                    block = receivers[bounds[j - start] : bounds[j - start + 1]]
                    if block.size:
                        outcomes[schedule.first_round + j] = block
        start = stop
    return outcomes


class _ScheduledOutcome(BatchCollisionOutcome):
    """Outcome rebuilt from pre-resolved receivers: receivers only.

    Scheduled resolution never materialises senders or hear counts, and the
    lazy base-class getters would silently fabricate empty/zero values for
    them — wrong-but-plausible data for any future protocol that both
    presamples a schedule and consults collision feedback.  Fail loudly
    instead.
    """

    tracks_senders = False

    _UNAVAILABLE = (
        "{field} is not available on a scheduled-resolution outcome; "
        "protocols that consult it must not offer a presampled_schedule "
        "(or the engine must run with scheduled_resolution=False)"
    )

    @property
    def sender_flat(self) -> np.ndarray:
        raise RuntimeError(self._UNAVAILABLE.format(field="sender_flat"))

    @property
    def hear_counts(self) -> np.ndarray:
        raise RuntimeError(self._UNAVAILABLE.format(field="hear_counts"))

    @property
    def collision_flags(self) -> np.ndarray:
        raise RuntimeError(self._UNAVAILABLE.format(field="collision_flags"))


class BatchProtocol(abc.ABC):
    """Base class for batched protocols: ``R`` trials on stacked state.

    The lifecycle mirrors :class:`~repro.radio.protocol.Protocol`, with every
    hook operating on whole-batch data and a ``running`` mask of trials still
    being advanced::

        protocol.bind(batch, rng_source)
        for r in range(max_rounds):
            tx_flat = protocol.transmit_flat(r, running)     # sorted flat ids
            outcome = collision_model.resolve(batch, tx_flat, rng_source)
            protocol.observe(r, tx_flat, outcome, running)
            ... engine updates `running` from completed()/quiescent() ...

    Transmitters travel as sorted *flat* node ids (``trial * n + node``) so a
    round's cost scales with the number of transmitters, not with ``R * n``;
    protocols whose decision rule is naturally dense implement
    :meth:`transmit_masks` instead and inherit the flattening.

    Implementations must not consume randomness for trials outside
    ``running`` (the rng helpers make this natural), so a trial's stream is
    untouched after it stops — a requirement of the exact-equivalence mode.
    """

    #: Same machine-readable name as the serial counterpart, so batched runs
    #: drop into existing experiment tables unchanged.
    name: str = "batch-protocol"

    #: State shape consumed by the backend auto-selection heuristic
    #: (:func:`repro.radio.nodesets.select_backend`): ``"knowledge"`` for
    #: gossip's ``(R, n, n)`` tensor, ``"frontier"`` for quota/budget-pool
    #: protocols (Decay, deterministic flooding), ``"plain"`` otherwise.
    state_profile: str = "plain"

    def __init__(self) -> None:
        self._batch: Optional[NetworkBatch] = None
        self._rng_source: Optional[BatchRandomSource] = None
        self._kernel: Optional[NodeSetKernel] = None

    # ------------------------------------------------------------------ #
    # Lifecycle
    # ------------------------------------------------------------------ #
    def bind(
        self,
        batch: NetworkBatch,
        rng_source: BatchRandomSource,
        kernel: Optional[NodeSetKernel] = None,
    ) -> None:
        """Attach to a network batch and reset all per-run state.

        ``kernel`` picks the node-set state backend; when omitted the
        ``"auto"`` heuristic resolves one from the batch shape and the
        protocol's :attr:`state_profile`.  Every backend is bit-identical
        under the exact rng mode, so the choice is purely a space/time one.
        """
        self._batch = batch
        self._rng_source = rng_source
        if kernel is None:
            kernel = resolve_kernel(
                "auto",
                batch.trials,
                batch.n,
                profile=self.state_profile,
                density=batch.edge_density,
            )
        self._kernel = kernel
        self._setup()

    def _setup(self) -> None:
        """Initialise per-run state (called from :meth:`bind`). Override."""

    def transmit_flat(self, round_index: int, running: np.ndarray) -> np.ndarray:
        """Sorted flat ids of this round's transmitters (running trials only).

        The default flattens :meth:`transmit_masks`; sparse protocols
        override this directly and never materialise an ``(R, n)`` mask.
        """
        masks = np.asarray(self.transmit_masks(round_index, running), dtype=bool)
        if masks.shape != (self.trials, self.n):
            raise ValueError(
                f"transmit_masks must have shape ({self.trials}, {self.n}), "
                f"got {masks.shape}"
            )
        masks = masks & running[:, None]
        return np.flatnonzero(masks.reshape(-1))

    def transmit_masks(self, round_index: int, running: np.ndarray) -> np.ndarray:
        """Boolean ``(R, n)`` transmit matrix (dense-protocol hook)."""
        raise NotImplementedError(
            f"{type(self).__name__} must override transmit_flat or transmit_masks"
        )

    def observe(
        self,
        round_index: int,
        tx_flat: np.ndarray,
        outcome: BatchCollisionOutcome,
        running: np.ndarray,
    ) -> None:
        """Update per-trial state from the resolved round (override as needed)."""

    def listener_interest(self) -> Optional[np.ndarray]:
        """Flat bool vector of nodes whose deliveries the protocol still uses.

        When a protocol ignores deliveries to some nodes (a broadcast ignores
        deliveries to already-informed nodes), returning that mask lets the
        engine drop uninteresting deliveries inside collision resolution —
        late rounds then cost O(new information), not O(deliveries).  Only
        consulted in fast mode with ``record_rounds`` off, where trimmed
        outcomes are observably equivalent.  ``None`` keeps every delivery.
        """
        return None

    def presampled_schedule(
        self, round_index: int
    ) -> Optional[ScheduledTransmissions]:
        """The committed transmission schedule from ``round_index`` on, if any.

        A protocol that can fix all of its remaining randomness up front
        (Algorithm 1's fast-mode Phase 3) returns a
        :class:`ScheduledTransmissions` here; the engine then resolves every
        scheduled round's collisions in one chunked mega-gather
        (:func:`resolve_scheduled_rounds`) instead of one gather per round.
        The engine still calls :meth:`transmit_flat` every round (for energy
        accounting and per-trial ``running`` gating), so the returned
        schedule must enumerate the *ungated* transmitters — the engine
        intersects outcomes with the live ``running`` mask itself.  Return
        ``None`` (the default) to keep per-round resolution.
        """
        return None

    @abc.abstractmethod
    def completed(self) -> np.ndarray:
        """Per-trial bool vector: objective reached."""

    def quiescent(self, round_index: int) -> np.ndarray:
        """Per-trial bool vector: no node will ever transmit again."""
        return self.completed()

    def suggested_max_rounds(self) -> int:
        """Horizon after which the engine gives up (same for all trials)."""
        return 4 * self.n * max(1, int(np.log2(max(2, self.n))))

    def informed_counts(self) -> Optional[np.ndarray]:
        """Per-trial progress metric (``None`` when not applicable)."""
        return None

    def trial_metadata(self, trial: int) -> dict:
        """Per-trial metadata carried onto the trial's result trace."""
        return {}

    # ------------------------------------------------------------------ #
    # Accessors
    # ------------------------------------------------------------------ #
    @property
    def batch(self) -> NetworkBatch:
        """The bound network batch."""
        if self._batch is None:
            raise RuntimeError(f"{type(self).__name__} is not bound yet")
        return self._batch

    @property
    def rng_source(self) -> BatchRandomSource:
        """The batch random source."""
        if self._rng_source is None:
            raise RuntimeError(f"{type(self).__name__} is not bound yet")
        return self._rng_source

    @property
    def kernel(self) -> NodeSetKernel:
        """The node-set state kernel this run was bound with."""
        if self._kernel is None:
            raise RuntimeError(f"{type(self).__name__} is not bound yet")
        return self._kernel

    @property
    def trials(self) -> int:
        """Number of trials in the bound batch."""
        return self.batch.trials

    @property
    def n(self) -> int:
        """Number of nodes per trial."""
        return self.batch.n

    def __repr__(self) -> str:
        return f"{type(self).__name__}()"


class BatchBroadcastProtocol(BatchProtocol):
    """Batched broadcasting: one source per trial informs every node.

    Mirrors :class:`~repro.radio.protocol.BroadcastProtocol`; the informed
    set lives in a kernel-selected :class:`~repro.radio.nodesets.
    NodeSetState` (dense mask or packed bitset), the informed-round array
    stays dense (it is trace metadata, identical under every backend).
    """

    name = "broadcast"

    def __init__(self, source: int = 0):
        super().__init__()
        self.source = int(source)
        self._members: Optional[NodeSetState] = None
        self._informed_round: Optional[np.ndarray] = None

    def _setup(self) -> None:
        trials, n = self.trials, self.n
        check_node_index(self.source, n, "source")
        self._members = self.kernel.node_set(trials, n)
        self._members.add_flat(
            np.arange(trials, dtype=np.int64) * n + self.source
        )
        self._informed_round = np.full((trials, n), -1, dtype=np.int64)
        self._informed_round[:, self.source] = 0
        self._setup_broadcast()

    def _setup_broadcast(self) -> None:
        """Subclass hook for additional per-run state."""

    @property
    def informed(self) -> np.ndarray:
        """Boolean ``(R, n)`` informed matrix (read-only — do not mutate)."""
        if self._members is None:
            raise RuntimeError("protocol not bound")
        return self._members.mask()

    @property
    def informed_round(self) -> np.ndarray:
        """``(R, n)`` round in which each node was informed (-1 if never)."""
        if self._informed_round is None:
            raise RuntimeError("protocol not bound")
        return self._informed_round

    def informed_counts(self) -> np.ndarray:
        """Per-trial number of informed nodes."""
        return self._members.counts().copy()

    def mark_informed(self, flat_nodes: np.ndarray, round_index: int) -> np.ndarray:
        """Mark flat node ids informed; returns the newly-informed subset."""
        newly = self._members.add_flat(flat_nodes)
        if newly.size:
            self._informed_round.reshape(-1)[newly] = round_index + 1
        return newly

    def listener_interest(self) -> np.ndarray:
        """Deliveries to already-informed nodes carry no new information."""
        return self._members.complement_flat()

    def observe(
        self,
        round_index: int,
        tx_flat: np.ndarray,
        outcome: BatchCollisionOutcome,
        running: np.ndarray,
    ) -> None:
        self.mark_informed(outcome.receiver_flat, round_index)

    def completed(self) -> np.ndarray:
        return self._members.counts() == self.n

    def __repr__(self) -> str:
        return f"{type(self).__name__}(source={self.source})"


class BatchGossipProtocol(BatchProtocol):
    """Batched gossiping on an ``R x n x n`` rumour-knowledge relation.

    The knowledge lives in a kernel-selected
    :class:`~repro.radio.nodesets.KnowledgeState`: the dense backend keeps
    the original boolean ``(R, n, n)`` tensor, the bitset/sparse backends a
    packed ``(R, n, ceil(n/64))`` uint64 tensor — 8x smaller, which is what
    lifts the practical gossip batch ceiling past ``R * n² ~ 1e8`` bool
    cells.  Deliveries merge with the same sender-rows-gathered-first
    semantics the serial :class:`~repro.radio.protocol.GossipProtocol` uses,
    so merges always see round-start knowledge.
    """

    name = "gossip"
    state_profile = "knowledge"

    def __init__(self) -> None:
        super().__init__()
        self._knowledge_state: Optional[KnowledgeState] = None

    def _setup(self) -> None:
        self._knowledge_state = self.kernel.knowledge(self.trials, self.n)
        self._setup_gossip()

    def _setup_gossip(self) -> None:
        """Subclass hook for additional per-run state."""

    @property
    def knowledge_state(self) -> KnowledgeState:
        """The backend knowledge object (preferred over :attr:`knowledge`)."""
        if self._knowledge_state is None:
            raise RuntimeError("protocol not bound")
        return self._knowledge_state

    @property
    def knowledge(self) -> np.ndarray:
        """The ``(R, n, n)`` bool tensor.

        A live view on the dense backend; packed backends materialise a
        fresh unpacked copy, so large-``n`` code should prefer the
        :attr:`knowledge_state` operations (:meth:`knows_rumour`,
        :meth:`rumours_known`) which never expand the tensor.
        """
        return self.knowledge_state.as_dense()

    def knows_rumour(self, rumour: int) -> np.ndarray:
        """``(R, n)`` bool: which nodes currently know ``rumour``."""
        return self.knowledge_state.column(rumour)

    def rumours_known(self) -> np.ndarray:
        """``(R, n)`` per-node count of known rumours."""
        return self.knowledge_state.per_node_counts()

    def merge_deliveries(self, outcome: BatchCollisionOutcome) -> None:
        """Join every delivered rumour set into its receiver's (all trials)."""
        if outcome.receiver_flat.size == 0:
            return
        self.knowledge_state.merge_flat(outcome.sender_flat, outcome.receiver_flat)

    def observe(
        self,
        round_index: int,
        tx_flat: np.ndarray,
        outcome: BatchCollisionOutcome,
        running: np.ndarray,
    ) -> None:
        self.merge_deliveries(outcome)

    def informed_counts(self) -> np.ndarray:
        """Per-trial minimum rumour count (the serial progress metric)."""
        return self.knowledge_state.min_counts()

    def completed(self) -> np.ndarray:
        return self.knowledge_state.complete()


class BatchEngine:
    """Runs a batched protocol over ``R`` trials with one loop of vectorised rounds.

    Per-trial completion masking reproduces the serial engine's stopping rule
    exactly: a trial stops when it completes (or, under
    ``run_to_quiescence``, when it goes quiescent), and a stopped trial
    neither transmits nor consumes randomness while its siblings continue.

    Parameters
    ----------
    collision_model:
        A :class:`~repro.radio.collision.BatchCollisionModel`, or a scalar
        :class:`~repro.radio.collision.CollisionModel` (converted via
        :func:`~repro.radio.collision.as_batch_collision_model`).  Defaults
        to the batched standard model.
    record_rounds / keep_arrays / run_to_quiescence:
        Same semantics as on :class:`~repro.radio.engine.SimulationEngine`,
        applied per trial.
    scheduled_resolution:
        When a protocol commits to a fixed future transmission schedule
        (:meth:`BatchProtocol.presampled_schedule`), resolve all scheduled
        rounds in one chunked mega-gather instead of one gather per round.
        Only taken under deterministic collision resolution without collision
        detection; results are identical either way (the flag exists so the
        equivalence can be tested).
    state_backend:
        Node-set state backend handed to the protocol at bind time:
        ``"auto"`` (default — heuristic per workload), ``"dense"``,
        ``"bitset"`` or ``"sparse"``.  All backends produce identical
        results (bit-identical in exact rng mode); the knob trades memory
        (packed gossip knowledge) against per-round bookkeeping (sparse
        frontiers).
    kernel:
        Collision-kernel selection (:data:`repro.radio.kernels.
        COLLISION_KERNELS`): ``"auto"`` (default — compiled when numba is
        available, numpy otherwise), ``"numpy"``, ``"compiled"`` (silently
        falls back to the bit-identical numpy path without numba) or
        ``"edge_sampled"`` (an O(R·n)-per-round approximation for
        edge-bound graphs; fast mode only, stamped into each trace's
        metadata as ``collision_kernel``).
    environment:
        Optional faulty-world layer (a
        :class:`~repro.radio.environment.BatchEnvironment`, a scalar
        :class:`~repro.radio.environment.Environment`, or a spec dict) that
        perturbs each round around collision resolution for every trial.
        An active environment disables interest trimming and scheduled
        mega-gather resolution (it must see the full delivery set and
        perturbs non-deterministically); a null environment costs nothing.
    """

    #: Rounds resolved per scheduled-resolution slice: small enough that the
    #: interest snapshot stays fresh (and an early finish wastes little),
    #: large enough to amortise the per-slice gather/sort.
    _SCHEDULE_SLICE_ROUNDS = 8

    def __init__(
        self,
        collision_model: Union[BatchCollisionModel, CollisionModel, None] = None,
        *,
        record_rounds: bool = False,
        keep_arrays: bool = False,
        run_to_quiescence: bool = False,
        scheduled_resolution: bool = True,
        state_backend: str = "auto",
        environment=None,
        kernel: str = "auto",
    ):
        if collision_model is None:
            self.collision_model: BatchCollisionModel = BatchStandardCollisionModel()
        else:
            self.collision_model = as_batch_collision_model(collision_model)
        if environment is not None and not isinstance(environment, BatchEnvironment):
            environment = as_batch_environment(environment)
        self.environment = environment
        self.record_rounds = bool(record_rounds)
        self.keep_arrays = bool(keep_arrays)
        self.run_to_quiescence = bool(run_to_quiescence)
        self.scheduled_resolution = bool(scheduled_resolution)
        if state_backend not in STATE_BACKENDS:
            known = ", ".join(STATE_BACKENDS)
            raise ValueError(
                f"unknown state backend {state_backend!r}; known: {known}"
            )
        self.state_backend = state_backend
        if kernel not in COLLISION_KERNELS:
            known = ", ".join(COLLISION_KERNELS)
            raise ValueError(
                f"unknown collision kernel {kernel!r}; known: {known}"
            )
        self.kernel = kernel

    def run(
        self,
        networks: Union[NetworkBatch, RadioNetwork, Sequence[RadioNetwork]],
        protocol: BatchProtocol,
        *,
        rng: SeedLike = None,
        rngs: Optional[Sequence[SeedLike]] = None,
        trials: Optional[int] = None,
        max_rounds: Optional[int] = None,
        result_sink=None,
    ) -> List[RunResultTrace]:
        """Run all trials to their individual completion; one trace per trial.

        Parameters
        ----------
        networks:
            A :class:`NetworkBatch`, a sequence of equally-sized networks
            (one per trial), or a single network together with ``trials``
            (every trial then shares that topology).
        rng:
            Fast-mode seed/generator: one shared stream serves all trials
            with vectorised draws.  Ignored when ``rngs`` is given.
        rngs:
            Exact-equivalence mode: one seed/generator per trial, consumed
            exactly as the serial engine would — batched results are then
            bit-identical to ``SimulationEngine.run`` with the same per-trial
            generators.
        max_rounds:
            Per-trial horizon (defaults to the protocol's suggestion).
        result_sink:
            Optional ``(trial_index, trace) -> None`` callback.  When given,
            each trial's trace is handed to it as results are assembled and
            the method returns an empty list — a streaming consumer (the
            sweep aggregation layer) then never holds ``R`` trace objects
            at once.
        """
        batch = self._coerce_batch(networks, trials)
        if rngs is not None:
            if len(rngs) != batch.trials:
                raise ValueError(
                    f"rngs must have one entry per trial "
                    f"({batch.trials}), got {len(rngs)}"
                )
            rng_source = BatchRandomSource.exact(rngs)
        else:
            rng_source = BatchRandomSource.fast(rng)

        environment = self.environment
        env_active = environment is not None and not environment.is_null
        if env_active:
            environment.bind(batch, rng_source)

        # Resolve the collision kernel for this run (rejects edge_sampled
        # under exact mode) and install it on the model for the round loop.
        collision_kernel = resolve_collision_kernel(
            self.kernel, exact_mode=rng_source.exact_mode, record=True
        )
        self.collision_model.kernel = collision_kernel

        kernel = resolve_kernel(
            self.state_backend,
            batch.trials,
            batch.n,
            profile=protocol.state_profile,
            density=batch.edge_density,
        )
        protocol.bind(batch, rng_source, kernel)
        if max_rounds is None:
            max_rounds = protocol.suggested_max_rounds()
        max_rounds = check_positive_int(max_rounds, "max_rounds")

        trials_count, n = batch.trials, batch.n
        accountant = BatchEnergyAccountant(trials_count, n)
        completed = np.asarray(protocol.completed(), dtype=bool).copy()
        completion_round = np.zeros(trials_count, dtype=np.int64)
        rounds_executed = np.zeros(trials_count, dtype=np.int64)
        # Serial rule: a trial that is already complete enters the loop only
        # under run_to_quiescence (it may still be scheduled to transmit).
        if self.run_to_quiescence:
            running = np.ones(trials_count, dtype=bool)
        else:
            running = ~completed

        # Trimmed outcomes (deliveries the protocol would ignore dropped in
        # collision resolution) are observably equivalent only when nobody
        # records per-round delivery counts and no per-trial stream has to
        # match the serial engine call for call.
        use_interest = (
            not self.record_rounds and not rng_source.exact_mode and not env_active
        )
        # Mega-gather fast path: legal only when resolution is deterministic
        # (pre-resolving would skip erasure draws), collision-free feedback is
        # not part of the outcome (scheduled outcomes carry receivers only —
        # no senders, no hear counts), and trimmed deliveries are observably
        # equivalent (the resolver prunes against the protocol's interest set
        # the same way per-round resolution would).
        can_schedule = (
            self.scheduled_resolution
            and use_interest
            and self.collision_model.resolves_deterministically
            and not self.collision_model.detects_collisions
            # The edge-sampled kernel draws fresh randomness per round, so
            # pre-resolving scheduled rounds would skip its draws.
            and collision_kernel != "edge_sampled"
        )
        plan: Optional[ScheduledTransmissions] = None
        scheduled: Dict[int, np.ndarray] = {}
        sched_next = 0  # schedule-relative index of the next unresolved slice

        # Telemetry is hoisted once per run: when disabled, the loop pays
        # three `if tel:` branch checks per round and nothing else.
        tel = telemetry.enabled()
        if tel:
            clock = time.perf_counter
            run_start = clock()
            phase_seconds = {"transmit": 0.0, "resolve": 0.0, "observe": 0.0}

        round_log: List[dict] = []
        for round_index in range(max_rounds):
            if not running.any():
                break
            if tel:
                t_mark = clock()
            if can_schedule and plan is None:
                plan = protocol.presampled_schedule(round_index)
            tx_flat = np.asarray(
                protocol.transmit_flat(round_index, running), dtype=np.int64
            )
            if env_active:
                environment.begin_round(round_index, running)
                # Gated radios (crashed/asleep) are not energy-charged;
                # in-flight loss below is charged-but-lost, and ``observe``
                # still sees the pre-loss (gated) transmit set.
                tx_flat = environment.gate_transmit_flat(
                    round_index, tx_flat, running
                )
            transmitters = accountant.record_flat(tx_flat)
            air_flat = tx_flat
            if env_active:
                air_flat = environment.perturb_transmissions(
                    round_index, tx_flat, running
                )
            if tel:
                now = clock()
                phase_seconds["transmit"] += now - t_mark
                t_mark = now
            cached = None
            if plan is not None:
                j = round_index - plan.first_round
                if 0 <= j < plan.num_rounds:
                    if j >= sched_next:
                        # Resolve the next slice of rounds in one mega-gather,
                        # pruned against the interest set as of *now* — it
                        # shrinks fast while the schedule plays out, so later
                        # slices sort almost nothing.
                        stop = min(
                            j + self._SCHEDULE_SLICE_ROUNDS, plan.num_rounds
                        )
                        scheduled.update(
                            resolve_scheduled_rounds(
                                batch,
                                plan.slice(sched_next, stop),
                                listener_filter=protocol.listener_interest(),
                            )
                        )
                        sched_next = stop
                    cached = scheduled.pop(round_index)
            if cached is not None:
                # Trials are block-diagonal-independent, so dropping a
                # stopped trial's receivers reproduces per-round resolution
                # of the running-gated transmitters exactly.
                receiver_flat = cached
                if receiver_flat.size and not running.all():
                    receiver_flat = receiver_flat[running[receiver_flat // n]]
                outcome = _ScheduledOutcome(
                    receiver_flat=receiver_flat,
                    trials=trials_count,
                    n=n,
                )
            else:
                outcome = self.collision_model.resolve(
                    batch,
                    air_flat,
                    rng_source,
                    listener_filter=(
                        protocol.listener_interest() if use_interest else None
                    ),
                )
                if env_active:
                    outcome = environment.filter_deliveries(
                        round_index, outcome, running
                    )
            if tel:
                now = clock()
                phase_seconds["resolve"] += now - t_mark
                t_mark = now

            informed_before = (
                protocol.informed_counts() if self.record_rounds else None
            )
            protocol.observe(round_index, tx_flat, outcome, running)
            rounds_executed[running] = round_index + 1

            if self.record_rounds:
                round_log.append(
                    {
                        "running": running.copy(),
                        "transmitters": transmitters,
                        "deliveries": outcome.receiver_counts,
                        "informed_before": informed_before,
                        "informed_after": protocol.informed_counts(),
                    }
                )

            completed_now = np.asarray(protocol.completed(), dtype=bool)
            newly_completed = running & completed_now & ~completed
            completion_round[newly_completed] = round_index + 1
            completed |= newly_completed
            if self.run_to_quiescence:
                stop = running & np.asarray(
                    protocol.quiescent(round_index + 1), dtype=bool
                )
            else:
                stop = running & completed_now
            running = running & ~stop
            if tel:
                phase_seconds["observe"] += clock() - t_mark

        if tel:
            self._emit_run_telemetry(
                batch,
                protocol,
                rounds_executed,
                phase_seconds,
                clock() - run_start,
                collision_kernel=collision_kernel,
                state_backend=kernel.backend,
            )
        completion_round[~completed] = rounds_executed[~completed]
        return self._assemble_results(
            batch,
            protocol,
            accountant,
            completed,
            completion_round,
            rounds_executed,
            round_log,
            environment=environment if env_active else None,
            collision_kernel=collision_kernel,
            result_sink=result_sink,
        )

    # ------------------------------------------------------------------ #
    # Helpers
    # ------------------------------------------------------------------ #
    @staticmethod
    def _coerce_batch(networks, trials: Optional[int]) -> NetworkBatch:
        if isinstance(networks, NetworkBatch):
            return networks
        if isinstance(networks, RadioNetwork):
            if trials is None:
                raise ValueError(
                    "pass trials=R when running a batch on a single network"
                )
            return NetworkBatch.shared(networks, trials)
        return NetworkBatch(networks)

    @staticmethod
    def _emit_run_telemetry(
        batch: NetworkBatch,
        protocol: BatchProtocol,
        rounds_executed: np.ndarray,
        phase_seconds: Dict[str, float],
        total_seconds: float,
        *,
        collision_kernel: str,
        state_backend: str,
    ) -> None:
        """One ``engine.run`` event + per-phase aggregate spans per run.

        Round phases are pre-aggregated (summed seconds across all rounds)
        rather than one span per round — at thousands of rounds per run,
        per-round records would dwarf the simulation itself.
        """
        trials_count = int(batch.trials)
        max_rounds_run = int(rounds_executed.max()) if trials_count else 0
        trial_rounds = int(rounds_executed.sum())
        for phase, seconds in phase_seconds.items():
            telemetry.aggregate_span(
                "round-phase", phase, seconds, rounds=max_rounds_run
            )
        telemetry.event(
            "engine.run",
            protocol=protocol.name,
            trials=trials_count,
            n=int(batch.n),
            kernel=collision_kernel,
            state_backend=state_backend,
            rounds=max_rounds_run,
            trial_rounds=trial_rounds,
            seconds=total_seconds,
            trials_per_second=(
                trials_count / total_seconds if total_seconds > 0 else None
            ),
            rounds_per_second=(
                trial_rounds / total_seconds if total_seconds > 0 else None
            ),
        )
        telemetry.counter_inc("engine.runs")
        telemetry.counter_inc("engine.trials", trials_count)
        telemetry.counter_inc("engine.trial_rounds", trial_rounds)
        telemetry.histogram_observe("engine.run_seconds", total_seconds)

    def _assemble_results(
        self,
        batch: NetworkBatch,
        protocol: BatchProtocol,
        accountant: BatchEnergyAccountant,
        completed: np.ndarray,
        completion_round: np.ndarray,
        rounds_executed: np.ndarray,
        round_log: List[dict],
        environment=None,
        collision_kernel: str = "numpy",
        result_sink=None,
    ) -> List[RunResultTrace]:
        reports = accountant.reports()
        informed = protocol.informed_counts()
        per_node = accountant.per_node() if self.keep_arrays else None
        informed_rounds = (
            protocol.informed_round
            if self.keep_arrays and isinstance(protocol, BatchBroadcastProtocol)
            else None
        )
        results: List[RunResultTrace] = []
        for t in range(batch.trials):
            rounds: List[RoundRecord] = []
            for entry in round_log:
                if not entry["running"][t]:
                    continue
                before = entry["informed_before"]
                after = entry["informed_after"]
                deliveries = int(entry["deliveries"][t])
                # Trials run contiguously from round 0 until they stop, so the
                # per-trial record index equals the engine's round index.
                rounds.append(
                    RoundRecord(
                        round_index=len(rounds),
                        transmitters=int(entry["transmitters"][t]),
                        deliveries=deliveries,
                        newly_informed=(
                            int(after[t] - before[t])
                            if after is not None and before is not None
                            else deliveries
                        ),
                        informed_after=int(after[t]) if after is not None else -1,
                    )
                )
            result = RunResultTrace(
                protocol_name=protocol.name,
                network_name=batch.networks[t].name,
                n=batch.n,
                completed=bool(completed[t]),
                completion_round=int(completion_round[t]),
                rounds_executed=int(rounds_executed[t]),
                energy=reports[t],
                informed_count=(
                    int(informed[t]) if informed is not None else None
                ),
                rounds=rounds,
                metadata=dict(protocol.trial_metadata(t)),
            )
            if per_node is not None:
                result.per_node_transmissions = per_node[t]
            if informed_rounds is not None:
                result.informed_round = informed_rounds[t].copy()
            if environment is not None:
                result.metadata["environment"] = environment.trial_report(t)
            if collision_kernel == "edge_sampled":
                # Approximate results must be distinguishable from exact
                # ones wherever the trace ends up (stores, aggregations).
                result.metadata["collision_kernel"] = "edge_sampled"
            if result_sink is not None:
                result_sink(t, result)
            else:
                results.append(result)
        return results


def run_protocol_batch(
    networks: Union[NetworkBatch, RadioNetwork, Sequence[RadioNetwork]],
    protocol: BatchProtocol,
    *,
    rng: SeedLike = None,
    rngs: Optional[Sequence[SeedLike]] = None,
    trials: Optional[int] = None,
    max_rounds: Optional[int] = None,
    collision_model: Union[BatchCollisionModel, CollisionModel, None] = None,
    record_rounds: bool = False,
    keep_arrays: bool = False,
    run_to_quiescence: bool = False,
    state_backend: str = "auto",
    environment=None,
    kernel: str = "auto",
) -> List[RunResultTrace]:
    """Convenience wrapper: build a :class:`BatchEngine` and run once.

    Examples
    --------
    >>> from repro.graphs import random_digraph
    >>> from repro.core import BatchEnergyEfficientBroadcast
    >>> net = random_digraph(256, 0.05, rng=1)
    >>> results = run_protocol_batch(
    ...     net, BatchEnergyEfficientBroadcast(0.05), trials=8, rng=2
    ... )
    >>> max(r.energy.max_per_node for r in results) <= 1
    True
    """
    engine = BatchEngine(
        collision_model,
        record_rounds=record_rounds,
        keep_arrays=keep_arrays,
        run_to_quiescence=run_to_quiescence,
        state_backend=state_backend,
        environment=environment,
        kernel=kernel,
    )
    return engine.run(
        networks,
        protocol,
        rng=rng,
        rngs=rngs,
        trials=trials,
        max_rounds=max_rounds,
    )
