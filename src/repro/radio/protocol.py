"""Protocol base classes.

A *protocol* (what the paper calls an algorithm) is a per-node rule that
decides, in every synchronous round, whether the node transmits, based only
on

* global constants every node knows (``n``, optionally the diameter ``D``,
  the paper's constants ``beta`` …),
* the node's own history (when it was informed, how often it transmitted,
  what it has received), and
* shared randomness in the case of selection-sequence algorithms
  (Algorithm 3 and the Czumaj–Rytter baselines use a public random sequence
  ``I_1, I_2, …``; this is still oblivious because it is independent of the
  topology).

The engine drives a protocol through three hooks per round:
``transmit_mask`` → collision resolution → ``observe``.  State is kept in
NumPy arrays indexed by node so the whole network advances one round with a
handful of vectorised operations.
"""

from __future__ import annotations

import abc
from typing import Optional

import numpy as np

from repro._util.rng import SeedLike, as_generator
from repro._util.validation import check_node_index
from repro.radio.collision import CollisionOutcome
from repro.radio.network import RadioNetwork

__all__ = ["Protocol", "BroadcastProtocol", "GossipProtocol"]


class Protocol(abc.ABC):
    """Abstract base class for oblivious radio protocols.

    Lifecycle::

        protocol.bind(network, rng)         # once per run
        for r in range(max_rounds):
            mask = protocol.transmit_mask(r)
            outcome = collision_model.resolve(network, mask, rng)
            protocol.observe(r, mask, outcome)
            if protocol.is_complete():
                break
    """

    #: Short machine-readable name used in experiment tables.
    name: str = "protocol"

    def __init__(self) -> None:
        self._network: Optional[RadioNetwork] = None
        self._rng: Optional[np.random.Generator] = None

    # ------------------------------------------------------------------ #
    # Lifecycle hooks
    # ------------------------------------------------------------------ #
    def bind(self, network: RadioNetwork, rng: SeedLike = None) -> None:
        """Attach the protocol to a network and reset all per-run state."""
        self._network = network
        self._rng = as_generator(rng)
        self._setup()

    def _setup(self) -> None:
        """Initialise per-run state (called from :meth:`bind`). Override."""

    @abc.abstractmethod
    def transmit_mask(self, round_index: int) -> np.ndarray:
        """Boolean ``n``-vector of who transmits in round ``round_index``."""

    def observe(
        self,
        round_index: int,
        transmit_mask: np.ndarray,
        outcome: CollisionOutcome,
    ) -> None:
        """Update per-node state from the resolved round (override as needed)."""

    @abc.abstractmethod
    def is_complete(self) -> bool:
        """True when the protocol's objective has been reached."""

    def is_quiescent(self, round_index: int) -> bool:
        """True when no node will ever transmit again (from ``round_index`` on).

        Radio protocols have no termination detection: a node keeps following
        its schedule even after the objective is globally reached.  Energy
        experiments therefore run the engine to *quiescence* rather than to
        completion; protocols with bounded schedules (Algorithm 1's phases,
        Algorithm 3's active windows) override this to report when their
        schedule is exhausted.  The default is conservative: quiescent only
        when the objective is met (protocols without a stopping rule are cut
        off at completion, the most favourable accounting for them).
        """
        return self.is_complete()

    def suggested_max_rounds(self) -> int:
        """A horizon after which the engine gives up (protocol-specific)."""
        return 4 * self.n * max(1, int(np.log2(max(2, self.n))))

    # ------------------------------------------------------------------ #
    # Accessors
    # ------------------------------------------------------------------ #
    @property
    def network(self) -> RadioNetwork:
        """The bound network (raises if :meth:`bind` has not been called)."""
        if self._network is None:
            raise RuntimeError(f"{type(self).__name__} is not bound to a network yet")
        return self._network

    @property
    def rng(self) -> np.random.Generator:
        """The per-run random generator."""
        if self._rng is None:
            raise RuntimeError(f"{type(self).__name__} is not bound to a network yet")
        return self._rng

    @property
    def n(self) -> int:
        """Number of nodes of the bound network."""
        return self.network.n

    def __repr__(self) -> str:
        return f"{type(self).__name__}()"


class BroadcastProtocol(Protocol):
    """Base class for broadcasting: one source informs every node.

    Maintains the informed set, the round in which each node was informed
    (``informed_round``, -1 if never), and exposes the completion criterion
    "every node informed".
    """

    name = "broadcast"

    def __init__(self, source: int = 0):
        super().__init__()
        self.source = int(source)
        self._informed: Optional[np.ndarray] = None
        self._informed_round: Optional[np.ndarray] = None

    def _setup(self) -> None:
        n = self.n
        check_node_index(self.source, n, "source")
        self._informed = np.zeros(n, dtype=bool)
        self._informed[self.source] = True
        self._informed_round = np.full(n, -1, dtype=np.int64)
        self._informed_round[self.source] = 0
        self._setup_broadcast()

    def _setup_broadcast(self) -> None:
        """Subclass hook for additional per-run state."""

    # ------------------------------------------------------------------ #
    # Informed-set bookkeeping
    # ------------------------------------------------------------------ #
    @property
    def informed(self) -> np.ndarray:
        """Boolean informed mask (live view — do not mutate)."""
        if self._informed is None:
            raise RuntimeError("protocol not bound")
        return self._informed

    @property
    def informed_round(self) -> np.ndarray:
        """Round in which each node was informed (-1 if uninformed)."""
        if self._informed_round is None:
            raise RuntimeError("protocol not bound")
        return self._informed_round

    def informed_count(self) -> int:
        """Number of informed nodes."""
        return int(self.informed.sum())

    def mark_informed(self, nodes: np.ndarray, round_index: int) -> np.ndarray:
        """Mark ``nodes`` informed; returns the subset that was newly informed."""
        nodes = np.asarray(nodes, dtype=np.int64)
        if nodes.size == 0:
            return nodes
        newly = nodes[~self._informed[nodes]]
        if newly.size:
            self._informed[newly] = True
            self._informed_round[newly] = round_index + 1
        return newly

    def observe(
        self,
        round_index: int,
        transmit_mask: np.ndarray,
        outcome: CollisionOutcome,
    ) -> None:
        self.mark_informed(outcome.receivers, round_index)

    def is_complete(self) -> bool:
        return bool(self.informed.all())

    def __repr__(self) -> str:
        return f"{type(self).__name__}(source={self.source})"


class GossipProtocol(Protocol):
    """Base class for gossiping: every node's rumour must reach every node.

    Rumour knowledge is a boolean ``(n, n)`` matrix ``K`` with
    ``K[v, u] = True`` iff node ``v`` knows the rumour originated by ``u``.
    As in the paper (and [8, 11]), nodes may *join* rumours: a transmission by
    ``v`` carries every rumour ``v`` knows at the start of the round.
    """

    name = "gossip"

    def __init__(self) -> None:
        super().__init__()
        self._knowledge: Optional[np.ndarray] = None

    def _setup(self) -> None:
        n = self.n
        self._knowledge = np.eye(n, dtype=bool)
        self._setup_gossip()

    def _setup_gossip(self) -> None:
        """Subclass hook for additional per-run state."""

    @property
    def knowledge(self) -> np.ndarray:
        """The ``(n, n)`` rumour-knowledge matrix (live view)."""
        if self._knowledge is None:
            raise RuntimeError("protocol not bound")
        return self._knowledge

    def rumours_known(self) -> np.ndarray:
        """Per-node count of known rumours."""
        return self.knowledge.sum(axis=1)

    def merge_deliveries(self, outcome: CollisionOutcome) -> None:
        """Join every delivered message into its receiver's rumour set.

        The sender rows are gathered *before* the update (fancy indexing
        copies), so all merges within a round see the senders' round-start
        knowledge, as the synchronous model requires.
        """
        receivers = outcome.receivers
        if receivers.size == 0:
            return
        payloads = self._knowledge[outcome.senders]
        self._knowledge[receivers] |= payloads

    def observe(
        self,
        round_index: int,
        transmit_mask: np.ndarray,
        outcome: CollisionOutcome,
    ) -> None:
        self.merge_deliveries(outcome)

    def is_complete(self) -> bool:
        return bool(self.knowledge.all())
