"""Faulty-world environment layers wrapped around collision resolution.

Every scenario the engine could express before this module assumed a
perfectly reliable synchronous radio: each round, the protocol's transmit
mask goes straight into the collision model and the resolved deliveries go
straight back to the protocol.  An :class:`Environment` perturbs that round
*around* the collision model without touching protocol or resolver code:

1. :meth:`~Environment.begin_round` — advance per-round stochastic state
   (e.g. the Gilbert–Elliott burst-loss chains) and fire schedule events
   (churn crash/recover);
2. :meth:`~Environment.gate_transmitters` — remove transmissions of nodes
   whose radio is off (crashed, not yet awake).  Gated transmissions are
   **not** energy-charged: the node never keyed its transmitter;
3. :meth:`~Environment.perturb_transmissions` — drop transmissions on the
   air (i.i.d. transmitter-side loss).  These *are* charged: energy was
   spent, the packet died in flight — the difference between a dead radio
   and a lossy channel;
4. the collision model resolves the surviving transmissions (loss before
   resolution changes the collision structure, deliberately);
5. :meth:`~Environment.filter_deliveries` — drop deliveries after
   resolution (receiver-side i.i.d. loss, burst-state receivers, jammed
   channels, deliveries to crashed/asleep nodes).

The same split as ``CollisionModel`` / ``BatchCollisionModel`` applies: the
scalar :class:`Environment` serves :class:`~repro.radio.engine
.SimulationEngine`, the vectorised :class:`BatchEnvironment` mirror serves
:class:`~repro.radio.batch.BatchEngine`, and in exact rng mode the two are
bit-identical — every stochastic layer draws per-trial blocks in trial
order through the :class:`~repro.radio.batch.BatchRandomSource` helpers,
consuming each trial's stream with exactly the calls the scalar layer
makes.  Environments never resolve deterministically
(:attr:`BatchEnvironment.resolves_deterministically` is ``False``), so the
batch engine bypasses scheduled mega-gather resolution (and listener
interest trimming) whenever an environment is active; a **null**
environment (:attr:`~Environment.is_null`) costs nothing — the engine
skips every hook and keeps its fast paths.

Crash semantics are "radio dead, clock alive": a down node's protocol
state still advances with the global round counter, but its transmissions
are gated (uncharged) and deliveries to it are dropped.  Crash-recovery
retains state across the outage; crash-stop simply never recovers (the
``success`` metric records the failure).

Fault bookkeeping feeds the ``recovery_rounds`` / ``work_wasted`` metrics:
each layer tracks the last round it perturbed anything
(``last_fault_round``, 1-based like ``completion_round``), how many
charged transmissions it lost, how many deliveries it dropped, and how
many transmissions it gated while a radio was down.

Environments are built from JSON-clean **spec dicts** (``{"name": ...,
"params": {...}}``) via :func:`build_environment` /
:func:`build_batch_environment`, so a spec can ride inside a
:class:`~repro.experiments.runner.Job`, a scenario grid, or a store key
unchanged.  :func:`parse_environment_option` turns the CLI's compact
``--env loss=0.1,churn=0.2@5:40`` form into a spec.
"""

from __future__ import annotations

from dataclasses import replace as dataclass_replace
from typing import Dict, List, Mapping, Optional, Sequence

import numpy as np

from repro import telemetry
from repro._util.validation import (
    check_node_index,
    check_positive_int,
    check_probability,
    check_sorted_nondecreasing,
)

__all__ = [
    "Environment",
    "NullEnvironment",
    "IidLossEnvironment",
    "BurstLossEnvironment",
    "ChurnEnvironment",
    "JamEnvironment",
    "WakeupEnvironment",
    "ComposedEnvironment",
    "BatchEnvironment",
    "ENVIRONMENT_FAMILIES",
    "build_environment",
    "build_batch_environment",
    "as_batch_environment",
    "validate_environment_spec",
    "parse_environment_option",
]


# --------------------------------------------------------------------------- #
# Spec validation helpers (shared by the scalar and batch constructors)
# --------------------------------------------------------------------------- #
def _check_round(value, name: str) -> int:
    return check_positive_int(value, name, minimum=0)


def _check_node_list(values, name: str) -> List[int]:
    if not isinstance(values, (list, tuple, np.ndarray)):
        raise TypeError(f"{name} must be a list of node ids, got {type(values).__name__}")
    out = []
    for v in values:
        out.append(check_positive_int(v, f"{name} entry", minimum=0))
    return out


def _normalise_churn_events(events) -> List[Dict[str, object]]:
    """Validate and normalise a churn schedule into plain JSON events."""
    if not isinstance(events, (list, tuple)):
        raise TypeError(
            f"churn events must be a list of event dicts, got {type(events).__name__}"
        )
    normalised: List[Dict[str, object]] = []
    for event in events:
        if not isinstance(event, Mapping):
            raise TypeError(
                f"each churn event must be a dict, got {type(event).__name__}"
            )
        unknown = set(event) - {"round", "crash", "recover", "crash_fraction", "recover_all"}
        if unknown:
            raise ValueError(
                f"unknown churn event key(s) {sorted(unknown)}; known: "
                "round, crash, recover, crash_fraction, recover_all"
            )
        if "round" not in event:
            raise ValueError("every churn event needs a 'round'")
        out: Dict[str, object] = {"round": _check_round(event["round"], "churn event round")}
        if "crash" in event:
            out["crash"] = _check_node_list(event["crash"], "churn crash list")
        if "crash_fraction" in event:
            out["crash_fraction"] = check_probability(
                event["crash_fraction"], "churn crash_fraction"
            )
        if "recover" in event:
            out["recover"] = _check_node_list(event["recover"], "churn recover list")
        if "recover_all" in event:
            out["recover_all"] = bool(event["recover_all"])
        if len(out) == 1:
            raise ValueError(
                "a churn event needs at least one action "
                "(crash, crash_fraction, recover or recover_all)"
            )
        normalised.append(out)
    check_sorted_nondecreasing(
        [e["round"] for e in normalised], "churn event rounds"
    )
    return normalised


# --------------------------------------------------------------------------- #
# Scalar environments (SimulationEngine)
# --------------------------------------------------------------------------- #
class Environment:
    """Base class: fault bookkeeping plus identity (no-op) hooks.

    Subclasses override the hooks they need; every hook must keep its rng
    consumption mirrored in the corresponding :class:`BatchEnvironment`
    (same draws, per trial, in the same order) so exact-mode batch runs
    stay bit-identical to serial ones.
    """

    name = "environment"

    def __init__(self) -> None:
        self._n = 0
        self._last_fault_round = 0
        self._fault_events = 0
        self._lost_transmissions = 0
        self._lost_deliveries = 0
        self._suppressed_transmissions = 0

    # -- identity / lifecycle ------------------------------------------- #
    @property
    def is_null(self) -> bool:
        """True when the environment can never perturb anything — the
        engine then skips every hook (and keeps its fast paths)."""
        return False

    def reset(self, network) -> None:
        """Prepare for one run on ``network`` (clears all fault state)."""
        self._n = int(network.n)
        self._last_fault_round = 0
        self._fault_events = 0
        self._lost_transmissions = 0
        self._lost_deliveries = 0
        self._suppressed_transmissions = 0
        self._reset()

    def _reset(self) -> None:  # pragma: no cover - trivial default
        pass

    # -- per-round hooks ------------------------------------------------- #
    def begin_round(self, round_index: int, rng: np.random.Generator) -> None:
        """Advance stochastic state / fire schedule events for this round."""

    def gate_transmitters(self, round_index: int, mask: np.ndarray) -> np.ndarray:
        """Remove transmissions of down radios (rng-free, not charged)."""
        return mask

    def perturb_transmissions(
        self, round_index: int, mask: np.ndarray, rng: np.random.Generator
    ) -> np.ndarray:
        """Drop charged transmissions on the air (before resolution)."""
        return mask

    def filter_deliveries(self, round_index: int, outcome, rng: np.random.Generator):
        """Drop deliveries after resolution."""
        return outcome

    def is_doomed(self, round_index: int) -> bool:
        """True when the run can never progress again (crashed forever).

        Consulted after round ``round_index``'s events have fired.  The
        engine retires a doomed run immediately instead of spinning it to
        the round cap; only environments that can prove doom (churn with
        every radio down and no recovery scheduled) override this.
        """
        return False

    # -- bookkeeping ------------------------------------------------------ #
    def _record_fault(self, round_index: int) -> None:
        self._fault_events += 1
        self._last_fault_round = round_index + 1
        telemetry.counter_inc("environment.fault_events")

    def report(self) -> Dict[str, object]:
        """JSON-clean fault summary merged into the trace metadata."""
        return {
            "spec": self.spec(),
            "fault_events": int(self._fault_events),
            "last_fault_round": int(self._last_fault_round),
            "lost_transmissions": int(self._lost_transmissions),
            "lost_deliveries": int(self._lost_deliveries),
            "suppressed_transmissions": int(self._suppressed_transmissions),
        }

    def spec(self) -> Dict[str, object]:
        """The normalised spec dict this environment was built from."""
        raise NotImplementedError

    # -- shared delivery surgery ----------------------------------------- #
    def _drop_deliveries(self, round_index: int, outcome, keep: np.ndarray):
        dropped = int(keep.size - int(keep.sum()))
        if dropped == 0:
            return outcome
        self._lost_deliveries += dropped
        self._record_fault(round_index)
        return dataclass_replace(
            outcome,
            receivers=outcome.receivers[keep],
            senders=outcome.senders[keep],
        )


class NullEnvironment(Environment):
    """The do-nothing environment (useful for overhead measurement)."""

    name = "null"

    @property
    def is_null(self) -> bool:
        return True

    def spec(self) -> Dict[str, object]:
        return {"name": "null", "params": {}}


class IidLossEnvironment(Environment):
    """Per-round i.i.d. message loss on transmissions and/or deliveries.

    ``tx_loss`` kills a transmission on the air (charged but lost — it no
    longer participates in collision resolution); ``rx_loss`` kills an
    otherwise successful delivery (like the erasure collision model, but
    composable with every other fault family).
    """

    name = "iid_loss"

    def __init__(self, tx_loss: float = 0.0, rx_loss: float = 0.0) -> None:
        super().__init__()
        self.tx_loss = check_probability(tx_loss, "tx_loss")
        self.rx_loss = check_probability(rx_loss, "rx_loss")

    @property
    def is_null(self) -> bool:
        return self.tx_loss == 0.0 and self.rx_loss == 0.0

    def spec(self) -> Dict[str, object]:
        return {
            "name": "iid_loss",
            "params": {"tx_loss": self.tx_loss, "rx_loss": self.rx_loss},
        }

    def perturb_transmissions(self, round_index, mask, rng):
        if self.tx_loss <= 0.0:
            return mask
        tx = np.flatnonzero(mask)
        if tx.size == 0:
            return mask
        keep = rng.random(tx.size) >= self.tx_loss
        lost = tx[~keep]
        if lost.size == 0:
            return mask
        self._lost_transmissions += int(lost.size)
        self._record_fault(round_index)
        air = mask.copy()
        air[lost] = False
        return air

    def filter_deliveries(self, round_index, outcome, rng):
        if self.rx_loss <= 0.0 or outcome.receivers.size == 0:
            return outcome
        keep = rng.random(outcome.receivers.size) >= self.rx_loss
        return self._drop_deliveries(round_index, outcome, keep)


class BurstLossEnvironment(Environment):
    """Gilbert–Elliott burst loss: a two-state chain per receiver node.

    Each node is Good or Bad; per round a Good node turns Bad with
    probability ``p_bad`` and a Bad node turns Good with probability
    ``p_good`` (one uniform per node per round serves both transitions).
    Deliveries to a node currently in the Bad state are dropped, so losses
    arrive in bursts of mean length ``1 / p_good``.  All nodes start Good.
    """

    name = "burst_loss"

    def __init__(self, p_bad: float, p_good: float = 0.5) -> None:
        super().__init__()
        self.p_bad = check_probability(p_bad, "p_bad")
        self.p_good = check_probability(p_good, "p_good")
        self._bad = np.zeros(0, dtype=bool)

    @property
    def is_null(self) -> bool:
        return self.p_bad == 0.0

    def spec(self) -> Dict[str, object]:
        return {
            "name": "burst_loss",
            "params": {"p_bad": self.p_bad, "p_good": self.p_good},
        }

    def _reset(self) -> None:
        self._bad = np.zeros(self._n, dtype=bool)

    def begin_round(self, round_index, rng):
        u = rng.random(self._n)
        bad = self._bad
        flip = (~bad & (u < self.p_bad)) | (bad & (u < self.p_good))
        bad ^= flip

    def filter_deliveries(self, round_index, outcome, rng):
        receivers = outcome.receivers
        if receivers.size == 0 or not self._bad.any():
            return outcome
        keep = ~self._bad[receivers]
        return self._drop_deliveries(round_index, outcome, keep)


class ChurnEnvironment(Environment):
    """Deterministic crash-stop / crash-recovery schedule.

    ``events`` is a round-sorted list of ``{"round": r, ...}`` dicts with
    any of ``crash`` (node list), ``crash_fraction`` (the highest-numbered
    ``round(f * n)`` nodes — deterministic, and it spares node 0, the
    conventional broadcast source, for every ``f < 1``), ``recover`` (node
    list) and ``recover_all``.  A down node's radio is off: its
    transmissions are gated (uncharged) and deliveries to it are dropped;
    its protocol state keeps advancing, so a recovered node resumes from
    where it crashed.  With no recover events this is crash-stop.
    """

    name = "churn"

    def __init__(self, events: Sequence[Mapping[str, object]]) -> None:
        super().__init__()
        self.events = _normalise_churn_events(events)
        self._down = np.zeros(0, dtype=bool)
        self._schedule: Dict[int, List[Dict[str, object]]] = {}

    @property
    def is_null(self) -> bool:
        return not self.events

    def spec(self) -> Dict[str, object]:
        return {"name": "churn", "params": {"events": [dict(e) for e in self.events]}}

    def _reset(self) -> None:
        self._down = np.zeros(self._n, dtype=bool)
        # Last round with any recovery action: while the clock is at or
        # before it, a fully-crashed network may still come back.
        self._last_recovery_round = max(
            (
                int(e["round"])
                for e in self.events
                if "recover" in e or e.get("recover_all")
            ),
            default=-1,
        )
        self._schedule = {}
        for event in self.events:
            resolved = dict(event)
            for key in ("crash", "recover"):
                if key in resolved:
                    for node in resolved[key]:
                        check_node_index(node, self._n, f"churn {key} node")
                    resolved[key] = np.asarray(resolved[key], dtype=np.int64)
            if "crash_fraction" in resolved:
                count = int(round(float(resolved.pop("crash_fraction")) * self._n))
                resolved["crash"] = np.concatenate(
                    [
                        resolved.get("crash", np.empty(0, dtype=np.int64)),
                        np.arange(self._n - count, self._n, dtype=np.int64),
                    ]
                )
            self._schedule.setdefault(int(resolved["round"]), []).append(resolved)

    def begin_round(self, round_index, rng):
        actions = self._schedule.get(round_index)
        if actions is None:
            return
        for action in actions:
            crash = action.get("crash")
            if crash is not None and crash.size:
                self._down[crash] = True
            if action.get("recover_all"):
                self._down[:] = False
            recover = action.get("recover")
            if recover is not None and recover.size:
                self._down[recover] = False
            self._record_fault(round_index)

    def gate_transmitters(self, round_index, mask):
        if not self._down.any():
            return mask
        blocked = mask & self._down
        count = int(blocked.sum())
        if count == 0:
            return mask
        self._suppressed_transmissions += count
        self._record_fault(round_index)
        return mask & ~self._down

    def filter_deliveries(self, round_index, outcome, rng):
        receivers = outcome.receivers
        if receivers.size == 0 or not self._down.any():
            return outcome
        keep = ~self._down[receivers]
        return self._drop_deliveries(round_index, outcome, keep)

    def is_doomed(self, round_index: int) -> bool:
        if round_index < self._last_recovery_round:
            return False
        return bool(self._down.all())


class JamEnvironment(Environment):
    """Adversarial jamming of the ``k`` loudest (or fixed target) channels.

    Each round inside the ``[start, stop)`` window the adversary destroys
    every delivery to the ``k`` nodes hearing the most transmissions this
    round (ties broken toward the lowest node id), or to a fixed
    ``targets`` set.  Jamming is rng-free: the adversary reacts to the
    realised channel activity.  The jam budget must fit the network
    (``k <= n``, checked when the environment binds to a network).
    """

    name = "jam"

    def __init__(
        self,
        k: Optional[int] = None,
        targets: Optional[Sequence[int]] = None,
        start: int = 0,
        stop: Optional[int] = None,
    ) -> None:
        super().__init__()
        if k is not None and targets is not None:
            raise ValueError("jam takes either k (loudest channels) or targets, not both")
        if k is None and targets is None:
            k = 1
        self.k = check_positive_int(k, "jam budget k", minimum=0) if k is not None else None
        self.targets = _check_node_list(targets, "jam targets") if targets is not None else None
        self.start = _check_round(start, "jam window start")
        self.stop = _check_round(stop, "jam window stop") if stop is not None else None
        if self.stop is not None and self.stop <= self.start:
            raise ValueError(
                f"jam window stop must be > start, got [{self.start}, {self.stop})"
            )
        self._target_mask = np.zeros(0, dtype=bool)

    @property
    def is_null(self) -> bool:
        if self.targets is not None:
            return not self.targets
        return self.k == 0

    def spec(self) -> Dict[str, object]:
        params: Dict[str, object] = {"start": self.start, "stop": self.stop}
        if self.targets is not None:
            params["targets"] = list(self.targets)
        else:
            params["k"] = self.k
        return {"name": "jam", "params": params}

    def _reset(self) -> None:
        if self.k is not None and self.k > self._n:
            raise ValueError(
                f"jam budget k={self.k} exceeds the number of channels (n={self._n})"
            )
        if self.targets is not None:
            self._target_mask = np.zeros(self._n, dtype=bool)
            for node in self.targets:
                self._target_mask[check_node_index(node, self._n, "jam target")] = True

    def _window_active(self, round_index: int) -> bool:
        if round_index < self.start:
            return False
        return self.stop is None or round_index < self.stop

    def _jam_mask(self, hear_counts: np.ndarray) -> np.ndarray:
        if self.targets is not None:
            return self._target_mask
        order = np.argsort(-hear_counts, kind="stable")[: self.k]
        top = order[hear_counts[order] > 0]
        mask = np.zeros(self._n, dtype=bool)
        mask[top] = True
        return mask

    def filter_deliveries(self, round_index, outcome, rng):
        if not self._window_active(round_index) or outcome.receivers.size == 0:
            return outcome
        keep = ~self._jam_mask(outcome.hear_counts)[outcome.receivers]
        return self._drop_deliveries(round_index, outcome, keep)


class WakeupEnvironment(Environment):
    """Wake-up asynchrony: staggered node start rounds.

    Node ``v`` is asleep (radio off, like a crashed node) until its start
    round: either an explicit per-node ``delays`` list, or the
    deterministic ramp ``start[v] = v * max_delay // (n - 1)`` (node 0
    wakes immediately, the last node after ``max_delay`` rounds).
    """

    name = "wakeup"

    def __init__(
        self,
        max_delay: Optional[int] = None,
        delays: Optional[Sequence[int]] = None,
    ) -> None:
        super().__init__()
        if (max_delay is None) == (delays is None):
            raise ValueError("wakeup takes exactly one of max_delay / delays")
        self.max_delay = (
            _check_round(max_delay, "wakeup max_delay") if max_delay is not None else None
        )
        self.delays = (
            [_check_round(d, "wakeup delay") for d in delays]
            if delays is not None
            else None
        )
        self._start = np.zeros(0, dtype=np.int64)
        self._horizon = 0

    @property
    def is_null(self) -> bool:
        if self.delays is not None:
            return not any(self.delays)
        return self.max_delay == 0

    def spec(self) -> Dict[str, object]:
        params: Dict[str, object] = {}
        if self.delays is not None:
            params["delays"] = list(self.delays)
        else:
            params["max_delay"] = self.max_delay
        return {"name": "wakeup", "params": params}

    def _reset(self) -> None:
        if self.delays is not None:
            if len(self.delays) != self._n:
                raise ValueError(
                    f"wakeup delays must list one delay per node "
                    f"(n={self._n}), got {len(self.delays)}"
                )
            self._start = np.asarray(self.delays, dtype=np.int64)
        else:
            ramp = np.arange(self._n, dtype=np.int64) * self.max_delay
            self._start = ramp // max(self._n - 1, 1)
        self._horizon = int(self._start.max()) if self._n else 0

    def _asleep(self, round_index: int) -> Optional[np.ndarray]:
        if round_index >= self._horizon:
            return None
        return self._start > round_index

    def gate_transmitters(self, round_index, mask):
        asleep = self._asleep(round_index)
        if asleep is None:
            return mask
        blocked = mask & asleep
        count = int(blocked.sum())
        if count == 0:
            return mask
        self._suppressed_transmissions += count
        self._record_fault(round_index)
        return mask & ~asleep

    def filter_deliveries(self, round_index, outcome, rng):
        asleep = self._asleep(round_index)
        if asleep is None or outcome.receivers.size == 0:
            return outcome
        keep = ~asleep[outcome.receivers]
        return self._drop_deliveries(round_index, outcome, keep)


class ComposedEnvironment(Environment):
    """Ordered composition: each hook chains through the layers in order.

    Transmit gates AND together; stochastic layers draw in layer order on
    both the transmit and the delivery side (the batch mirror preserves the
    same order, which is what keeps composites bit-identical in exact
    mode).  Reported counters are summed over the layers and
    ``last_fault_round`` is the max.
    """

    name = "compose"

    def __init__(self, layers: Sequence[Environment]) -> None:
        super().__init__()
        self.layers = list(layers)

    @property
    def is_null(self) -> bool:
        return all(layer.is_null for layer in self.layers)

    def spec(self) -> Dict[str, object]:
        return {
            "name": "compose",
            "params": {"layers": [layer.spec() for layer in self.layers]},
        }

    def reset(self, network) -> None:
        self._n = int(network.n)
        for layer in self.layers:
            layer.reset(network)

    def begin_round(self, round_index, rng):
        for layer in self.layers:
            layer.begin_round(round_index, rng)

    def gate_transmitters(self, round_index, mask):
        for layer in self.layers:
            mask = layer.gate_transmitters(round_index, mask)
        return mask

    def perturb_transmissions(self, round_index, mask, rng):
        for layer in self.layers:
            mask = layer.perturb_transmissions(round_index, mask, rng)
        return mask

    def filter_deliveries(self, round_index, outcome, rng):
        for layer in self.layers:
            outcome = layer.filter_deliveries(round_index, outcome, rng)
        return outcome

    def is_doomed(self, round_index: int) -> bool:
        return any(layer.is_doomed(round_index) for layer in self.layers)

    def report(self) -> Dict[str, object]:
        reports = [layer.report() for layer in self.layers]
        return {
            "spec": self.spec(),
            "fault_events": sum(r["fault_events"] for r in reports),
            "last_fault_round": max(
                [r["last_fault_round"] for r in reports], default=0
            ),
            "lost_transmissions": sum(r["lost_transmissions"] for r in reports),
            "lost_deliveries": sum(r["lost_deliveries"] for r in reports),
            "suppressed_transmissions": sum(
                r["suppressed_transmissions"] for r in reports
            ),
        }


# --------------------------------------------------------------------------- #
# Batched environments (BatchEngine)
# --------------------------------------------------------------------------- #
class BatchEnvironment:
    """Vectorised mirror of :class:`Environment` for ``R`` stacked trials.

    Hooks operate on flat ids (``trial * n + node``) and per-trial masks,
    exactly like :class:`~repro.radio.collision.BatchCollisionModel`.  The
    stochastic hooks draw per-trial blocks in trial order through the
    :class:`~repro.radio.batch.BatchRandomSource` helpers, so in exact rng
    mode trial ``t`` consumes its generator with precisely the calls the
    scalar environment makes in trial ``t``'s serial run — and a stopped
    trial (absent from ``running`` / the transmit set) draws nothing.
    """

    #: Environments perturb stochastically (or against realised channel
    #: state), so the batch engine must never pre-resolve scheduled rounds
    #: past an active environment — mirrors ``BatchCollisionModel``.
    resolves_deterministically: bool = False

    def __init__(self) -> None:
        self._trials = 0
        self._n = 0
        self._rng = None

    @property
    def is_null(self) -> bool:
        return False

    def bind(self, batch, rng_source) -> None:
        """Prepare for one batched run (clears all per-trial fault state)."""
        self._trials = int(batch.trials)
        self._n = int(batch.n)
        self._rng = rng_source
        self._last_fault = np.zeros(self._trials, dtype=np.int64)
        self._fault_events = np.zeros(self._trials, dtype=np.int64)
        self._lost_tx = np.zeros(self._trials, dtype=np.int64)
        self._lost_rx = np.zeros(self._trials, dtype=np.int64)
        self._suppressed = np.zeros(self._trials, dtype=np.int64)
        self._bind()

    def _bind(self) -> None:  # pragma: no cover - trivial default
        pass

    # -- per-round hooks ------------------------------------------------- #
    def begin_round(self, round_index: int, running: np.ndarray) -> None:
        pass

    def gate_transmit_flat(
        self, round_index: int, tx_flat: np.ndarray, running: np.ndarray
    ) -> np.ndarray:
        return tx_flat

    def perturb_transmissions(
        self, round_index: int, tx_flat: np.ndarray, running: np.ndarray
    ) -> np.ndarray:
        return tx_flat

    def filter_deliveries(self, round_index: int, outcome, running: np.ndarray):
        return outcome

    def doomed_trials(self, round_index: int) -> Optional[np.ndarray]:
        """Per-trial bool: the trial can never progress again, or ``None``.

        Mirror of the scalar :meth:`Environment.is_doomed`, consulted after
        round ``round_index``'s events fired.  ``None`` (the default, and
        the cheap common case) means no trial is provably doomed.
        """
        return None

    # -- compaction -------------------------------------------------------- #
    def select_rows(self, keep: np.ndarray, rng_source=None) -> None:
        """Shrink all per-trial state to the trials where ``keep`` is True.

        The continuous engine's compaction repack: surviving trials keep
        their relative order, matching the row selection applied to the
        stacked CSR, the protocol state and the rng source.  ``rng_source``
        is the *compacted* random source: the environment draws per-trial
        blocks by row, so it must swap to the new source alongside the
        protocol or a surviving trial would consume a retired trial's
        generator (silently corrupting the exact-mode stream).
        """
        keep = np.asarray(keep, dtype=bool)
        if rng_source is not None:
            self._rng = rng_source
        self._last_fault = self._last_fault[keep].copy()
        self._fault_events = self._fault_events[keep].copy()
        self._lost_tx = self._lost_tx[keep].copy()
        self._lost_rx = self._lost_rx[keep].copy()
        self._suppressed = self._suppressed[keep].copy()
        self._trials = int(self._last_fault.size)
        self._select_rows(keep)

    def _select_rows(self, keep: np.ndarray) -> None:
        """Subclass hook: row-select any additional per-trial state."""

    # -- bookkeeping ------------------------------------------------------ #
    def _mark_fault(self, round_index: int, trials_mask: np.ndarray) -> None:
        self._fault_events[trials_mask] += 1
        self._last_fault[trials_mask] = round_index + 1
        if telemetry.enabled():
            mask = np.asarray(trials_mask)
            faulted = mask.sum() if mask.dtype == np.bool_ else mask.size
            telemetry.counter_inc("environment.fault_events", int(faulted))

    def trial_report(self, trial: int) -> Dict[str, object]:
        """Trial ``trial``'s fault summary (same keys as the scalar report)."""
        return {
            "spec": self.spec(),
            "fault_events": int(self._fault_events[trial]),
            "last_fault_round": int(self._last_fault[trial]),
            "lost_transmissions": int(self._lost_tx[trial]),
            "lost_deliveries": int(self._lost_rx[trial]),
            "suppressed_transmissions": int(self._suppressed[trial]),
        }

    def spec(self) -> Dict[str, object]:
        raise NotImplementedError

    # -- shared delivery surgery ----------------------------------------- #
    def _drop_deliveries(self, round_index: int, outcome, keep: np.ndarray):
        """Shrink the outcome to ``keep`` (mirrors the batch erasure model:
        senders are materialised *before* the receiver set changes)."""
        if keep.all():
            return outcome
        dropped = outcome.receiver_flat[~keep]
        drop_counts = np.bincount(dropped // self._n, minlength=self._trials)
        self._lost_rx += drop_counts
        self._mark_fault(round_index, drop_counts > 0)
        if getattr(outcome, "tracks_senders", True):
            senders = outcome.sender_flat
            outcome.receiver_flat = outcome.receiver_flat[keep]
            outcome.sender_flat = senders[keep]
        else:
            # Approximation outcomes (edge-sampled kernel) carry no senders.
            outcome.receiver_flat = outcome.receiver_flat[keep]
        outcome.receiver_counts = np.bincount(
            outcome.receiver_flat // self._n, minlength=self._trials
        )
        return outcome


class BatchNullEnvironment(BatchEnvironment):
    @property
    def is_null(self) -> bool:
        return True

    def spec(self) -> Dict[str, object]:
        return {"name": "null", "params": {}}


class BatchIidLossEnvironment(BatchEnvironment):
    def __init__(self, tx_loss: float = 0.0, rx_loss: float = 0.0) -> None:
        super().__init__()
        self.tx_loss = check_probability(tx_loss, "tx_loss")
        self.rx_loss = check_probability(rx_loss, "rx_loss")

    @property
    def is_null(self) -> bool:
        return self.tx_loss == 0.0 and self.rx_loss == 0.0

    def spec(self) -> Dict[str, object]:
        return {
            "name": "iid_loss",
            "params": {"tx_loss": self.tx_loss, "rx_loss": self.rx_loss},
        }

    def perturb_transmissions(self, round_index, tx_flat, running):
        if self.tx_loss <= 0.0 or tx_flat.size == 0:
            return tx_flat
        counts = np.bincount(tx_flat // self._n, minlength=self._trials)
        keep = self._rng.uniforms_for_counts(counts) >= self.tx_loss
        if keep.all():
            return tx_flat
        lost_counts = np.bincount(tx_flat[~keep] // self._n, minlength=self._trials)
        self._lost_tx += lost_counts
        self._mark_fault(round_index, lost_counts > 0)
        return tx_flat[keep]

    def filter_deliveries(self, round_index, outcome, running):
        if self.rx_loss <= 0.0 or outcome.receiver_flat.size == 0:
            return outcome
        keep = self._rng.uniforms_for_counts(outcome.receiver_counts) >= self.rx_loss
        return self._drop_deliveries(round_index, outcome, keep)


class BatchBurstLossEnvironment(BatchEnvironment):
    def __init__(self, p_bad: float, p_good: float = 0.5) -> None:
        super().__init__()
        self.p_bad = check_probability(p_bad, "p_bad")
        self.p_good = check_probability(p_good, "p_good")

    @property
    def is_null(self) -> bool:
        return self.p_bad == 0.0

    def spec(self) -> Dict[str, object]:
        return {
            "name": "burst_loss",
            "params": {"p_bad": self.p_bad, "p_good": self.p_good},
        }

    def _bind(self) -> None:
        self._bad = np.zeros((self._trials, self._n), dtype=bool)

    def _select_rows(self, keep: np.ndarray) -> None:
        self._bad = np.ascontiguousarray(self._bad[keep])

    def begin_round(self, round_index, running):
        # One uniform per node per round, running trials only — a stopped
        # trial's chain freezes exactly where its serial run ended.
        u = self._rng.uniform_rows(running, self._n)
        rows = np.flatnonzero(running)
        bad = self._bad[rows]
        flip = (~bad & (u < self.p_bad)) | (bad & (u < self.p_good))
        self._bad[rows] ^= flip

    def filter_deliveries(self, round_index, outcome, running):
        if outcome.receiver_flat.size == 0:
            return outcome
        keep = ~self._bad.reshape(-1)[outcome.receiver_flat]
        return self._drop_deliveries(round_index, outcome, keep)


class BatchChurnEnvironment(BatchEnvironment):
    def __init__(self, events: Sequence[Mapping[str, object]]) -> None:
        super().__init__()
        self.events = _normalise_churn_events(events)

    @property
    def is_null(self) -> bool:
        return not self.events

    def spec(self) -> Dict[str, object]:
        return {"name": "churn", "params": {"events": [dict(e) for e in self.events]}}

    def _bind(self) -> None:
        self._down = np.zeros((self._trials, self._n), dtype=bool)
        self._last_recovery_round = max(
            (
                int(e["round"])
                for e in self.events
                if "recover" in e or e.get("recover_all")
            ),
            default=-1,
        )
        self._schedule: Dict[int, List[Dict[str, object]]] = {}
        for event in self.events:
            resolved = dict(event)
            for key in ("crash", "recover"):
                if key in resolved:
                    for node in resolved[key]:
                        check_node_index(node, self._n, f"churn {key} node")
                    resolved[key] = np.asarray(resolved[key], dtype=np.int64)
            if "crash_fraction" in resolved:
                count = int(round(float(resolved.pop("crash_fraction")) * self._n))
                resolved["crash"] = np.concatenate(
                    [
                        resolved.get("crash", np.empty(0, dtype=np.int64)),
                        np.arange(self._n - count, self._n, dtype=np.int64),
                    ]
                )
            self._schedule.setdefault(int(resolved["round"]), []).append(resolved)

    def begin_round(self, round_index, running):
        actions = self._schedule.get(round_index)
        if actions is None:
            return
        # Events only fire for running trials: a completed trial's serial
        # run has already ended, so its counters (and state) must freeze.
        for action in actions:
            crash = action.get("crash")
            if crash is not None and crash.size:
                self._down[np.ix_(running, crash)] = True
            if action.get("recover_all"):
                self._down[running] = False
            recover = action.get("recover")
            if recover is not None and recover.size:
                self._down[np.ix_(running, recover)] = False
            self._mark_fault(round_index, running)

    def gate_transmit_flat(self, round_index, tx_flat, running):
        if tx_flat.size == 0 or not self._down.any():
            return tx_flat
        blocked = self._down.reshape(-1)[tx_flat]
        if not blocked.any():
            return tx_flat
        counts = np.bincount(tx_flat[blocked] // self._n, minlength=self._trials)
        self._suppressed += counts
        self._mark_fault(round_index, counts > 0)
        return tx_flat[~blocked]

    def filter_deliveries(self, round_index, outcome, running):
        if outcome.receiver_flat.size == 0 or not self._down.any():
            return outcome
        keep = ~self._down.reshape(-1)[outcome.receiver_flat]
        return self._drop_deliveries(round_index, outcome, keep)

    def _select_rows(self, keep: np.ndarray) -> None:
        self._down = np.ascontiguousarray(self._down[keep])

    def doomed_trials(self, round_index: int) -> Optional[np.ndarray]:
        if round_index < self._last_recovery_round or not self._down.any():
            return None
        return self._down.all(axis=1)


class BatchJamEnvironment(BatchEnvironment):
    def __init__(
        self,
        k: Optional[int] = None,
        targets: Optional[Sequence[int]] = None,
        start: int = 0,
        stop: Optional[int] = None,
    ) -> None:
        super().__init__()
        # Reuse the scalar constructor's validation wholesale.
        self._scalar = JamEnvironment(k=k, targets=targets, start=start, stop=stop)
        self.k = self._scalar.k
        self.targets = self._scalar.targets
        self.start = self._scalar.start
        self.stop = self._scalar.stop

    @property
    def is_null(self) -> bool:
        return self._scalar.is_null

    def spec(self) -> Dict[str, object]:
        return self._scalar.spec()

    def _bind(self) -> None:
        if self.k is not None and self.k > self._n:
            raise ValueError(
                f"jam budget k={self.k} exceeds the number of channels (n={self._n})"
            )
        self._target_mask = None
        if self.targets is not None:
            self._target_mask = np.zeros(self._n, dtype=bool)
            for node in self.targets:
                self._target_mask[check_node_index(node, self._n, "jam target")] = True

    def filter_deliveries(self, round_index, outcome, running):
        if round_index < self.start or (
            self.stop is not None and round_index >= self.stop
        ):
            return outcome
        if outcome.receiver_flat.size == 0:
            return outcome
        if self._target_mask is not None:
            jam_flat = np.tile(self._target_mask, self._trials)
        else:
            counts = outcome.hear_counts  # dense (R, n), pre-erasure
            # Stable argsort of -counts == loudest first, ties toward the
            # lowest node id — identical per row to the scalar rule.
            order = np.argsort(-counts, axis=1, kind="stable")[:, : self.k]
            valid = np.take_along_axis(counts, order, axis=1) > 0
            jam = np.zeros((self._trials, self._n), dtype=bool)
            jam[np.arange(self._trials)[:, None], order] = valid
            jam_flat = jam.reshape(-1)
        keep = ~jam_flat[outcome.receiver_flat]
        return self._drop_deliveries(round_index, outcome, keep)


class BatchWakeupEnvironment(BatchEnvironment):
    def __init__(
        self,
        max_delay: Optional[int] = None,
        delays: Optional[Sequence[int]] = None,
    ) -> None:
        super().__init__()
        self._scalar = WakeupEnvironment(max_delay=max_delay, delays=delays)
        self.max_delay = self._scalar.max_delay
        self.delays = self._scalar.delays

    @property
    def is_null(self) -> bool:
        return self._scalar.is_null

    def spec(self) -> Dict[str, object]:
        return self._scalar.spec()

    def _bind(self) -> None:
        if self.delays is not None:
            if len(self.delays) != self._n:
                raise ValueError(
                    f"wakeup delays must list one delay per node "
                    f"(n={self._n}), got {len(self.delays)}"
                )
            self._start = np.asarray(self.delays, dtype=np.int64)
        else:
            ramp = np.arange(self._n, dtype=np.int64) * self.max_delay
            self._start = ramp // max(self._n - 1, 1)
        self._horizon = int(self._start.max()) if self._n else 0

    def _asleep(self, round_index: int) -> Optional[np.ndarray]:
        if round_index >= self._horizon:
            return None
        return self._start > round_index

    def gate_transmit_flat(self, round_index, tx_flat, running):
        asleep = self._asleep(round_index)
        if asleep is None or tx_flat.size == 0:
            return tx_flat
        blocked = asleep[tx_flat % self._n]
        if not blocked.any():
            return tx_flat
        counts = np.bincount(tx_flat[blocked] // self._n, minlength=self._trials)
        self._suppressed += counts
        self._mark_fault(round_index, counts > 0)
        return tx_flat[~blocked]

    def filter_deliveries(self, round_index, outcome, running):
        asleep = self._asleep(round_index)
        if asleep is None or outcome.receiver_flat.size == 0:
            return outcome
        keep = ~asleep[outcome.receiver_flat % self._n]
        return self._drop_deliveries(round_index, outcome, keep)


class BatchComposedEnvironment(BatchEnvironment):
    def __init__(self, layers: Sequence[BatchEnvironment]) -> None:
        super().__init__()
        self.layers = list(layers)

    @property
    def is_null(self) -> bool:
        return all(layer.is_null for layer in self.layers)

    def spec(self) -> Dict[str, object]:
        return {
            "name": "compose",
            "params": {"layers": [layer.spec() for layer in self.layers]},
        }

    def bind(self, batch, rng_source) -> None:
        self._trials = int(batch.trials)
        self._n = int(batch.n)
        for layer in self.layers:
            layer.bind(batch, rng_source)

    def begin_round(self, round_index, running):
        for layer in self.layers:
            layer.begin_round(round_index, running)

    def gate_transmit_flat(self, round_index, tx_flat, running):
        for layer in self.layers:
            tx_flat = layer.gate_transmit_flat(round_index, tx_flat, running)
        return tx_flat

    def perturb_transmissions(self, round_index, tx_flat, running):
        for layer in self.layers:
            tx_flat = layer.perturb_transmissions(round_index, tx_flat, running)
        return tx_flat

    def filter_deliveries(self, round_index, outcome, running):
        for layer in self.layers:
            outcome = layer.filter_deliveries(round_index, outcome, running)
        return outcome

    def doomed_trials(self, round_index: int) -> Optional[np.ndarray]:
        doomed = None
        for layer in self.layers:
            layer_doomed = layer.doomed_trials(round_index)
            if layer_doomed is None:
                continue
            doomed = layer_doomed if doomed is None else doomed | layer_doomed
        return doomed

    def select_rows(self, keep: np.ndarray, rng_source=None) -> None:
        # bind() above never creates the base per-trial fault arrays (each
        # layer owns its own), so this is a full override, not a hook.
        keep = np.asarray(keep, dtype=bool)
        self._trials = int(keep.sum())
        for layer in self.layers:
            layer.select_rows(keep, rng_source)

    def trial_report(self, trial: int) -> Dict[str, object]:
        reports = [layer.trial_report(trial) for layer in self.layers]
        return {
            "spec": self.spec(),
            "fault_events": sum(r["fault_events"] for r in reports),
            "last_fault_round": max(
                [r["last_fault_round"] for r in reports], default=0
            ),
            "lost_transmissions": sum(r["lost_transmissions"] for r in reports),
            "lost_deliveries": sum(r["lost_deliveries"] for r in reports),
            "suppressed_transmissions": sum(
                r["suppressed_transmissions"] for r in reports
            ),
        }


# --------------------------------------------------------------------------- #
# Spec dicts <-> environments
# --------------------------------------------------------------------------- #
#: Environment family -> (scalar class, batch class, allowed param names).
ENVIRONMENT_FAMILIES: Dict[str, tuple] = {
    "null": (NullEnvironment, BatchNullEnvironment, frozenset()),
    "iid_loss": (
        IidLossEnvironment,
        BatchIidLossEnvironment,
        frozenset({"tx_loss", "rx_loss"}),
    ),
    "burst_loss": (
        BurstLossEnvironment,
        BatchBurstLossEnvironment,
        frozenset({"p_bad", "p_good"}),
    ),
    "churn": (ChurnEnvironment, BatchChurnEnvironment, frozenset({"events"})),
    "jam": (
        JamEnvironment,
        BatchJamEnvironment,
        frozenset({"k", "targets", "start", "stop"}),
    ),
    "wakeup": (
        WakeupEnvironment,
        BatchWakeupEnvironment,
        frozenset({"max_delay", "delays"}),
    ),
    "compose": (ComposedEnvironment, BatchComposedEnvironment, frozenset({"layers"})),
}


def _split_spec(spec) -> tuple:
    if not isinstance(spec, Mapping):
        raise TypeError(
            f"an environment spec must be a dict with 'name'/'params', "
            f"got {type(spec).__name__}"
        )
    name = spec.get("name")
    if name not in ENVIRONMENT_FAMILIES:
        known = ", ".join(sorted(ENVIRONMENT_FAMILIES))
        raise ValueError(f"unknown environment family {name!r}; known: {known}")
    params = spec.get("params", {}) or {}
    if not isinstance(params, Mapping):
        raise TypeError(
            f"environment params must be a dict, got {type(params).__name__}"
        )
    allowed = ENVIRONMENT_FAMILIES[name][2]
    unknown = set(params) - allowed
    if unknown:
        known = ", ".join(sorted(allowed)) or "(none)"
        raise ValueError(
            f"unknown parameter(s) {sorted(unknown)} for environment "
            f"{name!r}; known: {known}"
        )
    return name, dict(params)


def _build(spec, which: int):
    if spec is None:
        return None
    if not spec:  # {} — explicit "no environment"
        return None
    name, params = _split_spec(spec)
    if name == "compose":
        layers = params.get("layers", [])
        if not isinstance(layers, (list, tuple)):
            raise TypeError(
                f"compose layers must be a list of specs, got {type(layers).__name__}"
            )
        cls = ENVIRONMENT_FAMILIES[name][which]
        return cls([_build(layer, which) for layer in layers])
    return ENVIRONMENT_FAMILIES[name][which](**params)


def build_environment(spec) -> Optional[Environment]:
    """Build the scalar environment for ``spec`` (``None``/``{}`` -> None).

    Constructors validate every parameter (probabilities in [0, 1], sorted
    churn schedules, …); anything network-dependent (node ids, jam budget
    vs ``n``, delay-list length) is checked at :meth:`Environment.reset`.
    """
    return _build(spec, 0)


def build_batch_environment(spec) -> Optional[BatchEnvironment]:
    """Build the vectorised mirror of ``spec`` (``None``/``{}`` -> None)."""
    return _build(spec, 1)


def as_batch_environment(environment) -> Optional[BatchEnvironment]:
    """Map a scalar :class:`Environment` (or spec / batch env) to its mirror."""
    if environment is None or isinstance(environment, BatchEnvironment):
        return environment
    if isinstance(environment, Environment):
        return build_batch_environment(environment.spec())
    if isinstance(environment, Mapping):
        return build_batch_environment(environment)
    raise TypeError(
        f"cannot interpret {type(environment).__name__} as a batch environment"
    )


def validate_environment_spec(spec) -> Optional[Dict[str, object]]:
    """Validate ``spec`` and return its normalised (canonical) form.

    The normalised spec carries every parameter explicitly (defaults filled
    in), so two spellings of the same environment produce the same store
    digest.  Returns ``None`` for ``None``/``{}``.
    """
    environment = build_environment(spec)
    return None if environment is None else environment.spec()


# --------------------------------------------------------------------------- #
# CLI option parsing
# --------------------------------------------------------------------------- #
def parse_environment_option(text: Optional[str]) -> Optional[Dict[str, object]]:
    """Parse the CLI's compact ``--env`` string into a normalised spec.

    Comma-separated ``key=value`` entries; the recognised keys:

    ========================== ==============================================
    ``loss=P`` / ``rx_loss=P`` i.i.d. delivery loss with probability ``P``
    ``tx_loss=P``              i.i.d. transmission loss (charged but lost)
    ``burst=PB:PG``            Gilbert–Elliott chain (good->bad ``PB``,
                               bad->good ``PG``)
    ``churn=F@A`` or ``F@A:B`` crash fraction ``F`` at round ``A``
                               (crash-stop), recovering at round ``B``
    ``jam=K``                  jam the ``K`` loudest channels every round
    ``jam_targets=3+7+11``     jam a fixed node set instead
    ``jam_window=A:B``         restrict jamming to rounds ``[A, B)``
    ``wake=D``                 staggered wake-up over ``D`` rounds
    ========================== ==============================================

    Multiple keys compose into one layered environment.
    """
    if text is None or text.strip().lower() in ("", "none", "off"):
        return None
    iid: Dict[str, object] = {}
    jam: Dict[str, object] = {}
    layers: List[Dict[str, object]] = []
    for part in text.split(","):
        part = part.strip()
        if not part:
            continue
        if "=" not in part:
            raise ValueError(
                f"malformed --env entry {part!r}: expected key=value"
            )
        key, _, value = part.partition("=")
        key, value = key.strip(), value.strip()
        if key in ("loss", "rx_loss"):
            iid["rx_loss"] = float(value)
        elif key == "tx_loss":
            iid["tx_loss"] = float(value)
        elif key == "burst":
            p_bad, _, p_good = value.partition(":")
            if not p_good:
                raise ValueError(
                    f"--env burst takes PB:PG (good->bad and bad->good "
                    f"probabilities), got {value!r}"
                )
            layers.append(
                {
                    "name": "burst_loss",
                    "params": {"p_bad": float(p_bad), "p_good": float(p_good)},
                }
            )
        elif key == "churn":
            fraction, _, when = value.partition("@")
            if not when:
                raise ValueError(
                    f"--env churn takes FRACTION@CRASH_ROUND[:RECOVER_ROUND], "
                    f"got {value!r}"
                )
            crash_round, _, recover_round = when.partition(":")
            events: List[Dict[str, object]] = [
                {"round": int(crash_round), "crash_fraction": float(fraction)}
            ]
            if recover_round:
                events.append({"round": int(recover_round), "recover_all": True})
            layers.append({"name": "churn", "params": {"events": events}})
        elif key == "jam":
            jam["k"] = int(value)
        elif key == "jam_targets":
            jam["targets"] = [int(v) for v in value.split("+") if v]
        elif key == "jam_window":
            start, _, stop = value.partition(":")
            jam["start"] = int(start)
            if stop:
                jam["stop"] = int(stop)
        elif key in ("wake", "wakeup"):
            layers.append({"name": "wakeup", "params": {"max_delay": int(value)}})
        else:
            raise ValueError(
                f"unknown --env key {key!r}; known: loss, rx_loss, tx_loss, "
                "burst, churn, jam, jam_targets, jam_window, wake"
            )
    if iid:
        layers.insert(0, {"name": "iid_loss", "params": iid})
    if jam:
        layers.append({"name": "jam", "params": jam})
    if not layers:
        return None
    if len(layers) == 1:
        return validate_environment_spec(layers[0])
    return validate_environment_spec({"name": "compose", "params": {"layers": layers}})
