"""Run traces: what happened round by round, and how the run ended.

Traces serve two purposes:

1. The experiment harness needs the headline numbers each theorem talks
   about: completion round, success flag, energy report.
2. Several experiments (E2 phase growth, the lower-bound experiments) need
   the *per-round* evolution of the informed set and of the number of
   transmitters, so :class:`RunResultTrace` optionally keeps a compact
   per-round record.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from repro.radio.energy import EnergyReport

__all__ = ["RoundRecord", "RunResultTrace"]


@dataclass(frozen=True)
class RoundRecord:
    """Compact summary of a single synchronous round."""

    round_index: int
    transmitters: int
    deliveries: int
    newly_informed: int
    informed_after: int

    def as_dict(self) -> Dict[str, int]:
        return {
            "round_index": self.round_index,
            "transmitters": self.transmitters,
            "deliveries": self.deliveries,
            "newly_informed": self.newly_informed,
            "informed_after": self.informed_after,
        }


@dataclass
class RunResultTrace:
    """Outcome of one protocol run.

    Attributes
    ----------
    protocol_name:
        ``Protocol.name`` of the protocol that ran.
    network_name:
        ``RadioNetwork.name`` of the topology.
    n:
        Number of nodes.
    completed:
        True iff the protocol reported completion before the round horizon.
    completion_round:
        1-based number of rounds executed until completion (or the number of
        rounds executed when the horizon was hit).
    rounds_executed:
        Total rounds simulated.
    energy:
        :class:`EnergyReport` for the run.
    informed_count:
        Final size of the informed set (broadcast) or minimum per-node rumour
        count (gossip); ``None`` when not applicable.
    per_node_transmissions:
        Optional per-node transmission counts (kept when ``keep_arrays``).
    informed_round:
        Optional per-node informed-round array (kept when ``keep_arrays``).
    rounds:
        Optional list of per-round records (kept when ``record_rounds``).
    metadata:
        Free-form extras (protocol parameters, phase boundaries, …).
    """

    protocol_name: str
    network_name: str
    n: int
    completed: bool
    completion_round: int
    rounds_executed: int
    energy: EnergyReport
    informed_count: Optional[int] = None
    per_node_transmissions: Optional[np.ndarray] = None
    informed_round: Optional[np.ndarray] = None
    rounds: List[RoundRecord] = field(default_factory=list)
    metadata: Dict[str, object] = field(default_factory=dict)

    # ------------------------------------------------------------------ #
    # Derived series used by the experiments
    # ------------------------------------------------------------------ #
    def informed_curve(self) -> np.ndarray:
        """Informed-set size after each recorded round (requires round records)."""
        if not self.rounds:
            raise ValueError("run was not recorded with record_rounds=True")
        return np.asarray([r.informed_after for r in self.rounds], dtype=np.int64)

    def transmitter_curve(self) -> np.ndarray:
        """Number of transmitters in each recorded round."""
        if not self.rounds:
            raise ValueError("run was not recorded with record_rounds=True")
        return np.asarray([r.transmitters for r in self.rounds], dtype=np.int64)

    def as_dict(self) -> Dict[str, object]:
        """JSON-friendly summary (arrays and round records are summarised)."""
        out: Dict[str, object] = {
            "protocol_name": self.protocol_name,
            "network_name": self.network_name,
            "n": self.n,
            "completed": self.completed,
            "completion_round": self.completion_round,
            "rounds_executed": self.rounds_executed,
            "energy": self.energy.as_dict(),
            "informed_count": self.informed_count,
            "metadata": dict(self.metadata),
        }
        if self.rounds:
            out["rounds"] = [r.as_dict() for r in self.rounds]
        return out

    def __repr__(self) -> str:
        status = "completed" if self.completed else "timed-out"
        return (
            f"RunResultTrace({self.protocol_name!r} on {self.network_name!r}, n={self.n}, "
            f"{status} after {self.completion_round} rounds, "
            f"total_tx={self.energy.total_transmissions})"
        )
