"""Run traces: what happened round by round, and how the run ended.

Traces serve two purposes:

1. The experiment harness needs the headline numbers each theorem talks
   about: completion round, success flag, energy report.
2. Several experiments (E2 phase growth, the lower-bound experiments) need
   the *per-round* evolution of the informed set and of the number of
   transmitters, so :class:`RunResultTrace` optionally keeps a compact
   per-round record.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from repro.radio.energy import EnergyReport

__all__ = ["RoundRecord", "RunResultTrace"]


@dataclass(frozen=True)
class RoundRecord:
    """Compact summary of a single synchronous round."""

    round_index: int
    transmitters: int
    deliveries: int
    newly_informed: int
    informed_after: int

    def as_dict(self) -> Dict[str, int]:
        return {
            "round_index": self.round_index,
            "transmitters": self.transmitters,
            "deliveries": self.deliveries,
            "newly_informed": self.newly_informed,
            "informed_after": self.informed_after,
        }


@dataclass
class RunResultTrace:
    """Outcome of one protocol run.

    Attributes
    ----------
    protocol_name:
        ``Protocol.name`` of the protocol that ran.
    network_name:
        ``RadioNetwork.name`` of the topology.
    n:
        Number of nodes.
    completed:
        True iff the protocol reported completion before the round horizon.
    completion_round:
        1-based number of rounds executed until completion (or the number of
        rounds executed when the horizon was hit).
    rounds_executed:
        Total rounds simulated.
    energy:
        :class:`EnergyReport` for the run.
    informed_count:
        Final size of the informed set (broadcast) or minimum per-node rumour
        count (gossip); ``None`` when not applicable.
    per_node_transmissions:
        Optional per-node transmission counts (kept when ``keep_arrays``).
    informed_round:
        Optional per-node informed-round array (kept when ``keep_arrays``).
    rounds:
        Optional list of per-round records (kept when ``record_rounds``).
    metadata:
        Free-form extras (protocol parameters, phase boundaries, …).
    """

    protocol_name: str
    network_name: str
    n: int
    completed: bool
    completion_round: int
    rounds_executed: int
    energy: EnergyReport
    informed_count: Optional[int] = None
    per_node_transmissions: Optional[np.ndarray] = None
    informed_round: Optional[np.ndarray] = None
    rounds: List[RoundRecord] = field(default_factory=list)
    metadata: Dict[str, object] = field(default_factory=dict)

    # ------------------------------------------------------------------ #
    # Derived series used by the experiments
    # ------------------------------------------------------------------ #
    def informed_curve(self) -> np.ndarray:
        """Informed-set size after each recorded round (requires round records)."""
        if not self.rounds:
            raise ValueError("run was not recorded with record_rounds=True")
        return np.asarray([r.informed_after for r in self.rounds], dtype=np.int64)

    def transmitter_curve(self) -> np.ndarray:
        """Number of transmitters in each recorded round."""
        if not self.rounds:
            raise ValueError("run was not recorded with record_rounds=True")
        return np.asarray([r.transmitters for r in self.rounds], dtype=np.int64)

    def as_dict(self) -> Dict[str, object]:
        """JSON-friendly summary (arrays and round records are summarised)."""
        out: Dict[str, object] = {
            "protocol_name": self.protocol_name,
            "network_name": self.network_name,
            "n": self.n,
            "completed": self.completed,
            "completion_round": self.completion_round,
            "rounds_executed": self.rounds_executed,
            "energy": self.energy.as_dict(),
            "informed_count": self.informed_count,
            "metadata": dict(self.metadata),
        }
        if self.rounds:
            out["rounds"] = [r.as_dict() for r in self.rounds]
        return out

    # ------------------------------------------------------------------ #
    # Full-fidelity serialisation (the result store's record format)
    # ------------------------------------------------------------------ #
    def to_payload(self) -> Dict[str, object]:
        """Lossless JSON-ready form: :meth:`from_payload` restores a trace
        whose every field the experiments consume compares equal.

        Unlike :meth:`as_dict` (a human-facing summary), this keeps the
        optional per-node arrays and always carries the round records, so a
        cached trial is indistinguishable from a freshly computed one.
        """
        payload = self.as_dict()
        payload["rounds"] = [r.as_dict() for r in self.rounds]
        if self.per_node_transmissions is not None:
            payload["per_node_transmissions"] = (
                np.asarray(self.per_node_transmissions).tolist()
            )
        if self.informed_round is not None:
            payload["informed_round"] = np.asarray(self.informed_round).tolist()
        return payload

    @classmethod
    def from_payload(cls, payload: Dict[str, object]) -> "RunResultTrace":
        """Inverse of :meth:`to_payload`."""
        per_node = payload.get("per_node_transmissions")
        informed_round = payload.get("informed_round")
        return cls(
            protocol_name=str(payload["protocol_name"]),
            network_name=str(payload["network_name"]),
            n=int(payload["n"]),
            completed=bool(payload["completed"]),
            completion_round=int(payload["completion_round"]),
            rounds_executed=int(payload["rounds_executed"]),
            energy=EnergyReport.from_dict(payload["energy"]),
            informed_count=(
                None
                if payload.get("informed_count") is None
                else int(payload["informed_count"])
            ),
            per_node_transmissions=(
                None
                if per_node is None
                else np.asarray(per_node, dtype=np.int64)
            ),
            informed_round=(
                None
                if informed_round is None
                else np.asarray(informed_round, dtype=np.int64)
            ),
            rounds=[
                RoundRecord(
                    round_index=int(r["round_index"]),
                    transmitters=int(r["transmitters"]),
                    deliveries=int(r["deliveries"]),
                    newly_informed=int(r["newly_informed"]),
                    informed_after=int(r["informed_after"]),
                )
                for r in payload.get("rounds", [])
            ],
            metadata=dict(payload.get("metadata", {})),
        )

    def __repr__(self) -> str:
        status = "completed" if self.completed else "timed-out"
        return (
            f"RunResultTrace({self.protocol_name!r} on {self.network_name!r}, n={self.n}, "
            f"{status} after {self.completion_round} rounds, "
            f"total_tx={self.energy.total_transmissions})"
        )
