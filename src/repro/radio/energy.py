"""Energy accounting.

The paper measures energy as the number of transmissions, because every node
sends with a fixed power (Section 1: *"We believe that under these
circumstances the number of transmissions is a very good measure for the
overall energy consumption"*).  :class:`EnergyAccountant` accumulates
per-node transmission counts over a run and summarises them as an
:class:`EnergyReport` with the quantities the theorems bound:

* total number of transmissions (Theorem 2.1: ``O(log n / p)``),
* maximum transmissions per node (Theorem 2.1: at most 1; Theorem 3.2:
  ``O(log n)``),
* mean / expected transmissions per node (Theorem 4.1:
  ``O(log^2 n / log(n/D))``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

import numpy as np

__all__ = ["EnergyAccountant", "EnergyReport"]


@dataclass(frozen=True)
class EnergyReport:
    """Summary of the energy spent during a run."""

    total_transmissions: int
    max_per_node: int
    mean_per_node: float
    median_per_node: float
    p95_per_node: float
    transmitting_nodes: int
    n: int

    def as_dict(self) -> Dict[str, float]:
        """Plain-dict view (JSON-friendly)."""
        return {
            "total_transmissions": self.total_transmissions,
            "max_per_node": self.max_per_node,
            "mean_per_node": self.mean_per_node,
            "median_per_node": self.median_per_node,
            "p95_per_node": self.p95_per_node,
            "transmitting_nodes": self.transmitting_nodes,
            "n": self.n,
        }


class EnergyAccountant:
    """Accumulates per-node transmission counts round by round."""

    def __init__(self, n: int):
        if n < 1:
            raise ValueError(f"n must be >= 1, got {n}")
        self._n = int(n)
        self._per_node = np.zeros(self._n, dtype=np.int64)
        self._rounds_recorded = 0

    @property
    def n(self) -> int:
        """Number of nodes tracked."""
        return self._n

    @property
    def rounds_recorded(self) -> int:
        """How many rounds have been recorded."""
        return self._rounds_recorded

    def record_round(self, transmit_mask: np.ndarray) -> int:
        """Add one round's transmissions; returns the number of transmitters."""
        transmit_mask = np.asarray(transmit_mask, dtype=bool)
        if transmit_mask.shape != (self._n,):
            raise ValueError(
                f"transmit_mask must have shape ({self._n},), got {transmit_mask.shape}"
            )
        self._per_node += transmit_mask
        self._rounds_recorded += 1
        return int(transmit_mask.sum())

    def per_node(self) -> np.ndarray:
        """Copy of the per-node transmission counts."""
        return self._per_node.copy()

    def total(self) -> int:
        """Total transmissions so far."""
        return int(self._per_node.sum())

    def report(self) -> EnergyReport:
        """Summarise the counts accumulated so far."""
        counts = self._per_node
        return EnergyReport(
            total_transmissions=int(counts.sum()),
            max_per_node=int(counts.max()) if self._n else 0,
            mean_per_node=float(counts.mean()) if self._n else 0.0,
            median_per_node=float(np.median(counts)) if self._n else 0.0,
            p95_per_node=float(np.percentile(counts, 95)) if self._n else 0.0,
            transmitting_nodes=int((counts > 0).sum()),
            n=self._n,
        )

    def reset(self) -> None:
        """Zero all counters."""
        self._per_node[:] = 0
        self._rounds_recorded = 0

    def __repr__(self) -> str:
        return (
            f"EnergyAccountant(n={self._n}, rounds={self._rounds_recorded}, "
            f"total={self.total()})"
        )
