"""Energy accounting.

The paper measures energy as the number of transmissions, because every node
sends with a fixed power (Section 1: *"We believe that under these
circumstances the number of transmissions is a very good measure for the
overall energy consumption"*).  :class:`EnergyAccountant` accumulates
per-node transmission counts over a run and summarises them as an
:class:`EnergyReport` with the quantities the theorems bound:

* total number of transmissions (Theorem 2.1: ``O(log n / p)``),
* maximum transmissions per node (Theorem 2.1: at most 1; Theorem 3.2:
  ``O(log n)``),
* mean / expected transmissions per node (Theorem 4.1:
  ``O(log^2 n / log(n/D))``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

__all__ = ["EnergyAccountant", "BatchEnergyAccountant", "EnergyReport"]


@dataclass(frozen=True)
class EnergyReport:
    """Summary of the energy spent during a run."""

    total_transmissions: int
    max_per_node: int
    mean_per_node: float
    median_per_node: float
    p95_per_node: float
    transmitting_nodes: int
    n: int

    def as_dict(self) -> Dict[str, float]:
        """Plain-dict view (JSON-friendly)."""
        return {
            "total_transmissions": self.total_transmissions,
            "max_per_node": self.max_per_node,
            "mean_per_node": self.mean_per_node,
            "median_per_node": self.median_per_node,
            "p95_per_node": self.p95_per_node,
            "transmitting_nodes": self.transmitting_nodes,
            "n": self.n,
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, float]) -> "EnergyReport":
        """Inverse of :meth:`as_dict` (exact: ints stay ints, floats floats)."""
        return cls(
            total_transmissions=int(payload["total_transmissions"]),
            max_per_node=int(payload["max_per_node"]),
            mean_per_node=float(payload["mean_per_node"]),
            median_per_node=float(payload["median_per_node"]),
            p95_per_node=float(payload["p95_per_node"]),
            transmitting_nodes=int(payload["transmitting_nodes"]),
            n=int(payload["n"]),
        )


class EnergyAccountant:
    """Accumulates per-node transmission counts round by round."""

    def __init__(self, n: int):
        if n < 1:
            raise ValueError(f"n must be >= 1, got {n}")
        self._n = int(n)
        self._per_node = np.zeros(self._n, dtype=np.int64)
        self._rounds_recorded = 0

    @property
    def n(self) -> int:
        """Number of nodes tracked."""
        return self._n

    @property
    def rounds_recorded(self) -> int:
        """How many rounds have been recorded."""
        return self._rounds_recorded

    def record_round(self, transmit_mask: np.ndarray) -> int:
        """Add one round's transmissions; returns the number of transmitters."""
        transmit_mask = np.asarray(transmit_mask, dtype=bool)
        if transmit_mask.shape != (self._n,):
            raise ValueError(
                f"transmit_mask must have shape ({self._n},), got {transmit_mask.shape}"
            )
        self._per_node += transmit_mask
        self._rounds_recorded += 1
        return int(transmit_mask.sum())

    def per_node(self) -> np.ndarray:
        """Copy of the per-node transmission counts."""
        return self._per_node.copy()

    def total(self) -> int:
        """Total transmissions so far."""
        return int(self._per_node.sum())

    def report(self) -> EnergyReport:
        """Summarise the counts accumulated so far."""
        counts = self._per_node
        return EnergyReport(
            total_transmissions=int(counts.sum()),
            max_per_node=int(counts.max()) if self._n else 0,
            mean_per_node=float(counts.mean()) if self._n else 0.0,
            median_per_node=float(np.median(counts)) if self._n else 0.0,
            p95_per_node=float(np.percentile(counts, 95)) if self._n else 0.0,
            transmitting_nodes=int((counts > 0).sum()),
            n=self._n,
        )

    def reset(self) -> None:
        """Zero all counters."""
        self._per_node[:] = 0
        self._rounds_recorded = 0

    def __repr__(self) -> str:
        return (
            f"EnergyAccountant(n={self._n}, rounds={self._rounds_recorded}, "
            f"total={self.total()})"
        )


class BatchEnergyAccountant:
    """Per-node transmission counts for ``R`` trials advancing in lockstep.

    The counters live in one ``(R, n)`` matrix so a whole batched round is
    accounted with a single vectorised add; :meth:`reports` summarises every
    trial with the same statistics (and therefore bit-identical values) as
    :class:`EnergyAccountant` produces for a serial run.
    """

    def __init__(self, trials: int, n: int):
        if trials < 1:
            raise ValueError(f"trials must be >= 1, got {trials}")
        if n < 1:
            raise ValueError(f"n must be >= 1, got {n}")
        self._trials = int(trials)
        self._n = int(n)
        self._per_node = np.zeros((self._trials, self._n), dtype=np.int64)
        self._rounds_recorded = 0

    @property
    def trials(self) -> int:
        """Number of trials tracked."""
        return self._trials

    @property
    def n(self) -> int:
        """Number of nodes per trial."""
        return self._n

    @property
    def rounds_recorded(self) -> int:
        """How many batched rounds have been recorded."""
        return self._rounds_recorded

    def record_round(self, transmit_masks: np.ndarray) -> np.ndarray:
        """Add one round's transmissions; returns per-trial transmitter counts."""
        transmit_masks = np.asarray(transmit_masks, dtype=bool)
        if transmit_masks.shape != (self._trials, self._n):
            raise ValueError(
                f"transmit_masks must have shape ({self._trials}, {self._n}), "
                f"got {transmit_masks.shape}"
            )
        self._per_node += transmit_masks
        self._rounds_recorded += 1
        return transmit_masks.sum(axis=1)

    def record_flat(self, tx_flat: np.ndarray) -> np.ndarray:
        """Add one round given sorted flat transmitter ids (``trial*n + node``).

        The sparse counterpart of :meth:`record_round`: cost scales with the
        number of transmitters, not with ``R * n``.  Returns the per-trial
        transmitter counts.
        """
        self._per_node.reshape(-1)[tx_flat] += 1
        self._rounds_recorded += 1
        return np.bincount(tx_flat // self._n, minlength=self._trials)

    def select_rows(self, keep: np.ndarray) -> None:
        """Shrink to the trials where ``keep`` is True (compaction repack)."""
        keep = np.asarray(keep, dtype=bool)
        self._per_node = np.ascontiguousarray(self._per_node[keep])
        self._trials = int(self._per_node.shape[0])

    def per_node(self, trial: Optional[int] = None) -> np.ndarray:
        """Copy of the counts: the full ``(R, n)`` matrix or one trial's row."""
        if trial is None:
            return self._per_node.copy()
        return self._per_node[trial].copy()

    def report_for(self, trial: int) -> "EnergyReport":
        """One trial's :class:`EnergyReport` (same statistics — and therefore
        bit-identical values — as the corresponding :meth:`reports` entry)."""
        counts = self._per_node[trial]
        return EnergyReport(
            total_transmissions=int(counts.sum()),
            max_per_node=int(counts.max()),
            mean_per_node=float(counts.mean()),
            median_per_node=float(np.median(counts)),
            p95_per_node=float(np.percentile(counts, 95)),
            transmitting_nodes=int((counts > 0).sum()),
            n=self._n,
        )

    def reports_for(self, rows: np.ndarray) -> List["EnergyReport"]:
        """Reports for the selected trial rows, in ``rows`` order.

        Vectorised like :meth:`reports` (bit-identical statistics to
        :meth:`report_for`); the continuous engine retires several trials at
        once and per-trial median/percentile passes dominate otherwise.
        """
        return self._reports_from(self._per_node[np.asarray(rows, dtype=np.intp)])

    def reports(self) -> List["EnergyReport"]:
        """One :class:`EnergyReport` per trial (vectorised across trials)."""
        return self._reports_from(self._per_node)

    def _reports_from(self, counts: np.ndarray) -> List["EnergyReport"]:
        n = counts.shape[1]
        totals = counts.sum(axis=1)
        maxima = counts.max(axis=1)
        means = totals / n
        # One partition pass supplies both the median and the 95th
        # percentile: counts are integer transmission tallies, so linear
        # interpolation between the bracketing order statistics is exact and
        # matches ``np.median`` / ``np.percentile`` bit for bit while
        # skipping their per-call dispatch overhead (which dominates when
        # the continuous engine retires one or two trials at a time).
        pos = (n - 1) * 0.95
        lo = int(pos)
        hi = min(lo + 1, n - 1)
        mid = n // 2
        kth = sorted({mid - 1 if n % 2 == 0 else mid, mid, lo, hi})
        part = np.partition(counts, kth, axis=1)
        if n % 2 == 0:
            medians = (part[:, mid - 1] + part[:, mid]) / 2.0
        else:
            medians = part[:, mid].astype(np.float64)
        p95s = part[:, lo] + (part[:, hi] - part[:, lo]) * (pos - lo)
        transmitting = (counts > 0).sum(axis=1)
        return [
            EnergyReport(
                total_transmissions=int(totals[t]),
                max_per_node=int(maxima[t]),
                mean_per_node=float(means[t]),
                median_per_node=float(medians[t]),
                p95_per_node=float(p95s[t]),
                transmitting_nodes=int(transmitting[t]),
                n=self._n,
            )
            for t in range(counts.shape[0])
        ]

    def __repr__(self) -> str:
        return (
            f"BatchEnergyAccountant(trials={self._trials}, n={self._n}, "
            f"rounds={self._rounds_recorded})"
        )
