"""The :class:`RadioNetwork` digraph container.

A :class:`RadioNetwork` stores a directed graph in compressed-sparse-row
(CSR) form, once for out-edges and once for in-edges, because the simulation
hot path needs both directions:

* *out*-adjacency (``u -> set of listeners``) to scatter a transmission by
  ``u`` to everyone who can hear it;
* *in*-adjacency (``v -> set of stations v can hear``) for analysis
  (in-degrees, BFS layers from the source, …).

Edge direction follows the paper's Section 1.2: an edge ``(u, v)`` means a
message transmitted by ``u`` may be received by ``v``.  Asymmetric links
(``(u, v)`` present but ``(v, u)`` absent) model devices with different
communication ranges and are fully supported.
"""

from __future__ import annotations

from typing import Iterable, Optional, Sequence, Tuple

import numpy as np

from repro._util.validation import check_node_index, check_positive_int

__all__ = ["RadioNetwork"]


class RadioNetwork:
    """A fixed directed radio network on nodes ``0 .. n-1``.

    Parameters
    ----------
    n:
        Number of nodes.
    edges:
        Either a ``(m, 2)`` integer array / sequence of ``(u, v)`` pairs, or a
        pair ``(sources, targets)`` of equal-length integer arrays.  Duplicate
        edges are collapsed; self-loops are rejected (a radio cannot usefully
        transmit to itself and the paper's model excludes them).
    name:
        Optional human-readable name (topology family + parameters); carried
        through traces and experiment results.

    Notes
    -----
    Instances are immutable; all mutating topology operations return new
    networks.  The underlying arrays are exposed read-only for the simulation
    engine.
    """

    __slots__ = (
        "_n",
        "_out_indptr",
        "_out_indices",
        "_in_indptr",
        "_in_indices",
        "_name",
    )

    def __init__(
        self,
        n: int,
        edges: "np.ndarray | Sequence[Tuple[int, int]] | Tuple[np.ndarray, np.ndarray]",
        *,
        name: str = "",
    ):
        self._n = check_positive_int(n, "n")
        sources, targets = _coerce_edges(edges)
        if sources.size:
            if sources.min() < 0 or targets.min() < 0:
                raise ValueError("edge endpoints must be non-negative")
            if sources.max() >= n or targets.max() >= n:
                raise ValueError(
                    f"edge endpoint out of range for n={n}: "
                    f"max source {sources.max()}, max target {targets.max()}"
                )
            if np.any(sources == targets):
                raise ValueError("self-loops are not allowed in the radio model")
            # Deduplicate: sort lexicographically by (source, target).
            order = np.lexsort((targets, sources))
            sources = sources[order]
            targets = targets[order]
            keep = np.ones(sources.size, dtype=bool)
            keep[1:] = (sources[1:] != sources[:-1]) | (targets[1:] != targets[:-1])
            sources = sources[keep]
            targets = targets[keep]

        self._out_indptr, self._out_indices = _build_csr(self._n, sources, targets)
        self._in_indptr, self._in_indices = _build_csr(self._n, targets, sources)
        for arr in (self._out_indptr, self._out_indices, self._in_indptr, self._in_indices):
            arr.setflags(write=False)
        self._name = str(name)

    # ------------------------------------------------------------------ #
    # Basic properties
    # ------------------------------------------------------------------ #
    @property
    def n(self) -> int:
        """Number of nodes."""
        return self._n

    @property
    def num_nodes(self) -> int:
        """Alias for :attr:`n`."""
        return self._n

    @property
    def num_edges(self) -> int:
        """Number of directed edges (after deduplication)."""
        return int(self._out_indices.size)

    @property
    def name(self) -> str:
        """Human-readable topology name (may be empty)."""
        return self._name

    @property
    def out_indptr(self) -> np.ndarray:
        """CSR row pointer of the out-adjacency (read-only)."""
        return self._out_indptr

    @property
    def out_indices(self) -> np.ndarray:
        """CSR column indices of the out-adjacency (read-only)."""
        return self._out_indices

    @property
    def in_indptr(self) -> np.ndarray:
        """CSR row pointer of the in-adjacency (read-only)."""
        return self._in_indptr

    @property
    def in_indices(self) -> np.ndarray:
        """CSR column indices of the in-adjacency (read-only)."""
        return self._in_indices

    # ------------------------------------------------------------------ #
    # Degrees and neighbourhoods
    # ------------------------------------------------------------------ #
    def out_degrees(self) -> np.ndarray:
        """Array of out-degrees (how many listeners each node reaches)."""
        return np.diff(self._out_indptr)

    def in_degrees(self) -> np.ndarray:
        """Array of in-degrees (how many stations each node can hear)."""
        return np.diff(self._in_indptr)

    def out_neighbors(self, node: int) -> np.ndarray:
        """Nodes that can hear ``node``."""
        node = check_node_index(node, self._n)
        return self._out_indices[self._out_indptr[node] : self._out_indptr[node + 1]]

    def in_neighbors(self, node: int) -> np.ndarray:
        """Nodes that ``node`` can hear."""
        node = check_node_index(node, self._n)
        return self._in_indices[self._in_indptr[node] : self._in_indptr[node + 1]]

    def has_edge(self, u: int, v: int) -> bool:
        """True iff a transmission by ``u`` can reach ``v``."""
        u = check_node_index(u, self._n, "u")
        v = check_node_index(v, self._n, "v")
        row = self._out_indices[self._out_indptr[u] : self._out_indptr[u + 1]]
        idx = np.searchsorted(row, v)
        return bool(idx < row.size and row[idx] == v)

    def edge_list(self) -> np.ndarray:
        """Return the ``(m, 2)`` array of directed edges ``(u, v)``."""
        sources = np.repeat(np.arange(self._n, dtype=np.int64), self.out_degrees())
        return np.column_stack([sources, self._out_indices.astype(np.int64)])

    # ------------------------------------------------------------------ #
    # Structure queries / transforms
    # ------------------------------------------------------------------ #
    def is_symmetric(self) -> bool:
        """True iff every edge has its reverse (an undirected radio network)."""
        edges = self.edge_list()
        if edges.size == 0:
            return True
        fwd = set(map(tuple, edges.tolist()))
        return all((v, u) in fwd for (u, v) in fwd)

    def reverse(self) -> "RadioNetwork":
        """Network with every edge reversed."""
        edges = self.edge_list()
        return RadioNetwork(
            self._n,
            (edges[:, 1], edges[:, 0]) if edges.size else (np.empty(0, np.int64),) * 2,
            name=f"{self._name}(reversed)" if self._name else "reversed",
        )

    def symmetrized(self) -> "RadioNetwork":
        """Network with each edge and its reverse (models equal ranges)."""
        edges = self.edge_list()
        if edges.size == 0:
            return RadioNetwork(self._n, np.empty((0, 2), np.int64), name=self._name)
        both = np.vstack([edges, edges[:, ::-1]])
        return RadioNetwork(self._n, both, name=f"{self._name}(sym)" if self._name else "sym")

    def with_name(self, name: str) -> "RadioNetwork":
        """Return a copy that carries ``name`` (the topology is shared-by-value)."""
        net = RadioNetwork.__new__(RadioNetwork)
        net._n = self._n
        net._out_indptr = self._out_indptr
        net._out_indices = self._out_indices
        net._in_indptr = self._in_indptr
        net._in_indices = self._in_indices
        net._name = str(name)
        return net

    # ------------------------------------------------------------------ #
    # Interop
    # ------------------------------------------------------------------ #
    @classmethod
    def from_networkx(cls, graph, *, name: str = "") -> "RadioNetwork":
        """Build from a :mod:`networkx` graph.

        Undirected graphs become symmetric radio networks.  Node labels must
        be hashable; they are relabelled to ``0..n-1`` in sorted order when
        they are not already a contiguous integer range.
        """
        import networkx as nx

        nodes = list(graph.nodes())
        n = len(nodes)
        if sorted(nodes) == list(range(n)):
            mapping = {u: u for u in nodes}
        else:
            mapping = {u: i for i, u in enumerate(sorted(nodes, key=repr))}
        edges = []
        for u, v in graph.edges():
            edges.append((mapping[u], mapping[v]))
            if not graph.is_directed():
                edges.append((mapping[v], mapping[u]))
        arr = np.asarray(edges, dtype=np.int64).reshape(-1, 2)
        return cls(n, arr, name=name or getattr(graph, "name", "") or "")

    def to_networkx(self):
        """Export as a :class:`networkx.DiGraph`."""
        import networkx as nx

        g = nx.DiGraph(name=self._name)
        g.add_nodes_from(range(self._n))
        g.add_edges_from(map(tuple, self.edge_list().tolist()))
        return g

    # ------------------------------------------------------------------ #
    # Dunder
    # ------------------------------------------------------------------ #
    def __eq__(self, other: object) -> bool:
        if not isinstance(other, RadioNetwork):
            return NotImplemented
        return (
            self._n == other._n
            and np.array_equal(self._out_indptr, other._out_indptr)
            and np.array_equal(self._out_indices, other._out_indices)
        )

    def __hash__(self) -> int:  # pragma: no cover - not used as dict key in hot paths
        return hash((self._n, self._out_indices.tobytes(), self._out_indptr.tobytes()))

    def __repr__(self) -> str:
        label = f" name={self._name!r}" if self._name else ""
        return f"RadioNetwork(n={self._n}, m={self.num_edges}{label})"


# ---------------------------------------------------------------------- #
# Helpers
# ---------------------------------------------------------------------- #
def _coerce_edges(edges) -> Tuple[np.ndarray, np.ndarray]:
    """Normalise the accepted edge formats into (sources, targets) int64 arrays."""
    if isinstance(edges, tuple) and len(edges) == 2 and not _looks_like_pair(edges):
        sources = np.asarray(edges[0], dtype=np.int64).ravel()
        targets = np.asarray(edges[1], dtype=np.int64).ravel()
        if sources.shape != targets.shape:
            raise ValueError(
                f"sources and targets must have equal length, got {sources.size} and {targets.size}"
            )
        return sources, targets
    arr = np.asarray(edges, dtype=np.int64)
    if arr.size == 0:
        return np.empty(0, np.int64), np.empty(0, np.int64)
    if arr.ndim != 2 or arr.shape[1] != 2:
        raise ValueError(f"edges must be an (m, 2) array of (u, v) pairs, got shape {arr.shape}")
    return arr[:, 0].copy(), arr[:, 1].copy()


def _looks_like_pair(edges: tuple) -> bool:
    """True when a 2-tuple is a single edge ``(u, v)`` rather than two arrays."""
    return all(isinstance(x, (int, np.integer)) for x in edges)


def _build_csr(n: int, rows: np.ndarray, cols: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
    """Build CSR (indptr, indices) with indices sorted within each row."""
    counts = np.bincount(rows, minlength=n) if rows.size else np.zeros(n, dtype=np.int64)
    indptr = np.zeros(n + 1, dtype=np.int64)
    np.cumsum(counts, out=indptr[1:])
    if rows.size:
        order = np.lexsort((cols, rows))
        indices = cols[order].astype(np.int32, copy=True)
    else:
        indices = np.empty(0, dtype=np.int32)
    return indptr, indices
