"""Pluggable node-set state backends for the simulation engines.

Every protocol in this repository is a *set dynamic*: broadcasts grow an
informed set, gossip grows per-node rumour sets, Decay and flooding walk a
transmit frontier with per-node quotas.  This module extracts that state out
of the protocol classes into a small kernel API with three interchangeable
backends, so the representation can be chosen per workload without touching
any protocol logic:

``dense``
    The original representation — boolean ``(R, n)`` masks and ``(R, n, n)``
    knowledge tensors, dense per-node quota/budget arrays.  Fastest at small
    scales and the bit-for-bit reference the other backends are tested
    against.

``bitset``
    Node sets packed into ``np.uint64`` words (64 set members per word) with
    popcount-based counts.  The headline win is the gossip knowledge tensor:
    ``(R, n, ceil(n / 64))`` words instead of ``R * n**2`` bool bytes — an
    ~8x memory lift that moves the practical gossip batch ceiling from
    ``R * n**2 ~ 1e8`` bool cells to ~1e9, and makes the per-round
    completion scan 8x smaller.

``sparse``
    Frontier state kept as index pools (flat node ids plus per-node
    quota/budget), tracking only the nodes that can still transmit.  Aimed
    at the collision-edge-bound regimes of Decay and flooding at large
    ``n``: within a Decay phase the surviving frontier halves every round,
    so the pool shrinks geometrically while a dense mask comparison keeps
    paying ``O(R * n)`` per round.  Membership sets stay dense under this
    backend (both transmit rules and the collision listener filter consume
    them as masks) and the knowledge tensor falls back to the bitset
    packing.

Backends are bundled by :class:`NodeSetKernel` (one factory per state kind)
and chosen by :func:`select_backend` from ``(R, n, density)`` plus the
protocol's declared *state profile*, with an explicit override plumbed
through ``ExecutionPlan`` / ``configure_execution`` and the CLI's
``--state-backend`` flag.  Every backend is bit-identical to ``dense`` under
``batch_mode="exact"`` — ``tests/test_nodesets.py`` pins this for the whole
protocol registry.

Packing layout: node ``m`` of a row lives in word ``m // 64`` at bit
``m % 64`` (``np.packbits(..., bitorder="little")`` on a little-endian
host, which is what the NumPy wheels this project targets run on).
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro import telemetry

__all__ = [
    "STATE_BACKENDS",
    "NodeSetKernel",
    "resolve_kernel",
    "select_backend",
    "words_for",
    "pack_bool_rows",
    "unpack_bool_rows",
    "popcount",
    "NodeSetState",
    "DenseNodeSet",
    "BitsetNodeSet",
    "KnowledgeState",
    "DenseKnowledge",
    "BitsetKnowledge",
    "QuotaFrontier",
    "DenseQuotaFrontier",
    "SparseQuotaFrontier",
    "BudgetFrontier",
    "DenseBudgetFrontier",
    "SparseBudgetFrontier",
]

#: Valid values of every ``state_backend`` knob ("auto" resolves via
#: :func:`select_backend`; the rest name a concrete backend).
STATE_BACKENDS = ("auto", "dense", "bitset", "sparse")

_WORD_BITS = 64


# --------------------------------------------------------------------------- #
# Bit-packing primitives
# --------------------------------------------------------------------------- #
def words_for(n: int) -> int:
    """Number of ``uint64`` words needed for an ``n``-bit row."""
    return (int(n) + _WORD_BITS - 1) // _WORD_BITS


def pack_bool_rows(mask: np.ndarray) -> np.ndarray:
    """Pack a boolean ``(..., n)`` array into ``(..., words_for(n))`` uint64."""
    mask = np.ascontiguousarray(mask, dtype=bool)
    n = mask.shape[-1]
    n_words = words_for(n)
    packed = np.packbits(mask, axis=-1, bitorder="little")
    pad = n_words * 8 - packed.shape[-1]
    if pad:
        packed = np.concatenate(
            [packed, np.zeros(mask.shape[:-1] + (pad,), dtype=np.uint8)],
            axis=-1,
        )
    return np.ascontiguousarray(packed).view(np.uint64)


def unpack_bool_rows(words: np.ndarray, n: int) -> np.ndarray:
    """Inverse of :func:`pack_bool_rows`: ``(..., W)`` uint64 -> ``(..., n)`` bool."""
    as_bytes = np.ascontiguousarray(words).view(np.uint8)
    bits = np.unpackbits(as_bytes, axis=-1, bitorder="little", count=n)
    return bits.astype(bool)


if hasattr(np, "bitwise_count"):  # NumPy >= 2.0

    def popcount(words: np.ndarray) -> np.ndarray:
        """Per-word population count (same shape as ``words``)."""
        return np.bitwise_count(words)

else:  # pragma: no cover - exercised only on NumPy < 2.0
    _POPCOUNT8 = np.array([bin(v).count("1") for v in range(256)], dtype=np.uint8)

    def popcount(words: np.ndarray) -> np.ndarray:
        """Per-word population count (same shape as ``words``)."""
        as_bytes = np.ascontiguousarray(words).view(np.uint8)
        per_byte = _POPCOUNT8[as_bytes].reshape(words.shape + (8,))
        return per_byte.sum(axis=-1, dtype=np.int64)


# --------------------------------------------------------------------------- #
# Membership sets (one node set per trial)
# --------------------------------------------------------------------------- #
class NodeSetState(abc.ABC):
    """``R`` per-trial node sets over flat ids ``trial * n + node``.

    The contract every backend honours (and the equivalence tests pin):

    * :meth:`add_flat` returns the not-yet-member subset of its input, in
      input order — exactly what the dense ``mask[ids]`` membership test
      yields;
    * :meth:`counts` is maintained incrementally, so reading it is ``O(R)``;
    * :meth:`mask` / :meth:`complement_flat` expose dense boolean views for
      the transmit rules and the collision listener filter.  ``dense``
      returns live arrays; packed backends materialise on demand (cached
      until the next mutation).
    """

    __slots__ = ("trials", "n", "_counts")

    def __init__(self, trials: int, n: int):
        self.trials = int(trials)
        self.n = int(n)
        self._counts = np.zeros(self.trials, dtype=np.int64)

    def counts(self) -> np.ndarray:
        """Per-trial member counts (live array — copy before mutating)."""
        return self._counts

    def select_rows(self, keep: np.ndarray) -> None:
        """Shrink to the trials where ``keep`` is True (compaction repack).

        ``keep`` is a boolean ``(R,)`` mask; surviving trials keep their
        relative order, so trial ``t``'s state lands in the row
        ``keep[:t].sum()`` — the same remapping the engine applies to its
        stacked CSR and every other per-trial array.
        """
        keep = np.asarray(keep, dtype=bool)
        self._counts = self._counts[keep].copy()
        self.trials = int(self._counts.size)
        self._select_rows(keep)

    @abc.abstractmethod
    def _select_rows(self, keep: np.ndarray) -> None:
        """Backend hook: repack per-trial state down to ``keep`` rows."""

    @abc.abstractmethod
    def add_flat(self, flat_ids: np.ndarray) -> np.ndarray:
        """Add flat ids; return the newly added subset (input order)."""

    @abc.abstractmethod
    def mask(self) -> np.ndarray:
        """Dense boolean ``(R, n)`` membership matrix (do not mutate)."""

    @abc.abstractmethod
    def complement_flat(self) -> np.ndarray:
        """Dense boolean ``(R * n,)`` non-membership vector (do not mutate)."""


class DenseNodeSet(NodeSetState):
    """Boolean-mask membership — the original representation."""

    __slots__ = ("_mask", "_flat", "_complement_flat")

    def __init__(self, trials: int, n: int):
        super().__init__(trials, n)
        self._mask = np.zeros((self.trials, self.n), dtype=bool)
        self._flat = self._mask.reshape(-1)
        self._complement_flat = ~self._flat

    def _select_rows(self, keep: np.ndarray) -> None:
        # _flat / _complement_flat are views of / derived from _mask — both
        # must be rebuilt against the repacked array.
        self._mask = np.ascontiguousarray(self._mask[keep])
        self._flat = self._mask.reshape(-1)
        self._complement_flat = ~self._flat

    def add_flat(self, flat_ids: np.ndarray) -> np.ndarray:
        flat_ids = np.asarray(flat_ids, dtype=np.int64)
        if flat_ids.size == 0:
            return flat_ids
        newly = flat_ids[~self._flat[flat_ids]]
        if newly.size:
            self._flat[newly] = True
            self._complement_flat[newly] = False
            self._counts += np.bincount(newly // self.n, minlength=self.trials)
        return newly

    def mask(self) -> np.ndarray:
        return self._mask

    def complement_flat(self) -> np.ndarray:
        return self._complement_flat


class BitsetNodeSet(NodeSetState):
    """Membership packed into ``(R, words_for(n))`` uint64 words.

    Dense views are unpacked on demand and cached until the next
    :meth:`add_flat`, so the steady-state cost is one unpack per round —
    the same order of work a dense mask read performs — while the resident
    set state is 8x smaller.
    """

    __slots__ = ("_words", "_mask_cache", "_complement_cache")

    def __init__(self, trials: int, n: int):
        super().__init__(trials, n)
        self._words = np.zeros((self.trials, words_for(self.n)), dtype=np.uint64)
        self._mask_cache: Optional[np.ndarray] = None
        self._complement_cache: Optional[np.ndarray] = None

    def _select_rows(self, keep: np.ndarray) -> None:
        self._words = np.ascontiguousarray(self._words[keep])
        self._mask_cache = None
        self._complement_cache = None

    def add_flat(self, flat_ids: np.ndarray) -> np.ndarray:
        flat_ids = np.asarray(flat_ids, dtype=np.int64)
        if flat_ids.size == 0:
            return flat_ids
        rows = flat_ids // self.n
        cols = flat_ids - rows * self.n
        word = cols >> 6
        bit = (cols & 63).astype(np.uint64)
        present = (self._words[rows, word] >> bit) & np.uint64(1)
        keep = present == 0
        newly = flat_ids[keep]
        if newly.size:
            # bitwise_or.at: several new members can land in the same word,
            # which buffered fancy assignment would collapse to one.
            np.bitwise_or.at(
                self._words,
                (rows[keep], word[keep]),
                np.uint64(1) << bit[keep],
            )
            self._counts += np.bincount(newly // self.n, minlength=self.trials)
            self._mask_cache = None
            self._complement_cache = None
        return newly

    def mask(self) -> np.ndarray:
        if self._mask_cache is None:
            self._mask_cache = unpack_bool_rows(self._words, self.n)
        return self._mask_cache

    def complement_flat(self) -> np.ndarray:
        if self._complement_cache is None:
            self._complement_cache = ~self.mask().reshape(-1)
        return self._complement_cache


# --------------------------------------------------------------------------- #
# Gossip knowledge tensors
# --------------------------------------------------------------------------- #
class KnowledgeState(abc.ABC):
    """``R`` per-trial ``(n, n)`` rumour-knowledge relations.

    Row ``(t, v)`` is the set of rumours node ``v`` of trial ``t`` knows;
    rows only ever grow (the join model), which is what lets the packed
    backend stay bit-compatible with the dense one.
    """

    __slots__ = ("trials", "n")

    def __init__(self, trials: int, n: int):
        self.trials = int(trials)
        self.n = int(n)

    def select_rows(self, keep: np.ndarray) -> None:
        """Shrink to the trials where ``keep`` is True (compaction repack)."""
        keep = np.asarray(keep, dtype=bool)
        self.trials = int(keep.sum())
        self._select_rows(keep)

    @abc.abstractmethod
    def _select_rows(self, keep: np.ndarray) -> None:
        """Backend hook: repack per-trial state down to ``keep`` rows."""

    @abc.abstractmethod
    def merge_flat(self, sender_flat: np.ndarray, receiver_flat: np.ndarray) -> None:
        """OR each (unique) receiver row with its sender's round-start row."""

    @abc.abstractmethod
    def per_node_counts(self) -> np.ndarray:
        """``(R, n)`` number of rumours each node knows."""

    @abc.abstractmethod
    def complete(self) -> np.ndarray:
        """Per-trial bool vector: every node knows every rumour."""

    @abc.abstractmethod
    def column(self, rumour: int) -> np.ndarray:
        """``(R, n)`` bool: which nodes know ``rumour``."""

    @abc.abstractmethod
    def as_dense(self) -> np.ndarray:
        """Materialise the ``(R, n, n)`` bool tensor (dense: live view)."""

    def min_counts(self) -> np.ndarray:
        """Per-trial minimum rumour count (the gossip progress metric)."""
        return self.per_node_counts().min(axis=1)


class DenseKnowledge(KnowledgeState):
    """Boolean ``(R, n, n)`` tensor — the original representation."""

    __slots__ = ("_tensor",)

    def __init__(self, trials: int, n: int):
        super().__init__(trials, n)
        self._tensor = np.broadcast_to(
            np.eye(n, dtype=bool), (self.trials, n, n)
        ).copy()

    def _select_rows(self, keep: np.ndarray) -> None:
        # merge_flat reshapes the tensor, which needs contiguity.
        self._tensor = np.ascontiguousarray(self._tensor[keep])

    def merge_flat(self, sender_flat: np.ndarray, receiver_flat: np.ndarray) -> None:
        if receiver_flat.size == 0:
            return
        flat = self._tensor.reshape(self.trials * self.n, self.n)
        payloads = flat[sender_flat]  # fancy indexing copies round-start rows
        flat[receiver_flat] |= payloads

    def per_node_counts(self) -> np.ndarray:
        return self._tensor.sum(axis=2)

    def complete(self) -> np.ndarray:
        return self._tensor.all(axis=(1, 2))

    def column(self, rumour: int) -> np.ndarray:
        return self._tensor[:, :, rumour]

    def as_dense(self) -> np.ndarray:
        return self._tensor


class BitsetKnowledge(KnowledgeState):
    """Knowledge packed into ``(R, n, words_for(n))`` uint64 words.

    8x smaller than the dense tensor; rumour counts and completion are
    maintained *incrementally* from merge deltas: each merge popcounts only
    the receiver rows it touched, so reading :meth:`per_node_counts` is a
    copy and :meth:`complete` is an ``O(R)`` comparison — the per-round
    full-tensor completion scan the dense backend pays is gone entirely.
    Rows only ever grow (the join model), which is what makes the delta
    bookkeeping exact.
    """

    __slots__ = ("_words", "_node_counts", "_full_rows")

    def __init__(self, trials: int, n: int):
        super().__init__(trials, n)
        self._words = np.zeros((self.trials, n, words_for(n)), dtype=np.uint64)
        idx = np.arange(n)
        self._words[:, idx, idx >> 6] = np.uint64(1) << (idx & 63).astype(np.uint64)
        # Every node starts knowing exactly its own rumour.
        self._node_counts = np.ones((self.trials, n), dtype=np.int64)
        # A row is "full" when it holds all n rumours; with n == 1 every row
        # (and therefore every trial) is complete from the start.
        self._full_rows = np.full(self.trials, n if n == 1 else 0, dtype=np.int64)

    def _select_rows(self, keep: np.ndarray) -> None:
        self._words = np.ascontiguousarray(self._words[keep])
        self._node_counts = np.ascontiguousarray(self._node_counts[keep])
        self._full_rows = self._full_rows[keep].copy()

    def merge_flat(self, sender_flat: np.ndarray, receiver_flat: np.ndarray) -> None:
        if receiver_flat.size == 0:
            return
        flat = self._words.reshape(self.trials * self.n, -1)
        payloads = flat[sender_flat]
        flat[receiver_flat] |= payloads
        # Incremental completion tracking: re-popcount only the rows this
        # merge touched (receivers are unique by the merge contract).
        new_counts = popcount(flat[receiver_flat]).sum(axis=-1, dtype=np.int64)
        counts_flat = self._node_counts.reshape(-1)
        newly_full = receiver_flat[
            (new_counts == self.n) & (counts_flat[receiver_flat] != self.n)
        ]
        counts_flat[receiver_flat] = new_counts
        if newly_full.size:
            self._full_rows += np.bincount(
                newly_full // self.n, minlength=self.trials
            )

    def per_node_counts(self) -> np.ndarray:
        return self._node_counts.copy()

    def complete(self) -> np.ndarray:
        return self._full_rows == self.n

    def column(self, rumour: int) -> np.ndarray:
        rumour = int(rumour)
        word = self._words[:, :, rumour >> 6]
        return ((word >> np.uint64(rumour & 63)) & np.uint64(1)).astype(bool)

    def as_dense(self) -> np.ndarray:
        return unpack_bool_rows(self._words, self.n)


# --------------------------------------------------------------------------- #
# Transmit frontiers
# --------------------------------------------------------------------------- #
def _remap_flat_pool(ids: np.ndarray, keep: np.ndarray, n: int):
    """Row-select a sorted flat-id pool under the compaction remapping.

    Returns ``(alive, new_ids)``: ``alive`` masks the pool entries whose
    trial survives, ``new_ids`` are those entries re-addressed into the
    compacted trial space.  The old-row -> new-row map is monotone, so a
    sorted pool stays sorted.
    """
    rows = ids // n
    alive = keep[rows]
    new_row = np.cumsum(keep, dtype=np.int64) - 1
    old_rows = rows[alive]
    return alive, new_row[old_rows] * n + (ids[alive] - old_rows * n)
class QuotaFrontier(abc.ABC):
    """Per-phase transmission quotas (the Decay frontier).

    :meth:`begin_phase` installs one quota per participating node (values in
    trial-major ascending node-id order — the order the phase draws are
    made in); :meth:`transmitters` yields the sorted flat ids with
    ``quota > within`` in running trials.  Quotas are monotone in ``within``
    within a phase, which is what lets the sparse backend prune its pool as
    the phase plays out.
    """

    __slots__ = ("trials", "n")

    def __init__(self, trials: int, n: int):
        self.trials = int(trials)
        self.n = int(n)

    def select_rows(self, keep: np.ndarray) -> None:
        """Shrink to the trials where ``keep`` is True (compaction repack)."""
        keep = np.asarray(keep, dtype=bool)
        self.trials = int(keep.sum())
        self._select_rows(keep)

    @abc.abstractmethod
    def _select_rows(self, keep: np.ndarray) -> None:
        """Backend hook: repack per-trial state down to ``keep`` rows."""

    @abc.abstractmethod
    def begin_phase(self, participating: np.ndarray, values: np.ndarray) -> None:
        """Install quotas: ``participating`` is ``(R, n)`` bool, ``values``
        one quota per ``True`` cell in trial-major ascending order."""

    @abc.abstractmethod
    def transmitters(self, within: int, running: np.ndarray) -> np.ndarray:
        """Sorted flat ids with remaining quota ``> within`` in running trials."""


class DenseQuotaFrontier(QuotaFrontier):
    """Quotas in a dense ``(R, n)`` array; one mask comparison per round."""

    __slots__ = ("_quota",)

    def __init__(self, trials: int, n: int):
        super().__init__(trials, n)
        self._quota = np.zeros((self.trials, self.n), dtype=np.int64)

    def _select_rows(self, keep: np.ndarray) -> None:
        self._quota = np.ascontiguousarray(self._quota[keep])

    def begin_phase(self, participating: np.ndarray, values: np.ndarray) -> None:
        quota = np.zeros((self.trials, self.n), dtype=np.int64)
        quota[participating] = values
        self._quota = quota

    def transmitters(self, within: int, running: np.ndarray) -> np.ndarray:
        mask = self._quota > within
        if not running.all():
            mask &= running[:, None]
        return np.flatnonzero(mask.reshape(-1))

    def quota_matrix(self) -> np.ndarray:
        """The dense quota matrix (diagnostics)."""
        return self._quota


class SparseQuotaFrontier(QuotaFrontier):
    """Quotas as a (sorted flat id, value) pool pruned as the phase decays.

    A Decay quota is ``min(Geometric(1/2), k)``, so the surviving pool
    halves every round of the phase; per-round cost is ``O(|pool|)`` and
    the tail rounds of a phase — the majority, at ``k = 2 log2 n`` rounds
    per phase — touch almost nothing, where a dense comparison keeps paying
    ``O(R * n)``.
    """

    __slots__ = ("_ids", "_values")

    def __init__(self, trials: int, n: int):
        super().__init__(trials, n)
        self._ids = np.empty(0, dtype=np.int64)
        self._values = np.empty(0, dtype=np.int64)

    def _select_rows(self, keep: np.ndarray) -> None:
        alive, new_ids = _remap_flat_pool(self._ids, keep, self.n)
        self._ids = new_ids
        self._values = self._values[alive]

    def begin_phase(self, participating: np.ndarray, values: np.ndarray) -> None:
        # flatnonzero of the trial-major mask is exactly the draw order.
        self._ids = np.flatnonzero(np.asarray(participating).reshape(-1))
        self._values = np.asarray(values, dtype=np.int64)

    def transmitters(self, within: int, running: np.ndarray) -> np.ndarray:
        alive = self._values > within
        if not alive.all():
            # Quotas only ever compare against growing `within`, so dropping
            # exhausted entries now can never change a later round.
            self._ids = self._ids[alive]
            self._values = self._values[alive]
        out = self._ids
        if not running.all():
            out = out[running[out // self.n]]
        return out


class BudgetFrontier(abc.ABC):
    """Admitted nodes each holding a transmission budget (flooding frontier).

    A node transmits every round its trial is running until its budget is
    exhausted, then leaves the frontier for good.
    """

    __slots__ = ("trials", "n")

    def __init__(self, trials: int, n: int):
        self.trials = int(trials)
        self.n = int(n)

    def select_rows(self, keep: np.ndarray) -> None:
        """Shrink to the trials where ``keep`` is True (compaction repack)."""
        keep = np.asarray(keep, dtype=bool)
        self.trials = int(keep.sum())
        self._select_rows(keep)

    @abc.abstractmethod
    def _select_rows(self, keep: np.ndarray) -> None:
        """Backend hook: repack per-trial state down to ``keep`` rows."""

    @abc.abstractmethod
    def admit(self, flat_ids: np.ndarray, budget: int) -> None:
        """Admit (unique, never-before-admitted) flat ids with this budget.

        Input order does not matter; backends keep their own order.
        """

    @abc.abstractmethod
    def transmitters(self, running: np.ndarray) -> np.ndarray:
        """Sorted flat ids transmitting this round (their budgets decrement;
        exhausted nodes are evicted)."""

    @abc.abstractmethod
    def counts(self) -> np.ndarray:
        """Per-trial number of nodes still holding budget.

        A trial with zero holders is *quiescent*: nobody transmits, so
        nobody new is ever informed and nobody is ever re-admitted — the
        engines use this to retire deadlocked flooding trials early.
        """


class DenseBudgetFrontier(BudgetFrontier):
    """Budgets in a dense ``(R * n,)`` array; one mask comparison per round."""

    __slots__ = ("_remaining",)

    def __init__(self, trials: int, n: int):
        super().__init__(trials, n)
        self._remaining = np.zeros((self.trials, self.n), dtype=np.int64)

    def _select_rows(self, keep: np.ndarray) -> None:
        self._remaining = np.ascontiguousarray(self._remaining[keep])

    def admit(self, flat_ids: np.ndarray, budget: int) -> None:
        flat_ids = np.asarray(flat_ids, dtype=np.int64)
        if flat_ids.size:
            self._remaining.reshape(-1)[flat_ids] = int(budget)

    def transmitters(self, running: np.ndarray) -> np.ndarray:
        mask = self._remaining > 0
        if not running.all():
            mask &= running[:, None]
        out = np.flatnonzero(mask.reshape(-1))
        if out.size:
            self._remaining.reshape(-1)[out] -= 1
        return out

    def counts(self) -> np.ndarray:
        return (self._remaining > 0).sum(axis=1)


class SparseBudgetFrontier(BudgetFrontier):
    """Budgets as a sorted (flat id, remaining) pool.

    Per-round cost is ``O(|pool|)``; a flooded-out node costs nothing after
    eviction, where the dense mask keeps scanning all ``R * n`` cells.
    """

    __slots__ = ("_ids", "_remaining")

    def __init__(self, trials: int, n: int):
        super().__init__(trials, n)
        self._ids = np.empty(0, dtype=np.int64)
        self._remaining = np.empty(0, dtype=np.int64)

    def _select_rows(self, keep: np.ndarray) -> None:
        alive, new_ids = _remap_flat_pool(self._ids, keep, self.n)
        self._ids = new_ids
        self._remaining = self._remaining[alive]

    def admit(self, flat_ids: np.ndarray, budget: int) -> None:
        flat_ids = np.asarray(flat_ids, dtype=np.int64)
        if flat_ids.size == 0:
            return
        merged = np.concatenate([self._ids, np.sort(flat_ids)])
        remaining = np.concatenate(
            [self._remaining, np.full(flat_ids.size, int(budget), dtype=np.int64)]
        )
        order = np.argsort(merged, kind="stable")
        self._ids = merged[order]
        self._remaining = remaining[order]

    def transmitters(self, running: np.ndarray) -> np.ndarray:
        if self._ids.size == 0:
            return self._ids
        if running.all():
            out = self._ids.copy()
            self._remaining -= 1
        else:
            live = running[self._ids // self.n]
            out = self._ids[live]
            self._remaining[live] -= 1
        exhausted = self._remaining == 0
        if exhausted.any():
            keep = ~exhausted
            self._ids = self._ids[keep]
            self._remaining = self._remaining[keep]
        return out

    def counts(self) -> np.ndarray:
        return np.bincount(self._ids // self.n, minlength=self.trials)


# --------------------------------------------------------------------------- #
# Kernel: backend bundle + selection heuristic
# --------------------------------------------------------------------------- #
#: Dense knowledge tensors above this many bool cells (~128 MiB) switch the
#: auto heuristic to the bitset packing.
_DENSE_KNOWLEDGE_CEILING = 1 << 27

#: Frontier protocols switch to sparse pools once the per-round dense state
#: work (``R * n`` cells) clears this floor; below it the pool bookkeeping
#: costs more than the mask comparison it replaces.
_SPARSE_FRONTIER_FLOOR = 1 << 16


def select_backend(
    trials: int,
    n: int,
    *,
    profile: str = "plain",
    density: Optional[float] = None,
) -> str:
    """Pick a concrete backend for a ``(R, n, density)`` workload.

    ``profile`` is the protocol's declared state shape:

    * ``"knowledge"`` (gossip) — memory-bound by the ``(R, n, n)`` tensor:
      pack to bitset words once the dense tensor would clear ~128 MiB.
    * ``"frontier"`` (Decay, deterministic flooding) — bound by per-round
      frontier bookkeeping: use sparse index pools once the dense mask work
      ``R * n`` clears the floor.  Denser graphs inform (and therefore
      re-fill the frontier) faster, so the bar doubles above 10% density.
    * anything else — dense boolean state, the reference representation.
    """
    trials, n = int(trials), int(n)
    if profile == "knowledge":
        return "bitset" if trials * n * n >= _DENSE_KNOWLEDGE_CEILING else "dense"
    if profile == "frontier":
        floor = _SPARSE_FRONTIER_FLOOR
        if density is not None and density > 0.1:
            floor *= 2
        return "sparse" if trials * n >= floor else "dense"
    return "dense"


@dataclass(frozen=True)
class NodeSetKernel:
    """A resolved backend bundle: one factory per state kind.

    Not every backend specialises every state kind — the mapping is:

    =========== ============= ============= ==============
    backend     membership    knowledge     frontiers
    =========== ============= ============= ==============
    ``dense``   dense mask    dense tensor  dense arrays
    ``bitset``  packed words  packed words  dense arrays
    ``sparse``  dense mask    packed words  index pools
    =========== ============= ============= ==============

    (Sparse membership/knowledge would not help: membership is consumed as
    dense masks by transmit rules and the collision listener filter, and
    gossip knowledge saturates — the packed tensor is the compact choice.)
    """

    backend: str

    def __post_init__(self) -> None:
        if self.backend not in ("dense", "bitset", "sparse"):
            raise ValueError(
                f"backend must be 'dense', 'bitset' or 'sparse', "
                f"got {self.backend!r} (resolve 'auto' via resolve_kernel)"
            )

    def node_set(self, trials: int, n: int) -> NodeSetState:
        """A membership set (e.g. a broadcast's informed set)."""
        if self.backend == "bitset":
            return BitsetNodeSet(trials, n)
        return DenseNodeSet(trials, n)

    def knowledge(self, trials: int, n: int) -> KnowledgeState:
        """A gossip rumour-knowledge tensor."""
        if self.backend == "dense":
            return DenseKnowledge(trials, n)
        return BitsetKnowledge(trials, n)

    def quota_frontier(self, trials: int, n: int) -> QuotaFrontier:
        """A per-phase quota frontier (Decay)."""
        if self.backend == "sparse":
            return SparseQuotaFrontier(trials, n)
        return DenseQuotaFrontier(trials, n)

    def budget_frontier(self, trials: int, n: int) -> BudgetFrontier:
        """A per-node transmission-budget frontier (deterministic flooding)."""
        if self.backend == "sparse":
            return SparseBudgetFrontier(trials, n)
        return DenseBudgetFrontier(trials, n)


def resolve_kernel(
    state_backend: str,
    trials: int,
    n: int,
    *,
    profile: str = "plain",
    density: Optional[float] = None,
) -> NodeSetKernel:
    """Resolve a ``state_backend`` knob value into a concrete kernel."""
    if state_backend not in STATE_BACKENDS:
        known = ", ".join(STATE_BACKENDS)
        raise ValueError(
            f"unknown state backend {state_backend!r}; known: {known}"
        )
    requested = state_backend
    if state_backend == "auto":
        state_backend = select_backend(trials, n, profile=profile, density=density)
    if telemetry.enabled():
        telemetry.counter_inc(f"nodesets.backend.{state_backend}")
        if requested == "auto":
            telemetry.counter_inc("nodesets.auto_selected")
    return NodeSetKernel(backend=state_backend)
