"""repro — reproduction of *Energy efficient randomised communication in unknown AdHoc networks*.

Berenbrink, Cooper, Hu (SPAA 2007; Theoretical Computer Science 410 (2009)
2549–2561).

The package is organised as:

* :mod:`repro.radio` — the radio-network simulation substrate (the paper's
  model: directed links, synchronous rounds, collisions, fixed power,
  energy = number of transmissions);
* :mod:`repro.graphs` — topology generators (directed ``G(n, p)``, random
  geometric graphs, the lower-bound constructions, structured families) and
  graph properties;
* :mod:`repro.core` — the paper's algorithms: Algorithm 1 (random-network
  broadcast, ≤1 transmission per node), Algorithm 2 (random-network gossip),
  Algorithm 3 (known-diameter broadcast), the Theorem 4.2 tradeoff family,
  the Fig. 1 distributions, and the time-invariant oblivious class used by
  the lower bounds;
* :mod:`repro.baselines` — the related-work protocols the paper compares
  against (flooding, Decay, Elsässer–Gasieniec, Czumaj–Rytter, random phone
  call);
* :mod:`repro.analysis` — statistics, scaling fits and concentration checks;
* :mod:`repro.experiments` — one module per reproduced theorem/figure
  (E1–E14), a declarative job runner, and result containers;
* :mod:`repro.store` — the content-addressed result store behind resumable
  sweeps (canonical digests, append-only JSONL shards);
* :mod:`repro.jobs` — the job queue the execution plan dispatches through
  (in-process / process-pool backends with retry-on-worker-death);
* :mod:`repro.cli` — the ``repro`` command-line interface.

Quickstart
----------

>>> from repro.graphs import random_digraph
>>> from repro.core import EnergyEfficientBroadcast
>>> from repro.radio import run_protocol
>>> net = random_digraph(512, 0.05, rng=1)
>>> result = run_protocol(net, EnergyEfficientBroadcast(p=0.05), rng=2)
>>> result.completed and result.energy.max_per_node <= 1
True
"""

from repro._version import __version__

__all__ = ["__version__"]
