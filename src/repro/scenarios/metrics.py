"""Named per-trial metric extractors.

A scenario's metric set is a tuple of *names*; this registry maps each name
to a function ``(trace, cell) -> value`` evaluated once per completed trial
as results stream out of the execution pipeline.  Keeping the mapping
name-addressed is what keeps :class:`~repro.scenarios.spec.ScenarioSpec`
serialisable — a grid file references metrics by name and resolves them
here at run time.

Extractor return values feed :class:`~repro.analysis.streaming
.AccumulatorSet.observe`:

* a float (or int) — one observation;
* ``None`` — the metric is undefined for this trial (e.g. the completion
  round of a run that never completed) and contributes nothing;
* a list — several observations from one trial (e.g. per-round growth
  factors).

Experiment modules register claim-specific extractors (prefixed with their
experiment id, ``"e7.relay_tx"``) at import time; the registry rejects
collisions so two modules cannot silently fight over a name.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.radio.trace import RunResultTrace
    from repro.scenarios.spec import SweepCell

__all__ = [
    "register_metric",
    "metric_names",
    "resolve_metrics",
    "extract_sample",
]

MetricFn = Callable[["RunResultTrace", "SweepCell"], object]

_METRICS: Dict[str, MetricFn] = {}


def register_metric(name: str, fn: Optional[MetricFn] = None):
    """Register a metric extractor under ``name`` (usable as a decorator)."""

    def register(target: MetricFn) -> MetricFn:
        existing = _METRICS.get(name)
        if existing is not None and existing is not target:
            raise ValueError(f"metric {name!r} is already registered")
        _METRICS[name] = target
        return target

    return register(fn) if fn is not None else register


def metric_names() -> List[str]:
    """Every registered metric name, sorted."""
    return sorted(_METRICS)


def resolve_metrics(names) -> Dict[str, MetricFn]:
    """The extractors for ``names`` (raises on unknown names)."""
    out: Dict[str, MetricFn] = {}
    for name in names:
        try:
            out[name] = _METRICS[name]
        except KeyError:
            known = ", ".join(metric_names())
            raise ValueError(f"unknown metric {name!r}; registered: {known}")
    return out


def extract_sample(
    extractors: Dict[str, MetricFn], trace: "RunResultTrace", cell: "SweepCell"
) -> Dict[str, object]:
    """One trial's metric mapping (fed to ``AccumulatorSet.observe``)."""
    return {name: fn(trace, cell) for name, fn in extractors.items()}


# --------------------------------------------------------------------------- #
# Built-in metrics: the headline quantities the theorems bound.
# --------------------------------------------------------------------------- #
@register_metric("success")
def _success(trace, cell):
    return float(trace.completed)


@register_metric("completion_round")
def _completion_round(trace, cell):
    return float(trace.completion_round) if trace.completed else None


@register_metric("rounds_executed")
def _rounds_executed(trace, cell):
    return float(trace.rounds_executed)


@register_metric("total_tx")
def _total_tx(trace, cell):
    return float(trace.energy.total_transmissions)


@register_metric("max_tx_per_node")
def _max_tx_per_node(trace, cell):
    return float(trace.energy.max_per_node)


@register_metric("mean_tx_per_node")
def _mean_tx_per_node(trace, cell):
    return float(trace.energy.mean_per_node)


@register_metric("informed_fraction")
def _informed_fraction(trace, cell):
    return float(trace.informed_count or 0) / float(trace.n)


# --------------------------------------------------------------------------- #
# Faulty-world metrics: read the environment report the engines merge into
# trace metadata.  Under a null (or no) environment they are identically 0,
# so they can sit in any metric list without gating on the sweep's axes.
# --------------------------------------------------------------------------- #
@register_metric("recovery_rounds")
def _recovery_rounds(trace, cell):
    """Rounds from the last fault event to completion (None if never done)."""
    if not trace.completed:
        return None
    env = trace.metadata.get("environment")
    if not env:
        return 0.0
    last = int(env.get("last_fault_round", 0))
    if last <= 0:
        return 0.0
    return float(max(0, trace.completion_round - last))


@register_metric("work_wasted")
def _work_wasted(trace, cell):
    """Charged transmissions lost in flight plus deliveries destroyed."""
    env = trace.metadata.get("environment")
    if not env:
        return 0.0
    return float(
        int(env.get("lost_transmissions", 0)) + int(env.get("lost_deliveries", 0))
    )
