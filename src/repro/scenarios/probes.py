"""Named probes: custom per-trial measurements outside the job pipeline.

Most sweep cells compile to :class:`~repro.experiments.runner.ExecutionPlan`
jobs, but several experiments measure things no ``(GraphSpec, ProtocolSpec)``
job can express — the per-round active-set growth of Algorithm 1 (protocol
internals), graph eccentricities (no protocol at all), relay-transmission
counts on the lower-bound gadgets, or the collision-free phone-call
reference model.  Those become **probe cells**: the cell names a probe
registered here plus its parameters, and the probe generates per-trial
metric samples directly.

A probe is a generator ``fn(params, seed, repetitions)`` yielding one
``{metric: value-or-values}`` mapping per trial; the runtime streams each
yielded sample straight into the cell's accumulators, so probe sweeps are
memory-flat exactly like job sweeps.  Probes own their rng derivation (they
reproduce the historical per-experiment seeding, so ported experiments keep
their numbers); determinism in ``(params, seed)`` is part of the contract.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterator, List, Optional

__all__ = ["register_probe", "probe_names", "get_probe"]

ProbeFn = Callable[[Dict[str, object], int, int], Iterator[Dict[str, object]]]

_PROBES: Dict[str, ProbeFn] = {}


def register_probe(name: str, fn: Optional[ProbeFn] = None):
    """Register a probe generator under ``name`` (usable as a decorator)."""

    def register(target: ProbeFn) -> ProbeFn:
        existing = _PROBES.get(name)
        if existing is not None and existing is not target:
            raise ValueError(f"probe {name!r} is already registered")
        _PROBES[name] = target
        return target

    return register(fn) if fn is not None else register


def probe_names() -> List[str]:
    """Every registered probe name, sorted."""
    return sorted(_PROBES)


def get_probe(name: str) -> ProbeFn:
    """Look a probe up by name (raises on unknown names)."""
    try:
        return _PROBES[name]
    except KeyError:
        known = ", ".join(probe_names())
        raise ValueError(f"unknown probe {name!r}; registered: {known}")
