"""Scenario execution: compile cells to plans, stream trials into accumulators.

This is the seam where the declarative layer meets the PR 2–4 execution
stack.  Each **jobs** cell compiles — through
:func:`repro.experiments.runner.build_repetition_plan`, the same seed
spawning ``repeat_job`` uses — to an
:class:`~repro.experiments.runner.ExecutionPlan`, and executes through
:meth:`~repro.experiments.runner.ExecutionPlan.execute_streaming`: every
completed trial is reduced into the cell's
:class:`~repro.analysis.streaming.AccumulatorSet` the moment its shard (or
store lookup) delivers it, and the trace is dropped.  **Probe** cells
generate their per-trial samples directly.  Nothing holds more than one
shard of traces at a time, which is what makes 10⁵⁺-trial sweeps
memory-flat in the trial count.

When a result store is attached the running aggregation is *itself*
checkpointed (per cell, under a content digest of cell + seed + execution
context + metric set — the cell's store-key prefix recipe) into the store's
:class:`~repro.store.AggregateStore`.  A resumed sweep reloads the state,
skips every trial already folded in **without re-reading its trace**, and
continues aggregating the rest.  Exact-mode trials are pure functions of
their job spec, so a resumed aggregation is bit-identical to an
uninterrupted one; fast-mode state is only reusable whole (cohort-wide rng),
so partial fast-mode checkpoints are discarded rather than extended.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro import telemetry
from repro.analysis.statistics import SummaryStatistics
from repro.analysis.streaming import AccumulatorSet
from repro.experiments.runner import _resolve_store, build_repetition_plan
from repro.scenarios.metrics import extract_sample, resolve_metrics
from repro.scenarios.probes import get_probe
from repro.scenarios.spec import ScenarioSpec, SweepCell, SweepGrid
from repro.store import trial_digest

__all__ = [
    "CellResult",
    "run_cell",
    "run_grid",
    "run_scenario",
    "results_table",
]

#: Floor on the default shard size: below this many trials per shard the
#: per-shard fixed overhead (batch assembly, round-loop startup) dominates
#: tiny-n cells.  ``shards`` overrides per call.
DEFAULT_SHARD_TRIALS = 1024

#: Target stacked-state cells (trials x nodes) per shard.  The default shard
#: size adapts to the cell's node count — small-n cells take many more
#: trials per shard (the round loop's Python overhead is paid per shard, not
#: per trial), large-n cells fewer — subject to the floor above and the
#: trial ceiling below.  The budget is deliberately modest: each shard
#: materialises its trials' networks and stacked CSR, so the shard size is
#: exactly what keeps the streaming path's peak memory flat in R (the
#: aggregation bench pins the sweep-attributable RSS at a fraction of the
#: materialised path's) while still amortising the per-shard fixed costs.
SHARD_CELL_BUDGET = 1 << 16

#: Hard ceiling on the default trials-per-shard, whatever the node count —
#: bounds peak memory and the resume-checkpoint granularity for tiny-n cells.
MAX_SHARD_TRIALS = 4096

#: Checkpoint the running aggregation every this many freshly consumed
#: trials (plus once at the end of every cell).
_CHECKPOINT_EVERY = 64

#: Without a store there is no checkpoint boundary forcing ingest flushes,
#: so buffered samples are folded into the accumulators in chunks of this
#: size (vectorised ``observe_many``) instead of one ``observe`` per trial.
_INGEST_BUFFER_TRIALS = 256

#: Emit a telemetry ``progress`` event every this many consumed trials
#: (served or executed) — the live progress reporter's heartbeat.
_PROGRESS_EVERY = 256


def _shard_trials_for(n: object) -> int:
    """The default trials-per-shard for a cell of ``n``-node graphs.

    When the budget-derived size is clamped (the floor for large ``n``,
    the ceiling for tiny ``n``) a ``scenario.shard_size`` selection event
    records the decision — silent capping would otherwise be invisible
    exactly where it matters (a large-``n`` cell quietly running shards
    far above its stacked-cell budget).
    """
    if not isinstance(n, int) or n < 1:
        return DEFAULT_SHARD_TRIALS
    budget = SHARD_CELL_BUDGET // n
    size = min(MAX_SHARD_TRIALS, max(DEFAULT_SHARD_TRIALS, budget))
    if size != budget and telemetry.enabled():
        telemetry.event(
            "scenario.shard_size",
            n=n,
            chosen=size,
            budget_trials=budget,
            cell_budget=SHARD_CELL_BUDGET,
            reason="floor" if budget < DEFAULT_SHARD_TRIALS else "ceiling",
        )
    return size


@dataclass
class CellResult:
    """One cell's reduced outcome: its accumulators plus execution counters."""

    cell: SweepCell
    accumulators: AccumulatorSet
    counts: Dict[str, int] = field(default_factory=dict)
    aggregation_key: Optional[str] = None

    # ------------------------------------------------------------------ #
    @property
    def coords(self) -> Dict[str, object]:
        return self.cell.coords

    @property
    def trials(self) -> int:
        return self.accumulators.trials

    def summary(self, name: str) -> Optional[SummaryStatistics]:
        return self.accumulators.summary_or_none(name)

    def mean(self, name: str) -> Optional[float]:
        return self.accumulators.mean(name)

    def maximum(self, name: str) -> Optional[float]:
        accumulator = self.accumulators.metrics.get(name)
        if accumulator is None or accumulator.count == 0:
            return None
        return accumulator.maximum

    def minimum(self, name: str) -> Optional[float]:
        accumulator = self.accumulators.metrics.get(name)
        if accumulator is None or accumulator.count == 0:
            return None
        return accumulator.minimum

    def count(self, name: str) -> int:
        accumulator = self.accumulators.metrics.get(name)
        return accumulator.count if accumulator is not None else 0

    @property
    def success_rate(self) -> Optional[float]:
        return self.mean("success")


# --------------------------------------------------------------------------- #
# Aggregation checkpoints
# --------------------------------------------------------------------------- #
def _aggregation_key(
    cell: SweepCell,
    seed: int,
    context: Dict[str, object],
    metrics,
    sketch_capacity: int,
) -> str:
    """The content digest a cell's running aggregation is checkpointed
    under — the same recipe as the per-trial store keys, so the aggregate
    state lives under the cell's key prefix in content-address space.

    ``sketch_capacity`` is part of the digest because it changes the
    reduction's *fidelity*: resuming a 1024-centroid checkpoint into a
    sweep that asked for 65536-centroid quantiles would silently keep the
    coarser (possibly already lossy) sketch.
    """
    return trial_digest(
        {
            "aggregation": {
                "cell": cell.as_dict(),
                "seed": seed,
                "context": dict(context),
                "metrics": sorted(metrics),
                "sketch_capacity": sketch_capacity,
            }
        }
    )


def _mask_to_indices(mask_hex: str, total: int) -> List[int]:
    mask = int(mask_hex, 16) if mask_hex else 0
    return [i for i in range(total) if mask >> i & 1]


def _indices_to_mask(indices) -> str:
    mask = 0
    for index in indices:
        mask |= 1 << index
    return format(mask, "x")


def _load_checkpoint(
    store, key: str, metric_names, total_trials: int
):
    """A compatible ``(AccumulatorSet, done_indices)`` checkpoint, if any."""
    if store is None:
        return None
    state = store.aggregates.load(key)
    if state is None:
        return None
    if sorted(state.get("metrics", [])) != sorted(metric_names):
        return None
    if int(state.get("trials_total", -1)) != total_trials:
        return None
    done = _mask_to_indices(state.get("done_mask", "0"), total_trials)
    accumulators = AccumulatorSet.from_state(state.get("accumulators", {}))
    if accumulators.trials != len(done):
        return None
    return accumulators, done


def _save_checkpoint(
    store,
    key: str,
    *,
    cell: SweepCell,
    seed: int,
    metric_names,
    total_trials: int,
    done_indices,
    accumulators: AccumulatorSet,
) -> None:
    store.aggregates.save(
        key,
        {
            "cell": cell.as_dict(),
            "seed": seed,
            "metrics": sorted(metric_names),
            "trials_total": total_trials,
            "done_mask": _indices_to_mask(done_indices),
            "accumulators": accumulators.state_dict(),
        },
    )


# --------------------------------------------------------------------------- #
# Cell execution
# --------------------------------------------------------------------------- #
def run_cell(cell: SweepCell, **options) -> CellResult:
    """Execute one sweep cell, streaming its trials into fresh accumulators.

    ``store`` follows :func:`~repro.experiments.runner.repeat_job`'s
    convention (``None``: process-wide default, ``False``: disabled, or an
    explicit store/path); with a store attached, both the per-trial results
    *and* the running aggregation are checkpointed, and a rerun resumes the
    aggregation without re-reading stored traces.

    With telemetry enabled the cell runs under a ``cell`` span (named by
    the cell label, annotated with the execution counters on exit) and
    emits a ``progress`` event every :data:`_PROGRESS_EVERY` consumed
    trials — see :func:`_run_cell_impl` for the keyword options.
    """
    if not telemetry.enabled():
        return _run_cell_impl(cell, **options)
    with telemetry.span(
        "cell", cell.label(), kind=cell.kind, trials=cell.repetitions
    ) as cell_span:
        result = _run_cell_impl(cell, **options)
        cell_span.annotate(**result.counts)
        return result


def _run_cell_impl(
    cell: SweepCell,
    *,
    seed: int = 0,
    metrics=(),
    processes: Optional[int] = None,
    store=None,
    batch=None,
    batch_mode: Optional[str] = None,
    state_backend: Optional[str] = None,
    kernel: Optional[str] = None,
    shards: Optional[int] = None,
    compaction: Optional[str] = None,
    watermark: Optional[float] = None,
    sketch_capacity: int = 1024,
) -> CellResult:
    metric_names = tuple(cell.metrics if cell.metrics is not None else metrics)
    if not metric_names:
        raise ValueError(f"cell {cell.label()} has an empty metric set")
    cell_seed = cell.seed if cell.seed is not None else seed
    accumulators = AccumulatorSet(metric_names, sketch_capacity=sketch_capacity)

    if cell.kind == "probe":
        # Probe metric names are the keys of the samples the probe yields —
        # they need no registered trace extractor.
        return _run_probe_cell(
            cell,
            accumulators,
            seed=cell_seed,
            metric_names=metric_names,
            store=_resolve_store(store),
            sketch_capacity=sketch_capacity,
        )
    extractors = resolve_metrics(metric_names)

    if shards is None:
        per_shard = _shard_trials_for(cell.graph.params.get("n"))
        if cell.repetitions > per_shard:
            shards = -(-cell.repetitions // per_shard)
    plan = build_repetition_plan(
        cell.graph,
        cell.protocol,
        repetitions=cell.repetitions,
        seed=cell_seed,
        processes=processes,
        batch=batch,
        batch_mode=batch_mode,
        state_backend=state_backend,
        kernel=kernel,
        store=store,
        shards=shards,
        compaction=compaction,
        watermark=watermark,
        **cell.job_options,
    )
    context = plan.cache_context()
    key = _aggregation_key(cell, cell_seed, context, metric_names, sketch_capacity)
    done: List[int] = []
    checkpoint = _load_checkpoint(plan.store, key, metric_names, len(plan.jobs))
    if checkpoint is not None:
        restored, restored_done = checkpoint
        partial = len(restored_done) < len(plan.jobs)
        if partial and context.get("batch_mode") == "fast":
            # Cohort-wide draws: a partial fast-mode aggregation cannot be
            # extended bit-faithfully, so start the reduction over.
            pass
        else:
            accumulators = restored
            done = restored_done

    done_set = set(done)
    fresh = 0
    # Samples are buffered and folded in chunks (``observe_many`` — bit
    # identical to per-sample ``observe``, see the streaming layer's
    # contract) so the per-trial Python cost of the reduction is one dict
    # append, not a full accumulator update.
    buffered: List[Dict[str, object]] = []
    tel = telemetry.enabled()
    total_trials = len(plan.jobs)
    primary_metric = metric_names[0]

    def flush() -> None:
        if buffered:
            accumulators.observe_many(buffered)
            buffered.clear()

    def emit_progress() -> None:
        # Flush first so the reported running mean/CI reflects every
        # consumed trial (the buffer is an ingest optimisation, not part
        # of the reduction's semantics).
        flush()
        attrs: Dict[str, object] = {
            "completed": len(done_set),
            "total": total_trials,
        }
        store_obj = plan.store
        if store_obj is not None and (store_obj.hits or store_obj.misses):
            attrs["cache_hit_ratio"] = store_obj.hits / (
                store_obj.hits + store_obj.misses
            )
        summary = accumulators.metrics[primary_metric].summary_or_none()
        if summary is not None:
            attrs["metric"] = primary_metric
            attrs["mean"] = summary.mean
            attrs["ci_width"] = summary.ci_high - summary.ci_low
        telemetry.event("progress", **attrs)

    def consume(index: int, trace) -> None:
        nonlocal fresh
        buffered.append(extract_sample(extractors, trace, cell))
        done_set.add(index)
        fresh += 1
        if tel and len(done_set) % _PROGRESS_EVERY == 0:
            emit_progress()
        if plan.store is not None:
            if fresh % _CHECKPOINT_EVERY == 0:
                # Flush before checkpointing: the saved done-mask must never
                # claim trials the accumulators have not folded in yet.
                flush()
                _save_checkpoint(
                    plan.store,
                    key,
                    cell=cell,
                    seed=cell_seed,
                    metric_names=metric_names,
                    total_trials=len(plan.jobs),
                    done_indices=done_set,
                    accumulators=accumulators,
                )
        elif len(buffered) >= _INGEST_BUFFER_TRIALS:
            flush()

    counts = plan.execute_streaming(consume, skip_indices=done)
    flush()
    if plan.store is not None and fresh:
        _save_checkpoint(
            plan.store,
            key,
            cell=cell,
            seed=cell_seed,
            metric_names=metric_names,
            total_trials=len(plan.jobs),
            done_indices=done_set,
            accumulators=accumulators,
        )
    return CellResult(
        cell=cell, accumulators=accumulators, counts=counts, aggregation_key=key
    )


def _run_probe_cell(
    cell: SweepCell,
    accumulators: AccumulatorSet,
    *,
    seed: int,
    metric_names,
    store,
    sketch_capacity: int,
) -> CellResult:
    """Run a probe cell, streaming each yielded sample into the reduction.

    Probe trials are not individually content-addressed, so the aggregation
    checkpoint is reused only when it covers the *whole* cell (a completed
    earlier run, flagged ``probe_completed``); anything partial recomputes
    from scratch.  A probe may legitimately discard repetitions (e.g.
    disconnected graph samples), so the observed-trial count can be below
    ``cell.repetitions`` in a complete checkpoint.
    """
    key = _aggregation_key(
        cell, seed, {"kind": "probe"}, metric_names, sketch_capacity
    )
    if store is not None:
        state = store.aggregates.load(key)
        if (
            state is not None
            and state.get("probe_completed")
            and sorted(state.get("metrics", [])) == sorted(metric_names)
            and int(state.get("trials_total", -1)) == cell.repetitions
        ):
            counts = {
                "total": cell.repetitions,
                "skipped": cell.repetitions,
                "served": 0,
                "executed": 0,
            }
            return CellResult(
                cell=cell,
                accumulators=AccumulatorSet.from_state(
                    state.get("accumulators", {})
                ),
                counts=counts,
                aggregation_key=key,
            )
    probe = get_probe(cell.probe)
    executed = 0
    for sample in probe(dict(cell.params), seed, cell.repetitions):
        accumulators.observe(sample)
        executed += 1
    if store is not None:
        store.aggregates.save(
            key,
            {
                "cell": cell.as_dict(),
                "seed": seed,
                "metrics": sorted(metric_names),
                "trials_total": cell.repetitions,
                "probe_completed": True,
                "accumulators": accumulators.state_dict(),
            },
        )
    # ``total`` is the *requested* repetition count on both the cold and the
    # cached path; a probe that discards samples shows executed < total.
    counts = {
        "total": cell.repetitions,
        "skipped": 0,
        "served": 0,
        "executed": executed,
    }
    return CellResult(
        cell=cell, accumulators=accumulators, counts=counts, aggregation_key=key
    )


# --------------------------------------------------------------------------- #
# Grid / scenario execution
# --------------------------------------------------------------------------- #
def run_grid(
    grid: SweepGrid,
    *,
    seed: int = 0,
    metrics=(),
    processes: Optional[int] = None,
    store=None,
    batch=None,
    batch_mode: Optional[str] = None,
    state_backend: Optional[str] = None,
    kernel: Optional[str] = None,
    shards: Optional[int] = None,
    compaction: Optional[str] = None,
    watermark: Optional[float] = None,
    sketch_capacity: int = 1024,
    telemetry_label: Optional[str] = None,
) -> List[CellResult]:
    """Execute every cell of ``grid`` in order (streaming reduction each).

    With telemetry enabled the whole grid runs under one ``sweep`` span
    (named ``telemetry_label`` or the grid's content digest) so per-cell
    and per-shard spans nest under it in the trace.
    """
    cells = list(grid)

    def run_all() -> List[CellResult]:
        return [
            run_cell(
                cell,
                seed=seed,
                metrics=metrics,
                processes=processes,
                store=store,
                batch=batch,
                batch_mode=batch_mode,
                state_backend=state_backend,
                kernel=kernel,
                shards=shards,
                compaction=compaction,
                watermark=watermark,
                sketch_capacity=sketch_capacity,
            )
            for cell in cells
        ]

    if not telemetry.enabled():
        return run_all()
    with telemetry.span(
        "sweep",
        telemetry_label or f"grid:{grid.digest()[:12]}",
        cells=len(cells),
        trials=grid.total_trials,
    ):
        return run_all()


#: The per-metric statistics columns shared by every accumulator table
#: (``repro sweep --grid`` and ``repro report --accumulators``).
METRIC_SUMMARY_COLUMNS = ["metric", "count", "mean", "std", "min", "median", "max"]


def metric_summary_rows(prefix, accumulators: AccumulatorSet, *, sort=False):
    """One row per metric of ``accumulators``: ``prefix`` cells followed by
    the :data:`METRIC_SUMMARY_COLUMNS` statistics (``None``-padded for
    metrics that never observed a value)."""
    names = sorted(accumulators.metrics) if sort else list(accumulators.metrics)
    rows = []
    for name in names:
        summary = accumulators.metrics[name].summary_or_none()
        if summary is None:
            rows.append(list(prefix) + [name, 0] + [None] * 5)
            continue
        rows.append(
            list(prefix)
            + [
                name,
                summary.count,
                summary.mean,
                summary.std,
                summary.minimum,
                summary.median,
                summary.maximum,
            ]
        )
    return rows


def results_table(results) -> tuple:
    """A generic ``(columns, rows)`` summary of cell results — one row per
    (cell, metric) with the accumulator's reduced statistics.  This is what
    ``repro sweep --grid`` prints for ad-hoc grids, which have no
    experiment-specific derived columns."""
    columns = ["cell", "trials"] + METRIC_SUMMARY_COLUMNS
    rows = []
    for result in results:
        rows.extend(
            metric_summary_rows(
                [result.cell.label(), result.trials], result.accumulators
            )
        )
    return columns, rows


def run_scenario(
    spec: ScenarioSpec,
    *,
    processes: Optional[int] = None,
    store=None,
    batch=None,
    batch_mode: Optional[str] = None,
    state_backend: Optional[str] = None,
    kernel: Optional[str] = None,
    shards: Optional[int] = None,
    compaction: Optional[str] = None,
    watermark: Optional[float] = None,
    sketch_capacity: int = 1024,
) -> List[CellResult]:
    """Execute a scenario: its grid, under its seed and metric set.

    Execution knobs left at ``None`` fall back to the process-wide defaults
    (:func:`~repro.experiments.runner.configure_execution`), exactly like
    ``repeat_job`` — so the CLI's ``--batch-mode`` / ``--state-backend`` /
    ``--kernel`` / cache flags govern scenario sweeps too.
    """
    return run_grid(
        spec.grid,
        seed=spec.seed,
        metrics=spec.metrics,
        processes=processes,
        store=store,
        batch=batch,
        batch_mode=batch_mode,
        state_backend=state_backend,
        kernel=kernel,
        shards=shards,
        compaction=compaction,
        watermark=watermark,
        sketch_capacity=sketch_capacity,
        telemetry_label=spec.scenario_id,
    )
