"""Declarative scenario specifications: sweeps as data.

Every experiment in this repository is, at heart, a *grid* — graph family ×
protocol × size/regime axes × repetitions × metric set — plus a little
claim-specific arithmetic on the aggregates.  This module gives the grid a
first-class, serialisable, content-addressable representation:

* :class:`SweepCell` — one cell of the grid: either a **jobs** cell (a
  ``(GraphSpec, ProtocolSpec, repetitions)`` repetition sweep that compiles
  to an :class:`~repro.experiments.runner.ExecutionPlan`) or a **probe**
  cell (a registered custom per-trial measurement, for workloads the job
  pipeline cannot express — phase-growth tracing, graph-property sampling,
  collision-free reference models);
* :class:`SweepGrid` — an ordered tuple of cells, buildable from named axes
  (:meth:`SweepGrid.from_axes`) and round-trippable through JSON;
* :class:`ScenarioSpec` — a grid plus identity (id/title/claim), the metric
  set to accumulate, and the sweep seed.

Specs are *pure data*: the same spec digests to the same address
(:meth:`ScenarioSpec.digest`), can be written to disk, shipped to another
machine, or fed to ``repro sweep --grid``.  Execution lives in
:mod:`repro.scenarios.runtime`.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.graphs.builders import GraphSpec
from repro.experiments.protocols import ProtocolSpec
from repro.store.keys import canonical_dumps

__all__ = ["SweepCell", "SweepGrid", "ScenarioSpec"]


#: Engine options a jobs cell may carry (forwarded to Job construction).
_JOB_OPTION_KEYS = frozenset(
    {
        "run_to_quiescence",
        "record_rounds",
        "keep_arrays",
        "max_rounds",
        "collision_model",
        "erasure_probability",
        "environment",
    }
)


@dataclass(frozen=True)
class SweepCell:
    """One cell of a sweep grid.

    Attributes
    ----------
    coords:
        The cell's position on the grid axes (``{"n": 512, "regime":
        "threshold"}``) — display/derivation metadata, free-form but
        JSON-serialisable.
    kind:
        ``"jobs"`` (repetition sweep through the execution pipeline) or
        ``"probe"`` (registered custom measurement).
    graph / protocol / repetitions / job_options:
        The jobs-cell payload; ``job_options`` are engine options
        (``run_to_quiescence``, ``erasure_probability``, …).
    probe / params:
        The probe-cell payload: a name registered with
        :func:`repro.scenarios.probes.register_probe` plus its parameters.
    seed:
        Optional per-cell seed override (default: the scenario's seed).
    metrics:
        Optional per-cell metric-set override (default: the scenario's).
    """

    coords: Dict[str, object] = field(default_factory=dict)
    kind: str = "jobs"
    graph: Optional[GraphSpec] = None
    protocol: Optional[ProtocolSpec] = None
    repetitions: int = 1
    job_options: Dict[str, object] = field(default_factory=dict)
    probe: Optional[str] = None
    params: Dict[str, object] = field(default_factory=dict)
    seed: Optional[int] = None
    metrics: Optional[Tuple[str, ...]] = None

    def __post_init__(self) -> None:
        if self.kind not in ("jobs", "probe"):
            raise ValueError(f"cell kind must be 'jobs' or 'probe', got {self.kind!r}")
        if self.kind == "jobs":
            if self.graph is None or self.protocol is None:
                raise ValueError("a jobs cell needs both a graph and a protocol spec")
            if self.repetitions < 1:
                raise ValueError(
                    f"repetitions must be >= 1, got {self.repetitions}"
                )
            unknown = set(self.job_options) - _JOB_OPTION_KEYS
            if unknown:
                known = ", ".join(sorted(_JOB_OPTION_KEYS))
                raise ValueError(
                    f"unknown job options {sorted(unknown)}; known: {known}"
                )
        else:
            if not self.probe:
                raise ValueError("a probe cell needs a registered probe name")
        if self.metrics is not None:
            object.__setattr__(self, "metrics", tuple(self.metrics))

    def label(self) -> str:
        """Readable one-line cell description (coords, else specs)."""
        if self.coords:
            inner = ", ".join(f"{k}={v}" for k, v in self.coords.items())
            return f"[{inner}]"
        if self.kind == "jobs":
            return f"[{self.graph.describe()} × {self.protocol.describe()}]"
        return f"[probe {self.probe}]"

    # ------------------------------------------------------------------ #
    def as_dict(self) -> Dict[str, object]:
        out: Dict[str, object] = {"coords": dict(self.coords), "kind": self.kind}
        if self.kind == "jobs":
            out["graph"] = self.graph.as_dict()
            out["protocol"] = self.protocol.as_dict()
            out["repetitions"] = self.repetitions
            if self.job_options:
                out["job_options"] = dict(self.job_options)
        else:
            out["probe"] = self.probe
            out["repetitions"] = self.repetitions
            if self.params:
                out["params"] = dict(self.params)
        if self.seed is not None:
            out["seed"] = self.seed
        if self.metrics is not None:
            out["metrics"] = list(self.metrics)
        return out

    @classmethod
    def from_dict(cls, payload: Dict[str, object]) -> "SweepCell":
        kind = payload.get("kind", "jobs")
        metrics = payload.get("metrics")
        return cls(
            coords=dict(payload.get("coords", {})),
            kind=kind,
            graph=(
                GraphSpec.from_dict(payload["graph"])
                if payload.get("graph") is not None
                else None
            ),
            protocol=(
                ProtocolSpec.from_dict(payload["protocol"])
                if payload.get("protocol") is not None
                else None
            ),
            repetitions=int(payload.get("repetitions", 1)),
            job_options=dict(payload.get("job_options", {})),
            probe=payload.get("probe"),
            params=dict(payload.get("params", {})),
            seed=payload.get("seed"),
            metrics=tuple(metrics) if metrics is not None else None,
        )


@dataclass(frozen=True)
class SweepGrid:
    """An ordered collection of sweep cells (the expanded grid)."""

    cells: Tuple[SweepCell, ...]

    def __post_init__(self) -> None:
        object.__setattr__(self, "cells", tuple(self.cells))
        if not self.cells:
            raise ValueError("a sweep grid needs at least one cell")

    def __len__(self) -> int:
        return len(self.cells)

    def __iter__(self):
        return iter(self.cells)

    @property
    def total_trials(self) -> int:
        return sum(cell.repetitions for cell in self.cells)

    # ------------------------------------------------------------------ #
    @classmethod
    def from_axes(
        cls,
        axes: Dict[str, Sequence[object]],
        bind: Callable[[Dict[str, object]], object],
    ) -> "SweepGrid":
        """Expand named axes into a grid.

        ``bind`` receives each coordinate assignment (the cartesian product
        of the axes, outermost axis first) and returns the
        :class:`SweepCell` for it, a list of cells, or ``None`` to skip the
        coordinate.  ``bind`` is a *build-time* convenience — the expanded
        grid is pure data and is what serialises.
        """
        assignments: List[Dict[str, object]] = [{}]
        for name, values in axes.items():
            assignments = [
                {**assignment, name: value}
                for assignment in assignments
                for value in values
            ]
        cells: List[SweepCell] = []
        for coords in assignments:
            bound = bind(dict(coords))
            if bound is None:
                continue
            if isinstance(bound, SweepCell):
                cells.append(bound)
            else:
                cells.extend(bound)
        return cls(cells=tuple(cells))

    # ------------------------------------------------------------------ #
    def as_dict(self) -> Dict[str, object]:
        return {"cells": [cell.as_dict() for cell in self.cells]}

    @classmethod
    def from_dict(cls, payload: Dict[str, object]) -> "SweepGrid":
        return cls(
            cells=tuple(
                SweepCell.from_dict(cell) for cell in payload.get("cells", [])
            )
        )

    def digest(self) -> str:
        """Content address of the grid (order-sensitive, version-free)."""
        return hashlib.sha256(
            canonical_dumps(self.as_dict()).encode("utf-8")
        ).hexdigest()


@dataclass(frozen=True)
class ScenarioSpec:
    """A named, claim-carrying sweep: the declarative form of an experiment.

    ``metrics`` is the default per-trial metric set accumulated for every
    cell (names registered in :mod:`repro.scenarios.metrics`); individual
    cells may override it.  ``parameters`` is display metadata (scale,
    sizes, …) recorded into results but excluded from the digest — two
    scenarios that run the same trials share an address regardless of how
    they were labelled.
    """

    scenario_id: str
    grid: SweepGrid
    metrics: Tuple[str, ...] = ()
    seed: int = 0
    title: str = ""
    claim: str = ""
    parameters: Dict[str, object] = field(default_factory=dict)

    def __post_init__(self) -> None:
        object.__setattr__(self, "metrics", tuple(self.metrics))
        if not self.scenario_id:
            raise ValueError("scenario_id must be non-empty")

    # ------------------------------------------------------------------ #
    def as_dict(self) -> Dict[str, object]:
        return {
            "scenario_id": self.scenario_id,
            "title": self.title,
            "claim": self.claim,
            "seed": self.seed,
            "metrics": list(self.metrics),
            "grid": self.grid.as_dict(),
            "parameters": dict(self.parameters),
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, object]) -> "ScenarioSpec":
        return cls(
            scenario_id=str(payload["scenario_id"]),
            grid=SweepGrid.from_dict(payload["grid"]),
            metrics=tuple(payload.get("metrics", ())),
            seed=int(payload.get("seed", 0)),
            title=str(payload.get("title", "")),
            claim=str(payload.get("claim", "")),
            parameters=dict(payload.get("parameters", {})),
        )

    def digest(self) -> str:
        """Content address over the functional parts (grid, metrics, seed)."""
        body = {
            "grid": self.grid.as_dict(),
            "metrics": list(self.metrics),
            "seed": self.seed,
        }
        return hashlib.sha256(canonical_dumps(body).encode("utf-8")).hexdigest()
