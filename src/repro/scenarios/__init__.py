"""Declarative scenario layer: experiments as sweep grids, not loops.

A scenario is data — a :class:`~repro.scenarios.spec.SweepGrid` of cells
(graph family × protocol × size/regime axes × repetitions) plus a metric
set and a seed, bundled in a :class:`~repro.scenarios.spec.ScenarioSpec`.
The runtime compiles each cell onto the execution stack
(:class:`~repro.experiments.runner.ExecutionPlan`, result store, job queue)
and reduces per-trial results **streamingly** into
:class:`~repro.analysis.streaming.MetricAccumulator`\\ s as shards complete,
so a sweep's memory footprint is flat in its trial count.

The seventeen experiment modules each expose their workload as a
``scenario(scale, seed)`` spec and keep only their claim-specific derived
columns; new workloads are new grids, not new code — serialise a spec with
``ScenarioSpec.as_dict()`` and run it with ``repro sweep --grid``.
"""

from repro.scenarios.metrics import metric_names, register_metric
from repro.scenarios.probes import probe_names, register_probe
from repro.scenarios.runtime import CellResult, run_cell, run_grid, run_scenario
from repro.scenarios.spec import ScenarioSpec, SweepCell, SweepGrid

__all__ = [
    "ScenarioSpec",
    "SweepCell",
    "SweepGrid",
    "CellResult",
    "run_cell",
    "run_grid",
    "run_scenario",
    "register_metric",
    "register_probe",
    "metric_names",
    "probe_names",
]
