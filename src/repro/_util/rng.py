"""Reproducible random number generation helpers.

Every stochastic component in this package accepts either a seed (``int``),
an existing :class:`numpy.random.Generator`, or ``None`` (fresh OS entropy).
Experiments that repeat a protocol many times use :func:`spawn_generators`
(or an :class:`RngFactory`) so each repetition gets an *independent* stream
derived from a single root seed — repetition ``i`` always sees the same
stream regardless of how the repetitions are scheduled across processes.
"""

from __future__ import annotations

from typing import Iterator, List, Optional, Sequence, Union

import numpy as np

SeedLike = Union[None, int, np.random.Generator, np.random.SeedSequence]

__all__ = ["SeedLike", "as_generator", "spawn_generators", "RngFactory"]


def as_generator(seed: SeedLike = None) -> np.random.Generator:
    """Coerce ``seed`` into a :class:`numpy.random.Generator`.

    Parameters
    ----------
    seed:
        ``None`` (fresh entropy), an integer seed, a ``SeedSequence``, or an
        existing ``Generator`` (returned unchanged).

    Returns
    -------
    numpy.random.Generator
    """
    if isinstance(seed, np.random.Generator):
        return seed
    if isinstance(seed, np.random.SeedSequence):
        return np.random.default_rng(seed)
    if seed is None:
        return np.random.default_rng()
    if isinstance(seed, (int, np.integer)):
        if seed < 0:
            raise ValueError(f"seed must be non-negative, got {seed}")
        return np.random.default_rng(int(seed))
    raise TypeError(
        "seed must be None, an int, a numpy SeedSequence or a numpy Generator; "
        f"got {type(seed).__name__}"
    )


def spawn_generators(seed: SeedLike, count: int) -> List[np.random.Generator]:
    """Create ``count`` independent generators derived from ``seed``.

    Uses :class:`numpy.random.SeedSequence` spawning, so streams are
    statistically independent and stable: generator ``i`` is a pure function
    of ``(seed, i)``.
    """
    if count < 0:
        raise ValueError(f"count must be non-negative, got {count}")
    if isinstance(seed, np.random.Generator):
        # A Generator has no stable spawn key accessible pre-1.25 everywhere;
        # derive children by drawing integer seeds from it.
        child_seeds = seed.integers(0, 2**63 - 1, size=count)
        return [np.random.default_rng(int(s)) for s in child_seeds]
    if isinstance(seed, np.random.SeedSequence):
        root = seed
    else:
        root = np.random.SeedSequence(seed if seed is not None else None)
    return [np.random.default_rng(child) for child in root.spawn(count)]


class RngFactory:
    """A reproducible factory of independent random generators.

    ``RngFactory(seed)[i]`` is deterministic in ``(seed, i)`` — the factory is
    safe to share (conceptually) across worker processes because each worker
    only ever asks for its own index.

    Examples
    --------
    >>> factory = RngFactory(1234)
    >>> a = factory[0].integers(0, 100, 5)
    >>> b = RngFactory(1234)[0].integers(0, 100, 5)
    >>> bool((a == b).all())
    True
    """

    def __init__(self, seed: SeedLike = None):
        if isinstance(seed, np.random.Generator):
            # Freeze a root seed drawn once from the provided generator so the
            # factory itself is deterministic afterwards.
            seed = int(seed.integers(0, 2**63 - 1))
        if isinstance(seed, np.random.SeedSequence):
            self._root = seed
        else:
            self._root = np.random.SeedSequence(seed)
        self._seed = seed

    def __getitem__(self, index: int) -> np.random.Generator:
        if index < 0:
            raise IndexError("RngFactory index must be non-negative")
        child = np.random.SeedSequence(
            entropy=self._root.entropy, spawn_key=(index,)
        )
        return np.random.default_rng(child)

    def generators(self, count: int) -> List[np.random.Generator]:
        """Return the first ``count`` generators."""
        return [self[i] for i in range(count)]

    def __iter__(self) -> Iterator[np.random.Generator]:  # pragma: no cover - trivial
        i = 0
        while True:
            yield self[i]
            i += 1

    def __repr__(self) -> str:
        return f"RngFactory(entropy={self._root.entropy!r})"


def integer_seeds(seed: SeedLike, count: int) -> List[int]:
    """Derive ``count`` plain integer seeds from ``seed``.

    Useful when seeds must cross a process boundary as picklable integers.
    """
    gens = spawn_generators(seed, count)
    return [int(g.integers(0, 2**63 - 1)) for g in gens]
