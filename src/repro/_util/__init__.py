"""Internal utilities shared across the :mod:`repro` package.

The helpers here are intentionally small and dependency-free (NumPy only):

* :mod:`repro._util.rng` — reproducible random-number-generator management
  (seed spawning for independent repetitions and worker processes).
* :mod:`repro._util.validation` — argument checking with consistent error
  messages.
* :mod:`repro._util.logmath` — the small pieces of "paper arithmetic"
  (``log n``, ``log d``, ``T = floor(log n / log d)`` …) used by several
  protocols, kept in one place so every algorithm parameterises itself the
  same way the paper does.
"""

from repro._util.logmath import (
    ceil_log_ratio,
    floor_log_ratio,
    ilog2,
    log2_safe,
    phase1_round_count,
)
from repro._util.rng import RngFactory, as_generator, spawn_generators
from repro._util.validation import (
    check_in_range,
    check_positive,
    check_positive_int,
    check_probability,
)

__all__ = [
    "RngFactory",
    "as_generator",
    "spawn_generators",
    "check_in_range",
    "check_positive",
    "check_positive_int",
    "check_probability",
    "ceil_log_ratio",
    "floor_log_ratio",
    "ilog2",
    "log2_safe",
    "phase1_round_count",
]
