"""The paper's logarithm arithmetic in one place.

Throughout Berenbrink–Cooper–Hu the protocols are parameterised by quantities
such as ``T = floor(log n / log d)`` (Phase-1 length of Algorithm 1),
``lambda = log(n / D)`` (Algorithm 3 / the tradeoff family), and
``ceil(log n / log d)`` (diameter of G(n, p), Lemma 3.1).  All logarithms in
the paper are base 2 unless stated otherwise; this module keeps those
conventions and the guard rails (what happens when ``d <= 1`` or ``D >= n``)
in one audited location so every protocol and experiment agrees.
"""

from __future__ import annotations

import math

__all__ = [
    "log2_safe",
    "ilog2",
    "floor_log_ratio",
    "ceil_log_ratio",
    "phase1_round_count",
    "lambda_of",
    "expected_degree",
]


def log2_safe(x: float, *, minimum: float = 1.0) -> float:
    """``log2(max(x, minimum))`` — the paper always treats log factors as >= 0.

    ``minimum`` defaults to 1 so that ``log2_safe(x) >= 0`` for every input,
    matching the convention that e.g. ``log(n/D)`` is taken as at least a
    constant when ``D`` approaches ``n``.
    """
    if x != x:  # NaN
        raise ValueError("log2_safe received NaN")
    return math.log2(max(x, minimum))


def ilog2(n: int) -> int:
    """``floor(log2 n)`` for a positive integer ``n``."""
    if n < 1:
        raise ValueError(f"ilog2 requires n >= 1, got {n}")
    return int(n).bit_length() - 1


def floor_log_ratio(n: float, d: float) -> int:
    """``floor(log n / log d)`` with the paper's conventions.

    Used for ``T``, the number of Phase-1 rounds of Algorithm 1
    (``T = floor(log n / log d)``).  For ``d <= 2`` the ratio is capped at
    ``log2 n`` (a graph with expected degree <= 2 cannot have more than
    ~log n doubling rounds, and the paper's regime ``p > delta log n / n``
    implies ``d > delta log n`` anyway).
    """
    if n <= 1:
        return 0
    log_n = math.log2(n)
    log_d = math.log2(d) if d > 1 else 0.0
    if log_d <= 0:
        return int(math.floor(log_n))
    return max(0, int(math.floor(log_n / log_d)))


def ceil_log_ratio(n: float, d: float) -> int:
    """``ceil(log n / log d)`` — the w.h.p. diameter of G(n, p) (Lemma 3.1)."""
    if n <= 1:
        return 0
    log_n = math.log2(n)
    log_d = math.log2(d) if d > 1 else 0.0
    if log_d <= 0:
        return int(math.ceil(log_n))
    return max(1, int(math.ceil(log_n / log_d)))


def phase1_round_count(n: int, p: float) -> int:
    """``T = floor(log n / log d)`` with ``d = n * p`` (Algorithm 1, Phase 1)."""
    if n < 1:
        raise ValueError(f"n must be >= 1, got {n}")
    if not 0.0 < p <= 1.0:
        raise ValueError(f"p must lie in (0, 1], got {p}")
    d = n * p
    return floor_log_ratio(n, d)


def lambda_of(n: int, diameter: int) -> float:
    """``lambda = log(n / D)`` clamped to be >= 1 (Section 4)."""
    if n < 2:
        raise ValueError(f"n must be >= 2, got {n}")
    if diameter < 1:
        raise ValueError(f"diameter must be >= 1, got {diameter}")
    return max(1.0, math.log2(n / diameter))


def expected_degree(n: int, p: float) -> float:
    """``d = n * p`` — the expected in/out degree of directed G(n, p)."""
    if n < 1:
        raise ValueError(f"n must be >= 1, got {n}")
    if not 0.0 <= p <= 1.0:
        raise ValueError(f"p must lie in [0, 1], got {p}")
    return n * p
