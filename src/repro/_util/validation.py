"""Argument-validation helpers with consistent error messages."""

from __future__ import annotations

from typing import Optional

import numpy as np

__all__ = [
    "check_positive",
    "check_positive_int",
    "check_probability",
    "check_in_range",
    "check_node_index",
    "check_sorted_nondecreasing",
]


def check_positive(value: float, name: str) -> float:
    """Raise ``ValueError`` unless ``value`` is a finite number > 0."""
    value = float(value)
    if not np.isfinite(value) or value <= 0:
        raise ValueError(f"{name} must be a finite positive number, got {value!r}")
    return value


def check_positive_int(value: int, name: str, *, minimum: int = 1) -> int:
    """Raise unless ``value`` is an integer >= ``minimum``."""
    if isinstance(value, bool) or not isinstance(value, (int, np.integer)):
        raise TypeError(f"{name} must be an int, got {type(value).__name__}")
    value = int(value)
    if value < minimum:
        raise ValueError(f"{name} must be >= {minimum}, got {value}")
    return value


def check_probability(value: float, name: str, *, allow_zero: bool = True) -> float:
    """Raise unless ``value`` lies in [0, 1] (or (0, 1] if ``allow_zero`` is False)."""
    value = float(value)
    if not np.isfinite(value):
        raise ValueError(f"{name} must be finite, got {value!r}")
    lo_ok = value >= 0.0 if allow_zero else value > 0.0
    if not (lo_ok and value <= 1.0):
        bracket = "[0, 1]" if allow_zero else "(0, 1]"
        raise ValueError(f"{name} must lie in {bracket}, got {value!r}")
    return value


def check_in_range(
    value: float,
    name: str,
    *,
    low: Optional[float] = None,
    high: Optional[float] = None,
    inclusive: bool = True,
) -> float:
    """Raise unless ``low <= value <= high`` (or strict if ``inclusive`` is False)."""
    value = float(value)
    if low is not None:
        ok = value >= low if inclusive else value > low
        if not ok:
            raise ValueError(f"{name} must be {'>=' if inclusive else '>'} {low}, got {value}")
    if high is not None:
        ok = value <= high if inclusive else value < high
        if not ok:
            raise ValueError(f"{name} must be {'<=' if inclusive else '<'} {high}, got {value}")
    return value


def check_sorted_nondecreasing(values, name: str):
    """Raise ``ValueError`` unless ``values`` is sorted non-decreasingly."""
    values = list(values)
    for i in range(1, len(values)):
        if values[i] < values[i - 1]:
            raise ValueError(
                f"{name} must be sorted in non-decreasing order, but "
                f"{values[i]!r} follows {values[i - 1]!r}"
            )
    return values


def check_node_index(node: int, n: int, name: str = "node") -> int:
    """Raise unless ``node`` is a valid index into a graph with ``n`` nodes."""
    if isinstance(node, bool) or not isinstance(node, (int, np.integer)):
        raise TypeError(f"{name} must be an int, got {type(node).__name__}")
    node = int(node)
    if not 0 <= node < n:
        raise ValueError(f"{name} must lie in [0, {n - 1}], got {node}")
    return node
