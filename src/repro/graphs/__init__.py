"""Topology generators and graph analysis.

The paper evaluates its protocols on two network classes:

* **random networks** — the directed Erdős–Rényi model ``G(n, p)`` in which
  every ordered pair ``(u, v)`` is an edge independently with probability
  ``p`` (Sections 2 and 3), with the random **geometric** model named as
  future work (Section 5);
* **general (arbitrary) networks with known diameter D** (Section 4),
  including the two explicit lower-bound constructions: the
  relay network of Observation 4.3 and the layered star-and-path network of
  Theorem 4.4 (Fig. 2).

This package provides generators for all of those, a handful of structured
families used by the general-network experiments (paths, grids, cliques,
paths of cliques …), and the graph-property helpers (BFS layers, source
eccentricity, diameter, degree statistics) the experiments rely on.
"""

from repro.graphs.geometric import (
    geometric_digraph,
    geometric_digraph_from_positions,
    heterogeneous_geometric_digraph,
)
from repro.graphs.lowerbound import (
    observation43_network,
    theorem44_network,
    theorem44_layer_sizes,
)
from repro.graphs.properties import (
    bfs_layers,
    degree_statistics,
    diameter_estimate,
    is_strongly_connected,
    reachable_from,
    source_eccentricity,
)
from repro.graphs.random_digraph import (
    connectivity_threshold_probability,
    random_digraph,
    random_undirected_radio_network,
)
from repro.graphs.structured import (
    complete_network,
    cycle_network,
    grid_network,
    layered_caterpillar,
    path_network,
    path_of_cliques,
    star_network,
)
from repro.graphs.builders import GraphSpec, build_network

__all__ = [
    "random_digraph",
    "random_undirected_radio_network",
    "connectivity_threshold_probability",
    "geometric_digraph",
    "geometric_digraph_from_positions",
    "heterogeneous_geometric_digraph",
    "observation43_network",
    "theorem44_network",
    "theorem44_layer_sizes",
    "path_network",
    "cycle_network",
    "star_network",
    "complete_network",
    "grid_network",
    "path_of_cliques",
    "layered_caterpillar",
    "bfs_layers",
    "source_eccentricity",
    "diameter_estimate",
    "reachable_from",
    "is_strongly_connected",
    "degree_statistics",
    "GraphSpec",
    "build_network",
]
