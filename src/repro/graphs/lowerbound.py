"""The paper's explicit lower-bound network constructions.

Two constructions are used in Section 4.2:

* **Observation 4.3** — a network with ``3n + 1`` nodes showing that *any*
  oblivious broadcast algorithm needs at least ``n log n / 2`` transmissions
  in total to succeed with probability ``1 - 1/n``.  The source ``s`` reaches
  ``2n`` relay nodes ``u_1 .. u_2n``; destination ``d_i`` hears exactly the
  two relays ``u_{2i-1}`` and ``u_{2i}``, so it is informed only in a round
  where exactly one of its two relays transmits.

* **Theorem 4.4 (Fig. 2)** — a layered network made of a cascade of stars
  ``S_1 .. S_{log n}`` (star ``S_i`` has one centre ``c_i`` and ``2^i``
  leaves; each leaf of ``S_i`` feeds the next centre ``c_{i+1}``) followed by
  a long path of length ``D - 2 log n``.  Whatever time-invariant
  transmission distribution an oblivious algorithm uses, some star level has
  per-round success probability at most ``1/ln n`` (so nodes must stay active
  for ``≈ ln^2 n`` rounds), while the path forces the distribution's mean to
  be at least ``1/(2c log(n/D))`` to finish in ``c·D·log(n/D)`` rounds —
  giving the ``Ω(log^2 n / log(n/D))`` transmissions-per-node bound.

Both constructions are returned as directed :class:`RadioNetwork` instances
(edges point in the direction the broadcast must flow) together with a
structure description used by the experiments and tests.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Tuple

import numpy as np

from repro._util.logmath import ilog2
from repro._util.validation import check_positive_int
from repro.radio.network import RadioNetwork

__all__ = [
    "Observation43Structure",
    "Theorem44Structure",
    "observation43_network",
    "theorem44_network",
    "theorem44_layer_sizes",
]


@dataclass(frozen=True)
class Observation43Structure:
    """Node-role map of the Observation 4.3 network."""

    n_destinations: int
    source: int
    relays: np.ndarray
    destinations: np.ndarray

    def relay_pair_for(self, destination_index: int) -> Tuple[int, int]:
        """The two relays heard by destination ``destination_index`` (0-based)."""
        if not 0 <= destination_index < self.n_destinations:
            raise ValueError(
                f"destination_index must lie in [0, {self.n_destinations - 1}]"
            )
        return (
            int(self.relays[2 * destination_index]),
            int(self.relays[2 * destination_index + 1]),
        )


@dataclass(frozen=True)
class Theorem44Structure:
    """Node-role map of the Theorem 4.4 (Fig. 2) layered network."""

    n_parameter: int
    diameter: int
    num_stars: int
    star_centers: np.ndarray
    star_leaves: List[np.ndarray]
    path_nodes: np.ndarray

    @property
    def source(self) -> int:
        """The broadcast originator ``c_1``."""
        return int(self.star_centers[0])

    @property
    def final_node(self) -> int:
        """The last node of the path ``v_L`` (the hardest node to reach)."""
        return int(self.path_nodes[-1])


def observation43_network(
    n: int, *, return_structure: bool = False
):
    """Build the Observation 4.3 lower-bound network with ``3n + 1`` nodes.

    Parameters
    ----------
    n:
        Number of destination nodes (the paper's ``n``); the network has
        ``3n + 1`` nodes in total.
    return_structure:
        When True, return ``(network, structure)``.

    Notes
    -----
    Edges (all directed in the flow direction):

    * ``s -> u_j`` for every relay ``u_j`` (``j = 1 .. 2n``);
    * ``u_{2i-1} -> d_i`` and ``u_{2i} -> d_i`` for every destination ``d_i``.

    The source informs all relays in one round (it is their only
    in-neighbour), after which destination ``d_i`` is informed only in a
    round where exactly one of its two relays transmits — the situation the
    lower-bound argument exploits.
    """
    n = check_positive_int(n, "n")
    source = 0
    relays = np.arange(1, 2 * n + 1, dtype=np.int64)
    destinations = np.arange(2 * n + 1, 3 * n + 1, dtype=np.int64)

    src_edges = np.column_stack([np.full(2 * n, source, dtype=np.int64), relays])
    dest_targets = np.repeat(destinations, 2)
    relay_sources = relays  # relays are already ordered u_1, u_2, u_3, ...
    relay_edges = np.column_stack([relay_sources, dest_targets])
    edges = np.vstack([src_edges, relay_edges])

    network = RadioNetwork(3 * n + 1, edges, name=f"observation43(n={n})")
    if not return_structure:
        return network
    structure = Observation43Structure(
        n_destinations=n,
        source=source,
        relays=relays,
        destinations=destinations,
    )
    return network, structure


def theorem44_layer_sizes(n: int) -> List[int]:
    """Sizes ``2^i`` of the star layers ``S_1 .. S_{log n}`` for parameter ``n``."""
    n = check_positive_int(n, "n", minimum=2)
    k = ilog2(n)
    return [2**i for i in range(1, k + 1)]


def theorem44_network(
    n: int, diameter: int, *, return_structure: bool = False
):
    """Build the Theorem 4.4 (Fig. 2) layered lower-bound network.

    Parameters
    ----------
    n:
        The paper's size parameter (ideally a power of two); the network has
        at most ``2n + D`` nodes.
    diameter:
        Target diameter ``D``; must exceed ``2 * log2(n)`` so the trailing
        path has positive length (the theorem assumes ``D > 4 log n``).
    return_structure:
        When True, return ``(network, structure)``.

    Notes
    -----
    Construction (all edges directed in the flow direction):

    * star ``S_i`` (``i = 1 .. log n``) has centre ``c_i`` and ``2^i`` leaves;
      ``c_i`` feeds each of its leaves, and each leaf feeds the next centre
      ``c_{i+1}``;
    * every leaf of the last star ``S_{log n}`` feeds the first path node
      ``v_0`` (the paper's ``c_{log n + 1}``);
    * ``v_0 -> v_1 -> … -> v_L`` with ``L = D - 2 log n``.
    """
    n = check_positive_int(n, "n", minimum=4)
    diameter = check_positive_int(diameter, "diameter")
    k = ilog2(n)
    min_diameter = 2 * k + 1
    if diameter <= min_diameter:
        raise ValueError(
            f"diameter must exceed 2*log2(n) + 1 = {min_diameter} for n={n}, got {diameter}"
        )
    path_length = diameter - 2 * k

    edges: List[Tuple[int, int]] = []
    star_centers = []
    star_leaves: List[np.ndarray] = []
    next_id = 0
    for i in range(1, k + 1):
        center = next_id
        next_id += 1
        leaves = np.arange(next_id, next_id + 2**i, dtype=np.int64)
        next_id += 2**i
        star_centers.append(center)
        star_leaves.append(leaves)
        for leaf in leaves:
            edges.append((center, int(leaf)))

    # Leaves of S_i feed the centre of S_{i+1}.
    for i in range(k - 1):
        next_center = star_centers[i + 1]
        for leaf in star_leaves[i]:
            edges.append((int(leaf), next_center))

    # Path nodes v_0 .. v_L; leaves of the last star feed v_0.
    path_nodes = np.arange(next_id, next_id + path_length + 1, dtype=np.int64)
    next_id += path_length + 1
    for leaf in star_leaves[-1]:
        edges.append((int(leaf), int(path_nodes[0])))
    for a, b in zip(path_nodes[:-1], path_nodes[1:]):
        edges.append((int(a), int(b)))

    network = RadioNetwork(
        next_id,
        np.asarray(edges, dtype=np.int64),
        name=f"theorem44(n={n}, D={diameter})",
    )
    if not return_structure:
        return network
    structure = Theorem44Structure(
        n_parameter=n,
        diameter=diameter,
        num_stars=k,
        star_centers=np.asarray(star_centers, dtype=np.int64),
        star_leaves=star_leaves,
        path_nodes=path_nodes,
    )
    return network, structure
