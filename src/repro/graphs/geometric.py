"""Random geometric radio networks.

Section 5 of the paper names random geometric graphs as the natural next
model for AdHoc networks ("the Erdős–Rényi model … appears to be somewhat
unrealistic for practical AdHoc networks.  We can consider other alternative
models for random graphs, such as the random geometric graphs").  This module
implements that extension:

* :func:`geometric_digraph` — ``n`` nodes uniform in the unit square, an edge
  ``(u, v)`` whenever ``dist(u, v) <= radius`` (symmetric unit-disk model);
* :func:`heterogeneous_geometric_digraph` — per-node listening radii, which
  produces genuinely **asymmetric** links exactly as the paper's model allows
  ("one device may be able to listen to messages sent out by a node in its
  communication range, but not vice-versa");
* :func:`geometric_digraph_from_positions` — build from given positions
  (used by the mobility model in :mod:`repro.radio.dynamics`).

Distance computations use a cKDTree so construction is ``O(n log n + m)``.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np
from scipy.spatial import cKDTree

from repro._util.rng import SeedLike, as_generator
from repro._util.validation import check_positive, check_positive_int
from repro.radio.network import RadioNetwork

__all__ = [
    "geometric_digraph",
    "geometric_digraph_from_positions",
    "heterogeneous_geometric_digraph",
    "connectivity_radius",
]


def connectivity_radius(n: int, safety: float = 1.5) -> float:
    """A radius that keeps a uniform unit-square geometric graph connected w.h.p.

    The classical threshold is ``r = sqrt(log n / (pi n))``; ``safety`` scales
    it up so small experiment sizes stay connected reliably.
    """
    n = check_positive_int(n, "n", minimum=2)
    return float(safety * np.sqrt(np.log(n) / (np.pi * n)))


def geometric_digraph(
    n: int,
    radius: float,
    *,
    rng: SeedLike = None,
    name: Optional[str] = None,
    return_positions: bool = False,
):
    """Uniform random geometric radio network on the unit square.

    Every pair at distance at most ``radius`` is connected in both directions
    (all devices share the same range).

    Parameters
    ----------
    n, radius:
        Node count and shared communication radius.
    return_positions:
        When True, return ``(network, positions)``.
    """
    n = check_positive_int(n, "n")
    radius = check_positive(radius, "radius")
    generator = as_generator(rng)
    positions = generator.random((n, 2))
    if name is None:
        name = f"rgg(n={n}, r={radius:.4g})"
    network = geometric_digraph_from_positions(positions, radius, name=name)
    if return_positions:
        return network, positions
    return network


def geometric_digraph_from_positions(
    positions: np.ndarray,
    radius: float,
    *,
    name: str = "rgg",
) -> RadioNetwork:
    """Symmetric unit-disk network induced by ``positions`` and a shared ``radius``."""
    positions = np.asarray(positions, dtype=float)
    if positions.ndim != 2 or positions.shape[1] != 2:
        raise ValueError(f"positions must have shape (n, 2), got {positions.shape}")
    radius = check_positive(radius, "radius")
    n = positions.shape[0]
    if n == 1:
        return RadioNetwork(1, np.empty((0, 2), dtype=np.int64), name=name)
    tree = cKDTree(positions)
    pairs = tree.query_pairs(r=radius, output_type="ndarray")
    if pairs.size == 0:
        edges = np.empty((0, 2), dtype=np.int64)
    else:
        edges = np.vstack([pairs, pairs[:, ::-1]]).astype(np.int64)
    return RadioNetwork(n, edges, name=name)


def heterogeneous_geometric_digraph(
    n: int,
    radius_low: float,
    radius_high: float,
    *,
    rng: SeedLike = None,
    name: Optional[str] = None,
    return_positions: bool = False,
):
    """Geometric network with per-node listening radii (asymmetric links).

    Node ``v`` draws a listening radius uniformly from
    ``[radius_low, radius_high]``; an edge ``(u, v)`` exists whenever ``u``
    lies within ``v``'s listening radius.  Because radii differ, ``(u, v)``
    may exist without ``(v, u)`` — the asymmetric situation the paper's model
    explicitly permits (and which rules out acknowledgement-based protocols).
    """
    n = check_positive_int(n, "n")
    radius_low = check_positive(radius_low, "radius_low")
    radius_high = check_positive(radius_high, "radius_high")
    if radius_high < radius_low:
        raise ValueError(
            f"radius_high ({radius_high}) must be >= radius_low ({radius_low})"
        )
    generator = as_generator(rng)
    positions = generator.random((n, 2))
    radii = generator.uniform(radius_low, radius_high, size=n)
    if name is None:
        name = f"rgg-hetero(n={n}, r=[{radius_low:.3g},{radius_high:.3g}])"

    if n == 1:
        network = RadioNetwork(1, np.empty((0, 2), dtype=np.int64), name=name)
        return (network, positions) if return_positions else network

    tree = cKDTree(positions)
    sources_list = []
    targets_list = []
    # For each listener v, every u within radii[v] can be heard by v: edge (u, v).
    neighbor_lists = tree.query_ball_point(positions, r=radii)
    for v, neighbours in enumerate(neighbor_lists):
        for u in neighbours:
            if u != v:
                sources_list.append(u)
                targets_list.append(v)
    if sources_list:
        edges = np.column_stack(
            [np.asarray(sources_list, dtype=np.int64), np.asarray(targets_list, dtype=np.int64)]
        )
    else:
        edges = np.empty((0, 2), dtype=np.int64)
    network = RadioNetwork(n, edges, name=name)
    if return_positions:
        return network, positions
    return network
