"""Graph-property helpers used by the experiments and tests.

Everything here works on the directed :class:`RadioNetwork` CSR arrays
directly (no networkx in the hot path); :func:`diameter_estimate` optionally
uses exact all-pairs BFS for small graphs and a sampled double-sweep
estimate for large ones.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

import numpy as np

from repro._util.rng import SeedLike, as_generator
from repro._util.validation import check_node_index
from repro.radio.network import RadioNetwork

__all__ = [
    "bfs_distances",
    "bfs_layers",
    "source_eccentricity",
    "reachable_from",
    "is_strongly_connected",
    "diameter_estimate",
    "degree_statistics",
    "DegreeStatistics",
]


def bfs_distances(network: RadioNetwork, source: int) -> np.ndarray:
    """Directed BFS distances from ``source`` (-1 for unreachable nodes)."""
    n = network.n
    source = check_node_index(source, n, "source")
    dist = np.full(n, -1, dtype=np.int64)
    dist[source] = 0
    frontier = np.asarray([source], dtype=np.int64)
    indptr = network.out_indptr
    indices = network.out_indices
    level = 0
    while frontier.size:
        level += 1
        starts = indptr[frontier]
        ends = indptr[frontier + 1]
        lengths = ends - starts
        total = int(lengths.sum())
        if total == 0:
            break
        origin = np.repeat(starts, lengths)
        within = np.arange(total, dtype=np.int64) - np.repeat(
            np.cumsum(lengths) - lengths, lengths
        )
        neighbours = indices[origin + within].astype(np.int64, copy=False)
        fresh = np.unique(neighbours[dist[neighbours] < 0])
        if fresh.size == 0:
            break
        dist[fresh] = level
        frontier = fresh
    return dist


def bfs_layers(network: RadioNetwork, source: int) -> List[np.ndarray]:
    """Nodes grouped by BFS distance from ``source`` (unreachable nodes omitted)."""
    dist = bfs_distances(network, source)
    max_dist = int(dist.max())
    return [np.flatnonzero(dist == level) for level in range(max_dist + 1)]


def source_eccentricity(network: RadioNetwork, source: int) -> int:
    """Largest finite BFS distance from ``source``.

    Raises ``ValueError`` when some node is unreachable from ``source`` —
    broadcasting from ``source`` is then impossible, which the caller should
    treat explicitly rather than silently.
    """
    dist = bfs_distances(network, source)
    if np.any(dist < 0):
        unreachable = int((dist < 0).sum())
        raise ValueError(
            f"{unreachable} nodes are unreachable from source {source}; "
            "broadcast cannot complete on this network"
        )
    return int(dist.max())


def reachable_from(network: RadioNetwork, source: int) -> np.ndarray:
    """Boolean mask of nodes reachable from ``source`` (including itself)."""
    return bfs_distances(network, source) >= 0


def is_strongly_connected(network: RadioNetwork) -> bool:
    """True iff every node reaches every other node (directed)."""
    if network.n <= 1:
        return True
    if not reachable_from(network, 0).all():
        return False
    return bool((bfs_distances(network.reverse(), 0) >= 0).all())


def diameter_estimate(
    network: RadioNetwork,
    *,
    exact_threshold: int = 600,
    samples: int = 16,
    rng: SeedLike = None,
) -> int:
    """Directed diameter (exact for small graphs, sampled lower bound otherwise).

    For ``n <= exact_threshold`` this runs BFS from every node (exact).  For
    larger graphs it runs BFS from ``samples`` random nodes plus node 0 and
    returns the largest eccentricity seen — a lower bound that is exact
    w.h.p. for the highly symmetric families used in the experiments.

    Raises ``ValueError`` if the sampled sources cannot reach every node.
    """
    n = network.n
    if n <= 1:
        return 0
    if n <= exact_threshold:
        sources = range(n)
    else:
        generator = as_generator(rng)
        extra = generator.integers(0, n, size=max(0, samples - 1))
        sources = np.unique(np.concatenate([[0], extra]))
    best = 0
    for source in sources:
        ecc = source_eccentricity(network, int(source))
        best = max(best, ecc)
    return best


@dataclass(frozen=True)
class DegreeStatistics:
    """Summary of in/out degree distributions."""

    mean_out: float
    mean_in: float
    min_out: int
    max_out: int
    min_in: int
    max_in: int
    std_out: float
    std_in: float

    def as_dict(self) -> Dict[str, float]:
        return {
            "mean_out": self.mean_out,
            "mean_in": self.mean_in,
            "min_out": self.min_out,
            "max_out": self.max_out,
            "min_in": self.min_in,
            "max_in": self.max_in,
            "std_out": self.std_out,
            "std_in": self.std_in,
        }


def degree_statistics(network: RadioNetwork) -> DegreeStatistics:
    """Compute degree summary statistics for ``network``."""
    out_deg = network.out_degrees()
    in_deg = network.in_degrees()
    return DegreeStatistics(
        mean_out=float(out_deg.mean()) if out_deg.size else 0.0,
        mean_in=float(in_deg.mean()) if in_deg.size else 0.0,
        min_out=int(out_deg.min()) if out_deg.size else 0,
        max_out=int(out_deg.max()) if out_deg.size else 0,
        min_in=int(in_deg.min()) if in_deg.size else 0,
        max_in=int(in_deg.max()) if in_deg.size else 0,
        std_out=float(out_deg.std()) if out_deg.size else 0.0,
        std_in=float(in_deg.std()) if in_deg.size else 0.0,
    )
