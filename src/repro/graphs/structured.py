"""Deterministic structured topologies used by the general-network experiments.

Section 4 of the paper analyses arbitrary networks with known diameter ``D``.
To exercise Algorithm 3, the Czumaj–Rytter baselines, and the tradeoff family
across the ``D`` spectrum, we use a few canonical families with easily
controlled diameter and density:

* :func:`path_network` / :func:`cycle_network` — maximum-diameter sparse case;
* :func:`star_network` / :func:`complete_network` — constant diameter;
* :func:`grid_network` — ``D = Θ(sqrt(n))`` with bounded degree;
* :func:`path_of_cliques` — the workhorse: ``L`` cliques of size ``k``
  chained so that consecutive cliques overlap in one bridge node.  Diameter
  ``Θ(L)``, local contention ``Θ(k)`` — the regime where collision handling
  matters and the paper's log-factors appear;
* :func:`layered_caterpillar` — a path with ``k`` leaf listeners per spine
  node, a simple model of a backbone with many passive receivers.

All generators return symmetric (bidirectional) radio networks unless stated
otherwise, since the general-network theorems do not rely on asymmetry.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro._util.validation import check_positive_int
from repro.radio.network import RadioNetwork

__all__ = [
    "path_network",
    "cycle_network",
    "star_network",
    "complete_network",
    "grid_network",
    "path_of_cliques",
    "layered_caterpillar",
]


def path_network(n: int) -> RadioNetwork:
    """Bidirectional path ``0 - 1 - ... - n-1`` (diameter ``n - 1``)."""
    n = check_positive_int(n, "n")
    if n == 1:
        return RadioNetwork(1, np.empty((0, 2), dtype=np.int64), name="path(n=1)")
    u = np.arange(n - 1, dtype=np.int64)
    edges = np.vstack(
        [np.column_stack([u, u + 1]), np.column_stack([u + 1, u])]
    )
    return RadioNetwork(n, edges, name=f"path(n={n})")


def cycle_network(n: int) -> RadioNetwork:
    """Bidirectional cycle on ``n >= 3`` nodes (diameter ``floor(n/2)``)."""
    n = check_positive_int(n, "n", minimum=3)
    u = np.arange(n, dtype=np.int64)
    v = (u + 1) % n
    edges = np.vstack([np.column_stack([u, v]), np.column_stack([v, u])])
    return RadioNetwork(n, edges, name=f"cycle(n={n})")


def star_network(n: int, *, center: int = 0) -> RadioNetwork:
    """Bidirectional star: ``center`` connected to every other node (diameter 2)."""
    n = check_positive_int(n, "n", minimum=2)
    if not 0 <= center < n:
        raise ValueError(f"center must lie in [0, {n - 1}], got {center}")
    leaves = np.asarray([i for i in range(n) if i != center], dtype=np.int64)
    centers = np.full(leaves.size, center, dtype=np.int64)
    edges = np.vstack(
        [np.column_stack([centers, leaves]), np.column_stack([leaves, centers])]
    )
    return RadioNetwork(n, edges, name=f"star(n={n})")


def complete_network(n: int) -> RadioNetwork:
    """Complete bidirectional network (diameter 1)."""
    n = check_positive_int(n, "n")
    if n == 1:
        return RadioNetwork(1, np.empty((0, 2), dtype=np.int64), name="complete(n=1)")
    rows, cols = np.meshgrid(np.arange(n, dtype=np.int64), np.arange(n, dtype=np.int64), indexing="ij")
    mask = rows != cols
    edges = np.column_stack([rows[mask], cols[mask]])
    return RadioNetwork(n, edges, name=f"complete(n={n})")


def grid_network(rows: int, cols: Optional[int] = None) -> RadioNetwork:
    """Bidirectional 4-neighbour grid (diameter ``rows + cols - 2``)."""
    rows = check_positive_int(rows, "rows")
    cols = rows if cols is None else check_positive_int(cols, "cols")
    n = rows * cols

    def node(r: int, c: int) -> int:
        return r * cols + c

    edge_list = []
    for r in range(rows):
        for c in range(cols):
            if c + 1 < cols:
                edge_list.append((node(r, c), node(r, c + 1)))
                edge_list.append((node(r, c + 1), node(r, c)))
            if r + 1 < rows:
                edge_list.append((node(r, c), node(r + 1, c)))
                edge_list.append((node(r + 1, c), node(r, c)))
    edges = (
        np.asarray(edge_list, dtype=np.int64)
        if edge_list
        else np.empty((0, 2), dtype=np.int64)
    )
    return RadioNetwork(n, edges, name=f"grid({rows}x{cols})")


def path_of_cliques(num_cliques: int, clique_size: int) -> RadioNetwork:
    """A chain of ``num_cliques`` cliques of ``clique_size`` nodes each.

    Consecutive cliques are joined by a bidirectional bridge edge between
    their designated border nodes (the last node of clique ``i`` and the
    first node of clique ``i+1``), giving diameter ``Θ(num_cliques)`` while
    every transmission inside a clique contends with ``clique_size - 1``
    other stations.  This is the canonical "D small relative to n but dense
    locally" workload for Section 4.
    """
    num_cliques = check_positive_int(num_cliques, "num_cliques")
    clique_size = check_positive_int(clique_size, "clique_size")
    n = num_cliques * clique_size
    edge_list = []
    for block in range(num_cliques):
        base = block * clique_size
        for i in range(clique_size):
            for j in range(clique_size):
                if i != j:
                    edge_list.append((base + i, base + j))
        if block + 1 < num_cliques:
            a = base + clique_size - 1
            b = base + clique_size
            edge_list.append((a, b))
            edge_list.append((b, a))
    edges = (
        np.asarray(edge_list, dtype=np.int64)
        if edge_list
        else np.empty((0, 2), dtype=np.int64)
    )
    return RadioNetwork(
        n, edges, name=f"path_of_cliques(L={num_cliques}, k={clique_size})"
    )


def layered_caterpillar(spine_length: int, leaves_per_node: int) -> RadioNetwork:
    """A bidirectional path ("spine") with ``leaves_per_node`` leaves per spine node.

    Spine nodes are ``0 .. spine_length-1``; the leaves of spine node ``i``
    are ``spine_length + i*leaves_per_node .. spine_length + (i+1)*leaves_per_node - 1``.
    Diameter ``spine_length + 1``.
    """
    spine_length = check_positive_int(spine_length, "spine_length")
    leaves_per_node = check_positive_int(leaves_per_node, "leaves_per_node", minimum=0)
    n = spine_length + spine_length * leaves_per_node
    edge_list = []
    for i in range(spine_length - 1):
        edge_list.append((i, i + 1))
        edge_list.append((i + 1, i))
    for i in range(spine_length):
        for j in range(leaves_per_node):
            leaf = spine_length + i * leaves_per_node + j
            edge_list.append((i, leaf))
            edge_list.append((leaf, i))
    edges = (
        np.asarray(edge_list, dtype=np.int64)
        if edge_list
        else np.empty((0, 2), dtype=np.int64)
    )
    return RadioNetwork(
        n,
        edges,
        name=f"caterpillar(spine={spine_length}, leaves={leaves_per_node})",
    )
