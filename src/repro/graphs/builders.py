"""Declarative topology specifications for the experiment harness.

Experiments describe their workloads as :class:`GraphSpec` values so sweeps
can be written as plain data (and serialised into results files), and
:func:`build_network` turns a spec plus a seed into a concrete
:class:`~repro.radio.network.RadioNetwork`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Optional

from repro._util.rng import SeedLike
from repro.graphs import geometric, structured
from repro.graphs.lowerbound import observation43_network, theorem44_network
from repro.graphs.random_digraph import (
    random_digraph,
    random_undirected_radio_network,
)
from repro.radio.network import RadioNetwork

__all__ = ["GraphSpec", "build_network", "spec_is_deterministic", "FAMILIES"]


@dataclass(frozen=True)
class GraphSpec:
    """A named topology family plus its parameters.

    Attributes
    ----------
    family:
        One of the keys of :data:`FAMILIES`
        (``"gnp"``, ``"gnp_undirected"``, ``"geometric"``,
        ``"geometric_hetero"``, ``"path"``, ``"cycle"``, ``"star"``,
        ``"complete"``, ``"grid"``, ``"path_of_cliques"``, ``"caterpillar"``,
        ``"observation43"``, ``"theorem44"``).
    params:
        Keyword arguments forwarded to the family's generator.
    """

    family: str
    params: Dict[str, Any] = field(default_factory=dict)

    def describe(self) -> str:
        """Readable one-line description used in tables."""
        inner = ", ".join(f"{k}={v}" for k, v in sorted(self.params.items()))
        return f"{self.family}({inner})"

    def as_dict(self) -> Dict[str, Any]:
        return {"family": self.family, "params": dict(self.params)}

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "GraphSpec":
        return cls(family=payload["family"], params=dict(payload.get("params", {})))


def _build_gnp(*, rng: SeedLike = None, **params) -> RadioNetwork:
    return random_digraph(rng=rng, **params)


def _build_gnp_undirected(*, rng: SeedLike = None, **params) -> RadioNetwork:
    return random_undirected_radio_network(rng=rng, **params)


def _build_geometric(*, rng: SeedLike = None, **params) -> RadioNetwork:
    return geometric.geometric_digraph(rng=rng, **params)


def _build_geometric_hetero(*, rng: SeedLike = None, **params) -> RadioNetwork:
    return geometric.heterogeneous_geometric_digraph(rng=rng, **params)


def _build_observation43(*, rng: SeedLike = None, **params) -> RadioNetwork:
    return observation43_network(**params)


def _build_theorem44(*, rng: SeedLike = None, **params) -> RadioNetwork:
    return theorem44_network(**params)


def _structural(builder):
    def build(*, rng: SeedLike = None, **params) -> RadioNetwork:
        return builder(**params)

    return build


#: Registry mapping family name to builder callable.
FAMILIES = {
    "gnp": _build_gnp,
    "gnp_undirected": _build_gnp_undirected,
    "geometric": _build_geometric,
    "geometric_hetero": _build_geometric_hetero,
    "path": _structural(structured.path_network),
    "cycle": _structural(structured.cycle_network),
    "star": _structural(structured.star_network),
    "complete": _structural(structured.complete_network),
    "grid": _structural(structured.grid_network),
    "path_of_cliques": _structural(structured.path_of_cliques),
    "caterpillar": _structural(structured.layered_caterpillar),
    "observation43": _build_observation43,
    "theorem44": _build_theorem44,
}


#: Families whose builders ignore the sampling rng (same network under every
#: seed), which is what lets the execution plan build such a topology once
#: per sweep and share it.  An *allowlist* so a newly registered family
#: fails safe: until it is declared deterministic here, every trial keeps
#: its own sample — merely unoptimised, never statistically wrong.
_DETERMINISTIC_FAMILIES = frozenset(
    {
        "path",
        "cycle",
        "star",
        "complete",
        "grid",
        "path_of_cliques",
        "caterpillar",
        "observation43",
        "theorem44",
    }
)


def spec_is_deterministic(spec: GraphSpec) -> bool:
    """True when ``spec``'s builder ignores the rng (same network per seed)."""
    return spec.family in _DETERMINISTIC_FAMILIES


def build_network(spec: GraphSpec, *, rng: SeedLike = None) -> RadioNetwork:
    """Instantiate the network described by ``spec``.

    Random families consume ``rng``; deterministic families ignore it, so a
    sweep can pass per-repetition generators uniformly.
    """
    try:
        builder = FAMILIES[spec.family]
    except KeyError:
        known = ", ".join(sorted(FAMILIES))
        raise ValueError(f"unknown graph family {spec.family!r}; known families: {known}")
    return builder(rng=rng, **spec.params)
