"""Directed Erdős–Rényi random graphs ``G(n, p)``.

The paper (Section 1.2) uses the *directed* version of the standard
Erdős–Rényi model: each ordered pair ``(u, v)`` with ``u != v`` is an edge
independently with probability ``p``; ``d = n p`` is the expected in- and
out-degree.  The regime of interest is ``p > delta * log n / n`` for a large
constant ``delta``, which makes the graph strongly connected with diameter
``ceil(log n / log d)`` w.h.p. (Lemma 3.1).

Sampling is sparse: instead of flipping ``n^2`` coins we draw, for each
source block, the number of out-edges from a binomial and then sample the
targets without replacement — O(m) work and memory.
"""

from __future__ import annotations

import math
from typing import Optional

import numpy as np

from repro._util.rng import SeedLike, as_generator
from repro._util.validation import check_positive_int, check_probability
from repro.radio.network import RadioNetwork

__all__ = [
    "random_digraph",
    "random_undirected_radio_network",
    "connectivity_threshold_probability",
]


def random_digraph(
    n: int,
    p: float,
    *,
    rng: SeedLike = None,
    name: Optional[str] = None,
) -> RadioNetwork:
    """Sample a directed ``G(n, p)`` radio network.

    Parameters
    ----------
    n:
        Number of nodes.
    p:
        Independent probability of each ordered pair ``(u, v)``, ``u != v``,
        being an edge.
    rng:
        Seed or generator.
    name:
        Network name; defaults to ``"gnp(n=..., p=...)"``.

    Returns
    -------
    RadioNetwork
    """
    n = check_positive_int(n, "n")
    p = check_probability(p, "p")
    generator = as_generator(rng)
    if name is None:
        name = f"gnp(n={n}, p={p:.6g})"

    if n == 1 or p == 0.0:
        return RadioNetwork(n, np.empty((0, 2), dtype=np.int64), name=name)
    if p == 1.0:
        from repro.graphs.structured import complete_network

        return complete_network(n).with_name(name)

    # Per-source binomial counts, then sample distinct targets per source.
    counts = generator.binomial(n - 1, p, size=n)
    total = int(counts.sum())
    sources = np.repeat(np.arange(n, dtype=np.int64), counts)
    targets = np.empty(total, dtype=np.int64)
    offset = 0
    for u in range(n):
        k = int(counts[u])
        if k == 0:
            continue
        # Sample k distinct values from {0..n-2} and shift to skip u itself.
        chosen = generator.choice(n - 1, size=k, replace=False)
        chosen = np.where(chosen >= u, chosen + 1, chosen)
        targets[offset : offset + k] = chosen
        offset += k
    edges = np.column_stack([sources, targets])
    return RadioNetwork(n, edges, name=name)


def random_undirected_radio_network(
    n: int,
    p: float,
    *,
    rng: SeedLike = None,
    name: Optional[str] = None,
) -> RadioNetwork:
    """Sample an undirected ``G(n, p)`` and return the symmetric radio network.

    Each unordered pair is an edge with probability ``p``; both directions
    are added (equal communication ranges).
    """
    n = check_positive_int(n, "n")
    p = check_probability(p, "p")
    generator = as_generator(rng)
    if name is None:
        name = f"gnp-undirected(n={n}, p={p:.6g})"
    if n == 1 or p == 0.0:
        return RadioNetwork(n, np.empty((0, 2), dtype=np.int64), name=name)

    # Sample the upper triangle sparsely by geometric skipping.
    edges = []
    total_pairs = n * (n - 1) // 2
    if p >= 1.0:
        idx = np.arange(total_pairs)
    else:
        idx = _sample_bernoulli_indices(total_pairs, p, generator)
    if idx.size:
        rows, cols = _triu_unrank(idx, n)
        fwd = np.column_stack([rows, cols])
        bwd = np.column_stack([cols, rows])
        edges = np.vstack([fwd, bwd])
    else:
        edges = np.empty((0, 2), dtype=np.int64)
    return RadioNetwork(n, edges, name=name)


def connectivity_threshold_probability(n: int, delta: float = 4.0) -> float:
    """``p = delta * log n / n`` — the paper's "sufficiently large constant" regime.

    For ``delta`` comfortably above 1 the directed ``G(n, p)`` is strongly
    connected w.h.p.; the paper assumes ``p > delta log n / n`` for a
    sufficiently large constant ``delta`` throughout Sections 2–3.  The
    default ``delta = 4`` keeps small experiment sizes (n of a few hundred)
    reliably connected.  The value is clamped to 1.0 for tiny ``n``.
    """
    n = check_positive_int(n, "n", minimum=2)
    if delta <= 0:
        raise ValueError(f"delta must be positive, got {delta}")
    return min(1.0, delta * math.log2(n) / n)


# --------------------------------------------------------------------------- #
# Sparse Bernoulli-index sampling helpers
# --------------------------------------------------------------------------- #
def _sample_bernoulli_indices(
    total: int, p: float, generator: np.random.Generator
) -> np.ndarray:
    """Indices of successes among ``total`` independent Bernoulli(p) trials.

    Uses geometric skip sampling so the cost is O(number of successes).
    """
    if total <= 0 or p <= 0.0:
        return np.empty(0, dtype=np.int64)
    # Expected successes + slack; loop in blocks in the (rare) case of underdraw.
    out = []
    position = -1
    log_q = math.log1p(-p)
    expected = int(total * p)
    block = max(1024, int(1.2 * expected) + 16)
    while position < total:
        draws = generator.random(block)
        skips = np.floor(np.log(draws) / log_q).astype(np.int64) + 1
        positions = position + np.cumsum(skips)
        inside = positions < total
        out.append(positions[inside])
        if not inside.all():
            break
        position = int(positions[-1])
    if not out:
        return np.empty(0, dtype=np.int64)
    return np.concatenate(out)


def _triu_unrank(idx: np.ndarray, n: int) -> tuple:
    """Map linear indices over the strict upper triangle of an n x n matrix to (row, col)."""
    # Row r owns (n-1-r) entries; find r by inverting the cumulative count.
    counts = np.arange(n - 1, 0, -1, dtype=np.int64)
    ends = np.cumsum(counts)
    rows = np.searchsorted(ends, idx, side="right")
    starts = ends - counts
    cols = rows + 1 + (idx - starts[rows])
    return rows.astype(np.int64), cols.astype(np.int64)
