"""Directed Erdős–Rényi random graphs ``G(n, p)``.

The paper (Section 1.2) uses the *directed* version of the standard
Erdős–Rényi model: each ordered pair ``(u, v)`` with ``u != v`` is an edge
independently with probability ``p``; ``d = n p`` is the expected in- and
out-degree.  The regime of interest is ``p > delta * log n / n`` for a large
constant ``delta``, which makes the graph strongly connected with diameter
``ceil(log n / log d)`` w.h.p. (Lemma 3.1).

Sampling is sparse: instead of flipping ``n^2`` coins we draw, for each
source block, the number of out-edges from a binomial and then sample the
targets without replacement — O(m) work and memory.
"""

from __future__ import annotations

import math
from typing import Optional

import numpy as np

from repro._util.rng import SeedLike, as_generator
from repro._util.validation import check_positive_int, check_probability
from repro.radio.network import RadioNetwork

__all__ = [
    "random_digraph",
    "random_undirected_radio_network",
    "connectivity_threshold_probability",
]


def random_digraph(
    n: int,
    p: float,
    *,
    rng: SeedLike = None,
    name: Optional[str] = None,
) -> RadioNetwork:
    """Sample a directed ``G(n, p)`` radio network.

    Parameters
    ----------
    n:
        Number of nodes.
    p:
        Independent probability of each ordered pair ``(u, v)``, ``u != v``,
        being an edge.
    rng:
        Seed or generator.
    name:
        Network name; defaults to ``"gnp(n=..., p=...)"``.

    Returns
    -------
    RadioNetwork
    """
    n = check_positive_int(n, "n")
    p = check_probability(p, "p")
    generator = as_generator(rng)
    if name is None:
        name = f"gnp(n={n}, p={p:.6g})"

    if n == 1 or p == 0.0:
        return RadioNetwork(n, np.empty((0, 2), dtype=np.int64), name=name)
    if p == 1.0:
        from repro.graphs.structured import complete_network

        return complete_network(n).with_name(name)

    # Per-source binomial counts, then sample distinct targets per source —
    # fully array-based: draw every edge's target uniformly at once and
    # reject within-source duplicates until each source's draw is distinct.
    counts = generator.binomial(n - 1, p, size=n)
    sources = np.repeat(np.arange(n, dtype=np.int64), counts)
    targets = _distinct_targets(n, counts, sources, generator)
    # Draws live in {0..n-2}; shift to skip the source itself.
    targets = np.where(targets >= sources, targets + 1, targets)
    edges = np.column_stack([sources, targets])
    return RadioNetwork(n, edges, name=name)


#: Rejection rounds before falling back to per-source distinct sampling.
_MAX_REJECTION_ROUNDS = 64


def _distinct_targets(
    n: int, counts: np.ndarray, sources: np.ndarray, generator: np.random.Generator
) -> np.ndarray:
    """Distinct values in ``{0..n-2}`` per source block, without Python loops.

    All edges draw uniformly in one vectorised call; within-source duplicates
    (detected by one lexsort pass) are redrawn until none remain.  In the
    sparse regimes this repository simulates (``k_u ~ d << n``) the expected
    number of clashes is ``O(k² / n)`` per source, so the loop almost always
    finishes in one or two rounds.  Sources whose blocks still clash after
    ``_MAX_REJECTION_ROUNDS`` (only plausible for ``p`` near 1, where almost
    every slot is taken) fall back to ``generator.choice(..., replace=False)``
    for just those blocks.
    """
    total = int(counts.sum())
    targets = generator.integers(0, n - 1, size=total)
    if total == 0:
        return targets

    def duplicate_positions() -> np.ndarray:
        # One sortable key per edge: (source, target) packed into an int64.
        # A stable argsort of the packed key is several times faster than a
        # two-key lexsort and groups within-source duplicates adjacently.
        keys = sources * np.int64(n - 1) + targets
        order = np.argsort(keys, kind="stable")
        dup_sorted = np.zeros(total, dtype=bool)
        keys_sorted = keys[order]
        dup_sorted[1:] = keys_sorted[1:] == keys_sorted[:-1]
        return order[dup_sorted]

    for _ in range(_MAX_REJECTION_ROUNDS):
        redraw = duplicate_positions()
        if redraw.size == 0:
            return targets
        targets[redraw] = generator.integers(0, n - 1, size=redraw.size)
    # Fallback: per-source distinct sampling for the (rare) stubborn blocks.
    block_ends = np.cumsum(counts)
    for u in np.unique(sources[duplicate_positions()]):
        k = int(counts[u])
        targets[block_ends[u] - k : block_ends[u]] = generator.choice(
            n - 1, size=k, replace=False
        )
    return targets


def random_undirected_radio_network(
    n: int,
    p: float,
    *,
    rng: SeedLike = None,
    name: Optional[str] = None,
) -> RadioNetwork:
    """Sample an undirected ``G(n, p)`` and return the symmetric radio network.

    Each unordered pair is an edge with probability ``p``; both directions
    are added (equal communication ranges).
    """
    n = check_positive_int(n, "n")
    p = check_probability(p, "p")
    generator = as_generator(rng)
    if name is None:
        name = f"gnp-undirected(n={n}, p={p:.6g})"
    if n == 1 or p == 0.0:
        return RadioNetwork(n, np.empty((0, 2), dtype=np.int64), name=name)

    # Sample the upper triangle sparsely by geometric skipping.
    edges = []
    total_pairs = n * (n - 1) // 2
    if p >= 1.0:
        idx = np.arange(total_pairs)
    else:
        idx = _sample_bernoulli_indices(total_pairs, p, generator)
    if idx.size:
        rows, cols = _triu_unrank(idx, n)
        fwd = np.column_stack([rows, cols])
        bwd = np.column_stack([cols, rows])
        edges = np.vstack([fwd, bwd])
    else:
        edges = np.empty((0, 2), dtype=np.int64)
    return RadioNetwork(n, edges, name=name)


def connectivity_threshold_probability(n: int, delta: float = 4.0) -> float:
    """``p = delta * log n / n`` — the paper's "sufficiently large constant" regime.

    For ``delta`` comfortably above 1 the directed ``G(n, p)`` is strongly
    connected w.h.p.; the paper assumes ``p > delta log n / n`` for a
    sufficiently large constant ``delta`` throughout Sections 2–3.  The
    default ``delta = 4`` keeps small experiment sizes (n of a few hundred)
    reliably connected.  The value is clamped to 1.0 for tiny ``n``.
    """
    n = check_positive_int(n, "n", minimum=2)
    if delta <= 0:
        raise ValueError(f"delta must be positive, got {delta}")
    return min(1.0, delta * math.log2(n) / n)


# --------------------------------------------------------------------------- #
# Sparse Bernoulli-index sampling helpers
# --------------------------------------------------------------------------- #
def _sample_bernoulli_indices(
    total: int, p: float, generator: np.random.Generator
) -> np.ndarray:
    """Indices of successes among ``total`` independent Bernoulli(p) trials.

    Uses geometric skip sampling so the cost is O(number of successes).
    """
    if total <= 0 or p <= 0.0:
        return np.empty(0, dtype=np.int64)
    # Expected successes + slack; loop in blocks in the (rare) case of underdraw.
    out = []
    position = -1
    log_q = math.log1p(-p)
    expected = int(total * p)
    block = max(1024, int(1.2 * expected) + 16)
    while position < total:
        draws = generator.random(block)
        skips = np.floor(np.log(draws) / log_q).astype(np.int64) + 1
        positions = position + np.cumsum(skips)
        inside = positions < total
        out.append(positions[inside])
        if not inside.all():
            break
        position = int(positions[-1])
    if not out:
        return np.empty(0, dtype=np.int64)
    return np.concatenate(out)


def _triu_unrank(idx: np.ndarray, n: int) -> tuple:
    """Map linear indices over the strict upper triangle of an n x n matrix to (row, col)."""
    # Row r owns (n-1-r) entries; find r by inverting the cumulative count.
    counts = np.arange(n - 1, 0, -1, dtype=np.int64)
    ends = np.cumsum(counts)
    rows = np.searchsorted(ends, idx, side="right")
    starts = ends - counts
    cols = rows + 1 + (idx - starts[rows])
    return rows.astype(np.int64), cols.astype(np.int64)
