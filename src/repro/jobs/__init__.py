"""Job-queue layer of the sweep orchestration service.

:class:`JobQueue` gives the experiment runner one submission API over
pluggable worker backends — in-process (:class:`InProcessBackend`) or a
process pool with retry-on-worker-death (:class:`ProcessPoolBackend`) — and
streams per-task completions back to the caller so results can be
checkpointed into the :mod:`repro.store` result store as they arrive.
"""

from repro.jobs.queue import (
    InProcessBackend,
    JobQueue,
    ProcessPoolBackend,
    QueueStats,
    WorkerBackend,
    WorkerPoolError,
)

__all__ = [
    "InProcessBackend",
    "JobQueue",
    "ProcessPoolBackend",
    "QueueStats",
    "WorkerBackend",
    "WorkerPoolError",
]
