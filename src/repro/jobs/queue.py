"""Job queue with pluggable worker backends and retry-on-worker-death.

The execution plan in :mod:`repro.experiments.runner` used to drive a
:class:`~concurrent.futures.ProcessPoolExecutor` directly; this module puts a
queue abstraction in between so that

* in-process and multi-process execution share one API (and future backends
  — a distributed pool, an async gateway — can slot in without touching the
  planner);
* a worker process dying (OOM kill, segfault, machine pressure) retries the
  affected tasks on a fresh pool instead of aborting the whole sweep, and
  falls back to in-process execution once retries are exhausted — a sweep
  always makes progress;
* completed tasks are surfaced *as they finish* via ``on_result``, which is
  what lets the runner checkpoint shard results into the result store
  incrementally — the crash-resume guarantee needs results persisted before
  the sweep ends, not after.

Retrying is sound because every task in this repository is deterministic:
batch shards carry their per-trial seeds (exact mode) or their own spawned
fast seed (fast mode), so a re-executed task reproduces the same bits the
dead worker would have produced.

Tasks and the mapped function must be picklable for the process backend
(module-level functions over dataclass payloads — exactly what the runner
submits).
"""

from __future__ import annotations

import abc
import time
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence

from repro import telemetry


def _task_name(
    task_labels: Optional[Sequence[str]], index: int
) -> str:
    """The runner's label for a task (a shard cell digest) or a fallback."""
    if task_labels is not None:
        return task_labels[index]
    return f"task[{index}]"

__all__ = [
    "JobQueue",
    "QueueStats",
    "WorkerBackend",
    "InProcessBackend",
    "ProcessPoolBackend",
    "WorkerPoolError",
]

#: Callback invoked as each task completes: ``on_result(task_index, result)``.
ResultCallback = Callable[[int, object], None]


class WorkerPoolError(RuntimeError):
    """Worker pool kept dying and retries are exhausted.

    Raised (instead of silently falling back to in-process execution) when
    the backend was built with ``in_process_fallback=False``.  The message
    names the tasks that were pending when the pool died for the last time
    — with the runner's labels these are the poisoned cell digests, which
    is the first thing needed to reproduce a worker-killing shard.
    """


@dataclass
class QueueStats:
    """Counters describing what a queue did (read by tests and the CLI).

    Counts are in *dispatch units*: individual tasks normally, whole chunks
    when :meth:`JobQueue.run` groups tasks with ``chunksize > 1`` (the
    backend never sees inside a chunk).
    """

    submitted: int = 0
    completed: int = 0
    worker_deaths: int = 0
    retried_tasks: int = 0
    in_process_fallbacks: int = 0


class WorkerBackend(abc.ABC):
    """Executes an ordered list of tasks; results come back in task order.

    ``collect=False`` turns the call into a pure streaming pass: every
    completion still fires ``on_result``, but the backend drops the result
    afterwards and returns an empty list — the memory-flat mode the
    streaming aggregation rides (holding every result of a 10⁵-task sweep
    just to discard it would defeat the point).
    """

    def __init__(self) -> None:
        self.stats = QueueStats()

    @abc.abstractmethod
    def run(
        self,
        fn: Callable[[object], object],
        tasks: Sequence[object],
        on_result: Optional[ResultCallback] = None,
        *,
        collect: bool = True,
        task_labels: Optional[Sequence[str]] = None,
    ) -> List[object]:
        """Apply ``fn`` to every task; ``on_result`` fires per completion.

        ``task_labels`` (same length as ``tasks``) gives each task a stable
        human-readable name — e.g. the runner's cell digests — used in
        terminal errors when a task cannot be completed.
        """


class InProcessBackend(WorkerBackend):
    """Run every task in the calling process, in order."""

    def run(
        self,
        fn: Callable[[object], object],
        tasks: Sequence[object],
        on_result: Optional[ResultCallback] = None,
        *,
        collect: bool = True,
        task_labels: Optional[Sequence[str]] = None,
    ) -> List[object]:
        tasks = list(tasks)
        self.stats.submitted += len(tasks)
        results: List[object] = []
        for index, task in enumerate(tasks):
            result = fn(task)
            if collect:
                results.append(result)
            self.stats.completed += 1
            if on_result is not None:
                on_result(index, result)
        return results


class ProcessPoolBackend(WorkerBackend):
    """Fan tasks out over worker processes, surviving worker death.

    A :class:`BrokenProcessPool` (a worker was killed, not a Python exception
    in the task — those propagate unchanged) marks every not-yet-completed
    task for retry on a freshly built pool, sleeping ``retry_backoff *
    2**(deaths - 1)`` seconds first so a machine under memory pressure gets
    room to recover.  After ``max_retries`` pool deaths the remaining tasks
    run in-process (a pathological environment degrades to serial execution
    instead of failing the sweep) — or, with ``in_process_fallback=False``,
    the run aborts with a :class:`WorkerPoolError` naming the poisoned
    tasks.
    """

    def __init__(
        self,
        max_workers: int,
        *,
        max_retries: int = 2,
        retry_backoff: float = 0.5,
        in_process_fallback: bool = True,
    ) -> None:
        super().__init__()
        if max_workers < 1:
            raise ValueError(f"max_workers must be >= 1, got {max_workers}")
        if max_retries < 0:
            raise ValueError(f"max_retries must be >= 0, got {max_retries}")
        if retry_backoff < 0:
            raise ValueError(f"retry_backoff must be >= 0, got {retry_backoff}")
        self.max_workers = int(max_workers)
        self.max_retries = int(max_retries)
        self.retry_backoff = float(retry_backoff)
        self.in_process_fallback = bool(in_process_fallback)

    def run(
        self,
        fn: Callable[[object], object],
        tasks: Sequence[object],
        on_result: Optional[ResultCallback] = None,
        *,
        collect: bool = True,
        task_labels: Optional[Sequence[str]] = None,
    ) -> List[object]:
        tasks = list(tasks)
        self.stats.submitted += len(tasks)
        results: List[object] = [None] * len(tasks) if collect else []
        done = [False] * len(tasks)
        pending = list(range(len(tasks)))
        deaths = 0
        while pending:
            if deaths > self.max_retries:
                if not self.in_process_fallback:
                    names = ", ".join(
                        _task_name(task_labels, index) for index in pending
                    )
                    telemetry.event(
                        "queue.poisoned",
                        deaths=deaths,
                        tasks=[
                            _task_name(task_labels, index) for index in pending
                        ],
                    )
                    raise WorkerPoolError(
                        f"worker pool died {deaths} times "
                        f"(max_retries={self.max_retries}); "
                        f"{len(pending)} task(s) poisoned: {names}"
                    )
                self.stats.in_process_fallbacks += len(pending)
                if telemetry.enabled():
                    telemetry.event(
                        "queue.fallback",
                        deaths=deaths,
                        tasks=[
                            _task_name(task_labels, index) for index in pending
                        ],
                    )
                    telemetry.counter_inc(
                        "queue.in_process_fallbacks", len(pending)
                    )
                for index in pending:
                    result = fn(tasks[index])
                    if collect:
                        results[index] = result
                    done[index] = True
                    self.stats.completed += 1
                    if on_result is not None:
                        on_result(index, result)
                pending = []
                break
            if deaths and self.retry_backoff > 0:
                time.sleep(self.retry_backoff * 2 ** (deaths - 1))
            broke = False
            try:
                with ProcessPoolExecutor(
                    max_workers=min(self.max_workers, len(pending))
                ) as pool:
                    futures = {
                        pool.submit(fn, tasks[index]): index for index in pending
                    }
                    remaining = set(futures)
                    while remaining:
                        finished, remaining = wait(
                            remaining, return_when=FIRST_COMPLETED
                        )
                        for future in finished:
                            index = futures[future]
                            result = future.result()
                            if collect:
                                results[index] = result
                            done[index] = True
                            self.stats.completed += 1
                            if on_result is not None:
                                on_result(index, result)
            except BrokenProcessPool:
                broke = True
            if broke:
                deaths += 1
                self.stats.worker_deaths += 1
                pending = [index for index in pending if not done[index]]
                self.stats.retried_tasks += len(pending)
                if telemetry.enabled():
                    # One death event, then one retry event per affected
                    # task (labelled with its shard cell digest) — the
                    # sequence a liveness monitor needs to attribute the
                    # blast radius of a killed worker.
                    telemetry.event(
                        "queue.worker_death",
                        deaths=deaths,
                        pending_tasks=len(pending),
                    )
                    telemetry.counter_inc("queue.worker_deaths")
                    will_retry_on_pool = deaths <= self.max_retries
                    backoff = (
                        self.retry_backoff * 2 ** (deaths - 1)
                        if will_retry_on_pool and self.retry_backoff > 0
                        else 0.0
                    )
                    for index in pending:
                        telemetry.event(
                            "queue.retry",
                            task=_task_name(task_labels, index),
                            attempt=deaths,
                            backoff_seconds=backoff,
                            on_pool=will_retry_on_pool,
                        )
                        telemetry.counter_inc("queue.retried_tasks")
            else:
                pending = []
        return results


def _call_chunk(payload):
    """Module-level chunk runner (picklable for the process backend)."""
    fn, items = payload
    return [fn(item) for item in items]


class JobQueue:
    """Ordered task execution behind one API, whatever the backend.

    ``chunksize`` groups small tasks into fewer submissions to amortise
    pickling/IPC (the heterogeneous-job path submits hundreds of small jobs;
    batch shards are few and large, so they use ``chunksize=1``).
    ``on_result`` still fires once per *task*, in completion order within a
    chunk.
    """

    def __init__(self, backend: Optional[WorkerBackend] = None) -> None:
        self.backend = backend if backend is not None else InProcessBackend()

    @classmethod
    def for_workers(cls, workers: int) -> "JobQueue":
        """An in-process queue for one worker, a process pool otherwise."""
        if workers <= 1:
            return cls(InProcessBackend())
        return cls(ProcessPoolBackend(workers))

    @property
    def stats(self) -> QueueStats:
        """The backend's execution counters."""
        return self.backend.stats

    @property
    def in_process(self) -> bool:
        """Whether tasks run in the calling process.

        The continuous-batching path of the execution plan requires this:
        its refill loop feeds one live engine, which cannot span process
        boundaries.
        """
        return isinstance(self.backend, InProcessBackend)

    def run(
        self,
        fn: Callable[[object], object],
        tasks: Sequence[object],
        *,
        on_result: Optional[ResultCallback] = None,
        chunksize: int = 1,
        collect: bool = True,
        task_labels: Optional[Sequence[str]] = None,
    ) -> List[object]:
        """Apply ``fn`` to every task; returns results in task order.

        ``collect=False`` streams: ``on_result`` still fires once per task,
        but nothing is retained and the return value is an empty list.
        ``task_labels`` names tasks (e.g. cell digests) in terminal errors.
        """
        tasks = list(tasks)
        if task_labels is not None and len(task_labels) != len(tasks):
            raise ValueError(
                f"task_labels must have one entry per task "
                f"({len(tasks)}), got {len(task_labels)}"
            )
        if chunksize <= 1 or len(tasks) <= 1:
            return self.backend.run(
                fn, tasks, on_result, collect=collect, task_labels=task_labels
            )
        bounds = list(range(0, len(tasks), chunksize)) + [len(tasks)]
        chunks = [
            (fn, tasks[bounds[i] : bounds[i + 1]])
            for i in range(len(bounds) - 1)
        ]
        chunk_labels = None
        if task_labels is not None:
            chunk_labels = [
                ", ".join(task_labels[bounds[i] : bounds[i + 1]])
                for i in range(len(bounds) - 1)
            ]

        def on_chunk(chunk_index: int, chunk_results) -> None:
            if on_result is not None:
                base = bounds[chunk_index]
                for offset, result in enumerate(chunk_results):
                    on_result(base + offset, result)

        parts = self.backend.run(
            _call_chunk, chunks, on_chunk, collect=collect, task_labels=chunk_labels
        )
        return [result for part in parts for result in part]

    def __repr__(self) -> str:
        return f"JobQueue(backend={type(self.backend).__name__})"
