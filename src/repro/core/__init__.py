"""The paper's algorithms (the primary contribution).

* :class:`~repro.core.broadcast_random.EnergyEfficientBroadcast` —
  **Algorithm 1**: three-phase broadcasting for random networks ``G(n, p)``;
  O(log n) rounds w.h.p. and **at most one transmission per node**
  (Theorem 2.1).
* :class:`~repro.core.gossip_random.RandomNetworkGossip` — **Algorithm 2**:
  gossiping on ``G(n, p)`` in O(d log n) rounds with O(log n) transmissions
  per node (Theorem 3.2).
* :class:`~repro.core.broadcast_general.KnownDiameterBroadcast` —
  **Algorithm 3**: broadcasting on arbitrary networks with known diameter
  ``D`` in O(D log(n/D) + log² n) rounds using an expected
  O(log² n / log(n/D)) transmissions per node (Theorem 4.1).
* :class:`~repro.core.tradeoff.TradeoffBroadcast` — the **Theorem 4.2**
  family: λ interpolates between time-optimal and energy-optimal broadcast.
* :mod:`~repro.core.distributions` — the transmission-scale distributions
  (the paper's Fig. 1): the new distribution α, the Czumaj–Rytter α′, and the
  time-invariant single-probability distributions used by the lower bounds.
* :mod:`~repro.core.selection` — shared-randomness selection sequences.
"""

from repro.core.broadcast_general import (
    BatchKnownDiameterBroadcast,
    KnownDiameterBroadcast,
)
from repro.core.broadcast_random import (
    Algorithm1Schedule,
    BatchEnergyEfficientBroadcast,
    EnergyEfficientBroadcast,
    compute_algorithm1_schedule,
)
from repro.core.distributions import (
    AlphaDistribution,
    CzumajRytterDistribution,
    FixedProbabilityOblivious,
    ScaleDistribution,
    UniformScaleDistribution,
)
from repro.core.gossip_random import BatchRandomNetworkGossip, RandomNetworkGossip
from repro.core.oblivious import BatchTimeInvariantBroadcast, TimeInvariantBroadcast
from repro.core.selection import SelectionSequence
from repro.core.tradeoff import BatchTradeoffBroadcast, TradeoffBroadcast

__all__ = [
    "EnergyEfficientBroadcast",
    "BatchEnergyEfficientBroadcast",
    "Algorithm1Schedule",
    "compute_algorithm1_schedule",
    "RandomNetworkGossip",
    "BatchRandomNetworkGossip",
    "KnownDiameterBroadcast",
    "BatchKnownDiameterBroadcast",
    "TradeoffBroadcast",
    "BatchTradeoffBroadcast",
    "TimeInvariantBroadcast",
    "BatchTimeInvariantBroadcast",
    "ScaleDistribution",
    "AlphaDistribution",
    "CzumajRytterDistribution",
    "UniformScaleDistribution",
    "FixedProbabilityOblivious",
    "SelectionSequence",
]
